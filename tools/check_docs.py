#!/usr/bin/env python3
"""Documentation checker: intra-repo links, anchors, code includes.

Run from anywhere::

    python tools/check_docs.py [files...]

With no arguments it checks ``README.md`` and every ``docs/*.md``.
Exit code 0 means clean; 1 means at least one problem, each printed as
``file:line: message``.  Stdlib only — runs in the docs CI job.

Checks
------

1. **Intra-repo links** — every ``[text](target)`` whose target is not
   an external URL must resolve to an existing file or directory,
   relative to the markdown file containing it.
2. **Anchors** — ``[text](#section)`` and ``[text](file.md#section)``
   must name a real heading in the target document (GitHub-style
   slugs: lowercased, punctuation dropped, spaces to hyphens).
3. **Code includes** — fenced blocks wrapped in include markers must
   match the named region of the source file *verbatim*, so the docs
   cannot drift from runnable code::

       <!-- include: examples/quickstart.py from="class X" to="def main" -->
       ```python
       class X: ...
       ```
       <!-- /include -->

   The region spans from the first line starting with ``from`` up to
   (excluding) the next line starting with ``to``, trailing blank
   lines stripped.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` — not preceded by ``!`` (images are still files,
#: but they resolve the same way; the negative lookbehind only guards
#: against matching the inner half of ``![alt](img)`` twice).
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")

INCLUDE_RE = re.compile(
    r'<!--\s*include:\s*(?P<path>\S+)'
    r'\s+from="(?P<from>[^"]+)"\s+to="(?P<to>[^"]+)"\s*-->\s*\n'
    r'```[^\n]*\n(?P<body>.*?)```',
    re.DOTALL)

EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub-style heading slug (the anchor a ``#link`` points at)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    slugs: set[str] = set()
    in_code = False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        match = re.match(r"#{1,6}\s+(.*)", line)
        if match:
            slugs.add(slugify(match.group(1)))
    return slugs


def strip_code_blocks(markdown: str) -> str:
    """Blank out fenced code (links inside examples are not links)."""
    out, in_code = [], False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            out.append("")
            continue
        out.append("" if in_code else line)
    return "\n".join(out)


def extract_region(source: str, start: str, stop: str) -> str | None:
    """Lines from the first one starting with ``start`` up to (not
    including) the next one starting with ``stop``; None if either
    marker is missing."""
    lines = source.splitlines(keepends=True)
    begin = next((i for i, line in enumerate(lines)
                  if line.startswith(start)), None)
    if begin is None:
        return None
    end = next((i for i in range(begin + 1, len(lines))
                if lines[i].startswith(stop)), None)
    if end is None:
        return None
    return "".join(lines[begin:end]).rstrip("\n") + "\n"


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_links(md_path: pathlib.Path, text: str,
                problems: list[str]) -> None:
    own_slugs = heading_slugs(text)
    scannable = strip_code_blocks(text)
    for match in LINK_RE.finditer(scannable):
        target = match.group(1)
        line = line_of(scannable, match.start())
        if target.startswith(EXTERNAL):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{md_path}:{line}: dangling link "
                                f"target {target!r}")
                continue
            if anchor:
                if resolved.suffix != ".md":
                    problems.append(f"{md_path}:{line}: anchor on "
                                    f"non-markdown target {target!r}")
                    continue
                slugs = heading_slugs(resolved.read_text())
                if anchor not in slugs:
                    problems.append(f"{md_path}:{line}: dangling anchor "
                                    f"{target!r}")
        elif anchor and anchor not in own_slugs:
            problems.append(f"{md_path}:{line}: dangling anchor "
                            f"#{anchor}")


def check_includes(md_path: pathlib.Path, text: str,
                   problems: list[str]) -> None:
    for match in INCLUDE_RE.finditer(text):
        line = line_of(text, match.start())
        source_path = (md_path.parent / match.group("path")).resolve()
        if not source_path.exists():
            problems.append(f"{md_path}:{line}: include source "
                            f"{match.group('path')!r} missing")
            continue
        region = extract_region(source_path.read_text(),
                                match.group("from"), match.group("to"))
        if region is None:
            problems.append(
                f"{md_path}:{line}: include markers "
                f'from="{match.group("from")}" to="{match.group("to")}" '
                f"not found in {match.group('path')}")
            continue
        if match.group("body") != region:
            problems.append(
                f"{md_path}:{line}: include drifted from "
                f"{match.group('path')} — update the fenced block to "
                f"the current source")


def check_file(md_path: pathlib.Path, problems: list[str]) -> None:
    text = md_path.read_text()
    check_links(md_path, text, problems)
    check_includes(md_path, text, problems)


def default_files() -> list[pathlib.Path]:
    files = [ROOT / "README.md"]
    files += sorted((ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def main(argv: list[str]) -> int:
    files = ([pathlib.Path(a).resolve() for a in argv]
             if argv else default_files())
    problems: list[str] = []
    for md_path in files:
        check_file(md_path, problems)
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if problems else 'ok'} ({len(problems)} problem(s))")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
