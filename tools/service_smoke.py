#!/usr/bin/env python3
"""Service smoke: serve, launch over HTTP, verify parity, drain clean.

The CI ``service`` job's script (also runnable locally)::

    PYTHONPATH=src python tools/service_smoke.py

What it proves, end to end, against a real ``python -m repro serve``
subprocess on a free port:

1. a seeded tour launched over HTTP into a **process-backed** world
   streams its outcome over SSE, and that outcome — plus the drained
   world's trace digests — is identical to the same ``(WorldSpec,
   LaunchSpec)`` pair run scripted in this process;
2. SIGTERM drains gracefully: exit code 0, the drain banner printed;
3. nothing leaks: no orphan ``multiprocessing`` spawn workers, no
   stale ``psm_*`` shared-memory segments.

Exit status 0 on success; any failure raises with a diagnosis.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

WORLD_SPEC = {"backend": "proc", "nodes": 4, "n_shards": 2, "seed": 19}
LAUNCH_SPEC = {"steps": 6, "mode": "optimized", "mixed_fraction": 0.25,
               "agent_id": "smoke-1"}


def request(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.loads(resp.read().decode())


def stream_until_agent(base: str, world_id: str, agent_id: str):
    """Follow the SSE stream until ``agent_id``'s terminal event."""
    with urllib.request.urlopen(f"{base}/worlds/{world_id}/events",
                                timeout=120) as resp:
        event = None
        for raw in resp:
            line = raw.decode().strip()
            if line.startswith("event:"):
                event = line.split(":", 1)[1].strip()
            elif line.startswith("data:") and event == "agent":
                data = json.loads(line.split(":", 1)[1])
                if data.get("agent") == agent_id:
                    return data
    raise AssertionError("SSE stream ended before the agent event")


def scripted_run():
    from repro.service import (
        LaunchSpec,
        WorldSpec,
        build_world,
        resolve_launch,
    )

    wspec = WorldSpec.from_json(dict(WORLD_SPEC))
    lspec = LaunchSpec.from_json(dict(LAUNCH_SPEC))
    world, _journal = build_world(wspec)
    try:
        resolved = resolve_launch(lspec, wspec, lspec.agent_id)
        world.launch(resolved.agent, at=resolved.at,
                     method=resolved.method, **resolved.kwargs)
        world.run()
        return (json.loads(json.dumps(world.outcomes(), default=repr)),
                list(world.trace_digests()))
    finally:
        world.close()


def shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


def orphan_spawn_workers():
    out = subprocess.run(["pgrep", "-f", "multiprocessing.spawn"],
                         capture_output=True, text=True)
    return [pid for pid in out.stdout.split() if pid.isdigit()]


def main() -> int:
    shm_before = shm_segments()
    workers_before = set(orphan_spawn_workers())
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        line = proc.stdout.readline()
        assert "listening on http://" in line, f"no banner: {line!r}"
        base = line.strip().rsplit(" ", 1)[-1]
        print(f"serve up at {base}")

        made = request(base, "POST", "/worlds", WORLD_SPEC)
        world_id = made["world"]
        launched = request(base, "POST", f"/worlds/{world_id}/launch",
                           LAUNCH_SPEC)
        agent_id = launched["agent"]
        print(f"launched {agent_id} into {world_id} "
              f"({WORLD_SPEC['backend']} backend)")

        streamed = stream_until_agent(base, world_id, agent_id)
        assert streamed["status"] == "finished", streamed
        print(f"streamed outcome: {streamed['status']}")

        drained = request(base, "DELETE", f"/worlds/{world_id}")
        assert drained["status"] == "drained", drained

        want_outcomes, want_digests = scripted_run()
        got_agent = json.loads(json.dumps(
            {k: v for k, v in streamed.items() if k != "agent"},
            default=repr))
        assert got_agent == want_outcomes[agent_id], \
            f"streamed {got_agent!r} != scripted {want_outcomes[agent_id]!r}"
        got_drained = json.loads(json.dumps(drained["agents"],
                                            default=repr))
        assert got_drained == want_outcomes, "drained outcomes diverged"
        assert drained["trace_digests"] == want_digests, \
            (drained["trace_digests"], want_digests)
        print(f"parity: outcomes + trace digests {want_digests} "
              f"match the scripted run")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"exit {proc.returncode}: {out}"
        assert "drained" in out, out
        print("SIGTERM drain: clean exit")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=60)

    leaked = shm_segments() - shm_before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"
    orphans = set(orphan_spawn_workers()) - workers_before
    assert not orphans, f"orphan spawn workers: {sorted(orphans)}"
    print("no orphan workers, no stale psm_* segments")
    print("SERVICE SMOKE OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
