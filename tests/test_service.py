"""Tests: the world-as-a-service gateway (host + HTTP layer).

The contract under test (see :mod:`repro.service`):

* **spec discipline** — world/launch specs reject unknown keys and
  out-of-range values before any world is built;
* **gateway ≡ script** — a launch streamed through the gateway into a
  live world produces the same per-agent outcome and trace digest as
  the same ``(WorldSpec, LaunchSpec)`` pair run scripted;
* **admission control** — per-tenant in-flight caps reject with
  :class:`~repro.service.AdmissionFull` (HTTP 429 + ``Retry-After``)
  and the world stays consistent: once the blocking agent finishes,
  the retried launch succeeds and finishes too;
* **event ordering** — the ``epoch`` events on a subscription carry
  journal group-commit indices in exactly the journal's commit order;
* **subscriber isolation** — a mid-stream disconnect cancels only that
  subscription; the world keeps running and the outcome is identical;
* **graceful drain** — drain finishes the epoch, flushes the journal
  tail, emits a final ``drain`` event and ends every stream with the
  ``None`` sentinel.
"""

import asyncio
import json
import queue
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import UsageError
from repro.service import (
    AdmissionFull,
    Gateway,
    HostClosed,
    LaunchSpec,
    WorldHost,
    WorldSpec,
    build_world,
    resolve_launch,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def scripted_run(world_json, launch_json, agent_id):
    """The scripted twin of one gateway launch (shared build path)."""
    wspec = WorldSpec.from_json(dict(world_json))
    lspec = LaunchSpec.from_json(dict(launch_json))
    world, journal = build_world(wspec)
    try:
        resolved = resolve_launch(lspec, wspec, agent_id)
        world.launch(resolved.agent, at=resolved.at,
                     method=resolved.method, **resolved.kwargs)
        world.run()
        return dict(world.outcomes()), list(world.trace_digests())
    finally:
        if hasattr(world, "close"):
            world.close()


def wait_for_agent(host, agent_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snap = host.agent_snapshot(agent_id)
        if snap["status"] in ("finished", "failed"):
            return snap
        time.sleep(0.01)
    raise AssertionError(f"agent {agent_id} never finished")


# ---------------------------------------------------------------------------
# specs


def test_world_spec_rejects_unknown_keys():
    with pytest.raises(UsageError, match="unknown world-spec key"):
        WorldSpec.from_json({"backend": "world", "nodez": 4})


def test_world_spec_rejects_bad_backend_and_sizes():
    with pytest.raises(UsageError, match="unknown backend"):
        WorldSpec.from_json({"backend": "quantum"})
    with pytest.raises(UsageError, match="nodes"):
        WorldSpec.from_json({"nodes": 1})
    with pytest.raises(UsageError, match="journal"):
        WorldSpec.from_json({"journal": "postgres"})


def test_launch_spec_rejects_unknown_keys_and_values():
    with pytest.raises(UsageError, match="unknown launch-spec key"):
        LaunchSpec.from_json({"stepz": 5})
    with pytest.raises(UsageError, match="steps"):
        LaunchSpec.from_json({"steps": 1})
    with pytest.raises(UsageError, match="unknown mode"):
        LaunchSpec.from_json({"mode": "yolo"})
    with pytest.raises(UsageError, match="unknown protocol"):
        LaunchSpec.from_json({"protocol": "udp"})


# ---------------------------------------------------------------------------
# host: launch parity, admission, ordering, drain


@pytest.mark.parametrize("backend", ["world", "sharded"])
def test_host_launch_matches_scripted_run(backend):
    wjson = {"backend": backend, "nodes": 4, "n_shards": 2, "seed": 7}
    ljson = {"steps": 6, "mode": "optimized", "mixed_fraction": 0.3}
    host = WorldHost("w-test", WorldSpec.from_json(wjson)).start()
    try:
        record = host.launch(LaunchSpec.from_json(ljson))
        agent = record["agent"]
        wait_for_agent(host, agent)
    finally:
        snap = host.drain()
    want_out, want_dig = scripted_run(wjson, ljson, agent)
    assert snap["agents"][agent]["status"] == "finished"
    assert snap["agents"] == want_out
    assert snap["trace_digests"] == want_dig


def test_host_launch_proc_backend_matches_scripted_run():
    wjson = {"backend": "proc", "nodes": 4, "n_shards": 2, "seed": 3}
    ljson = {"steps": 6, "mode": "basic"}
    host = WorldHost("w-proc", WorldSpec.from_json(wjson)).start()
    try:
        record = host.launch(LaunchSpec.from_json(ljson))
        agent = record["agent"]
        wait_for_agent(host, agent)
    finally:
        snap = host.drain()
    want_out, want_dig = scripted_run(wjson, ljson, agent)
    assert snap["agents"] == want_out
    assert snap["trace_digests"] == want_dig


def test_admission_cap_rejects_then_recovers():
    """429 on overflow; after the blocker finishes, the world is fine."""
    spec = WorldSpec.from_json({"backend": "world", "nodes": 4, "seed": 0})
    host = WorldHost("w-adm", spec, max_inflight=1).start()
    try:
        # ~200 tour steps keep the blocker in flight for a wall-clock
        # while (hundreds of epochs), so the second launch reliably
        # hits the cap rather than racing the stepper.
        first = host.launch(LaunchSpec(steps=200, agent_id="blocker"))
        with pytest.raises(AdmissionFull) as excinfo:
            host.launch(LaunchSpec(steps=4, agent_id="rejected"))
        assert excinfo.value.retry_after == pytest.approx(1.0)
        assert "in flight" in str(excinfo.value)
        wait_for_agent(host, first["agent"])
        # The rejection left no residue: the retry is admitted and runs
        # to completion on the same, still-consistent world.
        retried = host.launch(LaunchSpec(steps=4, agent_id="retried"))
        outcome = wait_for_agent(host, retried["agent"])
        assert outcome["status"] == "finished"
    finally:
        snap = host.drain()
    assert "rejected" not in snap["agents"]
    assert snap["agents"]["blocker"]["status"] == "finished"
    assert snap["agents"]["retried"]["status"] == "finished"


def test_epoch_events_match_journal_commit_order():
    spec = WorldSpec.from_json({"backend": "sharded", "nodes": 4,
                                "n_shards": 2, "seed": 5})
    host = WorldHost("w-ord", spec)
    sub = host.subscribe()
    host.start()
    record = host.launch(LaunchSpec(steps=6))
    wait_for_agent(host, record["agent"])
    host.drain()
    events = []
    while True:
        item = sub.get(timeout=5)
        if item is None:
            break
        events.append(item)
    kinds = [item["event"] for item in events]
    assert kinds[0] == "world"
    assert kinds[-1] == "drain"
    assert "launch" in kinds and "agent" in kinds
    seqs = [item["seq"] for item in events]
    assert seqs == sorted(seqs)
    epochs = [item["data"] for item in events if item["event"] == "epoch"]
    committed = [entry for kind, entry in host.journal.recover().entries
                 if kind == "epoch"]
    # One epoch event per journal group commit, in commit order.
    assert [e["commit"] for e in epochs] == \
        [c["commit"] for c in committed] == list(range(len(committed)))
    assert [e["barrier"] for e in epochs] == \
        [c["barrier"] for c in committed]


def test_disconnect_cancels_only_that_subscription():
    wjson = {"backend": "world", "nodes": 4, "seed": 9}
    ljson = {"steps": 8, "mode": "optimized"}
    spec = WorldSpec.from_json(wjson)
    host = WorldHost("w-sub", spec)
    doomed = host.subscribe()
    keeper = host.subscribe()
    host.start()
    record = host.launch(LaunchSpec.from_json(ljson))
    doomed.get(timeout=5)  # it was live...
    host.unsubscribe(doomed)  # ...then the client went away mid-stream
    wait_for_agent(host, record["agent"])
    snap = host.drain()
    # The surviving stream saw the run end; the world never noticed.
    tail = []
    while True:
        item = keeper.get(timeout=5)
        if item is None:
            break
        tail.append(item["event"])
    assert "drain" in tail
    want_out, want_dig = scripted_run(wjson, ljson, record["agent"])
    assert snap["agents"] == want_out
    assert snap["trace_digests"] == want_dig


def test_subscribe_after_drain_replays_then_ends():
    spec = WorldSpec.from_json({"backend": "world", "nodes": 4, "seed": 2})
    host = WorldHost("w-late", spec).start()
    record = host.launch(LaunchSpec(steps=4))
    wait_for_agent(host, record["agent"])
    host.drain()
    sub = host.subscribe()
    events = []
    while True:
        item = sub.get(timeout=5)
        if item is None:
            break
        events.append(item["event"])
    assert events[0] == "world"
    assert events[-1] == "drain"


def test_launch_after_drain_raises_host_closed():
    spec = WorldSpec.from_json({"backend": "world", "nodes": 4, "seed": 1})
    host = WorldHost("w-closed", spec).start()
    host.drain()
    with pytest.raises(HostClosed):
        host.launch(LaunchSpec(steps=4))
    # drain is idempotent
    assert host.drain()["status"] == "drained"


def test_slow_subscriber_drops_events_not_the_world():
    spec = WorldSpec.from_json({"backend": "world", "nodes": 4, "seed": 4})
    host = WorldHost("w-slow", spec, sub_depth=2)
    sub = host.subscribe()  # bounded at 2 and never read until the end
    host.start()
    record = host.launch(LaunchSpec(steps=8))
    wait_for_agent(host, record["agent"])
    snap = host.drain()
    assert snap["agents"][record["agent"]]["status"] == "finished"
    assert sub.dropped > 0  # backpressure became drops, not a stall


# ---------------------------------------------------------------------------
# HTTP layer


class GatewayFixture:
    """A live gateway on a loop thread + blocking HTTP helpers."""

    def __init__(self, **kwargs):
        self.gateway = Gateway(**kwargs)
        self.base = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        async def run():
            host, port = await self.gateway.start("127.0.0.1", 0)
            self.base = f"http://{host}:{port}"
            self._ready.set()
            await self.gateway.serve_forever()

        self.loop = asyncio.new_event_loop()
        try:
            self.loop.run_until_complete(run())
        finally:
            self.loop.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "gateway never bound"
        return self

    def __exit__(self, *exc):
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.shutdown(), self.loop)
        future.result(timeout=60)
        self._thread.join(timeout=10)

    def request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(self.base + path, data=data,
                                     method=method)
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, dict(resp.headers), \
                    json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), \
                json.loads(exc.read().decode())

    def sse(self, path, until="end", timeout=30):
        """Read SSE frames until an event named ``until`` (inclusive)."""
        out = []
        with urllib.request.urlopen(self.base + path,
                                    timeout=timeout) as resp:
            event = data = None
            for raw in resp:
                line = raw.decode().strip()
                if line.startswith("event:"):
                    event = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data = json.loads(line.split(":", 1)[1].strip())
                elif not line and event is not None:
                    out.append((event, data))
                    if event == until:
                        return out
                    event = data = None
        return out


def test_http_end_to_end_with_sse_and_drain():
    wjson = {"backend": "sharded", "nodes": 4, "n_shards": 2, "seed": 13}
    ljson = {"steps": 6, "mode": "optimized"}
    with GatewayFixture() as gw:
        status, _, health = gw.request("GET", "/healthz")
        assert status == 200 and health["ok"]
        status, _, made = gw.request("POST", "/worlds", wjson)
        assert status == 201
        wid = made["world"]
        status, _, listed = gw.request("GET", "/worlds")
        assert [w["world"] for w in listed["worlds"]] == [wid]
        status, _, launched = gw.request(
            "POST", f"/worlds/{wid}/launch", ljson)
        assert status == 202
        agent = launched["agent"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, _, snap = gw.request(
                "GET", f"/worlds/{wid}/agents/{agent}")
            assert status == 200
            if snap["status"] in ("finished", "failed"):
                break
            time.sleep(0.02)
        assert snap["status"] == "finished"
        status, _, drained = gw.request("DELETE", f"/worlds/{wid}")
        assert status == 200 and drained["status"] == "drained"
        # The retained stream replays gap-free after the drain.
        status, _, made2 = gw.request("POST", "/worlds", wjson)
        wid2 = made2["world"]
        gw.request("POST", f"/worlds/{wid2}/launch", ljson)
        events = gw.sse(f"/worlds/{wid2}/events", until="agent")
        kinds = [e for e, _ in events]
        assert kinds[0] == "world" and "launch" in kinds
        status, _, drained2 = gw.request("DELETE", f"/worlds/{wid2}")
        assert drained2["agents"] == drained["agents"]
        assert drained2["trace_digests"] == drained["trace_digests"]
    want_out, want_dig = scripted_run(wjson, ljson, agent)
    got = json.loads(json.dumps(drained["agents"], default=repr))
    want = json.loads(json.dumps(want_out, default=repr))
    assert got == want
    assert drained["trace_digests"] == want_dig


def test_http_admission_429_carries_retry_after():
    with GatewayFixture(max_inflight=1, retry_after=2.5) as gw:
        _, _, made = gw.request(
            "POST", "/worlds", {"backend": "world", "nodes": 4, "seed": 0})
        wid = made["world"]
        # A long blocker (≈1s of epochs) keeps the cap occupied across
        # the HTTP round trip of the second launch.
        status, _, first = gw.request(
            "POST", f"/worlds/{wid}/launch",
            {"steps": 400, "agent_id": "blocker"})
        assert status == 202
        status, headers, err = gw.request(
            "POST", f"/worlds/{wid}/launch", {"steps": 4})
        assert status == 429
        assert headers.get("Retry-After") == "2.5"
        assert "in flight" in err["error"]
        # Mid-run drain: the in-flight epoch finishes, the blocker is
        # reported as-is, nothing hangs.
        status, _, drained = gw.request("DELETE", f"/worlds/{wid}")
        assert status == 200
        assert "blocker" in drained["agents"]


def test_http_error_mapping():
    with GatewayFixture() as gw:
        status, _, err = gw.request("GET", "/worlds/w99")
        assert status == 404
        status, _, err = gw.request("POST", "/worlds",
                                    {"backend": "quantum"})
        assert status == 400 and "unknown backend" in err["error"]
        status, _, err = gw.request("POST", "/worlds", {"nodes": "four"})
        assert status == 400
        _, _, made = gw.request("POST", "/worlds",
                                {"backend": "world", "nodes": 4})
        wid = made["world"]
        status, _, err = gw.request(
            "GET", f"/worlds/{wid}/agents/ghost")
        assert status == 404 or status == 400
        status, _, err = gw.request("PATCH", f"/worlds/{wid}")
        assert status == 405
        status, _, err = gw.request("GET", "/nonsense")
        assert status == 404


def test_serve_cli_subprocess_sigterm_drains(tmp_path):
    """`python -m repro serve` end to end: HTTP up, SIGTERM, clean exit."""
    import os
    import signal
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        line = proc.stdout.readline()
        assert "listening on http://" in line, line
        base = line.strip().rsplit(" ", 1)[-1]

        def request(method, path, body=None):
            data = json.dumps(body).encode() if body is not None else None
            req = urllib.request.Request(base + path, data=data,
                                         method=method)
            with urllib.request.urlopen(req, timeout=30) as resp:
                return json.loads(resp.read().decode())

        made = request("POST", "/worlds",
                       {"backend": "sharded", "nodes": 4, "seed": 21})
        wid = made["world"]
        launched = request("POST", f"/worlds/{wid}/launch", {"steps": 5})
        agent = launched["agent"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            snap = request("GET", f"/worlds/{wid}/agents/{agent}")
            if snap["status"] in ("finished", "failed"):
                break
            time.sleep(0.02)
        assert snap["status"] == "finished"
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "draining" in out and "drained" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)
