"""Integration tests: rollback under failures (Section 4.3 guarantees)."""


from repro import AgentStatus, MobileAgent, RollbackMode
from repro.bench import make_tour_plan, run_tour
from repro.bench.harness import build_tour_world
from repro.node.runtime import RetryPolicy
from repro.sim.failures import CrashPlan

from tests.helpers import LinearAgent, bank_of, build_line_world


def test_crash_during_compensation_retries_and_completes():
    """A compensation transaction aborted by a crash re-runs from the
    durable queue; the rollback still completes with correct state."""
    nodes = [f"n{i}" for i in range(4)]
    plan = make_tour_plan(nodes, 5, mixed_fraction=1.0, rollback_depth=4)
    clean = run_tour(plan, 4, mode=RollbackMode.BASIC, seed=7)

    world = build_tour_world(4, seed=7)
    # The forward tour takes ~0.1s; compensations run right after.
    # Crash every node briefly in that window.
    world.failures.apply_plan(
        [CrashPlan(f"n{i}", at=0.12 + 0.03 * i, duration=0.1)
         for i in range(4)])
    crashed = run_tour(plan, 4, mode=RollbackMode.BASIC, seed=7,
                       world=world)
    assert crashed.status is AgentStatus.FINISHED
    assert crashed.result == clean.result
    assert crashed.rollbacks == 1
    assert crashed.sim_time >= clean.sim_time


def test_rollback_blocked_by_down_node_waits_for_recovery():
    """Basic mechanism: the agent must reach the step's node; while it
    is down the rollback stalls, then proceeds at recovery."""
    world = build_line_world(3)
    agent = LinearAgent("waiter", ["n0", "n1", "n2"],
                        savepoints={0: "sp"}, rollback_to="sp")
    # n1 goes down before the rollback's compensation reaches it.
    world.failures.apply_plan([CrashPlan("n1", at=0.05, duration=3.0)])
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.rollbacks_completed == 1
    assert world.sim.now > 3.0  # had to outwait the outage


def test_optimized_rollback_with_unreachable_resource_node_retries():
    world = build_line_world(3)
    agent = LinearAgent("shipper", ["n0", "n1", "n2"],
                        savepoints={0: "sp"}, rollback_to="sp")
    # The forward tour passes n1 around t≈0.07 and the rollback's RCE
    # shipment to n1 happens around t≈0.2: crash n1 in between.
    world.failures.apply_plan([CrashPlan("n1", at=0.12, duration=2.0)])
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.OPTIMIZED)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # The RCE list for n1 could not be shipped while it was down.
    assert world.metrics.count("abort.dest-unreachable") >= 1
    assert record.rollbacks_completed == 1
    for i in range(3):
        assert bank_of(world, f"n{i}").peek("a")["balance"] == 990


class DrainedAccount(MobileAgent):
    """Forces a failing compensation: the money is gone (Section 3.2).

    Step 1 (n0) sets the savepoint; step 2 (n1) deposits 20 into the
    victim account (compensation: withdraw 20); an external transaction
    then drains the account, so the compensation fails when step 3
    rolls back.
    """

    def begin(self, ctx):
        ctx.savepoint("sp")
        ctx.goto("n1", "deposit_there")

    def deposit_there(self, ctx):
        bank = ctx.resource("bank")
        bank.deposit("victim", 20)
        ctx.log_resource_compensation(
            "t.undo_deposit", {"account": "victim", "amount": 20},
            resource="bank")
        ctx.log_agent_compensation("t.mark", {"tag": "rolled"})
        ctx.goto("n0", "regret")

    def regret(self, ctx):
        if not self.wro.get("marks"):
            ctx.rollback("sp")
        ctx.finish({"marks": self.wro["marks"]})


def drain_victim(bank, amount=20):
    from repro.tx.manager import Transaction
    t = Transaction("external", "n1")
    bank.withdraw(t, "victim", amount)
    t.commit()


def refill_victim(bank, amount=20):
    from repro.tx.manager import Transaction
    t = Transaction("external", "n1")
    bank.deposit(t, "victim", amount)
    t.commit()


def test_permanently_failing_compensation_hits_retry_policy():
    world = build_line_world(2,
                             retry_policy=RetryPolicy(max_attempts=3,
                                                      backoff=0.01))
    bank = bank_of(world, "n1")
    bank.seed_account("victim", 0)
    agent = DrainedAccount("unlucky")
    record = world.launch(agent, at="n0", method="begin",
                          mode=RollbackMode.BASIC)
    # Drain the account after the deposit committed but before the
    # rollback's compensation reaches it.
    world.sim.schedule(0.09, lambda: drain_victim(bank))
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FAILED
    assert "permanently failing" in record.failure
    assert world.metrics.count("compensation.op_failures") >= 2


def test_transiently_failing_compensation_eventually_succeeds():
    """CompensationFailed retried until the blocking condition clears."""
    world = build_line_world(2,
                             retry_policy=RetryPolicy(max_attempts=None,
                                                      backoff=0.01))
    bank = bank_of(world, "n1")
    bank.seed_account("victim", 0)
    agent = DrainedAccount("patient")
    record = world.launch(agent, at="n0", method="begin",
                          mode=RollbackMode.BASIC)
    world.sim.schedule(0.09, lambda: drain_victim(bank))
    world.sim.schedule(1.5, lambda: refill_victim(bank))
    world.run(until=30.0)
    assert record.rollbacks_completed == 1
    assert world.metrics.count("compensation.op_failures") >= 1
    assert record.status is AgentStatus.FINISHED
    assert record.result == {"marks": ["rolled"]}


def test_random_outage_storm_never_loses_the_rollback():
    """EVAL-FT in miniature: Poisson outages, rollback still completes."""
    nodes = [f"n{i}" for i in range(4)]
    plan = make_tour_plan(nodes, 5, mixed_fraction=0.5, rollback_depth=4)
    world = build_tour_world(4, seed=11)
    world.failures.random_outages(
        [f"n{i}" for i in range(4)], horizon=5.0, rate_per_s=0.4,
        mean_downtime=0.2)
    result = run_tour(plan, 4, mode=RollbackMode.BASIC, seed=11,
                      world=world, max_events=2_000_000)
    assert result.status is AgentStatus.FINISHED
    assert result.rollbacks == 1
    assert result.result["rolled_back"] == 1
