"""Tests: kill_shard edge cases, on both sharded backends.

Edges the mainline outage tests don't reach:

* a restart scheduled inside the same epoch as its own kill;
* killing shard 0 (the coordinator-adjacent shard hosting every tour's
  launch node);
* double-kill — a second kill of a shard that is already dead, and a
  re-kill after a restart;
* in process mode these must behave identically to in-process mode
  (hard worker-process death is covered in
  tests/test_multiproc_shards.py).
"""

import pytest

from repro import AgentStatus, ProcShardedWorld
from repro.errors import UsageError

from tests.helpers import build_ft_ring, launch_ft_tours, ring_debits

pytestmark = pytest.mark.parametrize("backend", ("sharded", "proc"))


@pytest.fixture(autouse=True)
def _close_proc_worlds():
    """Close every ProcShardedWorld a test built, after its asserts."""
    yield
    for world in list(_OPENED):
        world.close()
    _OPENED.clear()


_OPENED: list = []


def run_with(backend, configure, seed=7, n_agents=3):
    world = build_ft_ring(backend, seed=seed)
    if isinstance(world, ProcShardedWorld):
        _OPENED.append(world)
    configure(world)
    records = launch_ft_tours(world, n_agents=n_agents)
    world.run(until=120.0)
    return world, records, ring_debits(world)


def test_restart_in_same_epoch_as_kill(backend):
    # Default epoch is 0.005: the outage lives and dies entirely inside
    # one epoch window.  The revival must not be skipped or deadlock.
    world, records, debits = run_with(
        backend, lambda w: w.kill_shard(1, at=0.0511, restart_at=0.0512))
    assert world.shard_alive(1)
    for record in records:
        assert record.status is AgentStatus.FINISHED, record.failure
    assert sum(debits.values()) == 120
    assert world.ledger_quorum_agrees()


def test_kill_shard_zero_with_restart(backend):
    # Shard 0 hosts every tour's launch node; killing it mid-run tests
    # the coordinator-adjacent path (launch records, first claims).
    world, records, debits = run_with(
        backend, lambda w: w.kill_shard(0, at=0.06, restart_at=2.0))
    for record in records:
        assert record.status is AgentStatus.FINISHED, record.failure
    assert sum(debits.values()) == 120
    assert world.ledger_quorum_agrees()


def test_double_kill_of_a_dead_shard_is_inert(backend):
    # The second kill event is queued into an already-frozen kernel; it
    # must neither fire nor wedge the run, and the shard stays dead.
    def configure(world):
        world.kill_shard(1, at=0.04)
        world.kill_shard(1, at=0.06)

    world, records, debits = run_with(backend, configure)
    assert not world.shard_alive(1)
    for record in records:
        assert record.status is AgentStatus.FINISHED, record.failure
    assert sum(debits.values()) == 120
    assert world.ledger_quorum_agrees()


def test_rekill_after_restart(backend):
    # Restarted at 0.5, killed again at 0.9 — the second outage is
    # permanent.  Work must still complete exactly once via alternates.
    def configure(world):
        world.kill_shard(1, at=0.04, restart_at=0.5)
        world.kill_shard(1, at=0.9)

    world, records, debits = run_with(backend, configure)
    assert not world.shard_alive(1)
    for record in records:
        assert record.status is AgentStatus.FINISHED, record.failure
    assert sum(debits.values()) == 120
    assert world.ledger_quorum_agrees()


def test_kill_validation_is_identical(backend):
    world = build_ft_ring(backend, seed=0)
    if isinstance(world, ProcShardedWorld):
        _OPENED.append(world)
    with pytest.raises(UsageError):
        world.kill_shard(9, at=0.1)
    with pytest.raises(UsageError):
        world.kill_shard(1, at=-0.5)
    with pytest.raises(UsageError):
        world.kill_shard(1, at=0.2, restart_at=0.1)


def test_edge_outcomes_match_across_backends(backend):
    """The same edge schedule produces identical outcomes and effect
    placement on both backends (each backend compared against a cached
    reference run of the other is covered by the differential harness;
    here we pin the trickiest schedule: kill 1, restart, re-kill)."""
    if backend == "proc":
        pytest.skip("cross-backend comparison runs once, from 'sharded'")

    def configure(world):
        world.kill_shard(1, at=0.04, restart_at=0.5)
        world.kill_shard(1, at=0.9)

    results = {}
    for b in ("sharded", "proc"):
        world, records, debits = run_with(b, configure)
        results[b] = (world.outcomes(), debits, world.counters())
    assert results["sharded"] == results["proc"]
