"""Tests: itinerary DSL, log inspector / cost prediction, stats."""

import pytest

from repro import AgentStatus, RollbackMode, SubItinerary
from repro.bench import make_tour_plan
from repro.bench.stats import percentile, summarize
from repro.bench.workloads import TourAgent
from repro.core.inspector import format_log, predict_rollback
from repro.errors import ItineraryError, UsageError
from repro.itinerary.builder import format_itinerary, parse_itinerary



# -- DSL ------------------------------------------------------------------------

def test_parse_paper_figure6_shape():
    text = ("I{ SI1{ s1/n0, s2/n1, s3/n2 },"
            "   SI3{ s6/n0, SI4{ s5/n1, s4/n2 }, SI5{ s9/n0, s10/n1 } } }")
    itinerary = parse_itinerary(text)
    assert len(itinerary.entries) == 2
    si3 = itinerary.entries[1]
    assert si3.name == "SI3"
    assert isinstance(si3.entries[1], SubItinerary)
    assert si3.entries[1].name == "SI4"
    assert si3.entries[1].entries[0].method == "s5"


def test_parse_round_trip():
    text = "I{ a{ x/n0, b|{ y/n1 ?maybe, z/n2 } }, c{ w/n0 } }"
    itinerary = parse_itinerary(text)
    rendered = format_itinerary(itinerary)
    assert parse_itinerary(rendered) is not None
    # Round-trip is stable.
    assert format_itinerary(parse_itinerary(rendered)) == rendered
    inner = itinerary.entries[0].entries[1]
    assert inner.order == "any"
    assert inner.entries[0].precondition == "maybe"


def test_parse_rejects_bad_input():
    with pytest.raises(ItineraryError):
        parse_itinerary("X{ a{ s/n } }")
    with pytest.raises(ItineraryError):
        parse_itinerary("I{ s/n }")  # step in main itinerary
    with pytest.raises(ItineraryError):
        parse_itinerary("I{ a{ s/n }")  # unbalanced
    with pytest.raises(ItineraryError):
        parse_itinerary("I{ a{ } }")  # empty sub
    with pytest.raises(ItineraryError):
        parse_itinerary("I{ a{ s/n } } trailing{}")


# -- inspector / prediction ------------------------------------------------------

def make_logged_world(mixed_fraction):
    nodes = [f"n{i}" for i in range(5)]
    plan = make_tour_plan(nodes, 7, mixed_fraction=mixed_fraction,
                          ace_fraction=0.2 if mixed_fraction < 0.9 else 0.0,
                          rollback_depth=6)
    return plan, nodes


@pytest.mark.parametrize("mode", [RollbackMode.BASIC,
                                  RollbackMode.OPTIMIZED])
@pytest.mark.parametrize("mixed", [0.0, 0.5, 1.0])
def test_prediction_matches_measurement(mode, mixed):
    """predict_rollback == what the drivers actually do."""
    plan, nodes = make_logged_world(mixed)
    # Build the log by running the forward tour only (rollback_times=0
    # keeps the decision step from rolling back), then predict, then
    # run the same tour with the rollback enabled and compare.
    from repro.bench.harness import build_tour_world
    from repro.bench.workloads import TourPlan

    forward = TourPlan(steps=plan.steps, decision_node=plan.decision_node,
                       rollback_to=plan.rollback_to, rollback_times=0)
    world = build_tour_world(5, seed=31)
    agent = TourAgent(f"predict-{mode.value}-{mixed}", forward)
    record = world.launch(agent, at=plan.steps[0].node, method="run",
                          mode=mode)
    world.run(max_events=1_000_000)
    assert record.status is AgentStatus.FINISHED
    # Reconstruct the final log from the finished agent... the log is
    # dropped at finish; instead capture it right before the decision:
    # simpler: build the same log through a fresh world run that stops
    # at the decision node. We take the log from the compensation-free
    # run's LAST migrated package via a probe world.
    probe_world = build_tour_world(5, seed=31)
    probe_agent = TourAgent(f"probe-{mode.value}-{mixed}", plan)
    probe_record = probe_world.launch(probe_agent,
                                      at=plan.steps[0].node, method="run",
                                      mode=mode)
    captured = {}

    original = probe_world.rollback_driver(mode).start_rollback

    def spy(node, item, sp_id):
        agent_copy, log_copy = item.payload.unpack()
        captured["log"] = log_copy
        captured["node"] = node.name
        original(node, item, sp_id)

    probe_world.rollback_driver(mode).start_rollback = spy
    probe_world.run(max_events=1_000_000)
    assert probe_record.status is AgentStatus.FINISHED
    prediction = predict_rollback(captured["log"], plan.rollback_to,
                                  captured["node"], mode)
    measured_transfers = probe_world.metrics.count(
        "agent.transfers.compensation")
    measured_comp_txs = probe_world.metrics.count(
        "compensation.tx_committed")
    measured_ships = probe_world.metrics.count("net.messages.rce-list")
    assert prediction.compensation_txs == measured_comp_txs
    assert prediction.agent_transfers == measured_transfers
    if mode is RollbackMode.OPTIMIZED:
        assert prediction.rce_ships == measured_ships


def test_format_log_renders_every_entry_kind():
    plan, _ = make_logged_world(0.5)
    from repro.bench.harness import build_tour_world

    world = build_tour_world(5, seed=32)
    agent = TourAgent("render", plan)
    world.launch(agent, at=plan.steps[0].node, method="run")
    captured = {}
    original = world.rollback_driver(RollbackMode.BASIC).start_rollback

    def spy(node, item, sp_id):
        _, log = item.payload.unpack()
        captured["log"] = log
        original(node, item, sp_id)

    world.rollback_driver(RollbackMode.BASIC).start_rollback = spy
    world.run(max_events=1_000_000)
    text = format_log(captured["log"])
    assert "SP" in text and "BOS" in text and "EOS" in text
    assert "[RCE]" in text and "[MCE]" in text
    assert "(mixed)" in text


def test_predict_rejects_unknown_savepoint():
    from repro.log.rollback_log import RollbackLog
    with pytest.raises(UsageError):
        predict_rollback(RollbackLog(), "nope", "n0", RollbackMode.BASIC)


# -- stats -------------------------------------------------------------------------

def test_percentile_interpolation():
    values = [1, 2, 3, 4]
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 4
    assert percentile(values, 50) == 2.5


def test_percentile_rejects_bad_input():
    with pytest.raises(UsageError):
        percentile([], 50)
    with pytest.raises(UsageError):
        percentile([1], 101)


def test_summarize_basic_properties():
    summary = summarize([10.0, 12.0, 14.0, 16.0])
    assert summary.n == 4
    assert summary.mean == 13.0
    assert summary.minimum == 10.0 and summary.maximum == 16.0
    assert summary.ci95_half_width > 0
    assert "mean=13" in summary.format("ms")


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.stdev == 0.0
    assert summary.ci95_half_width == 0.0
