"""Tests: the multiprocess shard-worker driver (facade + machinery).

The contract under test (see :mod:`repro.node.procshard`):

* **backend equivalence** — the same seeded workload produces
  byte-identical results on ``ShardedWorld`` and ``ProcShardedWorld``:
  outcomes, aggregate counters, epoch count, event count, and the
  kernel event-stream digests;
* **facade parity** — construction-time dispatch via
  ``ShardedWorld(workers="process")``, argument validation, record
  identity across ``run`` calls;
* **failure surfacing** — a worker-side error arrives as
  :class:`~repro.errors.WorkerError` with the remote traceback; a
  hard worker-process death (SIGKILL) as
  :class:`~repro.errors.WorkerDied`, never a hang;
* **picklability contract** — unpicklable agents/resources are
  rejected at ship time with a message naming the offending attribute;
* **lazy hydration across the pipe** — entry frames stay lazily
  hydrated after crossing the process boundary (the per-worker STATS
  counters match the in-process run's).
"""

import os
import signal

import pytest

from repro import AgentStatus, ProcShardedWorld, ShardedWorld
from repro.errors import UsageError, WorkerDied, WorkerError
from repro.resources.bank import Bank, OverdraftPolicy

from tests.helpers import LinearAgent

N_NODES = 8
RING = [f"n{i}" for i in range(N_NODES)]


@pytest.fixture
def proc_worlds():
    """Track ProcShardedWorlds and close them even on assertion failure."""
    opened = []

    def make(*args, **kwargs):
        world = ProcShardedWorld(*args, **kwargs)
        opened.append(world)
        return world

    yield make
    for world in opened:
        world.close()


def build(world):
    for i in range(N_NODES):
        node = world.add_node(f"n{i}")
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    return world


def run_swarm(world, n_agents=6):
    world.enable_trace_digest()
    for a in range(n_agents):
        rotated = RING[a % N_NODES:] + RING[:a % N_NODES]
        agent = LinearAgent(f"ag-{a}", rotated[:5],
                            savepoints={0: "sp"}, rollback_to="sp")
        world.launch(agent, at=rotated[0], method="step")
    world.run()
    return world


# -- backend equivalence ---------------------------------------------------------


def test_process_swarm_matches_in_process_bit_for_bit(proc_worlds):
    inproc = run_swarm(build(ShardedWorld(n_shards=2, seed=7)))
    proc = run_swarm(build(proc_worlds(n_shards=2, seed=7)))
    assert proc.outcomes() == inproc.outcomes()
    assert proc.counters() == inproc.counters()
    assert proc.epochs_run == inproc.epochs_run
    assert proc.events_processed() == inproc.events_processed()
    # The strongest check: every worker kernel fired the exact same
    # (time, label) event stream as its in-process twin.
    assert proc.trace_digests() == inproc.trace_digests()
    assert all(o["status"] == "finished" for o in proc.outcomes().values())


def test_process_runs_are_deterministic(proc_worlds):
    first = run_swarm(build(proc_worlds(n_shards=2, seed=7)))
    second = run_swarm(build(proc_worlds(n_shards=2, seed=7)))
    assert first.outcomes() == second.outcomes()
    assert first.counters() == second.counters()
    assert first.trace_digests() == second.trace_digests()


def test_forced_serial_lockstep_matches_parallel(proc_worlds):
    parallel = run_swarm(build(proc_worlds(n_shards=2, seed=7,
                                           lockstep="parallel")))
    serial = run_swarm(build(proc_worlds(n_shards=2, seed=7,
                                         lockstep="serial")))
    assert serial.outcomes() == parallel.outcomes()
    assert serial.trace_digests() == parallel.trace_digests()


def test_pipe_and_shm_wire_formats_are_bit_identical(proc_worlds):
    shm = run_swarm(build(proc_worlds(n_shards=2, seed=7, ipc="shm")))
    pipe = run_swarm(build(proc_worlds(n_shards=2, seed=7, ipc="pipe")))
    assert shm.ipc == "shm" and pipe.ipc == "pipe"
    assert shm.outcomes() == pipe.outcomes()
    assert shm.counters() == pipe.counters()
    assert shm.epochs_run == pipe.epochs_run
    assert shm.trace_digests() == pipe.trace_digests()


def test_tiny_ring_wraps_and_spills_without_changing_results(proc_worlds):
    from repro.storage import serialization

    reference = run_swarm(build(proc_worlds(n_shards=2, seed=7)))
    serialization.reset_stats()
    # A ring far smaller than one barrier's traffic: every batch wraps,
    # and agent-blob frames overflow the budget and spill to the pipe.
    tiny = run_swarm(build(proc_worlds(n_shards=2, seed=7,
                                       ring_size=2048)))
    assert tiny.ipc == "shm"
    assert tiny.outcomes() == reference.outcomes()
    assert tiny.trace_digests() == reference.trace_digests()
    stats = tiny.serialization_stats()
    assert stats["ring_spills"] > 0
    assert stats["ipc_bytes_copied"] > 0  # the spilled bytes
    assert stats["frame_reused"] > 0  # small frames still ride the ring


def test_shm_barrier_copies_no_cached_bytes(proc_worlds):
    from repro.storage import serialization

    serialization.reset_stats()
    world = run_swarm(build(proc_worlds(n_shards=2, seed=7)))
    stats = world.serialization_stats()
    # The zero-copy claim: with rings sized for the traffic, every bulk
    # blob crosses as a reused frame and nothing is re-serialised at
    # the IPC boundary.
    assert stats["ipc_bytes_copied"] == 0
    assert stats["ring_spills"] == 0
    assert stats["ipc_bytes_framed"] > 0
    assert stats["frame_reused"] > 0
    # The pipe still carries the control manifests.
    assert stats["ipc_bytes_control"] > 0


def test_ipc_validation(proc_worlds):
    with pytest.raises(UsageError):
        ProcShardedWorld(n_shards=2, ipc="sockets")
    with pytest.raises(UsageError):
        ProcShardedWorld(n_shards=2, ring_size=8)


# -- facade parity ----------------------------------------------------------------


def test_workers_kwarg_dispatches_to_process_driver(proc_worlds):
    world = ShardedWorld(n_shards=2, seed=0, workers="process")
    try:
        assert isinstance(world, ProcShardedWorld)
    finally:
        world.close()
    assert isinstance(ShardedWorld(n_shards=2, seed=0), ShardedWorld)
    with pytest.raises(UsageError):
        ShardedWorld(n_shards=2, workers="threads")


def test_validation_mirrors_in_process_facade(proc_worlds):
    with pytest.raises(UsageError):
        ProcShardedWorld(n_shards=0)
    world = proc_worlds(n_shards=2, seed=0)
    world.add_node("x", shard=1)
    assert world.shard_of("x") == 1
    with pytest.raises(UsageError):
        world.add_node("x")
    with pytest.raises(UsageError):
        world.add_node("y", shard=5)
    with pytest.raises(UsageError):
        world.shard_of("nope")
    with pytest.raises(UsageError):
        world.kill_shard(7, at=0.1)
    with pytest.raises(UsageError):
        world.kill_shard(1, at=0.2, restart_at=0.2)
    with pytest.raises(UsageError):
        world.record_of("ghost")


def test_launch_record_stays_live_across_runs(proc_worlds):
    world = build(proc_worlds(n_shards=2, seed=3))
    agent = LinearAgent("capped", RING[:4])
    record = world.launch(agent, at="n0", method="step")
    world.run(until=0.02)
    assert record.status is AgentStatus.RUNNING
    world.run()
    # The object returned by launch() was merged in place at barriers.
    assert record.status is AgentStatus.FINISHED
    assert record is world.record_of("capped")
    assert record.steps_committed == 5


def test_resource_state_returns_worker_side_snapshot(proc_worlds):
    world = run_swarm(build(proc_worlds(n_shards=2, seed=7)))
    bank = world.resource_state("n0", "bank")
    total = bank.peek("a")["balance"] + bank.peek("b")["balance"]
    assert total == 2_000  # transfers conserve money
    # NodeProxy offers the same read.
    assert world.node("n0").get_resource("bank").peek("a") == bank.peek("a")


# -- failure surfacing -------------------------------------------------------------


def test_worker_side_error_surfaces_with_remote_traceback(proc_worlds):
    world = build(proc_worlds(n_shards=2, seed=0))
    bank = Bank("bank")
    with pytest.raises(WorkerError) as excinfo:
        world.node("n0").add_resource(bank)  # duplicate resource name
    assert "UsageError" in str(excinfo.value)
    assert "worker traceback" in str(excinfo.value)
    assert excinfo.value.shard == 0


def test_sigkilled_worker_surfaces_as_shard_outage_not_hang(proc_worlds):
    world = build(proc_worlds(n_shards=2, seed=3))
    agent = LinearAgent("doomed", RING[:4])
    world.launch(agent, at="n0", method="step")
    world.run(until=0.02)
    victim = world._handles[1].process
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)
    with pytest.raises(WorkerDied) as excinfo:
        world.run()
    assert excinfo.value.shard == 1
    assert "outage" in str(excinfo.value)
    # The surviving worker's pipe stays request/reply-aligned: the
    # facade remains inspectable after the outage surfaced.
    metrics = world.shard_metrics(0)
    assert metrics.count("steps.committed") >= 1
    world.close()  # close after a dead worker must not raise


# -- picklability contract ---------------------------------------------------------


def test_unpicklable_agent_rejected_with_named_attribute(proc_worlds):
    world = build(proc_worlds(n_shards=2, seed=0))
    agent = LinearAgent("closure-smuggler", RING[:2])
    agent.callback = lambda: None  # the contract violation
    with pytest.raises(TypeError) as excinfo:
        world.launch(agent, at="n0", method="step")
    message = str(excinfo.value)
    assert "closure-smuggler" in message
    assert ".callback" in message
    assert "process-picklable" in message


def test_unpicklable_resource_rejected_with_named_attribute(proc_worlds):
    world = proc_worlds(n_shards=2, seed=0)
    node = world.add_node("solo")
    bank = Bank("bank")
    bank.on_overdraft = lambda account: None
    with pytest.raises(TypeError) as excinfo:
        node.add_resource(bank)
    assert ".on_overdraft" in str(excinfo.value)


def test_cross_process_resource_sharing_is_rejected(proc_worlds):
    world = proc_worlds(n_shards=2, seed=0)
    world.add_node("a0", shard=0)
    proxy = world.add_node("b0", shard=1)
    with pytest.raises(UsageError):
        proxy.share_resource_from("a0", "bank")


# -- lazy hydration across the process boundary ------------------------------------


def test_entry_frames_stay_lazy_across_the_pipe(proc_worlds):
    from repro.storage import serialization

    serialization.reset_stats()
    inproc = run_swarm(build(ShardedWorld(n_shards=2, seed=7)))
    inproc_stats = inproc.serialization_stats()
    proc = run_swarm(build(proc_worlds(n_shards=2, seed=7)))
    proc_stats = proc.serialization_stats()
    # Workers defer exactly as many entry hydrations as the in-process
    # run: crossing the pipe adopts frames without unpickling them.
    assert proc_stats["entry_hydration_deferred"] == \
        inproc_stats["entry_hydration_deferred"]
    assert proc_stats["entry_hydrated"] == inproc_stats["entry_hydrated"]
    assert proc_stats["entry_hydration_deferred"] > 0
    # The lazy win survives the boundary: most adopted frames are never
    # unpickled (steps hydrate none; only the rollback touches a tail).
    assert proc_stats["entry_hydrated"] < \
        proc_stats["entry_hydration_deferred"]
    # And every worker individually deferred work.
    for shard in range(2):
        assert proc.shard_serialization_stats(shard)[
            "entry_hydration_deferred"] > 0
