"""Shared fixtures: isolate process-global state so test order is moot.

Several subsystems hand out ids from module-level counters (queue
items, fault-tolerance work units, savepoints) and register
compensating operations in a process-global registry.  Without a reset
between tests, outcomes could depend on how many tests ran before —
ids embedded in pickled entries would change sizes, and registrations
made inside one test would leak into the next.
"""

from __future__ import annotations

import pytest

from repro.agent import packages
from repro.compensation.registry import GLOBAL_REGISTRY
from repro.log import entries
from repro.storage import queues, serialization


@pytest.fixture(autouse=True)
def _reset_process_globals():
    """Reset global counters and scope registry changes to each test.

    Import-time registrations (tests/helpers.py, test modules) are part
    of the snapshot taken here and therefore survive; registrations
    performed *inside* a test body are rolled back afterwards.
    """
    packages.reset_work_ids()
    queues.reset_item_ids()
    entries.reset_savepoint_ids()
    serialization.reset_stats()
    registered = GLOBAL_REGISTRY.snapshot_ops()
    yield
    GLOBAL_REGISTRY.restore_ops(registered)
