"""Unit tests: transactions, locks, commit coordinator."""

import pytest

from repro.errors import LockConflict, TransactionAborted, UsageError
from repro.sim.metrics import Metrics
from repro.sim.timing import NetworkParams, TimingModel
from repro.tx.coordinator import CommitCoordinator
from repro.tx.locks import LockManager
from repro.tx.manager import Transaction, TransactionManager, TxState


def test_undo_runs_in_reverse_order_on_abort():
    t = Transaction("test", "n1")
    order = []
    t.register_undo(lambda: order.append(1))
    t.register_undo(lambda: order.append(2))
    t.abort()
    assert order == [2, 1]
    assert t.state is TxState.ABORTED


def test_commit_actions_run_on_commit_not_abort():
    t = Transaction("test", "n1")
    fired = []
    t.register_commit(lambda: fired.append("yes"))
    t.commit()
    assert fired == ["yes"]

    t2 = Transaction("test", "n1")
    t2.register_commit(lambda: fired.append("no"))
    t2.abort()
    assert fired == ["yes"]


def test_abort_is_idempotent_commit_after_abort_fails():
    t = Transaction("test", "n1")
    t.abort()
    t.abort()
    with pytest.raises(TransactionAborted):
        t.commit()


def test_register_after_finish_rejected():
    t = Transaction("test", "n1")
    t.commit()
    with pytest.raises(TransactionAborted):
        t.register_undo(lambda: None)


def test_charge_accumulates_and_rejects_negative():
    t = Transaction("test", "n1")
    t.charge(0.1)
    t.charge(0.2)
    assert t.cost == pytest.approx(0.3)
    with pytest.raises(UsageError):
        t.charge(-1)


def test_manager_tracks_active_and_aborts_all_on_crash():
    manager = TransactionManager("n1")
    t1 = manager.begin("step")
    t2 = manager.begin("step")
    undone = []
    t1.register_undo(lambda: undone.append(1))
    t2.register_undo(lambda: undone.append(2))
    assert manager.abort_all() == 2
    assert sorted(undone) == [1, 2]
    assert not manager.active


# -- locks -----------------------------------------------------------------------

def test_lock_conflict_raises_and_counts():
    locks = LockManager("bank")
    t1 = Transaction("a", "n1")
    t2 = Transaction("b", "n1")
    locks.acquire("acct", t1)
    with pytest.raises(LockConflict):
        locks.acquire("acct", t2)
    assert locks.conflicts == 1


def test_lock_reentrant_for_holder():
    locks = LockManager("bank")
    t = Transaction("a", "n1")
    locks.acquire("acct", t)
    locks.acquire("acct", t)  # no raise
    assert locks.holder_of("acct") is t


def test_locks_released_on_commit_and_abort():
    locks = LockManager("bank")
    t1 = Transaction("a", "n1")
    locks.acquire("x", t1)
    locks.acquire("y", t1)
    t1.commit()
    t2 = Transaction("b", "n1")
    locks.acquire("x", t2)
    locks.acquire("y", t2)
    t2.abort()
    t3 = Transaction("c", "n1")
    locks.acquire("x", t3)


def test_stale_finished_holder_does_not_block():
    locks = LockManager("bank")
    t1 = Transaction("a", "n1")
    # Acquire without going through note_lock release (simulates a
    # holder that finished without cleanup).
    locks._holders["acct"] = t1
    t1.abort()
    t2 = Transaction("b", "n1")
    locks.acquire("acct", t2)
    assert locks.holder_of("acct") is t2


# -- coordinator ------------------------------------------------------------------

def make_coordinator(reachable_pairs):
    return CommitCoordinator(
        TimingModel(), NetworkParams(),
        lambda a, b: (a, b) in reachable_pairs, Metrics())


def test_local_tx_commits():
    coordinator = make_coordinator(set())
    t = Transaction("step", "n1")
    assert coordinator.try_commit(t)
    assert t.state is TxState.COMMITTED


def test_remote_participant_reachable_commits():
    coordinator = make_coordinator({("n1", "n2")})
    t = Transaction("step", "n1")
    t.add_participant("n2")
    assert coordinator.try_commit(t)


def test_remote_participant_unreachable_aborts_with_undo():
    coordinator = make_coordinator(set())
    t = Transaction("step", "n1")
    t.add_participant("n2")
    undone = []
    t.register_undo(lambda: undone.append(1))
    assert not coordinator.try_commit(t)
    assert t.state is TxState.ABORTED
    assert undone == [1]


def test_already_aborted_tx_cannot_commit():
    coordinator = make_coordinator(set())
    t = Transaction("step", "n1")
    t.abort()
    assert not coordinator.try_commit(t)
