"""Unit tests: metrics collection and the virtual-time cost model."""

import pytest

from repro.sim.metrics import Metrics
from repro.sim.timing import DEFAULT_NETWORK, NetworkParams, TimingModel


# -- metrics ----------------------------------------------------------------

def test_counters_and_bytes_accumulate():
    metrics = Metrics()
    metrics.incr("x")
    metrics.incr("x", 4)
    metrics.add_bytes("wire", 100)
    metrics.add_bytes("wire", 50)
    assert metrics.count("x") == 5
    assert metrics.count("missing") == 0
    assert metrics.total_bytes("wire") == 150
    assert metrics.total_bytes("missing") == 0


def test_series_and_timeline():
    metrics = Metrics()
    metrics.observe("latency", 1.0, 0.5)
    metrics.observe("latency", 2.0, 0.7)
    assert metrics.series_values("latency") == [0.5, 0.7]
    metrics.record(1.5, "crash", node="n1")
    metrics.record(1.6, "recover", node="n1")
    assert len(metrics.events()) == 2
    assert len(metrics.events("crash")) == 1
    assert metrics.events("crash")[0][2] == {"node": "n1"}


def test_timeline_can_be_disabled():
    metrics = Metrics()
    metrics.timeline_enabled = False
    metrics.record(1.0, "crash")
    assert metrics.events() == []


def test_summary_flattens_counters_and_bytes():
    metrics = Metrics()
    metrics.incr("a")
    metrics.add_bytes("b", 10)
    summary = metrics.summary()
    assert summary == {"a": 1, "bytes.b": 10}


def test_reset_clears_everything():
    metrics = Metrics()
    metrics.incr("a")
    metrics.add_bytes("b", 1)
    metrics.observe("s", 0.0, 1.0)
    metrics.record(0.0, "e")
    metrics.reset()
    assert metrics.summary() == {}
    assert metrics.events() == []
    assert metrics.series_values("s") == []


# -- timing model ---------------------------------------------------------------

def test_stable_io_costs_scale_with_size():
    timing = TimingModel()
    assert timing.stable_write(100_000) > timing.stable_write(100)
    assert timing.stable_read(100_000) > timing.stable_read(100)
    assert timing.stable_write(0) == timing.stable_io_fixed


def test_serialize_cost_proportional():
    timing = TimingModel()
    assert timing.serialize(2_048) == pytest.approx(
        2 * timing.serialize(1_024))


def test_scaled_multiplies_every_field():
    timing = TimingModel()
    doubled = timing.scaled(2.0)
    assert doubled.resource_op == pytest.approx(2 * timing.resource_op)
    assert doubled.two_pc_round == pytest.approx(2 * timing.two_pc_round)
    assert doubled.stable_write(1_000) == pytest.approx(
        2 * timing.stable_write(1_000))


def test_network_transfer_time_components():
    params = NetworkParams(latency=0.01, bandwidth_bytes_per_s=1_000.0)
    # 1000 bytes at 1000 B/s = 1s serialisation + 10ms latency.
    assert params.transfer_time(1_000) == pytest.approx(1.01)
    assert DEFAULT_NETWORK.transfer_time(0) == DEFAULT_NETWORK.latency


def test_timing_model_is_immutable():
    timing = TimingModel()
    with pytest.raises(Exception):
        timing.resource_op = 99.0  # frozen dataclass
