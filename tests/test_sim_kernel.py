"""Unit tests: discrete-event kernel."""

import pytest

from repro.errors import UsageError
from repro.sim.kernel import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(0.3, lambda: seen.append("c"))
    sim.schedule(0.1, lambda: seen.append("a"))
    sim.schedule(0.2, lambda: seen.append("b"))
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == pytest.approx(0.3)


def test_same_time_priority_then_fifo():
    sim = Simulator()
    seen = []
    sim.schedule(0.1, lambda: seen.append("normal-1"))
    sim.schedule(0.1, lambda: seen.append("high"), priority=-10)
    sim.schedule(0.1, lambda: seen.append("normal-2"))
    sim.run()
    assert seen == ["high", "normal-1", "normal-2"]


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.schedule(0.5, lambda: seen.append(("second", sim.now)))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [("first", 1.0), ("second", 1.5)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(0.1, lambda: seen.append("x"))
    event.cancel()
    sim.run()
    assert seen == []
    assert sim.pending() == 0


def test_run_until_stops_the_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append("early"))
    sim.schedule(5.0, lambda: seen.append("late"))
    sim.run(until=2.0)
    assert seen == ["early"]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert seen == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(UsageError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule_at(3.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [3.0]


def test_max_events_guards_livelock():
    sim = Simulator()

    def loop():
        sim.schedule(0.001, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(UsageError, match="livelock"):
        sim.run(max_events=100)


def test_determinism_same_seed_same_draws():
    a = Simulator(seed=5)
    b = Simulator(seed=5)
    assert [a.rng.random() for _ in range(5)] == \
        [b.rng.random() for _ in range(5)]


def test_forked_rngs_are_independent_streams():
    sim = Simulator(seed=5)
    r1 = sim.fork_rng("one")
    r2 = sim.fork_rng("two")
    r1_again = Simulator(seed=5).fork_rng("one")
    assert [r1.random() for _ in range(3)] == \
        [r1_again.random() for _ in range(3)]
    assert r1.random() != r2.random()


def test_simulator_not_reentrant():
    sim = Simulator()

    def inner():
        with pytest.raises(UsageError):
            sim.run()

    sim.schedule(0.1, inner)
    sim.run()


# -- epoch / barrier hooks (sharded execution) --------------------------------


def test_peek_time_returns_next_live_event():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    assert sim.peek_time() == 1.0
    sim.run()
    assert sim.peek_time() is None


def test_peek_time_skips_cancelled_events_even_off_heap_order():
    # A cancelled event at the heap root must not mask a later-inserted
    # but earlier-firing live event: [cancelled@1, 10, 3] is a valid
    # heap whose array order does not expose 3 before 10.
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(10.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 3.0


def test_run_epoch_advances_exactly_to_the_barrier():
    sim = Simulator()
    fired = []
    sim.schedule(0.004, lambda: fired.append("a"))
    sim.schedule(0.010, lambda: sim.schedule(0.0, lambda: fired.append("c")))
    sim.schedule(0.010, lambda: fired.append("b"))
    assert sim.run_epoch(0.005) == 1
    assert sim.now == 0.005 and fired == ["a"]
    # Events exactly at the barrier fire in that epoch, including
    # zero-delay follow-ups they schedule.
    assert sim.run_epoch(0.010) == 3
    assert fired == ["a", "b", "c"] or fired == ["a", "c", "b"]
    with pytest.raises(UsageError):
        sim.run_epoch(0.001)  # barrier in the past
