"""Tests: tracer/diagnostics and network-layer behaviours."""


from repro import AgentStatus, RollbackMode
from repro.sim.failures import CrashPlan
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.failures import FailureInjector
from repro.sim.timing import NetworkParams
from repro.net.network import Network
from repro.sim.trace import describe_world, render_timeline, timeline_rows

from tests.helpers import LinearAgent, build_line_world


# -- tracer ---------------------------------------------------------------------

def run_scenario():
    world = build_line_world(3)
    world.failures.apply_plan([CrashPlan("n1", at=0.05, duration=0.2)])
    agent = LinearAgent("traced", ["n0", "n1", "n2"],
                        savepoints={0: "sp"}, rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    return world


def test_render_timeline_contains_protocol_events():
    world = run_scenario()
    text = render_timeline(world)
    assert "node crashed" in text
    assert "node recovered" in text
    assert "rollback initiated" in text
    assert "rollback completed" in text
    assert "agent finished" in text


def test_render_timeline_filter_and_limit():
    world = run_scenario()
    only_rollback = render_timeline(world, kinds=["rollback-completed"])
    assert "rollback completed" in only_rollback
    assert "crashed" not in only_rollback
    assert len(render_timeline(world, limit=2).splitlines()) == 2


def test_timeline_rows_are_flat_dicts():
    world = run_scenario()
    rows = timeline_rows(world)
    assert all("time" in row and "kind" in row for row in rows)
    kinds = {row["kind"] for row in rows}
    assert "rollback-initiated" in kinds


def test_describe_world_snapshot():
    world = run_scenario()
    text = describe_world(world)
    assert "n0" in text and "n1" in text and "n2" in text
    assert "traced" in text
    assert "finished" in text
    assert "steps.committed" in text


def test_describe_world_shows_queued_packages_and_down_nodes():
    world = build_line_world(2)
    world.failures.force_crash("n1")
    agent = LinearAgent("stuck", ["n0", "n1"])
    world.launch(agent, at="n0", method="step")
    world.run(until=1.0)
    text = describe_world(world)
    assert "DOWN" in text
    assert "running" in text


# -- network ---------------------------------------------------------------------

def make_net(jitter=0.0):
    sim = Simulator(seed=3)
    failures = FailureInjector(sim)
    metrics = Metrics()
    net = Network(sim, failures,
                  NetworkParams(jitter=jitter, retry_backoff=0.05),
                  metrics)
    return sim, failures, metrics, net


def test_send_delivers_and_counts_bytes():
    sim, _failures, metrics, net = make_net()
    got = []
    net.register("b", lambda msg: got.append(msg.payload))
    net.send("a", "b", "test", {"x": 1}, 500)
    sim.run()
    assert got == [{"x": 1}]
    assert metrics.count("net.messages.test") == 1
    assert metrics.total_bytes("net.test") == 500


def test_send_retries_until_destination_recovers():
    sim, failures, metrics, net = make_net()
    got = []
    net.register("b", lambda msg: got.append(sim.now))
    failures.force_crash("b")
    sim.schedule(0.5, lambda: failures.force_recover("b"))
    net.send("a", "b", "test", "hi", 100)
    sim.run()
    assert len(got) == 1
    assert got[0] > 0.5
    assert metrics.count("net.retries") >= 1


def test_send_retries_when_destination_dies_in_flight():
    sim, failures, metrics, net = make_net()
    got = []
    net.register("b", lambda msg: got.append(sim.now))
    # Crash b while the (large => slow) message is in the air.
    sim.schedule(0.005, lambda: failures.force_crash("b"))
    sim.schedule(1.0, lambda: failures.force_recover("b"))
    net.send("a", "b", "big", "payload", 5_000_000)  # ~4s transfer
    sim.run()
    assert len(got) == 1


def test_partitioned_link_blocks_and_heals():
    sim, failures, metrics, net = make_net()
    got = []
    net.register("b", lambda msg: got.append(sim.now))
    failures.force_partition("a", "b")
    sim.schedule(0.3, lambda: failures.force_heal("a", "b"))
    net.send("a", "b", "test", "hi", 10)
    sim.run()
    assert len(got) == 1 and got[0] > 0.3


def test_transfer_time_scales_with_size_and_jitter_bounded():
    _sim, _failures, _metrics, net = make_net(jitter=0.5)
    small = net.transfer_time(100)
    big = net.transfer_time(1_000_000)
    assert big > small
    base = NetworkParams().transfer_time(100)
    for _ in range(20):
        t = net.transfer_time(100)
        assert base <= t <= base * 1.5 + 1e-9


def test_on_delivered_callback_fires_after_handler():
    sim, _failures, _metrics, net = make_net()
    order = []
    net.register("b", lambda msg: order.append("handler"))
    net.send("a", "b", "test", "x", 10,
             on_delivered=lambda msg: order.append("callback"))
    sim.run()
    assert order == ["handler", "callback"]
