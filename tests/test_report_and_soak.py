"""Tests: report assembly and a long soak scenario."""

import pathlib

import pytest

from repro import AgentStatus, RollbackMode
from repro.bench import make_tour_plan, run_tour
from repro.bench.harness import build_tour_world
from repro.bench.report import (
    assemble_report,
    load_sections,
    metrics_report,
    write_report,
)


# -- report ------------------------------------------------------------------

def test_assemble_report_from_tables(tmp_path):
    (tmp_path / "fig4_basic.txt").write_text(
        "FIG4: basic rollback\nheader | value\na | 1\n")
    (tmp_path / "zz_custom.txt").write_text("CUSTOM\nx | y\n")
    report = assemble_report(tmp_path)
    assert report.startswith("# Benchmark results")
    assert "## FIG4: basic rollback" in report
    assert "## CUSTOM" in report
    # canonical section first, unknown sections after
    assert report.index("FIG4") < report.index("CUSTOM")


def test_assemble_report_empty_dir(tmp_path):
    report = assemble_report(tmp_path)
    assert "no result tables found" in report


def test_write_report_creates_file(tmp_path):
    (tmp_path / "prediction.txt").write_text("EVAL-PREDICT\nrow\n")
    out = write_report(tmp_path)
    assert out.exists()
    assert "EVAL-PREDICT" in out.read_text()


def test_load_sections_titles(tmp_path):
    (tmp_path / "a.txt").write_text("Title Line\nbody\n")
    sections = load_sections(tmp_path)
    assert sections[0].title == "Title Line"


def test_metrics_report_renders_counters():
    world = build_tour_world(2, seed=1)
    plan = make_tour_plan(["n0", "n1"], 3, rollback_depth=2)
    run_tour(plan, 2, seed=1, world=world)
    text = metrics_report(world)
    assert "| steps.committed |" in text
    assert text.startswith("| counter | value |")


def test_real_results_dir_assembles_when_present():
    results = pathlib.Path(__file__).resolve().parent.parent / \
        "benchmarks" / "results"
    if not results.exists():
        pytest.skip("benchmarks not yet run")
    report = assemble_report(results)
    assert "FIG" in report


# -- soak ----------------------------------------------------------------------

def test_soak_long_tour_with_repeated_rollbacks_and_crashes():
    """A 30-step tour, 3 full rollbacks, random outages: everything
    still lands exactly once and the books balance."""
    n_nodes = 6
    nodes = [f"n{i}" for i in range(n_nodes)]
    plan = make_tour_plan(nodes, 30, mixed_fraction=0.3, ace_fraction=0.2,
                          none_fraction=0.1, savepoint_every=5,
                          rollback_depth=12, rollback_times=3)
    world = build_tour_world(n_nodes, seed=123)
    world.failures.random_outages(nodes, horizon=60.0, rate_per_s=0.15,
                                  mean_downtime=0.2)
    result = run_tour(plan, n_nodes, mode=RollbackMode.OPTIMIZED,
                      seed=123, world=world, max_events=5_000_000)
    assert result.status is AgentStatus.FINISHED
    assert result.rollbacks == 3
    assert result.result["rolled_back"] == 3
    # Conservation: bank money + agent purse constant.
    total = sum(world.node(f"n{i}").get_resource("bank").total_balance()
                for i in range(n_nodes))
    purse = sum(result.result["purse"].values())
    assert total + purse == n_nodes * 2_000_000
    # No locks, no queue residue, no active transactions anywhere.
    for i in range(n_nodes):
        node = world.node(f"n{i}")
        assert len(node.queue) == 0
        assert node.txm.active == set()
        assert node.get_resource("bank").locks.held_count() == 0
