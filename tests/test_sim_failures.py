"""Unit tests: failure injector."""

import pytest

from repro.sim.failures import CrashPlan, FailureInjector, PartitionPlan
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


def test_planned_crash_and_recovery(sim):
    injector = FailureInjector(sim)
    injector.apply_plan([CrashPlan("n1", at=1.0, duration=2.0)])
    states = []
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, lambda: states.append(injector.node_up("n1")))
    sim.run()
    assert states == [True, False, False, True]


def test_crash_and_recover_handlers_fire(sim):
    injector = FailureInjector(sim)
    events = []
    injector.on_crash("n1", lambda: events.append(("crash", sim.now)))
    injector.on_recover("n1", lambda: events.append(("recover", sim.now)))
    injector.apply_plan([CrashPlan("n1", at=1.0, duration=0.5)])
    sim.run()
    assert events == [("crash", 1.0), ("recover", 1.5)]


def test_double_crash_is_idempotent(sim):
    injector = FailureInjector(sim)
    count = []
    injector.on_crash("n1", lambda: count.append(1))
    injector.force_crash("n1")
    injector.force_crash("n1")
    assert len(count) == 1
    injector.force_recover("n1")
    assert injector.node_up("n1")


def test_partition_blocks_link_both_ways(sim):
    injector = FailureInjector(sim)
    injector.apply_partitions([PartitionPlan("a", "b", at=1.0, duration=1.0)])
    checks = []
    sim.schedule_at(1.5, lambda: checks.append(
        (injector.link_up("a", "b"), injector.link_up("b", "a"),
         injector.link_up("a", "c"))))
    sim.schedule_at(2.5, lambda: checks.append(
        (injector.link_up("a", "b"),)))
    sim.run()
    assert checks[0] == (False, False, True)
    assert checks[1] == (True,)


def test_random_outages_respect_horizon_and_pair_recovery(sim):
    injector = FailureInjector(sim)
    plans = injector.random_outages(["n1", "n2"], horizon=10.0,
                                    rate_per_s=0.5, mean_downtime=0.2)
    for plan in plans:
        assert 0 < plan.at < 10.0
        assert plan.duration >= 0.01
    sim.run()
    # Every outage recovered: all nodes up at the end.
    assert injector.node_up("n1") and injector.node_up("n2")
    assert injector.crashes_injected == len(plans)


def test_random_outages_deterministic_per_seed():
    a = FailureInjector(Simulator(seed=3)).random_outages(
        ["x"], 10.0, 0.5, 0.2)
    b = FailureInjector(Simulator(seed=3)).random_outages(
        ["x"], 10.0, 0.5, 0.2)
    assert a == b
