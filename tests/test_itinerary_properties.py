"""Property tests: itinerary DSL round-trips and execution order."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AgentStatus, Itinerary, StepEntry, SubItinerary
from repro.itinerary.builder import format_itinerary, parse_itinerary

from tests.helpers import build_line_world
from tests.test_itinerary import Walker

NODES = ["n0", "n1", "n2"]

names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,6}", fullmatch=True)


@st.composite
def sub_itineraries(draw, depth=0):
    name = draw(names)
    order = draw(st.sampled_from(["sequence", "any"]))
    n_entries = draw(st.integers(min_value=1, max_value=3))
    entries = []
    for _ in range(n_entries):
        if depth < 2 and draw(st.booleans()) and draw(st.booleans()):
            entries.append(draw(sub_itineraries(depth=depth + 1)))
        else:
            entries.append(StepEntry(method="visit",
                                     loc=draw(st.sampled_from(NODES))))
    return SubItinerary(name=name, entries=entries, order=order)


@st.composite
def itineraries(draw):
    n_subs = draw(st.integers(min_value=1, max_value=3))
    itinerary = Itinerary()
    for _ in range(n_subs):
        itinerary.add(draw(sub_itineraries()))
    return itinerary


@given(itineraries())
@settings(max_examples=60, deadline=None)
def test_dsl_round_trip_preserves_structure(itinerary):
    text = format_itinerary(itinerary)
    parsed = parse_itinerary(text)
    assert format_itinerary(parsed) == text
    assert ([s.loc for s in parsed.walk_steps()]
            == [s.loc for s in itinerary.walk_steps()])


@given(itineraries(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_itinerary_executes_every_step_once(itinerary, seed):
    world = build_line_world(3, seed=seed)
    agent = Walker(itinerary, f"prop-walker-{seed}-{id(itinerary)}")
    record = world.launch_itinerary(agent)
    world.run(max_events=1_000_000)
    assert record.status is AgentStatus.FINISHED, record.failure
    trace_nodes = [n for _, n in record.result["trace"]]
    expected = [s.loc for s in itinerary.walk_steps()]
    # Without preconditions or rollbacks, execution visits exactly the
    # step entries; 'sequence' order follows the walk exactly, and our
    # deterministic 'any' policy (lowest ready index) does too.
    assert trace_nodes == expected
    # One log truncation per top-level sub-itinerary.
    assert (world.metrics.count("log.truncations")
            == len(itinerary.entries))
