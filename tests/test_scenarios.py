"""The scenario pack: semantic compensations + recoverability levels.

Three layers under test:

* ``RollbackLog.choose_rollback_point`` — the pure ratchet rule that
  picks the nearest savepoint above the newest unrecoverable step;
* the driver integration — a requested rollback across a ``ship`` step
  lands on the ratchet savepoint, counts ``rollback.adjusted``, and a
  rollback with *no* savepoint above the unrecoverable step fails the
  agent instead of livelocking;
* the semantic compensations themselves — refund-minus-fee and
  release-with-penalty leave their residue in the fees/penalties
  accounts and in the agent's WRO, and the model oracle agrees.
"""

import pytest

from repro import AgentStatus, MobileAgent, Recoverability, RollbackMode
from repro.errors import UsageError
from repro.fuzz import FuzzCase, check_case
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    SavepointEntry,
)
from repro.log.rollback_log import RollbackLog
from repro.scenarios import ScenarioAgent, StepSpec
from repro.fuzz.runner import build_case_world, run_case_on

from tests.helpers import build_line_world


# -- choose_rollback_point: the pure ratchet rule ---------------------------------


def build_log(*specs):
    """specs: ("sp", id) | ("step", index, recoverability)."""
    log = RollbackLog()
    for spec in specs:
        if spec[0] == "sp":
            log.append(SavepointEntry(sp_id=spec[1], mode="state",
                                      payload={}, virtual=False))
        else:
            _, index, level = spec
            log.append(BeginOfStepEntry(node="n", step_index=index))
            log.append(EndOfStepEntry(node="n", step_index=index,
                                      recoverability=level))
    return log


def test_choose_point_is_identity_without_unrecoverable_steps():
    log = build_log(("sp", "a"), ("step", 0, Recoverability.EXACT),
                    ("step", 1, Recoverability.SEMANTIC))
    assert log.choose_rollback_point("a") == "a"


def test_choose_point_ratchets_to_savepoint_above_unrecoverable():
    log = build_log(("sp", "a"), ("step", 0, Recoverability.EXACT),
                    ("step", 1, Recoverability.UNRECOVERABLE),
                    ("sp", "c"), ("step", 2, Recoverability.EXACT))
    assert log.choose_rollback_point("a") == "c"
    # Requesting the ratchet point itself is already safe.
    assert log.choose_rollback_point("c") == "c"


def test_choose_point_uses_newest_unrecoverable_step():
    log = build_log(("sp", "a"), ("step", 0, Recoverability.UNRECOVERABLE),
                    ("sp", "b"), ("step", 1, Recoverability.UNRECOVERABLE),
                    ("sp", "c"), ("step", 2, Recoverability.EXACT))
    assert log.choose_rollback_point("a") == "c"
    assert log.choose_rollback_point("b") == "c"


def test_choose_point_none_when_no_savepoint_above():
    log = build_log(("sp", "a"), ("step", 0, Recoverability.EXACT),
                    ("step", 1, Recoverability.UNRECOVERABLE))
    assert log.choose_rollback_point("a") is None


def test_choose_point_unknown_savepoint_raises():
    with pytest.raises(UsageError):
        build_log(("sp", "a")).choose_rollback_point("missing")


# -- driver integration -----------------------------------------------------------


def scenario_case(steps, *, seed=0, n_nodes=3, mode="optimized"):
    from repro.fuzz.generator import GENERATOR_VERSION, AgentPlan

    return FuzzCase(version=GENERATOR_VERSION, seed=seed, n_nodes=n_nodes,
                    n_shards=3, mode=mode, horizon=120.0,
                    agents=[AgentPlan(agent_id="ag0", steps=steps)])


def run_world(case):
    from repro.agent.packages import Protocol

    world = build_case_world(case, "world")
    for plan in case.agents:
        agent = ScenarioAgent(plan.agent_id, plan.steps)
        world.launch(agent, at=plan.steps[0].node, method="step",
                     mode=RollbackMode(case.mode),
                     protocol=Protocol.FAULT_TOLERANT)
    world.run(until=case.horizon)
    return world


RATCHET_STEPS = [
    StepSpec(op="purchase", node="n0", amount=100, savepoint=True),
    StepSpec(op="book", node="n1", amount=200, fee=20),
    StepSpec(op="ship", node="n2", amount=300),
    StepSpec(op="purchase", node="n0", amount=50),
    StepSpec(op="rollback", node="n1", target="sp0"),
]


def test_rollback_across_ship_lands_on_ratchet_savepoint():
    """sp0 is requested, but the ship at position 2 is unrecoverable:
    the driver adjusts the target to rt2 and compensates only position
    3.  The shipped money stays gone; the model oracle predicts the
    same surface."""
    case = scenario_case(RATCHET_STEPS)
    world = run_world(case)
    outcome = world.outcomes()["ag0"]
    assert outcome["status"] == "finished"
    assert outcome["result"]["undone"] == [3]
    assert world.metrics.count("rollback.adjusted") == 1
    assert any(details["requested"] == "sp0"
               and details["savepoint"] == "rt2"
               for _, _, details in world.metrics.events("rollback-adjusted"))
    assert check_case(case, backends=("world",)) == []


def test_semantic_compensations_leave_fee_and_penalty_residue():
    """Un-book and un-reserve are *semantic*: the customer gets the
    amount minus fee/penalty back, the residue lands in the fees and
    penalties accounts, and the WRO records what was lost."""
    steps = [
        StepSpec(op="book", node="n0", amount=200, fee=15, savepoint=True),
        StepSpec(op="purchase", node="n1", amount=100),
        StepSpec(op="reserve", node="n2", amount=150, penalty=10),
        StepSpec(op="rollback", node="n0", target="sp0"),
    ]
    case = scenario_case(steps)
    world = run_world(case)
    outcome = world.outcomes()["ag0"]
    assert outcome["status"] == "finished"
    result = outcome["result"]
    assert result["fees_lost"] == 0        # the booked step itself survives
    assert result["penalties_lost"] == 10  # the reserve was compensated
    assert sorted(result["undone"]) == [1, 2]
    record = run_case_on(case, "world")
    totals = {account: sum(per_node.get(account, 0)
                           for per_node in record["balances"].values())
              for account in ("fees", "penalties")}
    assert totals == {"fees": 0, "penalties": 10}
    assert world.metrics.count("compensation.semantic_steps") >= 1
    assert check_case(case, backends=("world",)) == []


class UnrescuableShipper(MobileAgent):
    """Ships (unrecoverable) without constituting any savepoint above —
    so no partial-rollback point exists and the rollback must fail the
    agent rather than spin."""

    def first(self, ctx):
        ctx.savepoint("start")
        ctx.goto("n1", "ship")

    def ship(self, ctx):
        ctx.resource("bank").deposit("a", 5)
        ctx.annotate_recoverability(Recoverability.UNRECOVERABLE)
        ctx.goto("n0", "regret")

    def regret(self, ctx):
        ctx.rollback("start")


def test_unrecoverable_without_landing_savepoint_fails_agent():
    world = build_line_world(2)
    record = world.launch(UnrescuableShipper("doomed"), at="n0",
                          method="first", mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FAILED
    assert "unrecoverable" in record.failure
    # The block was detected at initiation: nothing was compensated.
    assert world.metrics.count("compensation.tx_attempted") == 0


class BadAnnotator(MobileAgent):
    def first(self, ctx):
        try:
            ctx.annotate_recoverability("sorta-reversible")
        except UsageError as exc:
            ctx.finish({"rejected": str(exc)})


def test_annotate_recoverability_rejects_unknown_level():
    world = build_line_world(1)
    record = world.launch(BadAnnotator("picky"), at="n0", method="first",
                          mode=RollbackMode.BASIC)
    world.run(max_events=100_000)
    assert record.status is AgentStatus.FINISHED
    assert "sorta-reversible" in record.result["rejected"]


def test_old_eos_entries_default_to_exact():
    """Blobs pickled before the annotation existed restore with
    ``recoverability == "exact"``: the dataclass default doubles as the
    class attribute an old instance falls back to."""
    import pickle

    entry = EndOfStepEntry(node="n", step_index=0)
    assert pickle.loads(pickle.dumps(entry)).recoverability == \
        Recoverability.EXACT
    del entry.__dict__["recoverability"]  # simulate an old blob's state
    assert entry.recoverability == Recoverability.EXACT
