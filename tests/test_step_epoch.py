"""Tests: the reentrant step seam and live journal attach/detach.

The contract under test (PR 10's world-as-a-service plumbing):

* **step ≡ run** — on every backend, driving a world one barrier at a
  time through ``step_epoch()`` yields byte-identical results to one
  ``run()`` call: outcomes, per-node debits, trace digests;
* **drained is stable** — ``step_epoch()`` on a drained (or empty)
  world returns ``False`` and is repeatable without side effects;
* **live attach** — ``attach_journal`` on a *pristine* world captures
  a resumable journal, exactly as the constructor path would; on an
  already-populated world it records a ``live_attach`` marker and
  :func:`~repro.journal.resume.resume_world` refuses the journal
  (telemetry-only, no prefix);
* **detach** — ``detach_journal`` group-commits the tail, unhooks
  every capture hook and stops the journal from growing;
* **process backend** — the facade refuses live attach outright
  (capture is baked into the worker spawn config).
"""

import pytest

from repro.errors import UsageError
from repro.journal import MemoryJournal, WorldJournal, resume_world

from tests.helpers import (
    FT_RING,
    build_ft_ring,
    launch_ft_tours,
    ring_debits,
)


def make_empty(backend, seed):
    """A bare world (no topology yet) — the pristine-attach case."""
    from repro import Bank, FTParams, ShardedWorld, World
    from repro.resources.bank import OverdraftPolicy

    ft = FTParams(takeover_timeout=0.05)
    if backend == "world":
        world = World(seed=seed, ft_params=ft)
    else:
        world = ShardedWorld(n_shards=3, seed=seed, ft_params=ft)

    def build_ring():
        for name in FT_RING:
            node = world.add_node(name)
            bank = Bank("bank")
            bank.seed_account("a", 1_000,
                              overdraft=OverdraftPolicy.ALLOWED)
            bank.seed_account("b", 1_000,
                              overdraft=OverdraftPolicy.ALLOWED)
            node.add_resource(bank)

    return world, build_ring


def run_stepped(world, max_epochs=10_000):
    steps = 0
    while world.step_epoch():
        steps += 1
        assert steps < max_epochs, "stepped run never drained"
    return steps


@pytest.mark.parametrize("backend", ["world", "sharded", "proc"])
def test_step_epoch_matches_run(backend):
    straight = build_ft_ring(backend, seed=7)
    straight.enable_trace_digest()
    launch_ft_tours(straight)
    straight.run()

    stepped = build_ft_ring(backend, seed=7)
    stepped.enable_trace_digest()
    launch_ft_tours(stepped)
    steps = run_stepped(stepped)

    assert steps > 0
    assert stepped.outcomes() == straight.outcomes()
    assert ring_debits(stepped) == ring_debits(straight)
    assert stepped.trace_digests() == straight.trace_digests()
    for world in (straight, stepped):
        if hasattr(world, "close"):
            world.close()


@pytest.mark.parametrize("backend", ["world", "sharded"])
def test_step_epoch_on_drained_world_is_stable(backend):
    world = build_ft_ring(backend, seed=3)
    launch_ft_tours(world)
    run_stepped(world)
    outcomes = world.outcomes()
    # Drained: further steps are no-ops, not errors.
    assert world.step_epoch() is False
    assert world.step_epoch() is False
    assert world.outcomes() == outcomes


def test_step_epoch_on_empty_world_returns_false():
    world = build_ft_ring("world", seed=1)
    assert world.step_epoch() is False


def test_proc_step_epoch_after_close_raises():
    world = build_ft_ring("proc", seed=2)
    world.close()
    with pytest.raises(UsageError, match="closed"):
        world.step_epoch()


# ---------------------------------------------------------------------------
# live attach / detach


@pytest.mark.parametrize("backend", ["world", "sharded"])
def test_attach_on_pristine_world_is_resumable(backend):
    backend_store = MemoryJournal()
    journal = WorldJournal(backend_store)
    world, build_ring = make_empty(backend, seed=5)
    # Pristine attach: nothing has happened yet, so the journal sees
    # the full run prefix — exactly like the constructor path.
    world.attach_journal(journal)
    # Hooks must cover the topology added *after* the attach.
    build_ring()
    launch_ft_tours(world)
    world.run()
    outcomes, debits = world.outcomes(), ring_debits(world)
    stats = journal.stats()
    assert stats["commits"] > 1
    assert stats["kinds"]["launch"] == 3
    assert stats["kinds"]["add_node"] == 9

    resumed = resume_world(WorldJournal(backend_store))
    resumed.run()
    assert resumed.outcomes() == outcomes
    assert ring_debits(resumed) == debits


@pytest.mark.parametrize("backend", ["world", "sharded"])
def test_attach_on_live_world_is_telemetry_only(backend):
    journal = WorldJournal(MemoryJournal())
    world = build_ft_ring(backend, seed=5, alternates=False)
    # Topology already exists: the journal lacks the run's prefix.
    world.attach_journal(journal)
    launch_ft_tours(world)
    world.run()
    assert journal.stats()["commits"] > 0
    config = journal.recover().config
    assert "live_attach" in config
    with pytest.raises(UsageError, match="already-running world"):
        resume_world(journal)


@pytest.mark.parametrize("backend", ["world", "sharded"])
def test_detach_journal_stops_capture(backend):
    journal = WorldJournal(MemoryJournal())
    world = build_ft_ring(backend, seed=4, alternates=False)
    world.attach_journal(journal)
    launch_ft_tours(world, n_agents=1)
    world.run()
    returned = world.detach_journal()
    assert returned is journal
    frozen = journal.stats()
    # A second workload after detach leaves the journal untouched.
    from tests.helpers import LinearAgent

    agent = LinearAgent("post-detach", [FT_RING[0], FT_RING[1]])
    world.launch(agent, at=FT_RING[0], method="step")
    world.run()
    assert world.outcomes()["post-detach"]["status"] == "finished"
    assert journal.stats() == frozen


def test_attach_twice_refused():
    journal = WorldJournal(MemoryJournal())
    world = build_ft_ring("world", seed=1, alternates=False)
    world.attach_journal(journal)
    with pytest.raises(UsageError, match="already"):
        world.attach_journal(WorldJournal(MemoryJournal()))


def test_proc_backend_refuses_live_attach():
    world = build_ft_ring("proc", seed=1)
    try:
        with pytest.raises(UsageError, match="spawn config"):
            world.attach_journal(WorldJournal(MemoryJournal()))
    finally:
        world.close()
