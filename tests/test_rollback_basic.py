"""Integration tests: the basic rollback mechanism (Fig 4, Section 4.3)."""


from repro import AgentStatus, MobileAgent, RollbackMode
from repro.compensation.registry import agent_compensation

from tests.helpers import LinearAgent, bank_of, build_line_world


@agent_compensation("t.trace_order")
def t_trace_order(wro, params, ctx):
    """Record execution order of compensations: (step, index, node)."""
    wro.setdefault("comp_trace", []).append(
        (params["step"], params["index"], ctx.node))


class TraceAgent(MobileAgent):
    """3 steps on 3 nodes, several ACEs per step, rollback at the end."""

    def __init__(self, agent_id, nodes):
        super().__init__(agent_id)
        self.nodes = list(nodes)
        self.sro["pos"] = 0

    def step(self, ctx):
        pos = self.sro["pos"]
        for index in range(3):
            ctx.log_agent_compensation("t.trace_order",
                                       {"step": pos, "index": index})
        self.sro["pos"] = pos + 1
        if pos + 1 < len(self.nodes):
            ctx.goto(self.nodes[pos + 1], "step")
        else:
            ctx.goto(self.nodes[0], "wrap")
        if pos == 0:
            ctx.savepoint("after-first")

    def wrap(self, ctx):
        if not self.wro.get("comp_trace"):
            ctx.rollback("after-first")
        ctx.finish(self.wro["comp_trace"])


def test_compensations_run_in_reverse_order_on_the_right_nodes():
    """Figure 2/4: within a step OE_n,p..OE_n,1; steps newest first.

    With the basic mechanism every compensation transaction executes on
    the node where the step ran.
    """
    world = build_line_world(3)
    record = world.launch(TraceAgent("trace", ["n0", "n1", "n2"]),
                          at="n0", method="step", mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.result == [
        (2, 2, "n2"), (2, 1, "n2"), (2, 0, "n2"),
        (1, 2, "n1"), (1, 1, "n1"), (1, 0, "n1"),
    ]


def test_basic_rollback_transfers_agent_to_every_compensated_node():
    world = build_line_world(4)
    plan = ["n0", "n1", "n2", "n3"]
    agent = LinearAgent("mover", plan, savepoints={0: "sp"},
                        rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # Rollback from wrap (on n0) compensates steps on n3, n2, n1: the
    # first compensation node (n3) differs from n0 => transfer, then
    # n3->n2, n2->n1: 3 compensation transfers.
    assert world.metrics.count("agent.transfers.compensation") == 3
    assert record.rollbacks_completed == 1


def test_resources_restored_and_wro_keeps_compensation_info():
    world = build_line_world(3)
    plan = ["n0", "n1", "n2"]
    agent = LinearAgent("undo", plan, savepoints={0: "sp"},
                        rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # Steps 1 and 2 were compensated, then re-executed once (the agent
    # proceeds after rollback): each bank shows exactly one net
    # transfer.
    for i in range(3):
        assert bank_of(world, f"n{i}").peek("a")["balance"] == 990
    # The WRO records the compensations that happened (2 forgotten
    # notes), and the notes list reflects the re-execution.
    assert record.result["compensations"] == 2
    assert record.result["notes"] == ["visited-0", "visited-1", "visited-2"]


def test_sro_restored_from_image_not_compensated():
    """The position counter (SRO) snaps back to the savepoint value and
    is re-advanced by re-execution — it is never 'compensated'."""
    world = build_line_world(3)
    agent = LinearAgent("sro", ["n0", "n1", "n2"], savepoints={0: "sp"},
                        rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.result["pos"] == 3


class SavepointDirectlyBefore(MobileAgent):
    """Rollback whose target sits directly before the aborting step."""

    def first(self, ctx):
        bank = ctx.resource("bank")
        bank.transfer("a", "b", 10)
        ctx.log_resource_compensation(
            "t.undo_transfer", {"src": "a", "dst": "b", "amount": 10},
            resource="bank")
        ctx.savepoint("right-here")
        ctx.goto("n0", "second")

    def second(self, ctx):
        attempts = self.sro.get("attempts", 0)
        self.sro["attempts"] = attempts + 1  # aborted with the rollback
        bank = ctx.resource("bank")
        before = bank.balance("a")
        if self.wro.get("tries", 0) < 1:
            self.wro["tries"] = 1           # also aborted
            ctx.rollback("right-here")
        ctx.finish({"balance_seen": before})


def test_trivial_rollback_restarts_step_without_compensation():
    """Figure 4a's first case: the target savepoint was set directly
    before the aborting step, so no compensation transaction runs —
    the rollback finishes immediately and the step re-executes.

    An agent in this situation observes *no state difference* on
    re-execution (nothing was committed after the savepoint), so an
    agent that unconditionally rolls back loops forever — exactly what
    the model predicts.  We bound the run by virtual time and assert
    the liveness properties: trivial completions happen, and no
    compensation transaction ever runs.
    """
    world = build_line_world(1)
    agent = SavepointDirectlyBefore("trivial")
    record = world.launch(agent, at="n0", method="first",
                          mode=RollbackMode.BASIC)
    world.run(until=2.0)
    assert world.metrics.count("rollback.completed_trivially") >= 2
    assert world.metrics.count("compensation.tx_attempted") == 0
    # The savepoint-time state stays committed throughout.
    assert bank_of(world, "n0").peek("b")["balance"] == 1_010
    assert record.status is AgentStatus.RUNNING  # still looping, by design


def test_rollback_across_multiple_savepoints_pops_passed_ones():
    world = build_line_world(4)
    agent = LinearAgent("deep", ["n0", "n1", "n2", "n3"],
                        savepoints={0: "sp0", 1: "sp1", 2: "sp2"},
                        rollback_to="sp0")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.result["compensations"] == 3  # steps 1..3 compensated
    assert record.rollbacks_completed == 1


def test_rollback_to_intermediate_savepoint_compensates_only_above_it():
    world = build_line_world(4)
    agent = LinearAgent("partial", ["n0", "n1", "n2", "n3"],
                        savepoints={0: "sp0", 2: "sp2"},
                        rollback_to="sp2")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # Only step 3 lies above sp2.
    assert record.result["compensations"] == 1
    # n1, n2 keep exactly one transfer; n3 was compensated then re-run.
    assert bank_of(world, "n1").peek("a")["balance"] == 990
    assert bank_of(world, "n3").peek("a")["balance"] == 990


class NonCompensatableBlocker(MobileAgent):
    def first(self, ctx):
        ctx.savepoint("sp")
        ctx.goto("n1", "purge")

    def purge(self, ctx):
        store_less = ctx.resource("bank")  # any resource op
        store_less.deposit("a", 1)
        ctx.mark_non_compensatable()
        ctx.goto("n0", "regret")

    def regret(self, ctx):
        try:
            ctx.rollback("sp")
        except Exception as exc:  # NotCompensatable
            ctx.finish({"blocked": type(exc).__name__})


def test_non_compensatable_step_blocks_rollback():
    world = build_line_world(2)
    record = world.launch(NonCompensatableBlocker("blocked"), at="n0",
                          method="first", mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.result == {"blocked": "NotCompensatable"}
