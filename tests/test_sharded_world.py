"""Tests: sharded multi-world execution and the cross-shard bridge.

The contract under test (see :mod:`repro.node.sharded`):

* **outcome equivalence** — a workload run on N shards produces
  identical per-agent outcomes to the same workload on 1 shard at the
  same seed (the bridge delays deliveries to the next barrier but never
  changes what an agent computes);
* **determinism** — same seed and shard count ⇒ identical outcomes and
  identical aggregate metrics, run after run;
* **reliability** — cross-shard packages survive destination crashes
  exactly like local ones (durable queue + recovery rescan).
"""

import pytest

from repro import AgentStatus, NetworkParams, RollbackMode, ShardedWorld
from repro.errors import UsageError
from repro.resources.bank import Bank, OverdraftPolicy
from repro.resources.directory import InfoDirectory
from repro.sim.failures import CrashPlan

from tests.helpers import LinearAgent


N_NODES = 8
RING = [f"n{i}" for i in range(N_NODES)]


def build_sharded(n_shards, seed=7, **kwargs):
    """A ring of banked nodes spread round-robin over ``n_shards``."""
    world = ShardedWorld(n_shards=n_shards, seed=seed, **kwargs)
    for i in range(N_NODES):
        node = world.add_node(f"n{i}")
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
        directory = InfoDirectory("directory")
        directory.publish("offers", [{"price": i}])
        node.add_resource(directory)
    return world


def run_swarm(n_shards, n_agents=6, seed=7, mode=RollbackMode.BASIC,
              **kwargs):
    """Agents touring the ring — with round-robin placement every hop
    crosses a shard boundary, and each tour rolls back once."""
    world = build_sharded(n_shards, seed=seed, **kwargs)
    for a in range(n_agents):
        rotated = RING[a % N_NODES:] + RING[:a % N_NODES]
        agent = LinearAgent(f"ag-{a}", rotated[:5],
                            savepoints={0: "sp"}, rollback_to="sp")
        world.launch(agent, at=rotated[0], method="step", mode=mode)
    world.run()
    return world


# -- basic facade --------------------------------------------------------------


def test_round_robin_placement_and_lookup():
    world = build_sharded(4)
    assert [world.shard_of(f"n{i}") for i in range(N_NODES)] == \
        [0, 1, 2, 3, 0, 1, 2, 3]
    assert world.node("n5").name == "n5"
    with pytest.raises(UsageError):
        world.shard_of("nope")
    with pytest.raises(UsageError):
        world.add_node("n0")  # duplicate, even across shards


def test_explicit_shard_placement_validated():
    world = ShardedWorld(n_shards=2, seed=0)
    world.add_node("x", shard=1)
    assert world.shard_of("x") == 1
    with pytest.raises(UsageError):
        world.add_node("y", shard=5)
    with pytest.raises(UsageError):
        ShardedWorld(n_shards=0)


def test_single_shard_run_completes_without_bridge_traffic():
    world = run_swarm(1)
    assert all(r.status is AgentStatus.FINISHED
               for r in world.agents.values())
    assert world.bridge.transfers_total == 0
    assert world.all_done()


# -- outcome equivalence across shard counts -----------------------------------


def test_sharded_outcomes_match_unsharded_at_same_seed():
    unsharded = run_swarm(1)
    sharded = run_swarm(4)
    # Every hop crossed shards, so the bridge really carried the run.
    assert sharded.bridge.transfers_total > 0
    assert sharded.outcomes() == unsharded.outcomes()
    assert all(o["status"] == "finished"
               for o in sharded.outcomes().values())
    # Rollbacks executed (and crossed shards) in both configurations.
    assert all(o["rollbacks_completed"] == 1
               for o in sharded.outcomes().values())


def test_sharded_counters_match_unsharded_modulo_bridge():
    """Aggregate protocol counters are shard-count invariant: the same
    steps commit, the same savepoints are written, the same rollbacks
    complete — only ``bridge.*`` traffic is configuration-specific."""
    unsharded = run_swarm(1)
    sharded = run_swarm(4)
    assert sharded.counters(exclude_prefixes=("bridge.",)) == \
        unsharded.counters(exclude_prefixes=("bridge.",))


def test_optimized_rollback_crosses_shards_with_matching_outcomes():
    """The optimized driver's split execution needs the resource node in
    the local kernel; across shards it falls back to migrating the
    agent — transfer counts differ from the unsharded run, per-agent
    outcomes must not."""
    unsharded = run_swarm(1, mode=RollbackMode.OPTIMIZED)
    sharded = run_swarm(4, mode=RollbackMode.OPTIMIZED)
    assert sharded.outcomes() == unsharded.outcomes()
    assert all(o["status"] == "finished"
               for o in sharded.outcomes().values())


def test_sharded_runs_are_deterministic():
    first = run_swarm(4)
    second = run_swarm(4)
    assert first.outcomes() == second.outcomes()
    assert first.counters() == second.counters()
    assert first.epochs_run == second.epochs_run
    assert first.events_processed() == second.events_processed()


def test_different_seed_changes_nothing_deterministic_here_but_runs():
    # Crash-free runs draw no randomness; a different seed must still
    # complete and produce the same logical outcomes.
    a = run_swarm(4, seed=7)
    b = run_swarm(4, seed=1234)
    assert a.outcomes() == b.outcomes()


# -- lockstep clock ------------------------------------------------------------


def test_shard_clocks_agree_at_completion():
    world = run_swarm(4)
    nows = {round(w.sim.now, 9) for w in world.shards}
    assert len(nows) == 1  # lockstep barriers keep clocks consistent
    assert world.now == world.shards[0].sim.now


def test_run_until_caps_every_shard_clock():
    world = build_sharded(4)
    agent = LinearAgent("capped", RING[:4])
    world.launch(agent, at="n0", method="step")
    world.run(until=0.02)
    assert all(abs(w.sim.now - 0.02) < 1e-9 for w in world.shards)
    # The run can be resumed to completion afterwards.
    world.run()
    assert world.record_of("capped").status is AgentStatus.FINISHED


# -- reliability across the bridge ---------------------------------------------


def test_cross_shard_delivery_survives_destination_crash():
    world = build_sharded(2, seed=3)
    # n1 (shard 1) is down while the agent's first migration arrives;
    # the bridged package waits in the durable queue and the recovery
    # rescan dispatches it.
    world.world_of("n1").failures.apply_plan(
        [CrashPlan("n1", at=0.0, duration=0.5)])
    agent = LinearAgent("crossing", ["n0", "n1", "n2"])
    world.launch(agent, at="n0", method="step")
    world.run()
    record = world.record_of("crossing")
    assert record.status is AgentStatus.FINISHED
    assert record.finished_at > 0.5


def test_batching_composes_with_sharding():
    # Each shard world stacks its own batching transport; the run just
    # has to complete with identical outcomes.
    plain = run_swarm(4)
    batched = run_swarm(4, net_params=NetworkParams(batch_window=0.05))
    assert batched.outcomes() == plain.outcomes()


# -- misc ----------------------------------------------------------------------


def test_record_of_unknown_agent_raises():
    world = build_sharded(2)
    with pytest.raises(UsageError):
        world.record_of("ghost")
