"""Satellite: shard workers must not outlive a SIGKILLed coordinator.

A SIGKILLed coordinator never runs its atexit teardown, and under the
``fork`` start method sibling workers keep every pipe write-end open,
so no EOF ever reaches a worker either.  The worker serve loop
therefore polls :func:`multiprocessing.parent_process` liveness every
half second and exits on its own — this test is that defense's proof:
it SIGKILLs a real coordinator process and asserts every worker pid
vanishes within a few seconds.
"""

import os
import subprocess
import sys
import time

_CHILD = """
import sys, time
sys.path.insert(0, {src!r})
from tests.helpers import build_ft_ring, launch_ft_tours

if __name__ == "__main__":
    world = build_ft_ring("proc", seed=3)
    launch_ft_tours(world)
    world.run(until=0.05)
    print(" ".join(str(h.process.pid) for h in world._handles), flush=True)
    time.sleep(120)  # hold the workers idle until the SIGKILL lands
"""


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def test_workers_exit_after_coordinator_sigkill(tmp_path):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = tmp_path / "coordinator.py"
    script.write_text(_CHILD.format(src=os.path.join(repo, "src")))
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   [os.path.join(repo, "src"), repo]))
    proc = subprocess.Popen([sys.executable, str(script)],
                            stdout=subprocess.PIPE, text=True,
                            cwd=repo, env=env)
    try:
        line = proc.stdout.readline()
        pids = [int(p) for p in line.split()]
        assert len(pids) == 3
        assert all(_alive(pid) for pid in pids)
        proc.kill()  # SIGKILL: no atexit, no pipe EOF under fork
        proc.wait(timeout=10)
        # The liveness poll runs every 0.5 s; give it a few rounds.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.25)
        survivors = [pid for pid in pids if _alive(pid)]
        assert not survivors, f"orphaned workers survived: {survivors}"
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
