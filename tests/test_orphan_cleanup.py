"""Satellite: shard workers must not outlive a SIGKILLed coordinator.

A SIGKILLed coordinator never runs its atexit teardown, and under the
``fork`` start method sibling workers keep every pipe write-end open,
so no EOF ever reaches a worker either.  The worker serve loop
therefore polls :func:`multiprocessing.parent_process` liveness every
half second and exits on its own — this test is that defense's proof:
it SIGKILLs a real coordinator process and asserts every worker pid
vanishes within a few seconds.

With the zero-copy barrier exchange the same scenarios must also not
leak POSIX shared-memory segments: the coordinator unlinks its rings
on ``close()`` and on ``WorkerDied``; a worker torn down without a
shutdown (the orphan path) unlinks its own pair; the shared
:mod:`multiprocessing` resource tracker is the final backstop.
"""

import os
import subprocess
import sys
import time

import pytest

_CHILD = """
import sys, time
sys.path.insert(0, {src!r})
from tests.helpers import build_ft_ring, launch_ft_tours

if __name__ == "__main__":
    world = build_ft_ring("proc", seed=3)
    launch_ft_tours(world)
    world.run(until=0.05)
    print(" ".join(str(h.process.pid) for h in world._handles), flush=True)
    print(" ".join(ring.name
                   for h in world._handles
                   for ring in (h.ring_out, h.ring_in)
                   if ring is not None), flush=True)
    time.sleep(120)  # hold the workers idle until the SIGKILL lands
"""


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _segment_exists(name):
    from repro.node.shmring import ShmRing
    try:
        ShmRing.attach(name).close()
    except FileNotFoundError:
        return False
    return True


def _wait_unlinked(names, deadline_s=15.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        leaked = [name for name in names if _segment_exists(name)]
        if not leaked:
            return []
        time.sleep(0.25)
    return leaked


def test_workers_exit_after_coordinator_sigkill(tmp_path):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = tmp_path / "coordinator.py"
    script.write_text(_CHILD.format(src=os.path.join(repo, "src")))
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   [os.path.join(repo, "src"), repo]))
    proc = subprocess.Popen([sys.executable, str(script)],
                            stdout=subprocess.PIPE, text=True,
                            cwd=repo, env=env)
    try:
        line = proc.stdout.readline()
        pids = [int(p) for p in line.split()]
        assert len(pids) == 3
        ring_names = proc.stdout.readline().split()
        assert len(ring_names) == 6  # one pair per worker, shm mode
        assert all(_alive(pid) for pid in pids)
        assert all(_segment_exists(name) for name in ring_names)
        proc.kill()  # SIGKILL: no atexit, no pipe EOF under fork
        proc.wait(timeout=10)
        # The liveness poll runs every 0.5 s; give it a few rounds.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.25)
        survivors = [pid for pid in pids if _alive(pid)]
        assert not survivors, f"orphaned workers survived: {survivors}"
        # The orphaned workers unlinked their segments on exit (the
        # resource tracker would catch any they missed).
        leaked = _wait_unlinked(ring_names)
        assert not leaked, f"leaked shm segments: {leaked}"
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()


def test_worker_sigkill_mid_barrier_unlinks_rings():
    """A SIGKILLed worker surfaces as WorkerDied — with its (possibly
    torn) rings unlinked immediately, and no segment surviving close."""
    import signal

    from repro.errors import WorkerDied
    from tests.helpers import build_ft_ring, launch_ft_tours

    world = build_ft_ring("proc", seed=3)
    try:
        assert world.ipc == "shm"
        ring_names = [ring.name for h in world._handles
                      for ring in (h.ring_out, h.ring_in)]
        assert all(_segment_exists(name) for name in ring_names)
        launch_ft_tours(world)
        world.run(until=0.05)
        victim = world._handles[1]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        with pytest.raises(WorkerDied) as excinfo:
            world.run()
        assert excinfo.value.shard == 1
        # The dead worker's rings were unlinked the moment the outage
        # surfaced — a torn frame must never pin a segment.
        assert victim.ring_out is None and victim.ring_in is None
        leaked = _wait_unlinked(ring_names[2:4], deadline_s=5.0)
        assert not leaked, f"dead worker leaked segments: {leaked}"
    finally:
        world.close()
    leaked = _wait_unlinked(ring_names)
    assert not leaked, f"leaked shm segments after close: {leaked}"
