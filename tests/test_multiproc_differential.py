"""Differential determinism harness: one workload, three backends.

The headline invariant of the sharded architecture, finally tested in
one place across **all three execution modes**: the same seeded FT
itinerary workload — rollbacks, compensations, mid-run ``kill_shard``,
restart — run on

* an unsharded :class:`~repro.node.runtime.World` (one kernel),
* an in-process :class:`~repro.node.sharded.ShardedWorld`, and
* a multiprocess :class:`~repro.node.procshard.ProcShardedWorld`

must produce identical per-agent outcomes, identical per-bank effect
sums (exactly-once, wherever each step executed), and a consistent
exactly-once ledger.  Between the two sharded backends the equality is
bit-level: aggregate counters, epoch counts, event counts and the
kernel event-stream digests all match.

The quick tier runs a representative scenario pair; the parametrized
seed sweep across outage schedules is marked ``soak`` (run with
``-m soak``) so regular CI stays fast.

Workload builders live in :mod:`tests.helpers`
(:func:`~tests.helpers.run_differential_scenario`), module-level and
picklable — the worker-process contract.
"""

import pytest

from tests.helpers import (
    build_ft_ring,
    launch_ft_tours,
    run_crash_resume_scenario,
    run_differential_scenario,
    shard_nodes,
)

BACKENDS = ("world", "sharded", "proc")

#: (outage, n_agents): None = crash-free; (shard, at, restart_at) =
#: whole-shard outage.  Kill times sweep the protocol phases of the
#: three-agent run (shadow in flight / first claims / mid-tour).
SCENARIOS = {
    "crash-free": (None, 3),
    "kill-restart-early": ((1, 0.04, 1.5), 3),
    "kill-restart-mid": ((1, 0.08, 2.0), 3),
    "kill-restart-late": ((1, 0.15, 2.0), 3),
    "kill-shard0-restart": ((0, 0.06, 2.0), 3),
}


def assert_differential(results, scenario):
    """The cross-backend equivalence contract for one scenario."""
    world, sharded, proc = (results[b] for b in BACKENDS)
    # 1. Per-agent outcomes: identical across ALL THREE backends.
    assert world["outcomes"] == sharded["outcomes"], scenario
    assert sharded["outcomes"] == proc["outcomes"], scenario
    assert all(o["status"] == "finished"
               for o in proc["outcomes"].values()), scenario
    # 2. Effect sums: every committed step debited one bank exactly
    # once; totals agree across all three, per-bank placement agrees
    # between the two sharded backends (and, with placement-aware
    # alternates resolving identically, with the unsharded run too).
    assert sum(world["debits"].values()) == \
        sum(sharded["debits"].values()) == \
        sum(proc["debits"].values()), scenario
    assert sharded["debits"] == proc["debits"], scenario
    # 3. Exactly-once ledger state: the replicas agree with a majority.
    assert sharded["ledger_agrees"] and proc["ledger_agrees"], scenario
    # 4. Between the sharded backends the runs are bit-identical.
    assert sharded["counters"] == proc["counters"], scenario
    assert sharded["epochs"] == proc["epochs"], scenario
    assert sharded["events"] == proc["events"], scenario


def run_all_backends(seed, outage, n_agents=3):
    return {backend: run_differential_scenario(backend, seed=seed,
                                               outage=outage,
                                               n_agents=n_agents)
            for backend in BACKENDS}


# -- quick tier -------------------------------------------------------------------


def test_crash_free_tours_identical_across_all_backends():
    results = run_all_backends(seed=11, outage=SCENARIOS["crash-free"][0])
    assert_differential(results, "crash-free")
    # Rollbacks and compensations really ran in every backend.
    assert all(o["rollbacks_completed"] == 1
               for o in results["proc"]["outcomes"].values())


def test_kill_shard_with_restart_identical_across_all_backends():
    results = run_all_backends(seed=11,
                               outage=SCENARIOS["kill-restart-mid"][0])
    assert_differential(results, "kill-restart-mid")


def test_event_streams_identical_between_sharded_backends():
    """Kernel-level equivalence: each worker process fires the exact
    same (time, label) event stream as its in-process twin, through a
    kill + restart."""
    from repro import ProcShardedWorld

    digests = {}
    for backend in ("sharded", "proc"):
        world = build_ft_ring(backend, seed=5)
        world.enable_trace_digest()
        world.kill_shard(1, at=0.08, restart_at=2.0)
        launch_ft_tours(world)
        world.run()
        digests[backend] = world.trace_digests()
        if isinstance(world, ProcShardedWorld):
            world.close()
    assert digests["sharded"] == digests["proc"]
    assert len(digests["proc"]) == 3


def test_kill_without_restart_identical_between_sharded_backends():
    """A permanent outage: the unsharded analogue has no 'kernel stays
    frozen forever' mode, so this scenario pins the two sharded
    backends to each other."""
    from repro import ProcShardedWorld

    results = {}
    for backend in ("sharded", "proc"):
        world = build_ft_ring(backend, seed=7)
        world.kill_shard(1, at=0.055)
        launch_ft_tours(world)
        world.run()
        results[backend] = {
            "outcomes": world.outcomes(),
            "counters": world.counters(),
            "debits": {n: 1_000
                       - world.resource_state(n, "bank").peek("a")["balance"]
                       for n in shard_nodes(0) + shard_nodes(2)},
            "quorum": world.ledger_quorum_agrees(),
            "alive": world.shard_alive(1),
        }
        if isinstance(world, ProcShardedWorld):
            world.close()
    assert results["sharded"] == results["proc"]
    assert not results["proc"]["alive"]
    assert all(o["status"] == "finished"
               for o in results["proc"]["outcomes"].values())


# -- crash-resume axis -----------------------------------------------------------
#
# The fourth differential axis: kill the *coordinator* mid-run (the
# write-ahead journal's ``kill_world``), rebuild from the journal with
# ``resume_world`` and run the continuation — the resumed run must be
# outcome-identical to the uninterrupted run of the same scenario, on
# every backend, at both kill phases (right after an epoch commit, and
# mid-barrier between collect and scatter with the commit marker torn).


def assert_crash_resume(backend, seed, kill_at, phase="commit",
                        outage=None, journal_factory=None):
    resumed, killed = run_crash_resume_scenario(
        backend, seed=seed, kill_at=kill_at, phase=phase, outage=outage,
        journal_factory=journal_factory)
    assert killed, (backend, kill_at, phase)
    uninterrupted = run_differential_scenario(backend, seed=seed,
                                              outage=outage)
    assert resumed == uninterrupted, (backend, kill_at, phase)


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_resume_identical_to_uninterrupted(backend):
    assert_crash_resume(backend, seed=11, kill_at=0.06,
                        outage=SCENARIOS["kill-restart-mid"][0])


@pytest.mark.parametrize("backend", ("sharded", "proc"))
def test_mid_barrier_crash_resume_identical(backend):
    """Kill between barrier collect and scatter: the commit marker is
    physically torn, so recovery falls back one epoch and re-executes
    the uncommitted barrier from journaled inputs."""
    assert_crash_resume(backend, seed=11, kill_at=0.06, phase="barrier",
                        outage=SCENARIOS["kill-restart-mid"][0])


def test_crash_resume_from_reopened_file_journal(tmp_path):
    """The durable path: journal to disk, crash, reopen the file in a
    'new process' (a fresh journal over the same path) and resume."""
    from repro.journal import FileJournal, WorldJournal

    path = tmp_path / "world.journal"
    factory = lambda: WorldJournal(FileJournal(path))  # noqa: E731
    assert_crash_resume("proc", seed=11, kill_at=0.08, phase="barrier",
                        outage=SCENARIOS["kill-restart-mid"][0],
                        journal_factory=factory)


# -- generated workloads: the fuzzer feeds the same harness -----------------------
#
# The fixed scenarios above pin known-interesting schedules; the seeded
# fuzzer (:mod:`repro.fuzz`) generates arbitrary itineraries over the
# semantic scenario pack — rollbacks across ship ratchets, fee-bearing
# compensations, node crashes, shard outages — and runs the same
# three-backend cross-check *plus* the model oracle.  The quick tier
# replays two seeds chosen (by a coverage scan) to exercise the
# ratchet-adjusted rollback and the semantic-residue paths; the soak
# tier sweeps wide.


@pytest.mark.parametrize("seed", (8, 11))
def test_generated_workload_differential(seed):
    from repro.fuzz import run_seed

    assert run_seed(seed) == []


@pytest.mark.soak
@pytest.mark.parametrize("seed", range(0, 50, 2))
def test_generated_seed_sweep_differential(seed):
    from repro.fuzz import run_seed

    assert run_seed(seed) == []


# -- soak tier: the full seed sweep ------------------------------------------------


@pytest.mark.soak
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", (3, 11, 29, 47))
def test_seed_sweep_differential(scenario, seed):
    outage, n_agents = SCENARIOS[scenario]
    results = run_all_backends(seed=seed, outage=outage, n_agents=n_agents)
    assert_differential(results, f"{scenario}/seed={seed}")


@pytest.mark.soak
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("phase", ("commit", "barrier"))
@pytest.mark.parametrize("kill_at", (0.03, 0.07, 0.3, 1.0))
@pytest.mark.parametrize("seed", (3, 29))
def test_crash_resume_sweep(backend, phase, kill_at, seed):
    assert_crash_resume(backend, seed=seed, kill_at=kill_at, phase=phase,
                        outage=SCENARIOS["kill-restart-mid"][0])
