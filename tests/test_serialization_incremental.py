"""Unit tests: the incremental serialization subsystem.

Covers the three legs of the subsystem:

* the structural :func:`snapshot` fast path must be observably
  equivalent to the pickle round trip it replaces (nested, aliased,
  self-referential and custom-class state);
* the O(1) log size accounting must stay exact across every mutation
  (append/pop/truncate/discard, their transactional undos, and the
  transition-mode diff compose that mutates an entry in place);
* the framed agent package must round-trip identically, reuse entry
  blobs across packs, and preserve the abort-undo state boundary.
"""

from __future__ import annotations

import pytest

from repro.agent.packages import AgentPackage, PackageKind
from repro.compensation.registry import CompensationRegistry
from repro.errors import LogCorrupt, UsageError
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
    SavepointEntry,
)
from repro.log.modes import LoggingMode, SRODiff, sro_diff
from repro.log.rollback_log import RollbackLog
from repro.storage import serialization
from repro.storage.serialization import capture, restore, snapshot
from repro.tx.manager import Transaction

from tests.helpers import LinearAgent


# -- snapshot fast path vs pickle round trip ---------------------------------

class CustomState:
    """A class the structural copier cannot handle."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, CustomState) and other.value == self.value


def pickle_round_trip(obj):
    return restore(capture(obj))


@pytest.mark.parametrize("state", [
    {"a": [1, 2, {"b": (3, 4)}], "c": {"nested": [5.5, "s", b"bytes"]}},
    [[1], [2], [[3], {4}]],
    {"sets": {frozenset({1, 2}), (9,)}, "arr": bytearray(b"xyz")},
    (), {}, [], "scalar", 17, None,
])
def test_snapshot_matches_pickle_round_trip(state):
    assert snapshot(state) == pickle_round_trip(state)


def test_snapshot_is_deep_and_reference_free():
    state = {"inner": [1, {"k": [2]}]}
    copy = snapshot(state)
    copy["inner"][1]["k"].append(3)
    assert state["inner"][1]["k"] == [2]


def test_snapshot_preserves_internal_aliasing():
    shared = [1, 2]
    state = {"x": shared, "y": shared, "z": [shared]}
    copy = snapshot(state)
    assert copy == state
    assert copy["x"] is copy["y"]
    assert copy["z"][0] is copy["x"]
    assert copy["x"] is not shared
    # Pickle gives the same sharing structure.
    via_pickle = pickle_round_trip(state)
    assert via_pickle["x"] is via_pickle["y"]


def test_snapshot_handles_self_reference():
    state = {"name": "loop"}
    state["me"] = state
    copy = snapshot(state)
    assert copy["me"] is copy
    assert copy is not state


def test_snapshot_falls_back_to_pickle_for_custom_classes():
    serialization.reset_stats()
    state = {"custom": CustomState([1, 2]), "plain": [3]}
    copy = snapshot(state)
    assert copy == pickle_round_trip(state)
    assert copy["custom"] is not state["custom"]
    assert copy["custom"].value == [1, 2]
    assert serialization.stats()["snapshot_pickle"] == 1
    assert serialization.stats()["snapshot_fast"] == 0


def test_snapshot_fast_path_is_counted():
    serialization.reset_stats()
    snapshot({"plain": [1, (2, 3)]})
    assert serialization.stats()["snapshot_fast"] == 1
    assert serialization.stats()["snapshot_pickle"] == 0


# -- entry blob cache --------------------------------------------------------

def sp(sp_id, payload=None, mode="state", virtual=False):
    return SavepointEntry(sp_id=sp_id, mode=mode, payload=payload,
                          virtual=virtual)


def test_entry_blob_cache_does_not_travel():
    entry = sp("s1", payload={"k": b"v" * 100})
    bare = capture(entry)
    entry.blob()  # populate the cache
    assert capture(entry) == bare  # cache excluded from the pickle
    clone = restore(bare)
    assert clone.__dict__.get("_blob") is None


def test_entry_blob_cache_reused_and_invalidated():
    serialization.reset_stats()
    entry = sp("s1", payload={"k": 1})
    first = entry.blob()
    assert entry.blob() is first
    assert serialization.stats()["entry_blob_serialized"] == 1
    assert serialization.stats()["entry_blob_reused"] == 1
    entry.payload = {"k": 2}
    entry.invalidate_blob()
    second = entry.blob()
    assert second != first
    assert restore(second).payload == {"k": 2}


# -- O(1) size accounting ----------------------------------------------------

def actual_payload_bytes(log: RollbackLog) -> int:
    return sum(len(capture(entry)) for entry in log.entries())


def assert_accounting_exact(log: RollbackLog) -> None:
    assert log._payload_bytes == actual_payload_bytes(log)


def build_step(log, node, index, n_ops=2, tx=None):
    log.append(BeginOfStepEntry(node=node, step_index=index), tx)
    for i in range(n_ops):
        log.append(OperationEntry(op_kind=OperationKind.AGENT,
                                  op_name="t.mark",
                                  params={"tag": f"{index}.{i}"}), tx)
    log.append(EndOfStepEntry(node=node, step_index=index), tx)


def test_size_accounting_across_append_pop_truncate():
    log = RollbackLog()
    empty = log.size_bytes()
    log.append(sp("s0", payload={"ballast": b"x" * 2_000}))
    build_step(log, "n0", 0)
    assert log.size_bytes() > empty + 2_000
    assert_accounting_exact(log)

    log.pop()
    log.pop()
    assert_accounting_exact(log)

    log.truncate()
    assert len(log) == 0
    assert log.size_bytes() == empty
    assert_accounting_exact(log)


def test_size_accounting_survives_tx_aborts():
    log = RollbackLog()
    log.append(sp("s0", payload={"base": 1}))
    before = log.size_bytes()

    tx = Transaction("step", "n0")
    build_step(log, "n0", 0, tx=tx)
    log.pop(tx)
    log.truncate(tx)
    log.append(sp("s1", payload={"late": b"y" * 500}), tx)
    tx.abort()

    assert [e.kind.value for e in log.entries()] == ["SP"]
    assert log.size_bytes() == before
    assert_accounting_exact(log)
    log.validate()  # includes the accounting consistency check


def test_size_accounting_across_discard_savepoint_state_mode():
    log = RollbackLog()
    log.append(sp("s0", payload={"v": 0}))
    build_step(log, "n0", 0)
    log.append(sp("s1", payload={"v": 1}))
    assert log.discard_savepoint("s1")
    assert_accounting_exact(log)


def transition_log(states):
    log = RollbackLog(LoggingMode.TRANSITION)
    previous = None
    for i, state in enumerate(states):
        if previous is None:
            payload = snapshot(state)
        else:
            payload = sro_diff(previous, state)
        log.append(sp(f"sp-{i}", payload=payload, mode="transition"))
        previous = state
    return log


def test_size_accounting_across_transition_diff_compose():
    states = [{"k": 0, "ballast": b"a" * 300},
              {"k": 1, "ballast": b"a" * 300},
              {"k": 2, "ballast": b"a" * 300, "extra": "e"}]
    log = transition_log(states)
    assert_accounting_exact(log)

    # Discarding the middle savepoint composes its diff into sp-2 — an
    # in-place payload mutation that must re-account sp-2's blob.
    assert log.discard_savepoint("sp-1")
    assert_accounting_exact(log)
    assert log.reconstruct_sro("sp-2") == states[2]
    log.validate()

    # Discarding the base image promotes sp-2's diff to a full image.
    assert log.discard_savepoint("sp-0")
    assert_accounting_exact(log)
    assert log.reconstruct_sro("sp-2") == states[2]


def test_size_accounting_discard_compose_survives_abort():
    states = [{"k": 0}, {"k": 1}, {"k": 2}]
    log = transition_log(states)
    before = log.size_bytes()
    payload_before = log.entries()[2].payload

    tx = Transaction("step", "n0")
    assert log.discard_savepoint("sp-1", tx)
    tx.abort()

    assert log.has_savepoint("sp-1")
    assert log.size_bytes() == before
    assert_accounting_exact(log)
    restored = log.entries()[2].payload
    assert isinstance(restored, SRODiff)
    assert restored.changed == payload_before.changed
    assert log.reconstruct_sro("sp-2") == states[2]


def test_wholesale_log_pickle_drops_frame_cache_and_round_trips():
    log = RollbackLog()
    log.append(sp("s0", payload={"ballast": b"x" * 1_000}))
    build_step(log, "n0", 0)
    # The wholesale pickle must describe the log once: entries only,
    # no cached frames riding along.
    bare = RollbackLog()
    bare.mode = log.mode
    bare._entries = log.entries()
    assert len(capture(log)) <= len(capture(bare._entries)) + 200

    clone = restore(capture(log))
    assert [e.kind for e in clone.entries()] == \
        [e.kind for e in log.entries()]
    assert clone.size_bytes() == log.size_bytes()
    assert_accounting_exact(clone)
    clone.validate()


def test_validate_detects_accounting_drift():
    log = RollbackLog()
    log.append(sp("s0", payload={"v": 0}))
    log._payload_bytes += 1  # simulate a bug
    with pytest.raises(LogCorrupt, match="size accounting drift"):
        log.validate()


# -- framed package round trip -----------------------------------------------

def make_agent(agent_id="inc-1"):
    agent = LinearAgent(agent_id, ["n0"])
    agent.sro["data"] = {"nested": [1, 2, 3]}
    agent.wro["purse"] = 5
    return agent


def test_pack_unpack_round_trip_with_framing():
    agent = make_agent()
    log = RollbackLog()
    log.append(sp("s0", payload={"v": 0}))
    build_step(log, "n0", 0)
    package = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=1)

    restored_agent, restored_log = package.unpack()
    assert restored_agent.agent_id == agent.agent_id
    assert restored_agent.sro == agent.sro
    assert restored_log.mode is log.mode
    assert [e.kind for e in restored_log.entries()] == \
        [e.kind for e in log.entries()]
    assert restored_log.size_bytes() == log.size_bytes()
    restored_log.validate()


def test_pack_reuses_cached_entry_blobs_incrementally():
    agent = make_agent()
    log = RollbackLog()
    log.append(sp("s0", payload={"v": 0}))
    build_step(log, "n0", 0)
    first = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=1)

    serialization.reset_stats()
    build_step(log, "n1", 1)  # one more hop: 4 new entries
    second = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=2)
    stats = serialization.stats()
    assert stats["entry_blob_serialized"] == 4  # only the new entries
    # The old frames are reused byte-for-byte.
    assert second.log_blobs[:len(first.log_blobs)] == first.log_blobs


def test_unpack_seeds_blob_caches_for_the_next_pack():
    agent = make_agent()
    log = RollbackLog()
    build_step(log, "n0", 0)
    package = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=1)

    restored_agent, restored_log = package.unpack()
    serialization.reset_stats()
    repacked = AgentPackage.pack(PackageKind.STEP, restored_agent,
                                 restored_log, step_index=1)
    assert serialization.stats()["entry_blob_serialized"] == 0
    assert repacked.log_blobs == package.log_blobs
    assert repacked.size_bytes == package.size_bytes


def test_unpack_preserves_abort_undo_state_boundary():
    agent = make_agent()
    log = RollbackLog()
    log.append(sp("s0", payload={"v": [1]}))
    package = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=0)

    copy_agent, copy_log = package.unpack()
    copy_agent.sro["data"]["nested"].append(99)
    copy_log.entries()[0].payload["v"].append(99)
    copy_log.pop()

    fresh_agent, fresh_log = package.unpack()
    assert fresh_agent.sro["data"]["nested"] == [1, 2, 3]
    assert fresh_log.entries()[0].payload == {"v": [1]}
    assert len(fresh_log) == 1


def test_package_size_is_the_framed_payload_size():
    agent = make_agent()
    log = RollbackLog()
    log.append(sp("s0", payload={"ballast": b"z" * 3_000}))
    package = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=0)
    assert package.size_bytes >= len(package.blob) \
        + sum(len(b) for b in package.log_blobs)
    assert package.size_bytes < len(package.blob) \
        + sum(len(b) for b in package.log_blobs) + 100


# -- registry idempotence ----------------------------------------------------

DOUBLE_IMPORT_SOURCE = """
def my_comp(wro, params, ctx):
    return None
"""


def test_registry_idempotent_for_identical_function():
    registry = CompensationRegistry()
    ns1, ns2 = {}, {}
    code = compile(DOUBLE_IMPORT_SOURCE, "fake_module.py", "exec")
    exec(code, ns1)
    exec(code, ns2)  # the same module imported a second time
    registry.register("t.same", OperationKind.AGENT, ns1["my_comp"])
    registry.register("t.same", OperationKind.AGENT, ns2["my_comp"])
    assert registry.resolve("t.same").fn is ns2["my_comp"]


def test_registry_still_rejects_conflicting_function():
    registry = CompensationRegistry()
    code_a = compile(DOUBLE_IMPORT_SOURCE, "module_a.py", "exec")
    code_b = compile(DOUBLE_IMPORT_SOURCE, "module_b.py", "exec")
    ns_a, ns_b = {}, {}
    exec(code_a, ns_a)
    exec(code_b, ns_b)
    registry.register("t.conflict", OperationKind.AGENT, ns_a["my_comp"])
    with pytest.raises(UsageError, match="already registered"):
        registry.register("t.conflict", OperationKind.AGENT, ns_b["my_comp"])
    with pytest.raises(UsageError, match="already registered"):
        # Same function, different kind: a conflict too.
        registry.register("t.conflict", OperationKind.RESOURCE,
                          ns_a["my_comp"])


def comp_factory(delta):
    def made_comp(wro, params, ctx):
        wro["x"] = wro.get("x", 0) + delta
    return made_comp


def test_registry_rejects_distinct_closures_from_same_def():
    # Factory-produced functions share the source location but close
    # over different state — never idempotent.
    registry = CompensationRegistry()
    registry.register("t.closure", OperationKind.AGENT, comp_factory(1))
    with pytest.raises(UsageError, match="already registered"):
        registry.register("t.closure", OperationKind.AGENT, comp_factory(2))


def test_registry_rejects_changed_defaults():
    code_v1 = compile("def my_comp(wro, params, ctx, delta=1): pass",
                      "fake_module.py", "exec")
    code_v2 = compile("def my_comp(wro, params, ctx, delta=2): pass",
                      "fake_module.py", "exec")
    ns1, ns2 = {}, {}
    exec(code_v1, ns1)
    exec(code_v2, ns2)
    registry = CompensationRegistry()
    registry.register("t.defaults", OperationKind.AGENT, ns1["my_comp"])
    with pytest.raises(UsageError, match="already registered"):
        registry.register("t.defaults", OperationKind.AGENT, ns2["my_comp"])
