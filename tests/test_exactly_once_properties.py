"""Property tests: exactly-once effects under random crash schedules.

The fundamental substrate guarantee ([11]): for any schedule of
non-lasting node outages, every step's resource effects are applied
exactly once, the agent is neither lost nor duplicated, and the final
agent state equals the crash-free run's.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AgentStatus
from repro.agent.packages import Protocol
from repro.sim.failures import CrashPlan

from tests.helpers import LinearAgent, bank_of, build_line_world

SLOW = dict(max_examples=15, deadline=None,
            suppress_health_check=[HealthCheck.too_slow])

crash_plans = st.lists(
    st.builds(CrashPlan,
              node=st.sampled_from(["n0", "n1", "n2", "n3"]),
              at=st.floats(min_value=0.0, max_value=1.0),
              duration=st.floats(min_value=0.01, max_value=0.5)),
    max_size=6)


def run_world(plans, n_nodes=4, seed=0, protocol=Protocol.BASIC,
              alternates=()):
    world = build_line_world(n_nodes, seed=seed)
    for node, alts in alternates:
        world.ft.set_alternates(node, *alts)
    # Drop overlapping outages for the same node (the injector ignores
    # a crash of an already-down node, but recovery pairing must stay
    # sane for the test's own bookkeeping).
    filtered = []
    for plan in sorted(plans, key=lambda p: p.at):
        if all(not (p.node == plan.node
                    and p.at <= plan.at < p.recovery_time)
               for p in filtered):
            filtered.append(plan)
    world.failures.apply_plan(filtered)
    agent = LinearAgent(f"eo-{seed}-{len(plans)}",
                        [f"n{i}" for i in range(n_nodes)])
    record = world.launch(agent, at="n0", method="step", protocol=protocol)
    world.run(max_events=2_000_000)
    return world, record


@given(crash_plans, st.integers(min_value=0, max_value=500))
@settings(**SLOW)
def test_exactly_once_under_random_outages(plans, seed):
    world, record = run_world(plans, seed=seed)
    assert record.status is AgentStatus.FINISHED
    # Exactly one committed transfer per node, no matter the schedule.
    for i in range(4):
        assert bank_of(world, f"n{i}").peek("a")["balance"] == 990
    # The WRO notes reflect exactly one pass.
    assert record.result["notes"] == [f"visited-{i}" for i in range(4)]
    # No agent package left anywhere.
    for i in range(4):
        assert len(world.node(f"n{i}").queue) == 0


@given(crash_plans, st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_exactly_once_with_ft_protocol_and_shadows(plans, seed):
    world, record = run_world(
        plans, seed=seed, protocol=Protocol.FAULT_TOLERANT,
        alternates=[("n1", ["n2"]), ("n2", ["n3"])])
    assert record.status is AgentStatus.FINISHED
    # Every node's own bank saw its effect at most once; a promoted
    # takeover moves a step's effect to the alternate's bank, so the
    # global sum is the exactly-once witness here.
    total_moved = sum(1_000 - bank_of(world, f"n{i}").peek("a")["balance"]
                      for i in range(4))
    assert total_moved == 40
    for i in range(4):
        moved = 1_000 - bank_of(world, f"n{i}").peek("a")["balance"]
        assert moved % 10 == 0 and 0 <= moved <= 30


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_crash_free_runs_are_seed_invariant_in_outcome(seed):
    world, record = run_world([], seed=seed)
    assert record.status is AgentStatus.FINISHED
    assert record.steps_committed == 5
    assert record.result["pos"] == 4
