"""Unit-level tests: fault-tolerance internals (shadows, watchdog)."""


from repro.agent.packages import AgentPackage, PackageKind
from repro.log.rollback_log import RollbackLog

from tests.helpers import LinearAgent, build_line_world


def make_package(agent_id="ft-unit", kind=PackageKind.STEP, **meta):
    agent = LinearAgent(agent_id, ["n0"])
    agent.set_control("n0", "step")
    return AgentPackage.pack(kind, agent, RollbackLog(), step_index=0,
                             **meta)


def test_alternates_for_step_vs_compensation_packages():
    world = build_line_world(3)
    world.ft.set_alternates("n1", "n2", "n1")  # self filtered out
    step_package = make_package()
    assert world.ft.alternates_for("n1", step_package) == ("n2",)
    assert world.ft.alternates_for("n0", step_package) == ()
    comp_package = make_package(
        "ft-unit-2", PackageKind.COMPENSATION, sp_id="sp",
        alternates=("alt-a", "n1"))
    # Compensation packages carry their own alternates (from the EOS);
    # the destination itself is filtered.
    assert world.ft.alternates_for("n1", comp_package) == ("alt-a",)


def test_shadow_ship_and_arrival_enqueues_inert_copy():
    world = build_line_world(3)
    package = make_package("ft-ship", primary="n1")
    world.ft.ship_shadows(world.node("n0"), package, ("n2",))
    world.run(until=0.1)
    items = world.node("n2").queue.items()
    assert len(items) == 1
    shadow = items[0].payload
    assert shadow.kind is PackageKind.SHADOW
    assert shadow.work_id == package.work_id
    # Inert: dispatching it does nothing.
    world.run(until=0.15)
    assert len(world.node("n2").queue) == 1


def test_shadow_discarded_once_work_claimed():
    world = build_line_world(3, ft_takeover_timeout=0.05)
    package = make_package("ft-claimed", primary="n1")
    world.ft.ship_shadows(world.node("n0"), package, ("n2",))
    from repro.tx.manager import Transaction
    t = Transaction("step", "n1")
    assert world.ft.claim(t, package.work_id, "n1") == "acquired"
    t.commit()
    world.run(until=1.0)
    assert len(world.node("n2").queue) == 0
    assert world.metrics.count("ft.shadows_discarded") == 1


def test_shadow_expires_after_max_rounds():
    from repro import FTParams

    world = build_line_world(
        3, ft_params=FTParams(takeover_timeout=0.01, max_takeover_rounds=3))
    package = make_package("ft-expire", primary="n1")
    # Primary stays up and never claims: the shadow must expire.
    world.ft.ship_shadows(world.node("n0"), package, ("n2",))
    world.run(until=2.0)
    assert len(world.node("n2").queue) == 0
    assert world.metrics.count("ft.shadows_discarded") == 1
    assert world.ft.promotions == 0


def test_promotion_requires_primary_down_and_unclaimed():
    world = build_line_world(3, ft_takeover_timeout=0.05)
    package = make_package("ft-promote", primary="n1")
    world.ft.ship_shadows(world.node("n0"), package, ("n2",))
    world.failures.force_crash("n1")
    world.run(until=0.5)
    # Promoted and dispatched (the promoted STEP package for agent
    # 'ft-promote' was consumed as stale — its agent record is absent,
    # so _consume removed it; what matters here is the promotion).
    assert world.metrics.count("ft.promotions") == 1


def test_ledger_charges_and_participant():
    world = build_line_world(2)
    from repro.tx.manager import Transaction
    t = Transaction("step", "n0")
    world.ft.claim(t, work_id=999, node="n0")
    assert "__ledger__" in t.participants
    assert t.cost > 0
    # Ledger participant never blocks commit while home is up.
    assert world.coordinator.try_commit(t)
