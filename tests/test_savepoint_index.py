"""Tests: O(1) savepoint index and lazy log hydration.

Two ROADMAP items of the rollback log:

* savepoint queries (`has_savepoint` / `steps_to_rollback` /
  `reconstruct_sro` / `discard_savepoint` target lookup) run off an
  ``sp_id → position`` index maintained alongside the incremental frame
  list, instead of scanning the entries — including across pops,
  transactional undos, discards and truncates (``validate()`` now
  cross-checks the index, so these tests lean on it);
* ``AgentPackage.unpack()`` adopts the entry frames lazily and hydrates
  an entry only on first read, with the packed index riding along so
  savepoint queries on a fresh unpack hydrate nothing at all.
"""

import pytest

from repro.agent.packages import AgentPackage, PackageKind
from repro.errors import UsageError
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
    SavepointEntry,
)
from repro.log.rollback_log import RollbackLog
from repro.storage import serialization
from repro.storage.serialization import capture, restore
from repro.tx.manager import Transaction

from tests.helpers import LinearAgent


def sp(sp_id, payload=None, virtual=False):
    return SavepointEntry(sp_id=sp_id, mode="state",
                          payload=payload if payload is not None else {},
                          virtual=virtual)


def step(log, node, index, tx=None, n_ops=1):
    log.append(BeginOfStepEntry(node=node, step_index=index), tx)
    for i in range(n_ops):
        log.append(OperationEntry(op_kind=OperationKind.AGENT,
                                  op_name="t.mark",
                                  params={"tag": f"{index}.{i}"}), tx)
    log.append(EndOfStepEntry(node=node, step_index=index), tx)


def touring_log(n_steps=4, sp_every=2):
    log = RollbackLog()
    for i in range(n_steps):
        if i % sp_every == 0:
            log.append(sp(f"sp-{i}", payload={"pos": i}))
        step(log, f"n{i}", i)
    return log


# -- index correctness across mutations ----------------------------------------


def test_index_tracks_appends_and_steps_to_rollback():
    log = touring_log(6, sp_every=2)
    log.validate()  # includes index-vs-entries cross-check
    assert log.has_savepoint("sp-0")
    assert log.has_savepoint("sp-4")
    assert not log.has_savepoint("sp-5")
    assert log.steps_to_rollback("sp-0") == 6
    assert log.steps_to_rollback("sp-2") == 4
    assert log.steps_to_rollback("sp-4") == 2
    with pytest.raises(UsageError):
        log.steps_to_rollback("missing")


def test_index_tracks_pops_and_tx_undo():
    log = touring_log(4, sp_every=2)
    tx = Transaction("comp", "n3")
    # Pop step 3 entirely plus the sp-2 savepoint.
    for _ in range(3):
        log.pop(tx)
    assert log.steps_to_rollback("sp-2") == 1
    log.pop(tx)  # EOS of step 2
    log.pop(tx)  # OE
    log.pop(tx)  # BOS
    log.pop(tx)  # SP sp-2 itself
    assert not log.has_savepoint("sp-2")
    assert log.steps_to_rollback("sp-0") == 2
    log.validate()
    tx.abort()
    # The undos must restore index state exactly.
    assert log.has_savepoint("sp-2")
    assert log.steps_to_rollback("sp-2") == 2
    assert log.steps_to_rollback("sp-0") == 4
    log.validate()


def test_index_survives_discard_and_its_undo():
    log = touring_log(4, sp_every=2)
    assert log.discard_savepoint("sp-0")
    assert not log.has_savepoint("sp-0")
    assert log.has_savepoint("sp-2")
    assert log.steps_to_rollback("sp-2") == 2
    log.validate()

    tx = Transaction("step", "n0")
    assert log.discard_savepoint("sp-2", tx)
    assert not log.has_savepoint("sp-2")
    tx.abort()
    assert log.has_savepoint("sp-2")
    assert log.steps_to_rollback("sp-2") == 2
    log.validate()


def test_index_survives_truncate_and_its_undo():
    log = touring_log(4, sp_every=2)
    tx = Transaction("step", "n0")
    log.truncate(tx)
    assert not log.has_savepoint("sp-0")
    assert log.savepoint_ids() == []
    log.validate()
    tx.abort()
    assert log.savepoint_ids() == ["sp-0", "sp-2"]
    assert log.steps_to_rollback("sp-0") == 4
    log.validate()


def test_index_rebuilds_after_wholesale_pickle():
    log = touring_log(4, sp_every=2)
    clone = restore(capture(log))
    assert clone.savepoint_ids() == ["sp-0", "sp-2"]
    assert clone.steps_to_rollback("sp-2") == 2
    clone.validate()


def test_last_real_savepoint_id_skips_virtuals():
    log = RollbackLog()
    assert log.last_real_savepoint_id() is None
    log.append(sp("base", payload={"x": 1}))
    log.append(sp("virt", virtual=True, payload=None))
    assert log.last_real_savepoint_id() == "base"
    log.append(sp("later", payload={"x": 2}))
    assert log.last_real_savepoint_id() == "later"


def test_validate_detects_index_drift():
    log = touring_log(2)
    log._eos_count += 1  # simulate a maintenance bug
    with pytest.raises(Exception, match="savepoint index drift"):
        log.validate()


# -- lazy hydration -------------------------------------------------------------


def make_package(n_steps=4):
    agent = LinearAgent("lazy-1", ["n0"])
    log = touring_log(n_steps, sp_every=2)
    return AgentPackage.pack(PackageKind.STEP, agent, log,
                             step_index=n_steps)


def test_unpack_hydrates_nothing_eagerly():
    package = make_package()
    serialization.reset_stats()
    _agent, log = package.unpack()
    stats = serialization.stats()
    assert stats["entry_hydrated"] == 0
    assert stats["entry_hydration_deferred"] == len(package.log_blobs)
    assert len(log) == len(package.log_blobs)
    assert log.size_bytes() > 0  # size accounting needs no hydration


def test_savepoint_queries_on_fresh_unpack_hydrate_nothing():
    package = make_package()
    _agent, log = package.unpack()
    serialization.reset_stats()
    # The packed index answers these without touching a single frame.
    assert log.has_savepoint("sp-2")
    assert not log.has_savepoint("nope")
    assert log.steps_to_rollback("sp-0") == 4
    assert log.savepoint_ids() == ["sp-0", "sp-2"]
    assert serialization.stats()["entry_hydrated"] == 0


def test_append_and_repack_hydrate_nothing():
    package = make_package()
    agent, log = package.unpack()
    serialization.reset_stats()
    step(log, "n9", 9)  # the next hop's entries
    repacked = AgentPackage.pack(PackageKind.STEP, agent, log,
                                 step_index=9)
    stats = serialization.stats()
    assert stats["entry_hydrated"] == 0
    assert stats["entry_blob_serialized"] == 3  # only the new entries
    assert repacked.log_blobs[:len(package.log_blobs)] == package.log_blobs


def test_rollback_tail_reads_hydrate_only_the_tail():
    package = make_package(n_steps=4)  # 14 entries, SPs at 0 and 7
    _agent, log = package.unpack()
    serialization.reset_stats()
    # One compensation transaction's worth of tail reads: the last
    # step frame (EOS + 1 OE + BOS = 3 entries).
    assert log.blocking_non_compensatable("sp-2") is None
    for _ in range(3):
        log.pop()
    hydrated = serialization.stats()["entry_hydrated"]
    assert 0 < hydrated < len(package.log_blobs)


def test_hydrated_entries_match_eager_restore():
    package = make_package()
    _agent, lazy = package.unpack()
    eager = [restore(blob) for blob in package.log_blobs]
    assert [e.kind for e in lazy.entries()] == [e.kind for e in eager]
    assert lazy.reconstruct_sro("sp-2") == {"pos": 2}
    lazy.validate()


def test_lazy_unpack_preserves_state_boundary():
    package = make_package()
    _agent, log = package.unpack()
    first = log.entries()[0]
    first.payload["pos"] = 99
    # A fresh unpack rebuilds from the untouched frames.
    _agent2, fresh = package.unpack()
    assert fresh.entries()[0].payload == {"pos": 0}


def test_packed_index_round_trips_through_shadow_copies():
    package = make_package()
    shadow = package.as_kind(PackageKind.SHADOW, primary="n0")
    _agent, log = shadow.unpack()
    serialization.reset_stats()
    assert log.has_savepoint("sp-2")
    assert serialization.stats()["entry_hydrated"] == 0
