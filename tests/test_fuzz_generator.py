"""The seeded fuzzer: generator stability, oracle nets, repro strings.

The golden-digest test is the cross-version seed-stability gate: the
SHA-256 of a case's canonical JSON must be identical on every
supported Python (3.10-3.13) — the generator draws from one
``random.Random(seed)`` stream (Mersenne Twister, version-stable),
rounds floats to three decimals, and serialises with sorted keys, so
the digests below must never change without bumping
``GENERATOR_VERSION``.
"""

import os

import pytest

from repro.fuzz import (
    GENERATOR_VERSION,
    FuzzCase,
    canonical_json,
    case_digest,
    case_from_repro,
    check_case,
    generate_case,
    parse_repro,
    predict,
    repro_string,
    validate_case,
)
from repro.scenarios import INJECT_BUG_ENV

#: Golden cross-version digests; a change means the generator changed
#: and GENERATOR_VERSION must be bumped (old repro strings go stale).
GOLDEN_DIGESTS = {
    0: "b7e1160fc217d6f6207cd82e261862909c7c47becad57f89d0e10d4dd9e11195",
    1: "f7d653c19e6dae630fa68feb9ee32db2db195ea4b490cf56fddc6bfd85334c17",
    2: "cb0a4b97427dc551358c6e64509e2e72c158640737d77782e4126e93e0530fdd",
    17: "0948549041dfe89baf8bb224aac9b6979831d5b81e1af714032ab3f0a96d3fbf",
}


@pytest.mark.parametrize("seed", sorted(GOLDEN_DIGESTS))
def test_seed_stability_golden_digests(seed):
    assert case_digest(generate_case(seed)) == GOLDEN_DIGESTS[seed]


def test_same_seed_same_bytes_fresh_stream_each_call():
    a = canonical_json(generate_case(3))
    generate_case(99)  # interleaved draw must not perturb the stream
    assert canonical_json(generate_case(3)) == a


def test_generated_cases_satisfy_structural_contract():
    for seed in range(120):
        case = generate_case(seed)  # generate_case validates internally
        validate_case(case)
        assert case.version == GENERATOR_VERSION


def test_json_roundtrip_is_identity():
    case = generate_case(17)
    clone = FuzzCase.from_json(case.to_json())
    assert canonical_json(clone) == canonical_json(case)
    assert case_digest(clone) == GOLDEN_DIGESTS[17]


def test_generator_covers_the_interesting_axes():
    """The seed space actually exercises rollbacks, semantic ops, ship
    ratchets, crashes and shard outages — not just straight-line runs."""
    seen = set()
    for seed in range(60):
        case = generate_case(seed)
        if case.crashes:
            seen.add("crash")
        if case.outage is not None:
            seen.add("outage")
        for plan in case.agents:
            for spec in plan.steps:
                seen.add(spec.op)
    assert {"rollback", "book", "reserve", "ship", "promise",
            "crash", "outage"} <= seen


def test_repro_string_roundtrip():
    assert parse_repro(repro_string(42)) == 42
    assert case_digest(case_from_repro(repro_string(17))) == \
        GOLDEN_DIGESTS[17]


@pytest.mark.parametrize("bad", ["", "seed=3", "fuzz:seed=3",
                                 "fuzz:v1:seed=x", "fuzz:x1:seed=3"])
def test_malformed_repro_strings_rejected(bad):
    with pytest.raises(ValueError):
        parse_repro(bad)


def test_wrong_generator_version_rejected_with_pointer_to_corpus():
    with pytest.raises(ValueError, match="corpus"):
        parse_repro(f"fuzz:v{GENERATOR_VERSION + 1}:seed=3")


def test_validate_rejects_contract_breaches():
    case = generate_case(0)
    case.crashes = [{"node": "nope", "at": 1.0, "down": 0.5}]
    with pytest.raises(ValueError, match="unknown node"):
        validate_case(case)
    case = generate_case(0)
    case.outage = {"shard": 9, "at": 1.0, "restart_at": 2.0}
    with pytest.raises(ValueError, match="shard"):
        validate_case(case)


# -- the oracle nets catch an injected semantic-compensation bug ------------------

#: A seed whose itinerary compensates a booked (fee-bearing) step, so
#: the refund-minus-fee path actually runs (verified by a coverage
#: scan over seeds 0-200).
FEE_SEED = 2


def test_injected_refund_bug_is_caught_and_reproduces(monkeypatch):
    """With ``REPRO_FUZZ_INJECT_BUG=refund-full`` the un-book
    compensation refunds the fee too.  All backends execute the same
    buggy operation, so only the model net can see it — and the
    emitted repro string must reproduce the finding on its own."""
    case = generate_case(FEE_SEED)
    assert check_case(case, backends=("world",)) == []  # clean baseline
    monkeypatch.setenv(INJECT_BUG_ENV, "refund-full")
    failures = check_case(case, backends=("world",))
    assert failures, "injected bug was not detected"
    assert any("fees" in message or "customer" in message
               for message in failures)
    # One-line reproduction: string -> case -> same finding.
    replay = check_case(case_from_repro(repro_string(FEE_SEED)),
                        backends=("world",))
    assert replay == failures


def test_bug_injection_is_off_by_default():
    assert os.environ.get(INJECT_BUG_ENV) is None
    assert check_case(generate_case(FEE_SEED), backends=("world",)) == []


def test_model_predicts_fee_residue_for_fee_seed():
    expected = predict(generate_case(FEE_SEED))
    assert expected["totals"]["fees"] > 0
