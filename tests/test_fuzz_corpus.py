"""Replay the committed fuzz regression corpus (tier-1).

Every ``tests/fuzz_corpus/seed-*.json`` stores a full serialised
:class:`~repro.fuzz.FuzzCase` — not just a seed — so entries stay
replayable even after the generator evolves past the version that
found them.  Each entry is cross-checked on the unsharded and the
in-process sharded backend plus the model oracle; the multiprocess
backend runs the same cases through the differential suite's soak
tier, keeping this replay cheap enough for every CI run.

A new divergence found by the nightly fuzz lane gets added here:
``python -m repro fuzz --repro <string>`` to confirm, then serialise
the case (see docs/fuzzing.md).
"""

import json
import pathlib

import pytest

from repro.fuzz import FuzzCase, case_digest, check_case, validate_case

CORPUS_DIR = pathlib.Path(__file__).parent / "fuzz_corpus"
ENTRIES = sorted(CORPUS_DIR.glob("seed-*.json"))


def load(path):
    return json.loads(path.read_text())


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_is_well_formed(path):
    data = load(path)
    case = FuzzCase.from_json(data)
    validate_case(case)
    # The committed digest pins the case bytes: an accidental hand-edit
    # of an entry fails here instead of silently weakening the corpus.
    assert case_digest(case) == data["digest"], path.name


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    case = FuzzCase.from_json(load(path))
    failures = check_case(case, backends=("world", "sharded"))
    assert failures == [], f"{path.name}: {failures}"
