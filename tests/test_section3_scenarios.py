"""End-to-end reproductions of Section 3.2's worked scenarios.

Each subsection of the compensation-type taxonomy gets the full-system
treatment: two agents (or an agent and an external transaction) racing
on shared resources, with the paper's predicted outcome asserted.
"""


from repro import (
    AgentStatus,
    Mint,
    MobileAgent,
    RollbackMode,
    Shop,
    World,
    mixed_compensation,
)
from repro.compensation.outcomes import CompensationOutcome
from repro.resources.shop import RefundPolicy

from tests.helpers import bank_of, build_line_world


# ---------------------------------------------------------------------------
# "if I have enough money, then ..." — commuting ops vs balance reader
# ---------------------------------------------------------------------------

class Depositor(MobileAgent):
    """T: deposit 50, savepoint... then compensate (withdraw 50)."""

    def run(self, ctx):
        ctx.savepoint("sp")
        ctx.goto("n0", "work")

    def work(self, ctx):
        if self.wro.get("marks"):
            # Post-rollback pass: don't repeat the deposit.
            ctx.goto("n1", "pause")
            return
        bank = ctx.resource("bank")
        bank.deposit("shared", 50)
        ctx.log_resource_compensation(
            "t.undo_deposit", {"account": "shared", "amount": 50},
            resource="bank")
        ctx.log_agent_compensation("t.mark", {"tag": "undone"})
        ctx.goto("n1", "pause")

    def pause(self, ctx):
        ctx.goto("n0", "decide")

    def decide(self, ctx):
        if not self.wro.get("marks"):
            ctx.rollback("sp")
        ctx.finish("compensated")


class ConditionalSpender(MobileAgent):
    """dep(T): spends only if the balance clears a threshold."""

    def run(self, ctx):
        bank = ctx.resource("bank")
        spent = bank.conditional_withdraw("shared", 30, threshold=60)
        self.sro["spent"] = spent
        ctx.finish(spent)


def race(seed, spender_delay):
    world = build_line_world(2, seed=seed)
    bank = bank_of(world, "n0")
    bank.seed_account("shared", 20)
    depositor = Depositor(f"T-{seed}-{spender_delay}")
    spender = ConditionalSpender(f"dep-{seed}-{spender_delay}")
    rd = world.launch(depositor, at="n0", method="run",
                      mode=RollbackMode.BASIC)
    rs_holder = {}

    def launch_spender():
        rs_holder["record"] = world.launch(spender, at="n0", method="run")

    world.sim.schedule(spender_delay, launch_spender)
    world.run(max_events=500_000)
    return world, bank, rd, rs_holder["record"]


def test_dependent_reader_breaks_soundness_concretely():
    """The spender's outcome depends on WHEN it reads the balance
    relative to T and CT — the concrete unsoundness of Section 3.2.

    Before T commits (or after CT): balance 20 < 60 => no spend.
    Between T and CT: balance 70 >= 60 => spend happens, and it is NOT
    undone by T's compensation.
    """
    # Spender runs long after the rollback finished: sees 20, no spend.
    world, bank, rd, rs = race(seed=61, spender_delay=5.0)
    assert rd.status is AgentStatus.FINISHED
    assert rs.result is False
    assert bank.peek("shared")["balance"] == 20

    # Spender sneaks in between T's commit and the compensation:
    # balance 20+50=70 >= 60, so it spends 30.  The compensation must
    # then withdraw 50 from the remaining 40 of a non-overdraftable
    # account: it fails and keeps failing — the Section 3.2
    # failing-compensation example emerging from the soundness example.
    world, bank, rd, rs = race(seed=62, spender_delay=0.09)
    assert rs.result is True
    assert bank.peek("shared")["balance"] == 40
    assert world.metrics.count("compensation.op_failures") >= 1
    assert rd.status is AgentStatus.FAILED
    assert "permanently failing" in rd.failure


# ---------------------------------------------------------------------------
# Out-of-stock race: T1 buys elsewhere because T2 took the last item
# ---------------------------------------------------------------------------

@mixed_compensation("s3.return_item")
def s3_return_item(wro, shop, params, ctx):
    coins, note, fee = shop.refund(params["receipt_id"], ctx.now)
    wro["purse"] = list(wro.get("purse", [])) + list(coins)
    wro["bought_at"] = None
    wro["returned"] = True


class Buyer(MobileAgent):
    """Tries the preferred shop; if out of stock buys at the fallback."""

    def __init__(self, agent_id, preferred, fallback):
        super().__init__(agent_id)
        self.preferred = preferred
        self.fallback = fallback

    def fund(self, ctx):
        mint = ctx.resource("mint")
        mint.fund(100)
        self.wro["purse"] = mint.issue(100, 1)
        ctx.goto(self.preferred, "try_buy")

    def try_buy(self, ctx):
        shop = ctx.resource("shop")
        if shop.in_stock("gadget") < 1:
            self.sro["fell_back"] = True
            ctx.goto(self.fallback, "buy_fallback")
            return
        receipt, change = shop.buy("gadget", 1, self.wro["purse"], ctx.now)
        self.wro["purse"] = list(change)
        self.wro["bought_at"] = ctx.node_name
        ctx.log_mixed_compensation("s3.return_item",
                                   {"receipt_id": receipt.receipt_id},
                                   resource="shop")
        ctx.finish({"bought_at": ctx.node_name})

    def buy_fallback(self, ctx):
        shop = ctx.resource("shop")
        receipt, change = shop.buy("gadget", 1, self.wro["purse"], ctx.now)
        self.wro["purse"] = list(change)
        self.wro["bought_at"] = ctx.node_name
        ctx.finish({"bought_at": ctx.node_name, "fell_back": True})


class RegretfulBuyer(Buyer):
    """Buys at the preferred shop, then rolls its purchase back."""

    def fund(self, ctx):
        mint = ctx.resource("mint")
        mint.fund(100)
        self.wro["purse"] = mint.issue(100, 1)
        ctx.savepoint("funded")
        ctx.goto(self.preferred, "try_buy")

    def try_buy(self, ctx):
        if self.wro.get("returned"):
            ctx.finish({"returned": True})
            return
        shop = ctx.resource("shop")
        receipt, change = shop.buy("gadget", 1, self.wro["purse"], ctx.now)
        self.wro["purse"] = list(change)
        ctx.log_mixed_compensation("s3.return_item",
                                   {"receipt_id": receipt.receipt_id},
                                   resource="shop")
        ctx.goto("home", "regret")

    def regret(self, ctx):
        if not self.wro.get("returned"):
            ctx.rollback("funded")
        ctx.finish({"returned": True})


def test_out_of_stock_race_t1_unaffected_by_t2_compensation():
    """Section 3.2: T2 takes the last item, T1 buys from another shop;
    compensating T2 later does not disturb T1's completed purchase —
    an acceptable non-sound history."""
    world = World(seed=63)
    world.add_nodes("home", "shop-a", "shop-b")
    mint = Mint("mint")
    world.node("home").add_resource(mint)
    shop_a = Shop("shop", mint, RefundPolicy())
    shop_a.stock_item("gadget", 1, 100)  # exactly one on the shelf
    world.node("shop-a").add_resource(shop_a)
    world.node("shop-a").share_resource(mint)
    shop_b = Shop("shop", mint, RefundPolicy())
    shop_b.stock_item("gadget", 5, 100)
    world.node("shop-b").add_resource(shop_b)
    world.node("shop-b").share_resource(mint)

    t2 = RegretfulBuyer("T2", preferred="shop-a", fallback="shop-b")
    t1 = Buyer("T1", preferred="shop-a", fallback="shop-b")
    r2 = world.launch(t2, at="home", method="fund",
                      mode=RollbackMode.BASIC)
    # T1 arrives after T2 bought the last gadget but before T2's
    # rollback returns it.
    holder = {}
    world.sim.schedule(
        0.06, lambda: holder.update(
            record=world.launch(t1, at="home", method="fund")))
    world.run(max_events=500_000)
    r1 = holder["record"]
    assert r2.status is AgentStatus.FINISHED
    assert r1.status is AgentStatus.FINISHED
    # T1 fell back to shop-b (shelf was empty when it looked)...
    assert r1.result["bought_at"] == "shop-b"
    # ...and T2's later compensation restocked shop-a without touching
    # T1's purchase.
    assert shop_a.peek(("stock", "gadget")) == 1
    assert shop_b.peek(("stock", "gadget")) == 4
    assert r2.result == {"returned": True}


# ---------------------------------------------------------------------------
# taxonomy sanity
# ---------------------------------------------------------------------------

def test_outcome_taxonomy_flags():
    assert CompensationOutcome.SOUND.restores_exactly
    assert not CompensationOutcome.EQUIVALENT.restores_exactly
    assert CompensationOutcome.FAILABLE.rollback_possible
    assert not CompensationOutcome.IMPOSSIBLE.rollback_possible
