"""Unit tests: the agent rollback log (Section 4.2, Figure 2)."""

import pytest

from repro.errors import LogCorrupt, UsageError
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
    SavepointEntry,
)
from repro.log.rollback_log import RollbackLog
from repro.tx.manager import Transaction


def sp(sp_id, payload=None, virtual=False):
    return SavepointEntry(sp_id=sp_id, mode="state",
                          payload=payload if payload is not None else {},
                          virtual=virtual)


def bos(node, index):
    return BeginOfStepEntry(node=node, step_index=index)


def eos(node, index, mixed=False, **kw):
    return EndOfStepEntry(node=node, step_index=index, has_mixed=mixed, **kw)


def oe(name="op", kind=OperationKind.RESOURCE, node="n1", resource="bank"):
    return OperationEntry(op_kind=kind, op_name=name, params={},
                          node=node, resource=resource)


def figure2_log():
    """The exact shape of Figure 2: ... SP_k BOS_n OE*p EOS_n BOS_n+1..."""
    log = RollbackLog()
    log.append(sp("sp-k"))
    log.append(bos("n5", 7))
    for i in range(3):
        log.append(oe(f"op-{i}"))
    log.append(eos("n5", 7))
    return log


def test_figure2_entry_sequence():
    log = figure2_log()
    kinds = [e.kind.value for e in log.entries()]
    assert kinds == ["SP", "BOS", "OE", "OE", "OE", "EOS"]
    log.validate()


def test_pop_yields_reverse_order_and_tx_abort_restores():
    log = figure2_log()
    before = log.entries()
    t = Transaction("comp", "n5")
    popped = [log.pop(t) for _ in range(4)]
    assert [getattr(e, "op_name", e.kind.value) for e in popped] == \
        ["EOS", "op-2", "op-1", "op-0"]
    t.abort()
    assert log.entries() == before


def test_append_with_tx_abort_removes():
    log = RollbackLog()
    t = Transaction("step", "n1")
    log.append(sp("s1"), t)
    t.abort()
    assert len(log) == 0


def test_pop_empty_raises():
    with pytest.raises(LogCorrupt):
        RollbackLog().pop()


def test_savepoint_reached_only_when_last():
    log = figure2_log()
    assert not log.savepoint_reached("sp-k")
    t = Transaction("comp", "n5")
    for _ in range(5):
        log.pop(t)
    assert log.savepoint_reached("sp-k")
    assert not log.savepoint_reached("other")


def test_last_end_of_step_skips_trailing_savepoints():
    log = figure2_log()
    assert log.last_end_of_step().node == "n5"
    log.append(sp("sp-k+1"))
    assert log.last_end_of_step().node == "n5"
    # A trailing BOS (open frame) means no EOS is exposed.
    log2 = RollbackLog()
    log2.append(bos("n1", 0))
    assert log2.last_end_of_step() is None


def test_steps_to_rollback_counts_eos_entries():
    log = RollbackLog()
    log.append(sp("target"))
    for i in range(3):
        log.append(bos("n", i))
        log.append(eos("n", i))
    assert log.steps_to_rollback("target") == 3
    with pytest.raises(UsageError):
        log.steps_to_rollback("missing")


def test_blocking_non_compensatable_detected():
    log = RollbackLog()
    log.append(sp("target"))
    log.append(bos("n", 0))
    log.append(eos("n", 0, non_compensatable=True))
    log.append(bos("n", 1))
    log.append(eos("n", 1))
    blocker = log.blocking_non_compensatable("target")
    assert blocker is not None and blocker.step_index == 0
    # A savepoint *after* the blocker is unaffected.
    log.append(sp("late"))
    log.append(bos("n", 2))
    log.append(eos("n", 2))
    assert log.blocking_non_compensatable("late") is None


def test_reconstruct_sro_state_logging_returns_deep_copy():
    log = RollbackLog()
    image = {"vec": [1, 2]}
    log.append(sp("s1", payload=image))
    restored = log.reconstruct_sro("s1")
    restored["vec"].append(3)
    assert log.reconstruct_sro("s1") == {"vec": [1, 2]}


def test_reconstruct_virtual_savepoint_follows_to_real():
    log = RollbackLog()
    log.append(sp("real", payload={"x": 1}))
    log.append(sp("virt", virtual=True, payload=None))
    assert log.reconstruct_sro("virt") == {"x": 1}


def test_virtual_savepoint_without_real_below_is_corrupt():
    log = RollbackLog()
    log.append(sp("virt", virtual=True, payload=None))
    with pytest.raises(LogCorrupt):
        log.reconstruct_sro("virt")


def test_discard_savepoint_removes_only_the_savepoint():
    log = figure2_log()
    assert log.discard_savepoint("sp-k")
    assert [e.kind.value for e in log.entries()] == \
        ["BOS", "OE", "OE", "OE", "EOS"]
    assert not log.discard_savepoint("sp-k")  # idempotent


def test_discard_savepoint_tx_abort_restores():
    log = figure2_log()
    t = Transaction("step", "n1")
    log.discard_savepoint("sp-k", t)
    t.abort()
    assert log.has_savepoint("sp-k")
    assert log.entries()[0].sp_id == "sp-k"


def test_truncate_drops_everything_and_tx_abort_restores():
    log = figure2_log()
    t = Transaction("step", "n1")
    dropped = log.truncate(t)
    assert dropped == 6 and len(log) == 0
    t.abort()
    assert len(log) == 6


def test_size_bytes_tracks_content():
    log = RollbackLog()
    empty = log.size_bytes()
    log.append(sp("s1", payload={"blob": b"x" * 5_000}))
    assert log.size_bytes() > empty + 4_000


def test_validate_rejects_malformed_logs():
    bad_nested = RollbackLog()
    bad_nested.append(bos("n", 0))
    bad_nested.append(bos("n", 1))
    with pytest.raises(LogCorrupt, match="nested BOS"):
        bad_nested.validate()

    bad_eos = RollbackLog()
    bad_eos.append(eos("n", 0))
    with pytest.raises(LogCorrupt, match="EOS without BOS"):
        bad_eos.validate()

    bad_match = RollbackLog()
    bad_match.append(bos("n", 0))
    bad_match.append(eos("m", 0))
    with pytest.raises(LogCorrupt, match="does not match"):
        bad_match.validate()

    bad_oe = RollbackLog()
    bad_oe.append(oe())
    with pytest.raises(LogCorrupt, match="outside"):
        bad_oe.validate()

    bad_sp = RollbackLog()
    bad_sp.append(bos("n", 0))
    bad_sp.append(sp("s"))
    with pytest.raises(LogCorrupt, match="savepoint inside"):
        bad_sp.validate()

    bad_flag = RollbackLog()
    bad_flag.append(bos("n", 0))
    bad_flag.append(oe(kind=OperationKind.MIXED))
    bad_flag.append(eos("n", 0, mixed=False))
    with pytest.raises(LogCorrupt, match="mixed flag"):
        bad_flag.validate()

    open_frame = RollbackLog()
    open_frame.append(bos("n", 0))
    with pytest.raises(LogCorrupt, match="open step frame"):
        open_frame.validate()


def test_savepoint_ids_in_order():
    log = RollbackLog()
    log.append(sp("a"))
    log.append(bos("n", 0))
    log.append(eos("n", 0))
    log.append(sp("b"))
    assert log.savepoint_ids() == ["a", "b"]
