"""Unit tests: digital cash mint (equivalent-state compensation)."""

import pytest

from repro.errors import UsageError
from repro.resources.cash import Coin, Mint, purse_value
from repro.tx.manager import Transaction


def tx():
    return Transaction("test", "n1")


@pytest.fixture
def mint():
    m = Mint("mint")
    m.seed("float", 1_000)
    return m


def test_issue_reduces_float_and_tracks_serials(mint):
    t = tx()
    coins = mint.issue(t, 100, 3)
    t.commit()
    assert len(coins) == 3
    assert mint.float_value() == 700
    assert len({c.serial for c in coins}) == 3
    assert mint.live_serials() == {c.serial for c in coins}


def test_issue_beyond_float_rejected(mint):
    with pytest.raises(UsageError):
        mint.issue(tx(), 600, 2)


def test_redeem_returns_value_and_retires_serials(mint):
    t = tx()
    coins = mint.issue(t, 50, 2)
    assert mint.redeem(t, coins) == 100
    t.commit()
    assert mint.float_value() == 1_000
    assert mint.live_serials() == set()


def test_double_spend_detected(mint):
    t = tx()
    coins = mint.issue(t, 50, 1)
    mint.redeem(t, coins)
    with pytest.raises(UsageError, match="double spend"):
        mint.redeem(t, coins)


def test_reissue_preserves_value_but_changes_serials(mint):
    """Section 3.2: compensation returns an *equivalent* state only."""
    t = tx()
    original = mint.issue(t, 100, 2)
    fresh = mint.reissue(t, original)
    t.commit()
    assert purse_value(fresh) == 200
    assert {c.serial for c in fresh}.isdisjoint(
        {c.serial for c in original})
    # The originals are worthless now.
    assert not mint.is_live(tx(), original[0])


def test_reissue_empty_purse(mint):
    assert mint.reissue(tx(), []) == []


def test_abort_undoes_issuance(mint):
    t = tx()
    coins = mint.issue(t, 100, 1)
    t.abort()
    assert mint.float_value() == 1_000
    assert mint.live_serials() == set()
    assert not mint.is_live(tx(), coins[0])


def test_purse_value_filters_currency():
    coins = [Coin("s1", 100, "USD"), Coin("s2", 50, "EUR")]
    assert purse_value(coins) == 150
    assert purse_value(coins, "USD") == 100
    assert purse_value(coins, "EUR") == 50


def test_fund_adds_backing(mint):
    t = tx()
    mint.fund(t, 500)
    t.commit()
    assert mint.float_value() == 1_500
