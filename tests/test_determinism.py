"""Whole-run determinism: identical seeds produce identical worlds.

The simulation's reproducibility contract: every stochastic choice
derives from the kernel seed, so two runs of the same scenario are
byte-identical in outcome, metrics and event timeline — the property
that makes the benches stable and failures replayable.
"""

import pytest

from repro import AgentStatus, RollbackMode
from repro.bench import make_tour_plan, run_tour
from repro.bench.harness import build_tour_world


def run_once(seed, outages):
    nodes = [f"n{i}" for i in range(4)]
    plan = make_tour_plan(nodes, 6, mixed_fraction=0.4, ace_fraction=0.2,
                          rollback_depth=5)
    world = build_tour_world(4, seed=seed)
    if outages:
        world.failures.random_outages(nodes, horizon=10.0, rate_per_s=0.4,
                                      mean_downtime=0.2)
    result = run_tour(plan, 4, mode=RollbackMode.OPTIMIZED, seed=seed,
                      world=world, max_events=3_000_000)
    return world, result


@pytest.mark.parametrize("outages", [False, True])
def test_identical_seed_identical_world(outages):
    world_a, result_a = run_once(17, outages)
    world_b, result_b = run_once(17, outages)
    assert result_a.status is result_b.status is AgentStatus.FINISHED
    assert result_a.result == result_b.result
    assert result_a.sim_time == result_b.sim_time
    assert result_a.finished_at == result_b.finished_at
    assert world_a.metrics.summary() == world_b.metrics.summary()
    # Timelines identical except agent ids embed the seed (same here).
    timeline_a = [(t, k) for t, k, _ in world_a.metrics.timeline]
    timeline_b = [(t, k) for t, k, _ in world_b.metrics.timeline]
    assert timeline_a == timeline_b


def test_different_seed_different_schedule_same_outcome():
    _, result_a = run_once(18, outages=True)
    _, result_b = run_once(19, outages=True)
    # Different crash schedules => different times ...
    assert result_a.finished_at != result_b.finished_at
    # ... but the protocol guarantees identical logical outcomes.
    assert result_a.status is result_b.status is AgentStatus.FINISHED
    assert result_a.result == result_b.result
    assert result_a.rollbacks == result_b.rollbacks == 1
