"""End-to-end tests: transition logging through the full pipeline.

The unit tests cover the diff algebra; these run whole worlds with
``LoggingMode.TRANSITION`` and check that savepoint writing (protocol),
SRO restoration (rollback drivers) and savepoint discarding (itinerary
executor) all compose.
"""

import pytest

from repro import (
    AgentStatus,
    Itinerary,
    LoggingMode,
    RollbackMode,
    StepEntry,
    SubItinerary,
)
from repro.bench import make_tour_plan, run_tour
from repro.bench.harness import build_tour_world

from tests.helpers import LinearAgent, build_line_world
from tests.test_itinerary import Walker


@pytest.mark.parametrize("mode", [RollbackMode.BASIC,
                                  RollbackMode.OPTIMIZED])
def test_rollback_restores_sro_under_transition_logging(mode):
    plan = make_tour_plan([f"n{i}" for i in range(4)], 6,
                          mixed_fraction=0.3, savepoint_every=2,
                          rollback_depth=3)
    state_result = run_tour(plan, 4, mode=mode, seed=21,
                            logging_mode=LoggingMode.STATE)
    transition_result = run_tour(plan, 4, mode=mode, seed=21,
                                 logging_mode=LoggingMode.TRANSITION)
    assert state_result.status is AgentStatus.FINISHED
    assert transition_result.status is AgentStatus.FINISHED
    # Identical final agent state under both logging modes.
    assert state_result.result == transition_result.result


def test_multi_savepoint_rollback_transition_logging():
    world = build_line_world(4, logging_mode=LoggingMode.TRANSITION)
    agent = LinearAgent("trans", ["n0", "n1", "n2", "n3"],
                        savepoints={0: "sp0", 1: "sp1", 2: "sp2"},
                        rollback_to="sp1")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # Position restored to the sp1 value (2) and re-advanced to 4.
    assert record.result["pos"] == 4
    assert record.result["compensations"] == 2  # steps 2 and 3


def test_itinerary_discard_merges_diffs_in_running_world():
    """Savepoint discard under transition logging composes diffs; later
    rollbacks still restore correct state."""
    inner1 = SubItinerary("one", [StepEntry("visit", "n0"),
                                  StepEntry("visit", "n1")])
    inner2 = SubItinerary("two", [StepEntry("visit", "n2"),
                                  StepEntry("maybe_rollback", "n0")])
    outer = SubItinerary("outer", [inner1, inner2])
    itinerary = Itinerary().add(outer)
    world = build_line_world(3, logging_mode=LoggingMode.TRANSITION)
    agent = Walker(itinerary, "trans-walker")
    # Roll back the enclosing scope (outer) after inner1 completed and
    # its savepoint was discarded (diff merged upward).
    agent.sro["rollback_plan"] = {"levels": 1, "until_ticks": 3}
    record = world.launch_itinerary(agent)
    world.run(max_events=1_000_000)
    assert record.status is AgentStatus.FINISHED, record.failure
    assert record.rollbacks_completed == 1
    trace = record.result["trace"]
    # After the outer rollback everything re-executed from scratch.
    assert [n for _, n in trace] == ["n0", "n1", "n2", "n0"]
    assert record.result["ticks"] == 3


def test_transition_logging_smaller_migrations_for_big_sro():
    plan_kwargs = dict(ace_fraction=1.0, savepoint_every=1,
                       rollback_depth=1, rollback_times=0,
                       sro_ballast=20_000)
    nodes = [f"n{i}" for i in range(3)]
    plan = make_tour_plan(nodes, 8, **plan_kwargs)

    world_state = build_tour_world(3, seed=22,
                                   logging_mode=LoggingMode.STATE)
    run_tour(plan, 3, seed=22, world=world_state,
             logging_mode=LoggingMode.STATE)
    world_trans = build_tour_world(3, seed=22,
                                   logging_mode=LoggingMode.TRANSITION)
    run_tour(plan, 3, seed=22, world=world_trans,
             logging_mode=LoggingMode.TRANSITION)
    state_bytes = world_state.metrics.total_bytes("agent.transfers.step")
    trans_bytes = world_trans.metrics.total_bytes("agent.transfers.step")
    # A savepoint per step with a mostly-stable 20KB SRO: transition
    # logging moves far fewer bytes.
    assert trans_bytes < state_bytes / 2
