"""Integration tests: concurrent agents, isolation of compensation.

Section 4.3: executing the compensating operations inside a
compensation transaction "ensures that other transactions see either a
resource state affected by the step which has to be compensated or the
resource state after the compensation has taken place".
"""


from repro import AgentStatus, MobileAgent, RollbackMode
from repro.compensation.registry import resource_compensation

from tests.helpers import LinearAgent, bank_of, build_line_world


@resource_compensation("conc.slow_undo")
def conc_slow_undo(bank, params, ctx):
    """A deliberately chunky compensation (many ops => long tx)."""
    for _ in range(10):
        bank.deposit(params["account"], 0)
    bank.transfer(params["dst"], params["src"], params["amount"],
                  compensating=True)


class Transferer(MobileAgent):
    """Moves 100 a->b on n0 with a slow compensation, then rolls back."""

    def move(self, ctx):
        ctx.savepoint("sp")
        ctx.goto("n1", "far")

    def far(self, ctx):
        ctx.goto("n0", "move2")

    def move2(self, ctx):
        if self.wro.get("marks"):
            # Post-rollback pass: the compensation left its mark, so
            # the agent does not repeat the transfer.
            ctx.goto("n1", "decide")
            return
        bank = ctx.resource("bank")
        bank.transfer("a", "b", 100)
        ctx.log_resource_compensation(
            "conc.slow_undo",
            {"src": "a", "dst": "b", "amount": 100, "account": "a"},
            resource="bank")
        ctx.log_agent_compensation("t.mark", {"tag": "m"})
        ctx.goto("n1", "decide")

    def decide(self, ctx):
        if not self.wro.get("marks"):
            ctx.rollback("sp")
        ctx.finish("done")


class Observer(MobileAgent):
    """Repeatedly reads a+b on n0; must always see a consistent sum."""

    def watch(self, ctx):
        bank = ctx.resource("bank")
        total = bank.balance("a") + bank.balance("b")
        self.sro.setdefault("sums", []).append(total)
        if len(self.sro["sums"]) < 25:
            ctx.goto("n0", "watch")
        else:
            ctx.finish(self.sro["sums"])


def test_compensation_is_isolated_from_concurrent_readers():
    world = build_line_world(2)
    mover = Transferer("mover")
    observer = Observer("observer")
    r1 = world.launch(mover, at="n0", method="move",
                      mode=RollbackMode.BASIC)
    r2 = world.launch(observer, at="n0", method="watch")
    world.run(max_events=1_000_000)
    assert r1.status is AgentStatus.FINISHED
    assert r2.status is AgentStatus.FINISHED
    # Atomicity: every observed sum equals the invariant total.
    assert set(r2.result) == {2_000}
    # And the rollback fully undid the transfer.
    assert bank_of(world, "n0").peek("a")["balance"] == 1_000


def test_many_agents_rolling_back_on_shared_banks():
    world = build_line_world(3)
    records = []
    for i in range(4):
        plan = ["n0", "n1", "n2"]
        agent = LinearAgent(f"swarm-{i}", plan, savepoints={0: f"sp-{i}"},
                            rollback_to=f"sp-{i}")
        records.append(world.launch(agent, at="n0", method="step",
                                    mode=RollbackMode.OPTIMIZED))
    world.run(max_events=2_000_000)
    assert all(r.status is AgentStatus.FINISHED for r in records)
    assert all(r.rollbacks_completed == 1 for r in records)
    # Each agent's net effect: one committed transfer per node.
    for i in range(3):
        assert bank_of(world, f"n{i}").peek("a")["balance"] == 1_000 - 40


def test_lock_conflict_during_compensation_retries():
    """A compensation that hits a lock held by another agent's step
    aborts and retries (the paper lists deadlocks among the abort
    causes handled by the queue-retry loop)."""
    world = build_line_world(2)
    mover = Transferer("locked-mover")
    # A crowd of observers keeps the accounts busy.
    observers = [Observer(f"obs-{i}") for i in range(3)]
    r1 = world.launch(mover, at="n0", method="move",
                      mode=RollbackMode.BASIC)
    rs = [world.launch(o, at="n0", method="watch") for o in observers]
    world.run(max_events=2_000_000)
    assert r1.status is AgentStatus.FINISHED
    assert all(r.status is AgentStatus.FINISHED for r in rs)
    assert bank_of(world, "n0").peek("a")["balance"] == 1_000
