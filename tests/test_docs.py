"""Docs health: the checker passes on the repo, catches real rot in
isolation, and every public export carries a docstring."""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


# -- the repo's own docs are clean ------------------------------------------------


def test_repo_docs_pass_the_checker(capsys):
    assert check_docs.main([]) == 0
    out = capsys.readouterr().out
    assert "ok (0 problem(s))" in out


def test_readme_and_docs_exist():
    assert (ROOT / "README.md").exists()
    assert (ROOT / "docs" / "architecture.md").exists()
    assert (ROOT / "docs" / "determinism.md").exists()


def test_readme_embeds_checked_quickstart_includes():
    text = (ROOT / "README.md").read_text()
    includes = list(check_docs.INCLUDE_RE.finditer(text))
    assert len(includes) >= 2
    assert all(m.group("path") == "examples/quickstart.py"
               for m in includes)


# -- the checker catches rot (unit tests on tmp trees) ----------------------------


def _run(tmp_path, name="doc.md"):
    problems = []
    check_docs.check_file(tmp_path / name, problems)
    return problems


def test_dangling_file_link_is_reported(tmp_path):
    (tmp_path / "doc.md").write_text("see [x](missing.md)\n")
    problems = _run(tmp_path)
    assert len(problems) == 1 and "dangling link" in problems[0]


def test_valid_relative_link_passes(tmp_path):
    (tmp_path / "other.md").write_text("# Hello World\n")
    (tmp_path / "doc.md").write_text(
        "[a](other.md) [b](other.md#hello-world) also [c](.)\n")
    assert _run(tmp_path) == []


def test_dangling_anchor_is_reported(tmp_path):
    (tmp_path / "other.md").write_text("# Hello\n")
    (tmp_path / "doc.md").write_text(
        "# Top\n[ok](#top) [bad](#nope) [worse](other.md#nope)\n")
    problems = _run(tmp_path)
    assert len(problems) == 2
    assert all("dangling anchor" in p for p in problems)


def test_heading_slugs_ignore_code_and_punctuation(tmp_path):
    (tmp_path / "doc.md").write_text(
        "# The `epoch` barrier: lifecycle!\n"
        "```\n# not a heading\n```\n"
        "[ok](#the-epoch-barrier-lifecycle)\n")
    assert _run(tmp_path) == []


def test_links_inside_code_blocks_are_ignored(tmp_path):
    (tmp_path / "doc.md").write_text(
        "```\n[not a link](nowhere.md)\n```\n")
    assert _run(tmp_path) == []


def test_external_links_are_skipped(tmp_path):
    (tmp_path / "doc.md").write_text(
        "[a](https://example.com/x) [b](http://e.com#frag)\n")
    assert _run(tmp_path) == []


def test_include_in_sync_passes(tmp_path):
    (tmp_path / "src.py").write_text(
        "import os\n\ndef alpha():\n    return 1\n\n\ndef omega():\n"
        "    return 2\n")
    (tmp_path / "doc.md").write_text(
        '<!-- include: src.py from="def alpha" to="def omega" -->\n'
        "```python\ndef alpha():\n    return 1\n```\n"
        "<!-- /include -->\n")
    assert _run(tmp_path) == []


def test_drifted_include_is_reported(tmp_path):
    (tmp_path / "src.py").write_text(
        "def alpha():\n    return 999\n\ndef omega():\n    pass\n")
    (tmp_path / "doc.md").write_text(
        '<!-- include: src.py from="def alpha" to="def omega" -->\n'
        "```python\ndef alpha():\n    return 1\n```\n"
        "<!-- /include -->\n")
    problems = _run(tmp_path)
    assert len(problems) == 1 and "drifted" in problems[0]


def test_missing_include_marker_is_reported(tmp_path):
    (tmp_path / "src.py").write_text("def alpha():\n    pass\n")
    (tmp_path / "doc.md").write_text(
        '<!-- include: src.py from="def alpha" to="def omega" -->\n'
        "```python\nx\n```\n<!-- /include -->\n")
    problems = _run(tmp_path)
    assert len(problems) == 1 and "not found" in problems[0]


def test_missing_include_source_is_reported(tmp_path):
    (tmp_path / "doc.md").write_text(
        '<!-- include: gone.py from="a" to="b" -->\n```\nx\n```\n'
        "<!-- /include -->\n")
    problems = _run(tmp_path)
    assert len(problems) == 1 and "missing" in problems[0]


def test_checker_cli_fails_on_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.md"
    bad.write_text("[x](missing.md)\n")
    assert check_docs.main([str(bad)]) == 1
    assert "dangling link" in capsys.readouterr().out


# -- every public export documents itself -----------------------------------------


def test_every_public_export_has_a_docstring():
    import repro

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        doc = getattr(obj, "__doc__", None)
        if not doc or not doc.strip():
            undocumented.append(name)
    assert not undocumented, (
        f"exports missing docstrings: {undocumented}")


@pytest.mark.parametrize("name", ["World", "ShardedWorld",
                                  "ProcShardedWorld", "WorldJournal",
                                  "resume_world", "serialization_stats"])
def test_core_docstrings_state_their_contract(name):
    import repro

    doc = getattr(repro, name).__doc__
    assert doc is not None
    # The docstring pass gave each of these an explicit contract
    # section, not just a one-liner.
    assert "Args:" in doc or "Returns" in doc, name
