"""Tests: the saga baseline is measurably wrong for mobile agents.

Section 4.1's argument, machine-checked: restoring weakly reversible
objects from a before-image resurrects retired coin serials (double
spend on next use) and silently discards refunds — the paper's
mechanism handles both correctly.
"""


from repro import (
    AgentStatus,
    Mint,
    MobileAgent,
    RollbackMode,
    Shop,
    World,
    mixed_compensation,
)
from repro.resources.cash import purse_value
from repro.resources.shop import RefundPolicy


@mixed_compensation("saga_t.return_purchase")
def saga_return_purchase(wro, shop, params, ctx):
    coins, note, fee = shop.refund(params["receipt_id"], ctx.now)
    wro["purse"] = list(wro.get("purse", [])) + list(coins)
    wro["goods"] = [g for g in wro.get("goods", [])
                    if g != params["receipt_id"]]
    if note is not None:
        wro.setdefault("credit_notes", []).append(note)
    wro["fees_paid"] = wro.get("fees_paid", 0) + fee


class CoinShopper(MobileAgent):
    """Withdraws coins, buys, rolls back, then tries to spend again."""

    def fund(self, ctx):
        mint = ctx.resource("mint")
        mint.fund(300)
        self.wro["purse"] = mint.issue(100, 3)
        ctx.savepoint("funded")
        ctx.goto("shop", "buy")

    def buy(self, ctx):
        if self.wro.get("fees_paid") is not None:
            ctx.goto("shop", "spend_again")
            return
        shop = ctx.resource("shop")
        purse = list(self.wro["purse"])
        paying = [purse[0]]
        receipt, change = shop.buy("widget", 1, paying, ctx.now)
        self.wro["purse"] = purse[1:] + list(change)
        self.wro.setdefault("goods", []).append(receipt.receipt_id)
        ctx.log_mixed_compensation("saga_t.return_purchase",
                                   {"receipt_id": receipt.receipt_id},
                                   resource="shop")
        ctx.goto("home", "reconsider")

    def reconsider(self, ctx):
        if self.wro.get("fees_paid") is None:
            ctx.rollback("funded")
        ctx.goto("shop", "spend_again")

    def spend_again(self, ctx):
        """Try to spend the purse after the rollback."""
        shop = ctx.resource("shop")
        outcome = {"purse_value": purse_value(self.wro["purse"]),
                   "fees_paid": self.wro.get("fees_paid")}
        try:
            purse = list(self.wro["purse"])
            shop.buy("widget", 1, [purse[0]], ctx.now)
            outcome["second_spend"] = "ok"
        except Exception as exc:
            outcome["second_spend"] = f"rejected: {type(exc).__name__}"
            # Roll the failed attempt's effects out of this step by
            # finishing anyway (the buy raised before mutating).
        ctx.finish(outcome)


def build_world(seed=13):
    world = World(seed=seed)
    world.add_nodes("home", "shop")
    mint = Mint("mint")
    world.node("home").add_resource(mint)
    shop = Shop("shop", mint, RefundPolicy(cash_window=3600.0, fee=5))
    shop.stock_item("widget", 10, 100)
    world.node("shop").add_resource(shop)
    world.node("shop").share_resource(mint)
    return world


def run_mode(mode):
    world = build_world()
    agent = CoinShopper(f"shopper-{mode.value}")
    record = world.launch(agent, at="home", method="fund", mode=mode)
    world.run(max_events=500_000)
    return world, record


def test_paper_mechanism_purse_spendable_after_rollback():
    world, record = run_mode(RollbackMode.BASIC)
    assert record.status is AgentStatus.FINISHED
    result = record.result
    # Refund coins carry fresh serials and ARE spendable.
    assert result["second_spend"] == "ok"
    assert result["fees_paid"] == 5
    # 300 initial - 5 refund fee = 295 before the second spend.
    assert result["purse_value"] == 295


def test_saga_baseline_resurrects_retired_serials():
    """Image-restoring the WROs is fatal, not just lossy.

    The saga restore clobbers the purse back to the pre-purchase image
    (retired serials, refund coins lost, fee invisible) *and* erases
    the very WRO signal that tells the agent it already rolled back —
    so the resumed agent re-buys with a retired coin and dies on the
    mint's double-spend check.
    """
    world, record = run_mode(RollbackMode.SAGA)
    assert world.metrics.count("saga.wro_image_restored") == 1
    assert record.status is AgentStatus.FAILED
    assert "double spend" in record.failure


def test_saga_savepoints_are_larger():
    """The baseline images the WRO space too, inflating savepoints."""
    from repro.log.rollback_log import RollbackLog
    from repro.tx.manager import Transaction

    world = build_world()
    agent = CoinShopper("sizer")
    agent.wro["ballast"] = b"w" * 20_000
    agent.set_control("home", "fund")
    protocol = world.step_protocol

    paper_log = RollbackLog()
    protocol._write_savepoint(paper_log, agent, ("sp", False),
                              Transaction("step", "home"),
                              include_wro=False)
    saga_log = RollbackLog()
    protocol._write_savepoint(saga_log, agent, ("sp", False),
                              Transaction("step", "home"),
                              include_wro=True)
    assert saga_log.size_bytes() > paper_log.size_bytes() + 15_000
    # And the saga image is recoverable while the paper's mechanism
    # stores no WRO image at all.
    assert saga_log.reconstruct_wro("sp")["ballast"] == b"w" * 20_000
    assert paper_log.reconstruct_wro("sp") is None
