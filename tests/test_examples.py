"""The examples are part of the public contract: they must run green."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "ecommerce_shopping.py",
    "currency_exchange.py",
    "systems_management.py",
    "fault_injection.py",
    "travel_agency.py",
    "active_messaging.py",
    "cross_shard_outage.py",
])
def test_example_runs_clean(script):
    path = EXAMPLES / script
    proc = subprocess.run([sys.executable, str(path)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK:" in proc.stdout
