"""Tests: cross-shard fault tolerance (bridged ledger, shard outages).

The contract under test (see :mod:`repro.exactly_once.fault_tolerant`
and :mod:`repro.node.sharded`):

* **placement-aware alternates** — with ``FTParams.cross_shard_alternates``
  the FT drivers prefer alternates hosted by other shards, falling back
  to same-shard ones (and unsharded worlds are unaffected);
* **whole-shard outage survival** — killing one kernel mid-run, in any
  protocol phase (shadow in flight, after the claim committed,
  mid-rollback), still completes every agent's itinerary exactly once:
  the effect sum over every bank equals the committed steps, and the
  replicated step ledger shows one holder per unit of work on a
  majority of live replicas;
* **determinism** — ``kill_shard`` at a fixed time yields identical
  surviving-agent outcomes and counters, run after run;
* **no silent drops** — a bridged shadow copy whose destination shard
  stays dead past the retry budget surfaces through the same
  ``net.gave_up`` counter / timeline event / callback as a direct send.
"""

import pytest

from repro import (
    AgentStatus,
    Bank,
    FTParams,
    NetworkParams,
    RollbackMode,
    ShardedWorld,
    World,
)
from repro.agent.packages import AgentPackage, PackageKind, Protocol
from repro.errors import UsageError
from repro.log.rollback_log import RollbackLog
from repro.resources.bank import OverdraftPolicy

from tests.helpers import LinearAgent

N_SHARDS = 3
N_NODES = 9
RING = [f"n{i}" for i in range(N_NODES)]


def build_ring(n_shards=N_SHARDS, seed=7, alternates=True, **kwargs):
    """A ring of banked nodes, round-robin over shards, with every
    node's step alternates being the next two ring nodes — which the
    round-robin placement puts in the two *other* shards."""
    kwargs.setdefault("ft_params", FTParams(takeover_timeout=0.05))
    world = ShardedWorld(n_shards=n_shards, seed=seed, **kwargs)
    for name in RING:
        node = world.add_node(name)
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    if alternates:
        for i, name in enumerate(RING):
            world.set_alternates(name, RING[(i + 1) % N_NODES],
                                 RING[(i + 2) % N_NODES])
    return world


def launch_tours(world, n_agents=3, plan_len=4):
    """FT agents starting in shard 0 and touring through every shard."""
    records = []
    for a in range(n_agents):
        start = 3 * a  # n0 / n3 / n6 — all hosted by shard 0
        plan = [RING[(start + j) % N_NODES] for j in range(plan_len)]
        agent = LinearAgent(f"ag-{a}", plan)
        records.append(world.launch(agent, at=plan[0], method="step",
                                    protocol=Protocol.FAULT_TOLERANT))
    return records


def total_debits(world):
    """Sum of account-a debits across every bank: 10 per executed step,
    wherever it executed — the exactly-once effect measure."""
    return sum(
        1_000 - world.node(name).get_resource("bank").peek("a")["balance"]
        for name in RING)


def ledger_is_consistent(world):
    """Quorum agreement plus the never-fired conflict tripwires."""
    conflicts = sum(
        w.metrics.count("ft.ledger.mirror_conflicts")
        + w.metrics.count("ft.ledger.quorum_disagreement")
        for w in world.shards)
    return world.ledger_quorum_agrees() and conflicts == 0


# -- placement-aware alternates ------------------------------------------------


def make_step_package(agent_id="xft-unit", kind=PackageKind.STEP, **meta):
    agent = LinearAgent(agent_id, ["a0"])
    agent.set_control("a0", "step")
    return AgentPackage.pack(kind, agent, RollbackLog(),
                             step_index=0, **meta)


def test_alternates_prefer_other_shards():
    world = ShardedWorld(n_shards=2, seed=0)
    world.add_node("a0", shard=0)
    world.add_node("a1", shard=0)
    world.add_node("b0", shard=1)
    world.set_alternates("a0", "a1", "b0")
    ft = world.shards[0].ft
    package = make_step_package()
    # Cross-shard alternates first, same-shard fallback preserved.
    assert ft.alternates_for("a0", package) == ("b0", "a1")
    assert ft.step_alternates_for("a0") == ("b0", "a1")


def test_alternates_keep_config_order_when_knob_off():
    world = ShardedWorld(n_shards=2, seed=0,
                         ft_params=FTParams(cross_shard_alternates=False))
    world.add_node("a0", shard=0)
    world.add_node("a1", shard=0)
    world.add_node("b0", shard=1)
    world.set_alternates("a0", "a1", "b0")
    assert world.shards[0].ft.alternates_for(
        "a0", make_step_package("xft-off")) == ("a1", "b0")


def test_unsharded_world_alternates_unaffected():
    world = World(seed=0)
    world.add_nodes("a0", "a1", "b0")
    world.ft.set_alternates("a0", "a1", "b0")
    assert world.ft.alternates_for(
        "a0", make_step_package("xft-plain")) == ("a1", "b0")
    assert world.ft_params.cross_shard_alternates  # knob exists, inert


def test_legacy_takeover_timeout_overrides_ft_params():
    world = World(seed=0, ft_takeover_timeout=0.2)
    assert world.ft_params.takeover_timeout == 0.2
    assert world.ft_takeover_timeout == 0.2


def test_compensation_alternates_also_placement_ordered():
    world = ShardedWorld(n_shards=2, seed=0)
    world.add_node("a0", shard=0)
    world.add_node("a1", shard=0)
    world.add_node("b0", shard=1)
    package = make_step_package(
        "xft-comp", kind=PackageKind.COMPENSATION, sp_id="sp",
        alternates=("a1", "b0"))
    assert world.shards[0].ft.alternates_for("a0", package) == ("b0", "a1")


# -- kill_shard validation ------------------------------------------------------


def test_kill_shard_validates_arguments():
    world = build_ring()
    with pytest.raises(UsageError):
        world.kill_shard(7, at=0.1)
    with pytest.raises(UsageError):
        world.kill_shard(1, at=0.2, restart_at=0.2)
    with pytest.raises(UsageError):
        world.kill_shard(1, at=-0.5)


# -- whole-shard outage survival ------------------------------------------------

#: Kill times sweeping the protocol phases of the ~0.4s three-agent run:
#: before any shard-1 step ran (shadow in flight), around the first
#: shard-1 claims, and while later steps / wrap hops are mid-flight.
KILL_TIMES = (0.01, 0.04, 0.055, 0.08, 0.15, 0.3)


@pytest.mark.parametrize("kill_at", KILL_TIMES)
def test_shard_kill_any_phase_completes_exactly_once(kill_at):
    world = build_ring()
    world.kill_shard(1, at=kill_at)
    records = launch_tours(world)
    world.run()
    assert not world.shard_alive(1)
    for record in records:
        assert record.status is AgentStatus.FINISHED, record.failure
        assert record.steps_committed == 5  # 4 tour steps + wrap
    # Exactly-once effects: every tour step debited one bank once,
    # wherever (primary or promoted alternate) it executed.
    assert total_debits(world) == 10 * 4 * len(records)
    assert ledger_is_consistent(world)


def test_shard_kill_mid_run_promotes_cross_shard_shadows():
    # t=0.055 lands inside the second hop's step transactions at the
    # shard-1 nodes: the crash aborts them, the queue undo restores the
    # primaries into the dead shard, and the cross-shard shadows are
    # the only live copies.
    world = build_ring()
    world.kill_shard(1, at=0.055)
    launch_tours(world)
    world.run()
    promotions = sum(w.metrics.count("ft.promotions") for w in world.shards)
    assert promotions >= 1
    # Promotions happened in surviving shards only.
    assert world.shards[1].metrics.count("ft.promotions") == 0
    # The shard-1 banks were never touched after the kill: each debit
    # landed on a live shard's bank exactly once.
    assert total_debits(world) == 120
    assert ledger_is_consistent(world)


@pytest.mark.parametrize("seed", (3, 11, 29))
def test_shard_kill_exactly_once_across_seeds(seed):
    world = build_ring(seed=seed)
    world.kill_shard(1, at=0.06)
    records = launch_tours(world)
    world.run()
    for record in records:
        assert record.status is AgentStatus.FINISHED, record.failure
    assert total_debits(world) == 120
    assert ledger_is_consistent(world)


def test_shard_kill_without_cross_shard_alternates_blocks():
    """The control experiment: same outage, but alternates confined to
    the victim's own shard — the work has nowhere to fail over, so the
    agents whose tours need shard 1 cannot finish."""
    world = build_ring(alternates=False)
    # Same-shard alternates only: n1 -> n4 -> n7 -> n1 (all shard 1).
    for i in (1, 4, 7):
        world.set_alternates(f"n{i}", f"n{(i + 3) % N_NODES}")
    world.kill_shard(1, at=0.04)
    records = launch_tours(world)
    world.run(until=20.0)
    assert any(r.status is AgentStatus.RUNNING for r in records)


def test_shard_kill_with_restart_discards_stale_primaries():
    world = build_ring()
    world.kill_shard(1, at=0.08, restart_at=2.0)
    records = launch_tours(world)
    world.run()
    assert world.shard_alive(1)
    for record in records:
        assert record.status is AgentStatus.FINISHED, record.failure
    assert total_debits(world) == 120
    assert ledger_is_consistent(world)
    restarts = sum(w.metrics.count("shard.restarts") for w in world.shards)
    assert restarts == 1
    # Any primary package that survived in shard 1's durable queues was
    # re-dispatched at recovery and discarded against the replicated
    # ledger rather than re-executed (the effect sum above proves no
    # double execution either way).
    for name in ("n1", "n4", "n7"):
        assert len(world.node(name).queue) == 0


def test_restarted_replica_catches_up_on_mirrors():
    world = build_ring()
    world.kill_shard(1, at=0.08, restart_at=2.0)
    launch_tours(world)
    world.run()
    claims = world.ledger_claims()
    assert claims  # FT tours really claimed work
    for work_id, replicas in claims.items():
        holders = set(replicas.values())
        assert len(holders) == 1, (work_id, replicas)
        # Every replica — including the restarted one — holds the claim.
        assert set(replicas) == {0, 1, 2}, (work_id, replicas)


def test_shard_kill_is_deterministic():
    def run_once():
        world = build_ring()
        world.kill_shard(1, at=0.08)
        launch_tours(world)
        world.run()
        return world

    first, second = run_once(), run_once()
    assert first.outcomes() == second.outcomes()
    assert first.counters() == second.counters()
    assert first.epochs_run == second.epochs_run
    assert first.events_processed() == second.events_processed()


# -- mid-rollback outage ---------------------------------------------------------


class XShardDeclaringAgent(LinearAgent):
    """Declares 'alt' as the alternate compensation node for its n1 step."""

    def step(self, ctx):
        super().step(ctx)
        if ctx.node_name == "n1":
            ctx.declare_alternates("alt")


def test_shard_kill_mid_rollback_diverts_compensation():
    """Fault-tolerant rollback across shards: the compensation (and the
    resume step) for a step executed in the dead shard divert to an
    alternate in a surviving shard that replicates the resource."""
    world = ShardedWorld(n_shards=3, seed=5,
                         ft_params=FTParams(takeover_timeout=0.05))
    for name, shard in (("n0", 0), ("n1", 1), ("n2", 2), ("alt", 2)):
        node = world.add_node(name, shard=shard)
        if name != "alt":
            bank = Bank("bank")
            bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
            bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
            node.add_resource(bank)
    shared_bank = world.node("n1").get_resource("bank")
    world.node("alt").share_resource(shared_bank)
    world.set_alternates("n1", "alt")

    agent = XShardDeclaringAgent("xft-rb", ["n0", "n1", "n2"],
                                 savepoints={0: "sp"}, rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          protocol=Protocol.FAULT_TOLERANT,
                          mode=RollbackMode.BASIC)
    # The forward pass commits n1's step well before t=0.3; the wrap hop
    # then initiates the rollback, which must traverse the dead shard's
    # step via the alternate.
    world.kill_shard(1, at=0.3)
    world.run(until=60.0)
    assert record.status is AgentStatus.FINISHED, record.failure
    assert record.rollbacks_completed == 1
    diverted = sum(w.metrics.count("ft.compensation_diverted")
                   + w.metrics.count("ft.step_diverted")
                   + w.metrics.count("ft.promotions")
                   for w in world.shards)
    assert diverted >= 1
    # n1's bank was compensated and re-executed through the shared
    # replica: one net debit, with the compensation counted in between.
    assert shared_bank.peek("a")["balance"] == 990
    assert ledger_is_consistent(world)


# -- bridged shadow give-up surfacing --------------------------------------------


def test_bridged_shadow_give_up_surfaces_like_direct_sends():
    """A shadow copy bound for a shard that stays dead past the retry
    budget is surfaced — counter, timeline event and callback — exactly
    like a direct send's give-up, never silently dropped."""
    world = ShardedWorld(n_shards=2, seed=1,
                         net_params=NetworkParams(max_retries=2),
                         ft_params=FTParams(takeover_timeout=0.05))
    for name, shard in (("n0", 0), ("n2", 0), ("n1", 1)):
        node = world.add_node(name, shard=shard)
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    world.set_alternates("n2", "n1")  # the only alternate is doomed
    world.kill_shard(1, at=0.0)
    agent = LinearAgent("xft-lost", ["n0", "n2"])
    record = world.launch(agent, at="n0", method="step",
                          protocol=Protocol.FAULT_TOLERANT)
    world.run()
    assert record.status is AgentStatus.FINISHED, record.failure
    source = world.shards[0].metrics
    assert source.count("net.gave_up") >= 1
    gave_up = source.events("net-gave-up")
    assert any(e[2]["message_kind"] == "shadow-copy" for e in gave_up)
    assert source.count("ft.shadows_lost") >= 1
    lost = source.events("ft-shadow-lost")
    assert any(e[2]["node"] == "n1" for e in lost)


def test_shadow_retained_across_outage_delivers_after_restart():
    """With budget to spare, a bridged shadow waits out the outage and
    arrives once the destination shard restarts."""
    world = ShardedWorld(n_shards=2, seed=1,
                         ft_params=FTParams(takeover_timeout=0.05))
    for name, shard in (("n0", 0), ("n2", 0), ("n1", 1)):
        node = world.add_node(name, shard=shard)
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    world.set_alternates("n2", "n1")
    world.kill_shard(1, at=0.0, restart_at=0.5)
    agent = LinearAgent("xft-wait", ["n0", "n2"])
    record = world.launch(agent, at="n0", method="step",
                          protocol=Protocol.FAULT_TOLERANT)
    world.run()
    assert record.status is AgentStatus.FINISHED, record.failure
    assert world.shards[0].metrics.count("ft.shadows_lost") == 0
    # The copy reached shard 1 after the restart (and was then
    # discarded by its watchdog once the claim was visible).
    assert world.shards[1].metrics.count("bridge.shadows") >= 1
