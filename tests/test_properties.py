"""Property-based end-to-end tests over random tour workloads.

These quantify the paper's invariants over generated scenarios:

* optimized rollback reaches the same final agent state as basic, with
  no more agent transfers;
* rollback count and WRO signalling behave identically across modes;
* money in the tour banks is conserved;
* the rollback log of a finished agent is empty of that tour's frames.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AgentStatus, RollbackMode
from repro.bench import make_tour_plan, run_tour
from repro.bench.harness import build_tour_world
from repro.bench.workloads import BANK

SLOW = dict(max_examples=12, deadline=None,
            suppress_health_check=[HealthCheck.too_slow,
                                   HealthCheck.data_too_large])

tour_params = st.fixed_dictionaries({
    "n_steps": st.integers(min_value=3, max_value=8),
    "n_nodes": st.integers(min_value=2, max_value=5),
    "mixed_tenths": st.integers(min_value=0, max_value=10),
    "ace_tenths": st.integers(min_value=0, max_value=5),
    "seed": st.integers(min_value=0, max_value=10_000),
})


def bank_total(world, n_nodes):
    total = 0
    for i in range(n_nodes):
        bank = world.node(f"n{i}").get_resource(BANK)
        total += bank.total_balance()
    return total


def make_plan(params, depth=None):
    nodes = [f"n{i}" for i in range(params["n_nodes"])]
    mixed = params["mixed_tenths"] / 10.0
    ace = min(params["ace_tenths"] / 10.0, 1.0 - mixed)
    return make_tour_plan(nodes, params["n_steps"],
                          mixed_fraction=mixed, ace_fraction=max(0.0, ace),
                          rollback_depth=depth or params["n_steps"] - 1)


@given(tour_params)
@settings(**SLOW)
def test_optimized_equivalent_to_basic_with_fewer_transfers(params):
    plan = make_plan(params)
    results = {}
    for mode in (RollbackMode.BASIC, RollbackMode.OPTIMIZED):
        results[mode] = run_tour(plan, params["n_nodes"], mode=mode,
                                 seed=params["seed"])
        assert results[mode].status is AgentStatus.FINISHED
    basic = results[RollbackMode.BASIC]
    optimized = results[RollbackMode.OPTIMIZED]
    assert basic.result == optimized.result
    assert basic.rollbacks == optimized.rollbacks == 1
    assert (optimized.compensation_transfers
            <= basic.compensation_transfers)


@given(tour_params)
@settings(**SLOW)
def test_rollback_conserves_bank_money(params):
    plan = make_plan(params)
    world = build_tour_world(params["n_nodes"], seed=params["seed"])
    before = bank_total(world, params["n_nodes"])
    result = run_tour(plan, params["n_nodes"], mode=RollbackMode.BASIC,
                      seed=params["seed"], world=world)
    assert result.status is AgentStatus.FINISHED
    after = bank_total(world, params["n_nodes"])
    # Money may sit in the agent's purse (mixed steps withdraw cash);
    # banks + purse must equal the starting supply.
    purse_total = sum(result.result["purse"].values())
    assert after + purse_total == before


@given(tour_params)
@settings(**SLOW)
def test_wro_signal_counts_rollbacks_exactly_once(params):
    plan = make_plan(params)
    result = run_tour(plan, params["n_nodes"], mode=RollbackMode.OPTIMIZED,
                      seed=params["seed"])
    assert result.status is AgentStatus.FINISHED
    assert result.result["rolled_back"] == 1


@given(tour_params, st.integers(min_value=1, max_value=3))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_repeated_rollbacks_converge(params, times):
    nodes = [f"n{i}" for i in range(params["n_nodes"])]
    plan = make_tour_plan(nodes, params["n_steps"],
                          mixed_fraction=params["mixed_tenths"] / 10.0,
                          rollback_depth=params["n_steps"] - 1,
                          rollback_times=times)
    result = run_tour(plan, params["n_nodes"], mode=RollbackMode.BASIC,
                      seed=params["seed"], max_events=3_000_000)
    assert result.status is AgentStatus.FINISHED
    assert result.rollbacks == times
    assert result.result["rolled_back"] == times


@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_rollback_depth_controls_compensated_steps(depth_seed, seed):
    n_steps = 7
    nodes = [f"n{i}" for i in range(4)]
    depth = depth_seed
    plan = make_tour_plan(nodes, n_steps, mixed_fraction=1.0,
                          savepoint_every=1, rollback_depth=depth)
    result = run_tour(plan, 4, mode=RollbackMode.BASIC, seed=seed)
    assert result.status is AgentStatus.FINISHED
    # With savepoints after every step, the target leaves exactly
    # `depth` committed steps to compensate.
    assert result.compensation_txs == depth
