"""Integration tests: node dispatch machinery and error paths."""

import pytest

from repro import AgentStatus, RollbackMode
from repro.agent.packages import AgentPackage, PackageKind
from repro.errors import UsageError
from repro.log.rollback_log import RollbackLog
from repro.sim.failures import CrashPlan

from tests.helpers import LinearAgent, bank_of, build_line_world


def test_dispatch_deduplicates_scheduling():
    world = build_line_world(1)
    node = world.node("n0")
    agent = LinearAgent("dedupe", ["n0"])
    record = world.launch(agent, at="n0", method="step")
    item = node.queue.head()
    # Request dispatch many times before the simulator runs: only one
    # execution may happen (the others find the item consumed).
    for _ in range(5):
        node.request_dispatch(item)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.steps_committed == 2
    assert bank_of(world, "n0").peek("a")["balance"] == 990


def test_crash_wipes_pending_rollback_marker_step_reruns():
    """The paper's Figure 4a failure case: if the transaction writing
    the rollback package fails (node crash), the aborting step simply
    re-executes and re-initiates the rollback — "still a correct
    execution"."""
    world = build_line_world(2)
    agent = LinearAgent("reinit", ["n0", "n1"], savepoints={0: "sp"},
                        rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    # The wrap step on n0 requests the rollback around t≈0.09; crash n0
    # immediately after so the rollback-start transaction dies.
    world.failures.apply_plan([CrashPlan("n0", at=0.095, duration=0.3)])
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # The rollback was initiated at least twice (first one wiped by the
    # crash) but completed exactly once with correct state.
    assert record.rollbacks_initiated >= 1
    assert record.rollbacks_completed == 1
    assert bank_of(world, "n1").peek("a")["balance"] == 990
    assert record.result["compensations"] == 1


def test_misrouted_package_fails_agent():
    world = build_line_world(2)
    agent = LinearAgent("misrouted", ["n0"])
    agent.set_control("n0", "step")
    log = RollbackLog()
    package = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=0)
    from repro.node.runtime import AgentRecord
    from repro.agent.packages import Protocol
    record = AgentRecord(agent_id=agent.agent_id,
                         mode=RollbackMode.BASIC, protocol=Protocol.BASIC)
    world.agents[agent.agent_id] = record
    # Deliver the n0 package into n1's queue.
    world.node("n1").queue.enqueue(package, package.size_bytes)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FAILED
    assert "landed on" in record.failure
    assert len(world.node("n1").queue) == 0  # consumed


def test_corrupt_blob_fails_agent_cleanly():
    world = build_line_world(1)
    agent = LinearAgent("corrupt", ["n0"])
    world.launch(agent, at="n0", method="step")
    item = world.node("n0").queue.head()
    item.payload.blob = b"garbage"
    with pytest.raises(Exception):
        world.run(max_events=500_000)


def test_duplicate_node_and_agent_rejected():
    world = build_line_world(1)
    with pytest.raises(UsageError):
        world.add_node("n0")
    agent = LinearAgent("dup", ["n0"])
    world.launch(agent, at="n0", method="step")
    with pytest.raises(UsageError):
        world.launch(agent, at="n0", method="step")
    with pytest.raises(UsageError):
        world.node("ghost")


def test_duplicate_resource_rejected_but_share_allowed():
    world = build_line_world(1)
    from repro.resources.bank import Bank
    node = world.node("n0")
    with pytest.raises(UsageError):
        node.add_resource(Bank("bank"))  # name exists from helper
    other = Bank("other-bank")
    node.add_resource(other)
    node2 = world.add_node("extra")
    node2.share_resource(other)
    assert node2.get_resource("other-bank") is other


def test_finished_agents_leave_no_queue_residue():
    world = build_line_world(3)
    records = [world.launch(LinearAgent(f"clean-{i}", ["n0", "n1", "n2"]),
                            at="n0", method="step") for i in range(3)]
    world.run(max_events=500_000)
    assert all(r.status is AgentStatus.FINISHED for r in records)
    for name in ("n0", "n1", "n2"):
        assert len(world.node(name).queue) == 0
        assert world.node(name).txm.active == set()


def test_locks_all_released_after_run():
    world = build_line_world(2)
    agent = LinearAgent("lockfree", ["n0", "n1"], savepoints={0: "sp"},
                        rollback_to="sp")
    world.launch(agent, at="n0", method="step", mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    for name in ("n0", "n1"):
        bank = bank_of(world, name)
        assert bank.locks.held_count() == 0
