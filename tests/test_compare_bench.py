"""The bench-regression gate must pass on identical artifacts and fail
on artificially degraded ones (the CI job's contract)."""

import importlib.util
import json
import pathlib
import shutil
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BASELINES = BENCHMARKS / "results"

spec = importlib.util.spec_from_file_location(
    "compare_bench", BENCHMARKS / "compare_bench.py")
compare_bench = importlib.util.module_from_spec(spec)
# dataclasses resolves annotations through sys.modules at class
# creation, so the module must be registered before exec.
sys.modules["compare_bench"] = compare_bench
spec.loader.exec_module(compare_bench)

GATED_FILES = sorted({s.file for s in compare_bench.SPECS})


@pytest.fixture
def fresh_copy(tmp_path):
    """A fresh-results dir that is byte-identical to the baselines."""
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    for name in GATED_FILES:
        shutil.copy(BASELINES / name, fresh / name)
    return fresh


def test_baselines_exist_for_every_gated_file():
    for name in GATED_FILES:
        assert (BASELINES / name).exists(), name


def test_identical_artifacts_pass(fresh_copy, tmp_path):
    report = tmp_path / "report.md"
    code = compare_bench.main(["--fresh", str(fresh_copy),
                               "--baseline", str(BASELINES),
                               "--report", str(report)])
    assert code == 0
    assert "**PASS**" in report.read_text()


def test_degraded_artifact_fails(fresh_copy, tmp_path):
    path = fresh_copy / "BENCH_serialization.json"
    data = json.loads(path.read_text())
    data["speedup"] = 1.1  # the incremental win evaporated
    path.write_text(json.dumps(data))
    report = tmp_path / "report.md"
    code = compare_bench.main(["--fresh", str(fresh_copy),
                               "--baseline", str(BASELINES),
                               "--report", str(report)])
    assert code == 1
    text = report.read_text()
    assert "**FAIL**" in text
    assert "speedup" in text and "FAIL" in text


def test_degraded_invariant_fails(fresh_copy):
    path = fresh_copy / "BENCH_cross_shard_ft.json"
    data = json.loads(path.read_text())
    data["scenarios"]["kill-1"]["completion_rate"] = 0.8
    data["scenarios"]["kill-1"]["exactly_once"] = False
    path.write_text(json.dumps(data))
    code = compare_bench.main(["--fresh", str(fresh_copy),
                               "--baseline", str(BASELINES)])
    assert code == 1


def test_missing_fresh_artifact_is_a_gate_error(fresh_copy):
    (fresh_copy / "BENCH_sharded_scale.json").unlink()
    code = compare_bench.main(["--fresh", str(fresh_copy),
                               "--baseline", str(BASELINES)])
    assert code == 2


def test_missing_baseline_file_exits_3_with_distinct_message(
        fresh_copy, tmp_path):
    """A gated file whose committed baseline is absent must not be
    silently skipped: exit 3 (distinct from regression=1 / env=2) and
    say which file to commit."""
    partial = tmp_path / "baselines"
    partial.mkdir()
    for name in GATED_FILES:
        if name != "BENCH_journal.json":
            shutil.copy(BASELINES / name, partial / name)
    report = tmp_path / "report.md"
    code = compare_bench.main(["--fresh", str(fresh_copy),
                               "--baseline", str(partial),
                               "--report", str(report)])
    assert code == 3
    text = report.read_text()
    assert "**FAIL**" in text
    assert "NO-BASELINE" in text
    assert "BENCH_journal.json" in text
    assert "commit" in text


def test_missing_fresh_artifact_outranks_missing_baseline(fresh_copy,
                                                          tmp_path):
    """When both problems exist, the environment error (2) wins — a
    bench that did not even run must be fixed first."""
    partial = tmp_path / "baselines"
    partial.mkdir()
    for name in GATED_FILES:
        if name != "BENCH_journal.json":
            shutil.copy(BASELINES / name, partial / name)
    (fresh_copy / "BENCH_sharded_scale.json").unlink()
    code = compare_bench.main(["--fresh", str(fresh_copy),
                               "--baseline", str(partial)])
    assert code == 2


def test_quick_full_mode_mismatch_is_a_gate_error(fresh_copy):
    path = fresh_copy / "BENCH_serialization.json"
    data = json.loads(path.read_text())
    data["quick_mode"] = True
    path.write_text(json.dumps(data))
    code = compare_bench.main(["--fresh", str(fresh_copy),
                               "--baseline", str(BASELINES)])
    assert code == 2
