"""Unit tests: bench workload generator and harness."""

import pytest

from repro import AgentStatus, RollbackMode
from repro.bench import format_table, make_tour_plan, run_tour
from repro.bench.harness import build_tour_world, rollback_latencies
from repro.errors import UsageError


def test_plan_mix_fractions_respected():
    nodes = [f"n{i}" for i in range(5)]
    plan = make_tour_plan(nodes, 10, mixed_fraction=0.3, ace_fraction=0.2,
                          none_fraction=0.1)
    kinds = [s.kind for s in plan.steps]
    assert kinds.count("mixed") == 3
    assert kinds.count("ace") == 2
    assert kinds.count("none") == 1
    assert kinds.count("rce") == 4


def test_plan_savepoint_placement():
    nodes = ["n0", "n1"]
    plan = make_tour_plan(nodes, 6, savepoint_every=2)
    assert [s.savepoint for s in plan.steps] == \
        ["sp-0", None, "sp-2", None, "sp-4", None]


def test_plan_rollback_depth_selects_target():
    nodes = ["n0", "n1", "n2"]
    plan = make_tour_plan(nodes, 6, savepoint_every=1, rollback_depth=3)
    # depth 3 over 6 steps: target must be sp-2 (steps 3,4,5 compensated).
    assert plan.rollback_to == "sp-2"


def test_plan_too_small_rejected():
    with pytest.raises(UsageError):
        make_tour_plan(["n0"], 1)


def test_tour_world_has_bank_and_directory_everywhere():
    world = build_tour_world(3)
    for i in range(3):
        node = world.node(f"n{i}")
        assert node.get_resource("bank") is not None
        assert node.get_resource("directory") is not None


def test_run_tour_produces_complete_result():
    plan = make_tour_plan(["n0", "n1", "n2"], 4, rollback_depth=3)
    result = run_tour(plan, 3, mode=RollbackMode.BASIC, seed=1)
    assert result.status is AgentStatus.FINISHED
    assert result.steps_committed >= 4
    assert result.rollbacks == 1
    assert result.sim_time > 0
    assert result.rollback_latency > 0
    assert result.final_package_bytes > 0


def test_rollback_latencies_pair_events():
    plan = make_tour_plan(["n0", "n1", "n2"], 4, rollback_depth=3)
    world = build_tour_world(3, seed=2)
    run_tour(plan, 3, mode=RollbackMode.BASIC, seed=2, world=world)
    latencies = rollback_latencies(world)
    assert len(latencies) == 1
    assert latencies[0] > 0


def test_format_table_aligns_columns():
    table = format_table(["name", "value"],
                         [["a", 1], ["long-name", 2.5]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows padded to equal width
