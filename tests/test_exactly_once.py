"""Integration tests: the exactly-once step protocol (substrate [11]).

The invariant under test: whatever crashes happen, every step's effects
appear in the resources exactly once per committed execution, the agent
is never lost and never duplicated.
"""


from repro import AgentStatus
from repro.sim.failures import CrashPlan

from tests.helpers import LinearAgent, bank_of, build_line_world


def run_linear(world, n_nodes, agent_id="agent", **agent_kw):
    plan = [f"n{i}" for i in range(n_nodes)]
    agent = LinearAgent(agent_id, plan, **agent_kw)
    record = world.launch(agent, at=plan[0], method="step")
    world.run(max_events=500_000)
    return record


def transfers_applied(world, n_nodes):
    """Per node: how much money moved from a to b (each step moves 10)."""
    return [1_000 - bank_of(world, f"n{i}").peek("a")["balance"]
            for i in range(n_nodes)]


def test_clean_run_executes_each_step_exactly_once():
    world = build_line_world(4)
    record = run_linear(world, 4)
    assert record.status is AgentStatus.FINISHED
    assert record.steps_committed == 5  # 4 work steps + wrap
    assert transfers_applied(world, 4) == [10, 10, 10, 10]


def test_agent_state_travels_with_the_agent():
    world = build_line_world(3)
    record = run_linear(world, 3)
    assert record.result["notes"] == ["visited-0", "visited-1", "visited-2"]
    assert record.result["pos"] == 3


def test_crash_before_step_delays_but_preserves_exactly_once():
    world = build_line_world(3)
    # n1 is down when the agent arrives; it recovers later.
    world.failures.apply_plan([CrashPlan("n1", at=0.0, duration=1.0)])
    record = run_linear(world, 3)
    assert record.status is AgentStatus.FINISHED
    assert transfers_applied(world, 3) == [10, 10, 10]
    assert world.sim.now > 1.0


def test_crash_during_step_aborts_and_retries():
    world = build_line_world(3)
    # Crash n0 in the middle of its first step transaction (steps cost
    # ~10ms; crash 1ms after start).
    world.failures.apply_plan([CrashPlan("n0", at=0.012, duration=0.3)])
    record = run_linear(world, 3)
    assert record.status is AgentStatus.FINISHED
    # Effects exactly once despite the aborted attempt.
    assert transfers_applied(world, 3) == [10, 10, 10]
    assert world.metrics.count("crash.tx_aborted") >= 1
    assert record.step_attempts > record.steps_committed


def test_repeated_crashes_eventually_complete():
    world = build_line_world(4)
    plans = [CrashPlan(f"n{i}", at=0.02 + 0.03 * i, duration=0.15)
             for i in range(4)]
    plans += [CrashPlan(f"n{i}", at=0.5 + 0.02 * i, duration=0.1)
              for i in range(4)]
    world.failures.apply_plan(plans)
    record = run_linear(world, 4)
    assert record.status is AgentStatus.FINISHED
    assert transfers_applied(world, 4) == [10, 10, 10, 10]


def test_destination_down_at_commit_aborts_step():
    world = build_line_world(2)
    # n1 (the destination of n0's step) is down across n0's commit
    # window; the step transaction must abort and retry.
    world.failures.apply_plan([CrashPlan("n1", at=0.0, duration=0.5)])
    record = run_linear(world, 2)
    assert record.status is AgentStatus.FINISHED
    assert world.metrics.count("2pc.aborts") >= 1
    assert transfers_applied(world, 2) == [10, 10]


def test_two_agents_interleave_without_interference():
    world = build_line_world(3)
    a = LinearAgent("alpha", ["n0", "n1", "n2"])
    b = LinearAgent("beta", ["n2", "n1", "n0"])
    ra = world.launch(a, at="n0", method="step")
    rb = world.launch(b, at="n2", method="step")
    world.run(max_events=500_000)
    assert ra.status is AgentStatus.FINISHED
    assert rb.status is AgentStatus.FINISHED
    # Each node saw both agents' work step once (each moves 10); the
    # wrap step performs no transfer.
    assert transfers_applied(world, 3) == [20, 20, 20]


def test_lock_conflicts_resolved_by_restart():
    world = build_line_world(1)
    agents = [LinearAgent(f"agent-{i}", ["n0"]) for i in range(5)]
    records = [world.launch(agent, at="n0", method="step")
               for agent in agents]
    world.run(max_events=500_000)
    assert all(r.status is AgentStatus.FINISHED for r in records)
    # 5 agents x 1 work step x 10 each (wrap transfers nothing).
    assert transfers_applied(world, 1) == [50]


def test_migration_bytes_counted():
    world = build_line_world(3)
    run_linear(world, 3)
    assert world.metrics.count("agent.transfers.step") >= 3
    assert world.metrics.total_bytes("agent.transfers.step") > 1_000
