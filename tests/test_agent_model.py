"""Unit tests: MobileAgent, StepContext wiring, agent packages."""

import pytest

from repro import MobileAgent
from repro.agent.packages import AgentPackage, PackageKind
from repro.errors import UsageError
from repro.log.rollback_log import RollbackLog
from repro.node.runtime import AgentStatus

from tests.helpers import LinearAgent, OneShotAgent, build_line_world


def test_agent_control_record_validation():
    agent = LinearAgent("a1", ["n0"])
    agent.set_control("n0", "step")
    assert agent.control == {"node": "n0", "method": "step"}
    with pytest.raises(UsageError):
        agent.set_control("n0", "no_such_method")
    agent.clear_control()
    assert agent.control is None


def test_agent_ids_unique_by_default():
    a, b = MobileAgent(), MobileAgent()
    assert a.agent_id != b.agent_id


def test_package_pack_unpack_round_trip():
    agent = LinearAgent("a2", ["n0"])
    agent.sro["data"] = [1, 2, 3]
    agent.wro["purse"] = 77
    log = RollbackLog()
    package = AgentPackage.pack(PackageKind.STEP, agent, log, step_index=0)
    restored_agent, restored_log = package.unpack()
    assert restored_agent.agent_id == "a2"
    assert restored_agent.sro["data"] == [1, 2, 3]
    assert restored_agent.wro["purse"] == 77
    assert len(restored_log) == 0
    # Mutating the restored copy does not touch the blob.
    restored_agent.sro["data"].append(4)
    assert package.unpack()[0].sro["data"] == [1, 2, 3]


def test_package_size_reflects_payload():
    small = LinearAgent("a3", ["n0"])
    big = LinearAgent("a4", ["n0"])
    big.sro["ballast"] = b"x" * 50_000
    log = RollbackLog()
    assert (AgentPackage.pack(PackageKind.STEP, big, log, 0).size_bytes
            > AgentPackage.pack(PackageKind.STEP, small, log, 0).size_bytes
            + 40_000)


def test_as_kind_keeps_work_id():
    agent = LinearAgent("a5", ["n0"])
    package = AgentPackage.pack(PackageKind.STEP, agent, RollbackLog(), 0)
    shadow = package.as_kind(PackageKind.SHADOW)
    assert shadow.work_id == package.work_id
    assert shadow.kind is PackageKind.SHADOW


class ContextProbe(OneShotAgent):
    def action(self, ctx):
        return {
            "node": ctx.node_name,
            "now": ctx.now,
            "rng": ctx.rng.random(),
            "step_index": ctx.step_index,
        }


def test_context_exposes_node_time_and_deterministic_rng():
    world = build_line_world(1, seed=5)
    record = world.launch(ContextProbe("probe"), at="n0", method="go")
    world.run()
    first = record.result

    world2 = build_line_world(1, seed=5)
    record2 = world2.launch(ContextProbe("probe"), at="n0", method="go")
    world2.run()
    assert record2.result["rng"] == first["rng"]
    assert first["node"] == "n0"
    assert first["now"] > 0


class BadCompensationName(OneShotAgent):
    def action(self, ctx):
        ctx.log_agent_compensation("no.such.op", {})


def test_unknown_compensation_fails_fast():
    world = build_line_world(1)
    record = world.launch(BadCompensationName("bad"), at="n0", method="go")
    world.run()
    assert record.status is AgentStatus.FAILED
    assert "no.such.op" in record.failure


class WrongKind(OneShotAgent):
    def action(self, ctx):
        # t.mark is registered as an AGENT compensation.
        ctx.log_resource_compensation("t.mark", {}, resource="bank")


def test_mismatched_compensation_kind_rejected():
    world = build_line_world(1)
    record = world.launch(WrongKind("bad2"), at="n0", method="go")
    world.run()
    assert record.status is AgentStatus.FAILED
    assert "registered as" in record.failure


class MissingResourceName(OneShotAgent):
    def action(self, ctx):
        ctx.log_resource_compensation("t.undo_transfer", {})


def test_rce_without_resource_name_rejected():
    world = build_line_world(1)
    record = world.launch(MissingResourceName("bad3"), at="n0", method="go")
    world.run()
    assert record.status is AgentStatus.FAILED


class NoNextHop(MobileAgent):
    def stall(self, ctx):
        pass  # neither goto nor finish


def test_step_without_goto_or_finish_fails_agent():
    world = build_line_world(1)
    record = world.launch(NoNextHop("stuck"), at="n0", method="stall")
    world.run()
    assert record.status is AgentStatus.FAILED
    assert "neither goto nor finish" in record.failure


class RollbackToNowhere(OneShotAgent):
    def action(self, ctx):
        ctx.rollback("never-set")


def test_rollback_to_unknown_savepoint_rejected_in_step():
    world = build_line_world(1)
    record = world.launch(RollbackToNowhere("bad4"), at="n0", method="go")
    world.run()
    assert record.status is AgentStatus.FAILED
    assert "never-set" in record.failure
