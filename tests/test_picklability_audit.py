"""Tests: the process-picklability contract of everything that ships.

Worker-mode correctness rests on a contract the type system cannot
enforce: every object that crosses the coordinator/worker pipe — agent
packages, shadow-copy messages, ledger mirrors, whole bridge transfers
— must survive a ``spawn``-context pickle round trip with no captured
closures or live world references.  These tests pack real bridge
traffic (harvested from an in-process FT run with outage, so all three
kinds exist) and real workload packages through an actual spawned
process, and check that a violation fails *readably*, naming the
offending frame, before it can become an opaque worker crash.
"""

import multiprocessing

import pytest

from repro.agent.packages import AgentPackage
from repro.node.sharded import CrossShardBridge
from repro.storage.serialization import (
    assert_picklable,
    capture,
    find_unpicklable,
    restore,
)

from tests.helpers import build_ft_ring, launch_ft_tours


def harvest_bridge_traffic():
    """Every transfer the bridge of a kill+restart FT run routed."""
    transfers = []
    original = CrossShardBridge.route

    def recording_route(self, suspended):
        transfers.extend(self._pending)
        return original(self, suspended)

    CrossShardBridge.route = recording_route
    try:
        world = build_ft_ring("sharded", seed=7)
        world.kill_shard(1, at=0.08, restart_at=2.0)
        launch_ft_tours(world)
        world.run()
    finally:
        CrossShardBridge.route = original
    return transfers


def _roundtrip_child(conn):
    """Spawned auditor: echo a digest of everything it can unpickle."""
    while True:
        blob = conn.recv()
        if blob is None:
            return
        obj = restore(blob)
        kind = getattr(obj, "kind", None)
        package = getattr(obj, "package", None) or \
            (obj if type(obj).__name__ == "AgentPackage" else None)
        if package is None and getattr(obj, "message", None) is not None:
            package = obj.message.payload
        size = package.size_bytes if package is not None else None
        # Re-pickling must also succeed (the coordinator forwards the
        # same object on to another worker).
        capture(obj)
        conn.send((type(obj).__name__, str(kind), size))


@pytest.fixture(scope="module")
def spawn_auditor():
    ctx = multiprocessing.get_context("spawn")
    parent, child = ctx.Pipe()
    process = ctx.Process(target=_roundtrip_child, args=(child,),
                          daemon=True)
    process.start()
    child.close()
    yield parent
    parent.send(None)
    process.join(timeout=10)


def spawn_roundtrip(auditor, obj, context):
    assert_picklable(obj, context)
    auditor.send(capture(obj))
    return auditor.recv()


# -- every bridge traffic kind, through a real spawned process ---------------------


def test_all_bridge_traffic_kinds_survive_spawn_roundtrip(spawn_auditor):
    transfers = harvest_bridge_traffic()
    kinds = {t.kind for t in transfers}
    # The outage run must have exercised every traffic kind, or this
    # audit is vacuous.
    assert kinds == {"package", "shadow", "ledger"}
    for transfer in transfers:
        type_name, _kind, size = spawn_roundtrip(
            spawn_auditor, transfer,
            f"bridge {transfer.kind} transfer to "
            f"{transfer.dest_name or transfer.dest_shard}")
        assert type_name == "_Transfer"
        if transfer.kind == "package":
            # The transfer-cost model survives the boundary: the framed
            # payload size the destination charges is the one computed
            # at the source.
            assert size == transfer.package.size_bytes
        elif transfer.kind == "shadow":
            assert size == transfer.message.payload.size_bytes


def test_workload_agent_packages_survive_spawn_roundtrip(spawn_auditor):
    """Every package the example FT workload mints is spawn-safe."""
    packages = []
    original = AgentPackage.pack.__func__

    def recording_pack(cls, *args, **kwargs):
        package = original(cls, *args, **kwargs)
        packages.append(package)
        return package

    AgentPackage.pack = classmethod(recording_pack)
    try:
        world = build_ft_ring("sharded", seed=11)
        launch_ft_tours(world)
        world.run()
    finally:
        AgentPackage.pack = classmethod(original)
    assert len(packages) > 10
    for package in packages:
        type_name, _kind, size = spawn_roundtrip(
            spawn_auditor, package,
            f"package of agent {package.agent_id} "
            f"(step {package.step_index}, {package.kind.value})")
        assert type_name == "AgentPackage"
        assert size == package.size_bytes


# -- every traffic kind through real shm rings in a spawned process ----------------


def _ring_echo_child(conn):
    """Spawned echo worker for the shm wire format.

    Mirrors one worker side of the zero-copy barrier: attaches to the
    coordinator-created rings, decodes each epoch payload from its
    inbound ring, then re-encodes the same transfers (plus the supplied
    journal notes) as an epoch reply through its outbound ring — so
    every object crosses a real process boundary in both framed
    directions.
    """
    from repro.node.shmring import (
        ShmRing,
        decode_epoch,
        encode_reply,
    )
    in_name, out_name = conn.recv()
    ring_in = ShmRing.attach(in_name)
    ring_out = ShmRing.attach(out_name)
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            payload = decode_epoch(message["epoch"], ring_in)
            reply = {"outbox": [t for _action, t in payload["items"]],
                     "record_deltas": payload["records"],
                     "journal": message["notes"]}
            conn.send(encode_reply(reply, ring_out))
    finally:
        ring_in.close()
        ring_out.close()


def harvest_journal_notes():
    """Real journal payload notes from a journal-capturing FT run."""
    world = build_ft_ring("world", seed=5, journal_capture=True)
    launch_ft_tours(world)
    world.run()
    return world.drain_journal_notes()


def test_bridge_traffic_and_notes_survive_shm_rings_across_spawn():
    from repro.node.shmring import ShmRing, decode_reply

    transfers = harvest_bridge_traffic()
    assert {t.kind for t in transfers} == {"package", "shadow", "ledger"}
    notes = harvest_journal_notes()
    kinds = {kind for kind, _data in notes}
    assert "savepoint" in kinds and "store" in kinds
    # Only value-stable notes can be compared across the boundary.
    notes = [n for n in notes if restore(capture(n)) == n]

    ctx = multiprocessing.get_context("spawn")
    ring_out = ShmRing.create(1 << 21)  # coordinator -> worker
    ring_in = ShmRing.create(1 << 21)   # worker -> coordinator
    parent, child = ctx.Pipe()
    process = ctx.Process(target=_ring_echo_child, args=(child,),
                          daemon=True)
    process.start()
    child.close()
    parent.send((ring_out.name, ring_in.name))
    try:
        from repro.node.shmring import encode_epoch
        # Several barrier-sized batches, so the rings wrap in-process.
        step = 4
        for start in range(0, len(transfers), step):
            chunk = transfers[start:start + step]
            chunk_notes = notes[start:start + step]
            payload = {"items": [("deliver", t) for t in chunk],
                       "records": {"ag-x": b"record-blob-%d" % start}}
            parent.send({"epoch": encode_epoch(payload, ring_out),
                         "notes": chunk_notes})
            reply = decode_reply(parent.recv(), ring_in)
            assert reply["outbox"] == chunk
            assert reply["record_deltas"] == \
                {"ag-x": b"record-blob-%d" % start}
            assert reply["journal"] == chunk_notes
    finally:
        parent.send(None)
        process.join(timeout=10)
        ring_out.unlink()
        ring_in.unlink()


# -- readable failure on contract violations ---------------------------------------


class _Sneaky:
    """A payload that smuggles a closure into an attribute."""

    def __init__(self):
        self.fine = {"a": 1}
        self.smuggled = lambda: None


def test_violation_names_the_offending_attribute():
    offenders = find_unpicklable(_Sneaky())
    assert offenders
    paths = [path for path, _reason in offenders]
    assert "$.smuggled" in paths
    # The healthy part is not reported.
    assert all("fine" not in path for path in paths)


def test_assert_picklable_produces_a_contract_error():
    with pytest.raises(TypeError) as excinfo:
        assert_picklable({"frame": _Sneaky()}, "bridge outbox of shard 2")
    message = str(excinfo.value)
    assert "bridge outbox of shard 2" in message
    assert "$['frame'].smuggled" in message
    assert "closures" in message


def test_nested_offenders_are_all_reported():
    payload = {"a": [lambda: 1], "b": {"deep": (1, 2, lambda: 3)}}
    paths = {path for path, _ in find_unpicklable(payload)}
    assert "$['a'][0]" in paths
    assert "$['b']['deep'][2]" in paths


def test_picklable_objects_pass_silently():
    assert find_unpicklable({"x": [1, "two", (3.0,)]}) == []
    assert_picklable({"x": 1}, "anything")  # no raise


def test_cyclic_object_graphs_terminate_with_named_offender():
    cyclic = {"f": lambda: 1}
    cyclic["self"] = cyclic  # agent state graphs are commonly cyclic
    paths = {path for path, _ in find_unpicklable(cyclic)}
    assert "$['f']" in paths
    with pytest.raises(TypeError) as excinfo:
        assert_picklable(cyclic, "cyclic payload")
    assert "$['f']" in str(excinfo.value)
