"""Tests: the Transport stack — give-up surfacing and batched transfers.

Covers the two delivery-semantics contracts the refactor introduced:

* :class:`~repro.net.network.SimTransport` never *silently* drops a
  message: exhausting ``max_retries`` fires the ``net.gave_up``
  counter, a timeline event and the ``on_gave_up`` callback path;
* :class:`~repro.net.batching.BatchingTransport` coalesces co-located
  same-link sends into one framed transfer while preserving single-send
  reliability exactly — retries across partitions and mid-flight
  destination crashes apply to the frame as a whole, and a frame that
  exhausts its budget splits back into singles with fresh budgets.
"""


from repro import AgentStatus, NetworkParams
from repro.agent.packages import Protocol
from repro.net.batching import BATCH_KIND, BatchingTransport, batch_frame_bytes
from repro.net.network import Network, SimTransport
from repro.net.transport import Transport
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics

from tests.helpers import LinearAgent, build_line_world


def make_fabric(jitter=0.0, max_retries=10_000, batch_window=0.0):
    sim = Simulator(seed=3)
    failures = FailureInjector(sim)
    metrics = Metrics()
    params = NetworkParams(jitter=jitter, retry_backoff=0.05,
                           max_retries=max_retries,
                           batch_window=batch_window)
    inner = SimTransport(sim, failures, params, metrics)
    if batch_window > 0:
        return sim, failures, metrics, BatchingTransport(inner, sim, params,
                                                         metrics)
    return sim, failures, metrics, inner


# -- give-up surfacing (no silent drops) --------------------------------------


def test_send_gave_up_fires_callback_and_metrics():
    sim, failures, metrics, net = make_fabric(max_retries=3)
    lost = []
    failures.force_crash("b")  # never recovers
    net.send("a", "b", "test", "hi", 10,
             on_gave_up=lambda msg: lost.append(msg))
    sim.run()
    assert len(lost) == 1 and lost[0].kind == "test"
    assert metrics.count("net.gave_up") == 1
    assert metrics.events("net-gave-up")
    assert metrics.count("net.messages") == 0


def test_transport_wide_gave_up_fallback():
    sim, failures, metrics, net = make_fabric(max_retries=2)
    lost = []
    net.on_gave_up = lambda msg: lost.append((msg.src, msg.dst))
    failures.force_partition("a", "b")
    net.send("a", "b", "test", "x", 10)
    sim.run()
    assert lost == [("a", "b")]


def test_mid_flight_crash_eventually_gives_up():
    sim, failures, metrics, net = make_fabric(max_retries=2)
    lost = []
    sim.schedule(0.001, lambda: failures.force_crash("b"))
    net.send("a", "b", "big", "payload", 5_000_000,  # ~4s in flight
             on_gave_up=lambda msg: lost.append(msg))
    sim.run()
    assert len(lost) == 1
    assert metrics.count("net.gave_up") == 1


def test_network_alias_and_protocol_conformance():
    assert Network is SimTransport
    _sim, _f, _m, plain = make_fabric()
    _sim, _f, _m, batched = make_fabric(batch_window=0.01)
    assert isinstance(plain, Transport)
    assert isinstance(batched, Transport)


# -- batching: coalescing ------------------------------------------------------


def test_same_link_sends_coalesce_into_one_frame():
    sim, _failures, metrics, net = make_fabric(batch_window=0.02)
    got = []
    net.register("b", lambda msg: got.append((msg.kind, msg.payload)))
    order = []
    for i in range(4):
        net.send("a", "b", "pkg", i, 100,
                 on_delivered=lambda msg: order.append(msg.payload))
    sim.run()
    # Logical delivery: every message arrived once, in send order.
    assert got == [("pkg", 0), ("pkg", 1), ("pkg", 2), ("pkg", 3)]
    assert order == [0, 1, 2, 3]
    # Physical transfer: one frame.
    assert metrics.count("net.messages") == 1
    assert metrics.count(f"net.messages.{BATCH_KIND}") == 1
    assert metrics.count("net.messages.pkg") == 4
    assert metrics.count("net.batches") == 1
    assert metrics.count("net.batched_messages") == 4
    # Per-kind bytes match unbatched accounting; the frame adds only
    # the documented framing overhead on the physical total.
    assert metrics.total_bytes("net.pkg") == 400
    assert metrics.total_bytes("net.total") == batch_frame_bytes([100] * 4)


def test_batches_are_per_link_and_per_window():
    sim, _failures, metrics, net = make_fabric(batch_window=0.02)
    net.send("a", "b", "pkg", 1, 10)
    net.send("a", "c", "pkg", 2, 10)  # different link: own batch
    sim.schedule(0.1, lambda: net.send("a", "b", "pkg", 3, 10))  # later window
    sim.run()
    # Three singleton flushes — no frame worth building anywhere.
    assert metrics.count("net.batches") == 0
    assert metrics.count("net.messages") == 3
    assert metrics.count("net.messages.pkg") == 3


def test_singleton_flush_keeps_single_send_accounting():
    sim, _failures, metrics, net = make_fabric(batch_window=0.02)
    got = []
    net.register("b", lambda msg: got.append(msg.payload))
    net.send("a", "b", "solo", "x", 123)
    sim.run()
    assert got == ["x"]
    assert metrics.count("net.messages") == 1
    assert metrics.count("net.messages.solo") == 1
    assert metrics.total_bytes("net.total") == 123
    assert metrics.count("net.batches") == 0


def test_local_sends_bypass_the_batcher():
    sim, _failures, metrics, net = make_fabric(batch_window=0.02)
    got = []
    net.register("a", lambda msg: got.append(msg.payload))
    net.send("a", "a", "loop", "here", 10)
    sim.run()
    assert got == ["here"]
    assert net.pending_messages() == 0


def test_handler_then_callback_order_per_constituent():
    sim, _failures, _metrics, net = make_fabric(batch_window=0.02)
    order = []
    net.register("b", lambda msg: order.append(("handler", msg.payload)))
    for i in range(2):
        net.send("a", "b", "pkg", i, 10,
                 on_delivered=lambda msg: order.append(("cb", msg.payload)))
    sim.run()
    assert order == [("handler", 0), ("cb", 0), ("handler", 1), ("cb", 1)]


# -- batching: reliability semantics ------------------------------------------


def test_batch_retries_across_partition_and_heals():
    sim, failures, metrics, net = make_fabric(batch_window=0.02)
    got = []
    net.register("b", lambda msg: got.append(sim.now))
    failures.force_partition("a", "b")
    sim.schedule(0.5, lambda: failures.force_heal("a", "b"))
    for i in range(3):
        net.send("a", "b", "pkg", i, 100)
    sim.run()
    # All three arrive exactly once, after the heal, via one frame.
    assert len(got) == 3 and all(t > 0.5 for t in got)
    assert metrics.count("net.messages") == 1
    assert metrics.count("net.retries") >= 1
    assert metrics.count("net.messages.pkg") == 3


def test_batch_retries_when_destination_dies_in_flight():
    sim, failures, metrics, net = make_fabric(batch_window=0.01)
    got = []
    net.register("b", lambda msg: got.append(sim.now))
    # Crash b while the (large => slow) frame is in the air.
    sim.schedule(0.02, lambda: failures.force_crash("b"))
    sim.schedule(2.0, lambda: failures.force_recover("b"))
    net.send("a", "b", "big", "p1", 2_000_000)
    net.send("a", "b", "big", "p2", 2_000_000)
    sim.run()
    assert len(got) == 2 and all(t > 2.0 for t in got)
    assert metrics.count("net.messages") == 1  # one frame, delivered once


def test_batch_splits_into_singles_when_frame_gives_up():
    sim, failures, metrics, net = make_fabric(batch_window=0.02,
                                              max_retries=2)
    got, lost = [], []
    net.register("b", lambda msg: got.append(msg.payload))
    failures.force_crash("b")
    # Recover after frame + split retries exhausted for one message but
    # not the other... simplest strong case: b stays down; both split
    # constituents surface their own give-up.
    for i in range(2):
        net.send("a", "b", "pkg", i, 10,
                 on_gave_up=lambda msg: lost.append(msg.payload))
    sim.run()
    assert got == []
    assert metrics.count("net.batch.splits") == 1
    # The frame gave up once, then each constituent gave up on its own
    # fresh retry budget.
    assert sorted(lost) == [0, 1]
    assert metrics.count("net.gave_up") == 3  # frame + 2 singles


def test_split_constituents_deliver_if_destination_recovers():
    sim, failures, metrics, net = make_fabric(batch_window=0.02,
                                              max_retries=3)
    got, lost = [], []
    net.register("b", lambda msg: got.append(msg.payload))
    failures.force_crash("b")
    # Frame budget (3 retries @ 0.05 backoff) exhausts around t≈0.17;
    # recovery at 0.25 lets the split singles through.
    sim.schedule(0.25, lambda: failures.force_recover("b"))
    for i in range(2):
        net.send("a", "b", "pkg", i, 10,
                 on_gave_up=lambda msg: lost.append(msg.payload))
    sim.run()
    assert sorted(got) == [0, 1]
    assert lost == []
    assert metrics.count("net.batch.splits") == 1


def test_flush_all_ships_open_batches_immediately():
    sim, _failures, metrics, net = make_fabric(batch_window=5.0)
    got = []
    net.register("b", lambda msg: got.append(msg.payload))
    net.send("a", "b", "pkg", 1, 10)
    net.send("a", "b", "pkg", 2, 10)
    assert net.pending_messages() == 2
    net.flush_all()
    assert net.pending_messages() == 0
    sim.run(until=1.0)  # far less than the 5s window
    assert got == [1, 2]


# -- batching: world integration (FT shadow copies) ----------------------------


def run_ft_swarm(batch_window, n_agents=4):
    world = build_line_world(
        4, seed=3, net_params=NetworkParams(batch_window=batch_window))
    for i in range(4):
        world.ft.set_alternates(f"n{i}", f"n{(i + 1) % 4}")
    for a in range(n_agents):
        agent = LinearAgent(f"bw{batch_window}-{a}", ["n0", "n1", "n2", "n3"])
        world.launch(agent, at="n0", method="step",
                     protocol=Protocol.FAULT_TOLERANT)
    world.run(max_events=2_000_000)
    assert all(r.status is AgentStatus.FINISHED
               for r in world.agents.values())
    return world


def test_world_routes_shadow_copies_through_the_batcher():
    plain = run_ft_swarm(0.0)
    batched = run_ft_swarm(0.2)
    shadows = plain.metrics.count("net.messages.shadow-copy")
    assert shadows > 0
    # Same logical shadow traffic either way...
    assert batched.metrics.count("net.messages.shadow-copy") == shadows
    # ...but strictly fewer physical transfers once frames form.
    assert batched.metrics.count("net.batches") > 0
    assert batched.metrics.count("net.messages") < \
        plain.metrics.count("net.messages")


def test_batching_is_off_by_default():
    world = build_line_world(2, seed=0)
    assert isinstance(world.transport, SimTransport)
    assert world.network is world.transport  # legacy alias preserved
