"""Tests: the Section 3 formalism — histories, commutativity, soundness.

These machine-check the paper's worked examples:

* deposit/withdraw on an overdraftable account commute, so compensation
  built from them yields sound histories;
* a dependent transaction that branches on the balance ("if I have
  enough money...") breaks commutativity and soundness;
* soundness implies T • CT ≡ I on the tested states.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compensation.history import (
    History,
    Operation,
    commutes,
    histories_equal,
    identity,
    is_sound,
)


def deposit(amount):
    def fn(state):
        state["balance"] = state.get("balance", 0) + amount
        return state
    return Operation(f"deposit({amount})", fn)


def withdraw(amount):
    return deposit(-amount)


def conditional_spend(amount, threshold):
    """Spend only if balance >= threshold — the paper's soundness breaker."""
    def fn(state):
        if state.get("balance", 0) >= threshold:
            state["balance"] -= amount
            state["spent"] = state.get("spent", 0) + amount
        return state
    return Operation(f"spend({amount})if>={threshold}", fn)


balances = st.integers(min_value=-500, max_value=500)
states = st.builds(lambda b: {"balance": b}, balances)


@given(st.lists(states, min_size=3, max_size=6),
       st.integers(1, 50), st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_deposit_withdraw_commute(samples, x, y):
    assert commutes(History([deposit(x)]), History([withdraw(y)]), samples)


@given(st.lists(states, min_size=3, max_size=6), st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_deposit_compensation_is_sound_against_commuting_dep(samples, x):
    t = History([deposit(x)])
    ct = History([withdraw(x)])
    dep = History([deposit(7), withdraw(3)])
    assert is_sound(t, ct, dep, samples)


def test_conditional_spend_breaks_commutativity():
    samples = [{"balance": b} for b in (0, 10, 19, 20, 21, 100)]
    t = History([deposit(20)])
    dep = History([conditional_spend(5, threshold=20)])
    assert not commutes(t, dep, samples)


def test_conditional_spend_breaks_soundness():
    """With T = deposit(20) compensated later, dep's branch decision
    differs from the run where T never happened."""
    samples = [{"balance": 10}]  # 10 < 20 without T; 30 >= 20 with T
    t = History([deposit(20)])
    ct = History([withdraw(20)])
    dep = History([conditional_spend(5, threshold=20)])
    assert not is_sound(t, ct, dep, samples)


@given(st.lists(states, min_size=3, max_size=6), st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_soundness_implies_t_ct_is_identity(samples, x):
    t = History([deposit(x)])
    ct = History([withdraw(x)])
    assert histories_equal(t.then(ct), identity(), samples)


def test_history_application_order_is_left_to_right():
    t = History([deposit(10), conditional_spend(5, threshold=10)])
    out = t({"balance": 0})
    assert out == {"balance": 5, "spent": 5}


def test_history_then_and_reversed():
    h = History([deposit(1), deposit(2)])
    assert len(h.then(History([deposit(3)]))) == 3
    assert [op.name for op in h.reversed().ops] == \
        ["deposit(2)", "deposit(1)"]


def test_operations_do_not_alias_input_state():
    state = {"balance": 0}
    deposit(10)(state)
    assert state == {"balance": 0}


@given(st.lists(states, min_size=2, max_size=5))
@settings(max_examples=30, deadline=None)
def test_histories_equal_is_reflexive(samples):
    h = History([deposit(3), withdraw(1)])
    assert histories_equal(h, h, samples)
