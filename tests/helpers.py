"""Shared test fixtures: picklable agents and registered compensations.

Agent classes used in tests must live in an importable module (pickle
captures them by reference, like the paper's platform ships code by
class name), so they are defined here rather than inside test
functions.
"""

from __future__ import annotations

from repro import (
    Bank,
    InfoDirectory,
    MobileAgent,
    World,
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)
from repro.resources.bank import OverdraftPolicy


# ---------------------------------------------------------------------------
# Compensating operations (unique names; the registry is global)
# ---------------------------------------------------------------------------

@resource_compensation("t.undo_transfer")
def t_undo_transfer(bank, params, ctx):
    bank.transfer(params["dst"], params["src"], params["amount"],
                  compensating=True)


@resource_compensation("t.undo_deposit")
def t_undo_deposit(bank, params, ctx):
    bank.withdraw(params["account"], params["amount"], compensating=True)


@agent_compensation("t.forget_note")
def t_forget_note(wro, params, ctx):
    notes = list(wro.get("notes", []))
    if params["note"] in notes:
        notes.remove(params["note"])
    wro["notes"] = notes
    wro["compensations"] = wro.get("compensations", 0) + 1


@agent_compensation("t.mark")
def t_mark(wro, params, ctx):
    wro.setdefault("marks", []).append(params.get("tag", "mark"))


@mixed_compensation("t.return_cash")
def t_return_cash(wro, bank, params, ctx):
    amount = wro.get("cash", 0)
    bank.deposit(params["account"], amount)
    wro["cash"] = 0
    wro["returned"] = wro.get("returned", 0) + amount


# ---------------------------------------------------------------------------
# Agents
# ---------------------------------------------------------------------------

class LinearAgent(MobileAgent):
    """Visits ``plan`` nodes in order, one bank transfer per step.

    ``rollback_at_end`` rolls back once to the named savepoint before
    finishing (detected via the WRO compensation counter).
    """

    def __init__(self, agent_id, plan, savepoints=(), rollback_to=None,
                 amounts=10):
        super().__init__(agent_id)
        self.plan = list(plan)
        self.savepoints = dict(savepoints)  # pos -> sp_id
        self.rollback_to = rollback_to
        self.amount = amounts
        self.sro["pos"] = 0

    def step(self, ctx):
        pos = self.sro["pos"]
        bank = ctx.resource("bank")
        bank.transfer("a", "b", self.amount)
        ctx.log_resource_compensation(
            "t.undo_transfer",
            {"src": "a", "dst": "b", "amount": self.amount},
            resource="bank")
        note = f"visited-{pos}"
        self.wro.setdefault("notes", []).append(note)
        ctx.log_agent_compensation("t.forget_note", {"note": note})
        self.sro["pos"] = pos + 1
        if pos + 1 < len(self.plan):
            ctx.goto(self.plan[pos + 1], "step")
        else:
            ctx.goto(self.plan[0], "wrap")
        if pos in self.savepoints:
            ctx.savepoint(self.savepoints[pos])

    def wrap(self, ctx):
        if (self.rollback_to is not None
                and not self.wro.get("compensations")):
            ctx.rollback(self.rollback_to)
        ctx.finish({
            "notes": list(self.wro.get("notes", [])),
            "compensations": self.wro.get("compensations", 0),
            "pos": self.sro["pos"],
        })


class OneShotAgent(MobileAgent):
    """Runs a single step that calls ``self.action(ctx)`` then finishes."""

    def go(self, ctx):
        result = self.action(ctx)
        ctx.finish(result)

    def action(self, ctx):  # overridden in subclasses
        return None


def build_line_world(n_nodes=4, seed=0, **world_kwargs) -> World:
    """n nodes in a line, each with a bank holding accounts a and b."""
    world = World(seed=seed, **world_kwargs)
    for i in range(n_nodes):
        node = world.add_node(f"n{i}")
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
        directory = InfoDirectory("directory")
        directory.publish("offers", [{"price": i}])
        node.add_resource(directory)
    return world


def bank_of(world: World, node: str) -> Bank:
    return world.node(node).get_resource("bank")
