"""Shared test fixtures: picklable agents and registered compensations.

Agent classes used in tests must live in an importable module (pickle
captures them by reference, like the paper's platform ships code by
class name), so they are defined here rather than inside test
functions.
"""

from __future__ import annotations

from repro import (
    Bank,
    InfoDirectory,
    MobileAgent,
    World,
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)
from repro.resources.bank import OverdraftPolicy


# ---------------------------------------------------------------------------
# Compensating operations (unique names; the registry is global)
# ---------------------------------------------------------------------------

@resource_compensation("t.undo_transfer")
def t_undo_transfer(bank, params, ctx):
    bank.transfer(params["dst"], params["src"], params["amount"],
                  compensating=True)


@resource_compensation("t.undo_deposit")
def t_undo_deposit(bank, params, ctx):
    bank.withdraw(params["account"], params["amount"], compensating=True)


@agent_compensation("t.forget_note")
def t_forget_note(wro, params, ctx):
    notes = list(wro.get("notes", []))
    if params["note"] in notes:
        notes.remove(params["note"])
    wro["notes"] = notes
    wro["compensations"] = wro.get("compensations", 0) + 1


@agent_compensation("t.mark")
def t_mark(wro, params, ctx):
    wro.setdefault("marks", []).append(params.get("tag", "mark"))


@mixed_compensation("t.return_cash")
def t_return_cash(wro, bank, params, ctx):
    amount = wro.get("cash", 0)
    bank.deposit(params["account"], amount)
    wro["cash"] = 0
    wro["returned"] = wro.get("returned", 0) + amount


# ---------------------------------------------------------------------------
# Agents
# ---------------------------------------------------------------------------

class LinearAgent(MobileAgent):
    """Visits ``plan`` nodes in order, one bank transfer per step.

    ``rollback_at_end`` rolls back once to the named savepoint before
    finishing (detected via the WRO compensation counter).
    """

    def __init__(self, agent_id, plan, savepoints=(), rollback_to=None,
                 amounts=10):
        super().__init__(agent_id)
        self.plan = list(plan)
        self.savepoints = dict(savepoints)  # pos -> sp_id
        self.rollback_to = rollback_to
        self.amount = amounts
        self.sro["pos"] = 0

    def step(self, ctx):
        pos = self.sro["pos"]
        bank = ctx.resource("bank")
        bank.transfer("a", "b", self.amount)
        ctx.log_resource_compensation(
            "t.undo_transfer",
            {"src": "a", "dst": "b", "amount": self.amount},
            resource="bank")
        note = f"visited-{pos}"
        self.wro.setdefault("notes", []).append(note)
        ctx.log_agent_compensation("t.forget_note", {"note": note})
        self.sro["pos"] = pos + 1
        if pos + 1 < len(self.plan):
            ctx.goto(self.plan[pos + 1], "step")
        else:
            ctx.goto(self.plan[0], "wrap")
        if pos in self.savepoints:
            ctx.savepoint(self.savepoints[pos])

    def wrap(self, ctx):
        if (self.rollback_to is not None
                and not self.wro.get("compensations")):
            ctx.rollback(self.rollback_to)
        ctx.finish({
            "notes": list(self.wro.get("notes", [])),
            "compensations": self.wro.get("compensations", 0),
            "pos": self.sro["pos"],
        })


class OneShotAgent(MobileAgent):
    """Runs a single step that calls ``self.action(ctx)`` then finishes."""

    def go(self, ctx):
        result = self.action(ctx)
        ctx.finish(result)

    def action(self, ctx):  # overridden in subclasses
        return None


# ---------------------------------------------------------------------------
# Backend-neutral differential workload (tests/test_multiproc_differential.py)
#
# The same seeded FT itinerary workload — rollbacks, compensations,
# node crashes, whole-shard outages with restart — expressed through
# the call surface all three execution backends share (unsharded World,
# in-process ShardedWorld, process-backed ProcShardedWorld), so their
# runs can be compared agent by agent and bank by bank.  Everything
# here is module-level and picklable: that is the worker-process
# contract.
# ---------------------------------------------------------------------------

FT_RING = [f"n{i}" for i in range(9)]


def build_ft_ring(backend, seed=7, n_shards=3, takeover_timeout=0.05,
                  alternates=True, **kwargs):
    """A ring of banked nodes on any backend, with FT alternates.

    ``backend`` is one of ``"world"`` (single kernel), ``"sharded"``
    (in-process shards) or ``"proc"`` (worker processes).  Node i's
    alternates are the next two ring nodes, which round-robin placement
    puts in the two other shards.
    """
    from repro import FTParams, ProcShardedWorld, ShardedWorld

    kwargs.setdefault("ft_params",
                      FTParams(takeover_timeout=takeover_timeout))
    if backend == "world":
        world = World(seed=seed, **kwargs)
    elif backend == "sharded":
        world = ShardedWorld(n_shards=n_shards, seed=seed, **kwargs)
    elif backend == "proc":
        world = ProcShardedWorld(n_shards=n_shards, seed=seed, **kwargs)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    for name in FT_RING:
        node = world.add_node(name)
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    if alternates:
        ring = FT_RING
        for i, name in enumerate(ring):
            alts = (ring[(i + 1) % len(ring)], ring[(i + 2) % len(ring)])
            if backend == "world":
                world.ft.set_alternates(name, *alts)
            else:
                world.set_alternates(name, *alts)
    return world


def launch_ft_tours(world, n_agents=3, plan_len=4, rollback=True):
    """FT tours through every shard; each rolls back once at the end."""
    from repro.agent.packages import Protocol

    records = []
    for a in range(n_agents):
        start = 3 * a
        plan = [FT_RING[(start + j) % len(FT_RING)]
                for j in range(plan_len)]
        agent = LinearAgent(f"ag-{a}", plan,
                            savepoints={0: "sp"} if rollback else (),
                            rollback_to="sp" if rollback else None)
        records.append(world.launch(agent, at=plan[0], method="step",
                                    protocol=Protocol.FAULT_TOLERANT))
    return records


def ring_debits(world):
    """Per-node account-a debits: the exactly-once effect measure."""
    return {
        name: 1_000 - world.resource_state(name, "bank").peek("a")["balance"]
        for name in FT_RING
    }


def shard_nodes(shard, n_shards=3):
    """The ring nodes round-robin placement assigns to ``shard``."""
    return [name for i, name in enumerate(FT_RING)
            if i % n_shards == shard]


def run_differential_scenario(backend, seed, outage=None, n_agents=3,
                              rollback=True, **kwargs):
    """Run one differential scenario; returns the comparison record.

    ``outage`` is ``None`` or ``(shard, at, restart_at)``.  On the
    unsharded backend a whole-shard outage is expressed as what it does
    to the nodes — every node of the shard crashes at the kill time and
    recovers at the restart — which is exactly the sharded semantics
    minus the (outcome-invisible) kernel freeze.
    """
    from repro.sim.failures import CrashPlan

    world = build_ft_ring(backend, seed=seed, **kwargs)
    try:
        if outage is not None:
            shard, at, restart_at = outage
            if backend == "world":
                world.apply_crash_plans(
                    [CrashPlan(name, at, restart_at - at)
                     for name in shard_nodes(shard)])
            else:
                world.kill_shard(shard, at=at, restart_at=restart_at)
        launch_ft_tours(world, n_agents=n_agents, rollback=rollback)
        world.run(until=120.0)
        result = {
            "outcomes": world.outcomes(),
            "debits": ring_debits(world),
            "ledger_agrees": (world.ledger_quorum_agrees()
                              if backend != "world" else True),
        }
        if backend != "world":
            result["counters"] = world.counters()
            result["epochs"] = world.epochs_run
            result["events"] = world.events_processed()
        return result
    finally:
        if hasattr(world, "close"):
            world.close()


def run_crash_resume_scenario(backend, seed, kill_at, phase="commit",
                              outage=None, n_agents=3, rollback=True,
                              journal_factory=None, **kwargs):
    """Run the differential workload, crash the coordinator, resume.

    Builds the journaled world, hard-stops it at the first epoch
    barrier >= ``kill_at`` (``phase`` picks the commit-adjacent or the
    mid-barrier kill point), rebuilds it from the journal with
    :func:`repro.journal.resume_world` and runs the continuation to
    completion.  Returns the same comparison record as
    :func:`run_differential_scenario` — the crash-resume differential
    axis asserts the two are identical.

    ``journal_factory`` makes a fresh journal over the *same* durable
    backend per call (called twice: original run, recovery); the
    default keeps a single in-memory backend alive across the simulated
    crash.
    """
    from repro.errors import WorldKilled
    from repro.journal import MemoryJournal, WorldJournal, resume_world
    from repro.sim.failures import CrashPlan

    if journal_factory is None:
        shared = MemoryJournal()
        journal_factory = lambda: WorldJournal(shared)  # noqa: E731
    journal = journal_factory()
    world = build_ft_ring(backend, seed=seed, journal=journal, **kwargs)
    killed = False
    try:
        if outage is not None:
            shard, at, restart_at = outage
            if backend == "world":
                world.apply_crash_plans(
                    [CrashPlan(name, at, restart_at - at)
                     for name in shard_nodes(shard)])
            else:
                world.kill_shard(shard, at=at, restart_at=restart_at)
        launch_ft_tours(world, n_agents=n_agents, rollback=rollback)
        world.kill_world(at=kill_at, phase=phase)
        try:
            world.run(until=120.0)
        except WorldKilled:
            killed = True
    finally:
        if hasattr(world, "close"):
            world.close()
        journal.close()
    journal = journal_factory()
    resumed = resume_world(journal)
    try:
        resumed.run(until=120.0)
        result = {
            "outcomes": resumed.outcomes(),
            "debits": ring_debits(resumed),
            "ledger_agrees": (resumed.ledger_quorum_agrees()
                              if backend != "world" else True),
        }
        if backend != "world":
            result["counters"] = resumed.counters()
            result["epochs"] = resumed.epochs_run
            result["events"] = resumed.events_processed()
        return result, killed
    finally:
        if hasattr(resumed, "close"):
            resumed.close()
        journal.close()


def build_line_world(n_nodes=4, seed=0, **world_kwargs) -> World:
    """n nodes in a line, each with a bank holding accounts a and b."""
    world = World(seed=seed, **world_kwargs)
    for i in range(n_nodes):
        node = world.add_node(f"n{i}")
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
        directory = InfoDirectory("directory")
        directory.publish("offers", [{"price": i}])
        node.add_resource(directory)
    return world


def bank_of(world: World, node: str) -> Bank:
    return world.node(node).get_resource("bank")
