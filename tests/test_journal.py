"""Unit tests for the write-ahead world journal.

Three layers, bottom up:

* **backends** — CRC-framed record streams (memory / append-only file /
  sqlite): round-trips, truncation, the torn-tail rule (damage at the
  physical end is the interrupted write and is discarded; damage before
  it raises :class:`~repro.errors.JournalCorrupt`);
* **WorldJournal** — group commit, recovery-frontier selection (config
  + everything through the last commit marker + trailing setup ops),
  re-arming;
* **resume** — journaled worlds killed mid-run resume to outcomes
  identical to the uninterrupted run, including through a node crash
  whose transactional undo must not double-apply, and recovery refuses
  a journal whose replay diverges from the committed digest.

The cross-backend crash-resume differential axis lives in
tests/test_multiproc_differential.py; this file covers the journal
machinery itself on the unsharded World.
"""

import pytest

from repro.errors import (
    JournalCorrupt,
    JournalDiverged,
    UsageError,
    WorldKilled,
)
from repro.journal import (
    FileJournal,
    MemoryJournal,
    SqliteJournal,
    WorldJournal,
    open_backend,
    resume_world,
)
from repro.journal.backends import frame, parse_frames
from repro.journal.journal import decode_record, encode_record
from tests.helpers import (
    build_ft_ring,
    launch_ft_tours,
    ring_debits,
    run_crash_resume_scenario,
    run_differential_scenario,
)

BACKEND_FACTORIES = {
    "memory": lambda tmp: MemoryJournal(),
    "file": lambda tmp: FileJournal(tmp / "world.journal"),
    "sqlite": lambda tmp: SqliteJournal(tmp / "world.db"),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request, tmp_path):
    be = BACKEND_FACTORIES[request.param](tmp_path)
    yield be
    be.close()


# -- backends ----------------------------------------------------------------------


def test_backend_round_trip(backend):
    records = [f"record-{i}".encode() for i in range(5)]
    for payload in records:
        backend.append(payload)
    backend.sync()
    payloads, torn = backend.read_all()
    assert payloads == records
    assert not torn
    backend.truncate_records(2)
    payloads, torn = backend.read_all()
    assert payloads == records[:2]
    assert not torn
    assert backend.size_bytes > 0


def test_backend_torn_tail_discards_final_record(backend):
    for i in range(3):
        backend.append(f"record-{i}".encode())
    backend.sync()
    backend.tear_tail(3)
    payloads, torn = backend.read_all()
    assert payloads == [b"record-0", b"record-1"]
    assert torn


def test_backend_corrupt_final_record_is_torn_tail(backend):
    for i in range(3):
        backend.append(f"record-{i}".encode())
    backend.sync()
    backend.corrupt_record(2)
    payloads, torn = backend.read_all()
    assert payloads == [b"record-0", b"record-1"]
    assert torn


def test_backend_corrupt_before_tail_raises(backend):
    for i in range(3):
        backend.append(f"record-{i}".encode())
    backend.sync()
    backend.corrupt_record(0)
    with pytest.raises(JournalCorrupt):
        backend.read_all()


def test_parse_frames_torn_variants():
    buf = frame(b"alpha") + frame(b"bravo")
    # Torn header: fewer than 8 bytes of the second frame survive.
    payloads, torn = parse_frames(buf[:len(frame(b"alpha")) + 4], "t")
    assert (payloads, torn) == ([b"alpha"], True)
    # Torn payload: full header, short payload.
    payloads, torn = parse_frames(buf[:-2], "t")
    assert (payloads, torn) == ([b"alpha"], True)
    # Intact stream.
    payloads, torn = parse_frames(buf, "t")
    assert (payloads, torn) == ([b"alpha", b"bravo"], False)


def test_open_backend_dispatch(tmp_path):
    assert isinstance(open_backend(None), MemoryJournal)
    assert isinstance(open_backend("memory"), MemoryJournal)
    sq = open_backend(tmp_path / "j.db")
    assert isinstance(sq, SqliteJournal)
    sq.close()
    fj = open_backend(tmp_path / "j.log")
    assert isinstance(fj, FileJournal)
    fj.close()
    with pytest.raises(UsageError):
        FileJournal(tmp_path / "j2.log", fsync="sometimes")


# -- WorldJournal: commit and recovery frontier ------------------------------------


def test_recover_keeps_commits_and_trailing_ops():
    journal = WorldJournal()
    journal.record_config(backend="world", seed=1)
    journal.record_op("add_node", name="n0")
    journal.buffer("store", store="s", op="put", key="k", value=1)
    journal.commit_epoch(1.0, (5,))
    journal.record_op("launch", bundle=b"x")
    journal.buffer("store", store="s", op="put", key="k", value=2)
    journal.commit_epoch(2.0, (9,))
    journal.record_op("crash_plans", blob=b"y")  # op after last commit: kept
    journal.buffer("queue", node="n0", op="enqueue", item=1, bytes=10)
    # The buffered payload never flushed — it belongs to the epoch the
    # crash destroyed and must not appear on recovery.
    recovered = journal.recover()
    assert recovered.frontier_barrier == 2.0
    assert recovered.frontier["digest"] == (9,)
    assert not recovered.torn_tail
    kinds = [kind for kind, _ in recovered.entries]
    assert kinds == ["add_node", "store", "epoch", "launch", "store",
                     "epoch", "crash_plans"]
    assert recovered.kept_records == len(kinds) + 1  # + config
    assert recovered.discarded_records == 0


def test_recover_discards_uncommitted_payload_records():
    journal = WorldJournal()
    journal.record_config(backend="world", seed=1)
    journal.commit_epoch(1.0, (3,))
    # A flushed-but-uncommitted payload record (simulate by appending
    # directly, as a torn group commit would leave behind).
    journal.backend.append(encode_record("store", {"op": "put"}))
    journal.backend.append(encode_record("bridge", {"moved": 2}))
    recovered = journal.recover()
    assert [kind for kind, _ in recovered.entries] == ["epoch"]
    assert recovered.discarded_records == 2
    journal.rearm(recovered)
    assert journal.commits == 1
    # The truncation is physical: a fresh recover sees the clean tail.
    again = WorldJournal(journal.backend).recover()
    assert [kind for kind, _ in again.entries] == ["epoch"]
    assert again.discarded_records == 0


def test_recover_without_config_record_raises():
    be = MemoryJournal()
    be.append(encode_record("add_node", {"name": "n0"}))
    with pytest.raises(JournalCorrupt):
        WorldJournal(be).recover()


def test_journal_rejects_unknown_kinds():
    journal = WorldJournal()
    journal.record_config(backend="world", seed=1)
    with pytest.raises(UsageError):
        journal.record_op("format_disk")
    with pytest.raises(UsageError):
        journal.buffer("confetti")
    with pytest.raises(UsageError):
        journal.record_config(backend="world", seed=2)


# -- journaled runs ----------------------------------------------------------------


def test_journaled_run_matches_unjournaled_and_audits_effects():
    plain = build_ft_ring("world", seed=7)
    launch_ft_tours(plain)
    plain.run(until=120.0)

    journal = WorldJournal()
    journaled = build_ft_ring("world", seed=7, journal=journal)
    launch_ft_tours(journaled)
    journaled.run(until=120.0)

    assert journaled.outcomes() == plain.outcomes()
    assert ring_debits(journaled) == ring_debits(plain)
    stats = journal.stats()
    assert stats["commits"] > 1
    # Every effect channel left its audit trail.
    for kind in ("store", "queue", "savepoint"):
        assert stats["kinds"].get(kind, 0) > 0, kind
    assert stats["kinds"]["add_node"] == 9
    assert stats["kinds"]["launch"] == 3


def test_kill_world_validates_plan():
    world = build_ft_ring("world", seed=3, journal=WorldJournal())
    with pytest.raises(UsageError):
        world.kill_world(at=1.0, phase="gently")
    with pytest.raises(UsageError):
        world.kill_world(at=-1.0)


def test_mid_barrier_kill_falls_back_one_epoch(tmp_path):
    path = tmp_path / "world.journal"
    journal = WorldJournal(FileJournal(path))
    world = build_ft_ring("world", seed=7, journal=journal)
    launch_ft_tours(world)
    world.kill_world(at=0.06, phase="barrier")
    with pytest.raises(WorldKilled) as exc_info:
        world.run(until=120.0)
    journal.close()
    assert exc_info.value.phase == "barrier"
    killed_barrier = exc_info.value.barrier
    # Reopen from disk, as a restarted process would.
    journal = WorldJournal(FileJournal(path))
    recovered = journal.recover()
    assert recovered.torn_tail
    assert recovered.frontier_barrier < killed_barrier
    journal.close()


def test_resume_after_commit_kill_is_outcome_identical(tmp_path):
    factory = lambda: WorldJournal(  # noqa: E731
        SqliteJournal(tmp_path / "world.db"))
    resumed, killed = run_crash_resume_scenario("world", seed=7,
                                                kill_at=0.1,
                                                journal_factory=factory)
    assert killed
    assert resumed == run_differential_scenario("world", seed=7)


def test_resume_of_completed_run_is_identity():
    backend = MemoryJournal()
    journal = WorldJournal(backend)
    world = build_ft_ring("world", seed=5, journal=journal)
    launch_ft_tours(world)
    world.run(until=120.0)
    outcomes, debits = world.outcomes(), ring_debits(world)

    resumed = resume_world(WorldJournal(backend))
    resumed.run(until=120.0)
    assert resumed.outcomes() == outcomes
    assert ring_debits(resumed) == debits


def test_crash_undo_not_double_applied_after_resume():
    """Satellite: StableStore transactional undo x journal replay.

    A node crash aborts in-flight step transactions, whose undo fires
    ``restore`` mutations through the journal hook; the coordinator is
    then killed.  The resumed run must re-execute that history — crash,
    abort, undo and all — to the same per-bank sums as an uninterrupted
    run, never double-applying the undone writes.
    """
    outage = (1, 0.05, 1.5)
    reference = run_differential_scenario("world", seed=13, outage=outage)
    backend = MemoryJournal()
    factory = lambda: WorldJournal(backend)  # noqa: E731
    resumed, killed = run_crash_resume_scenario(
        "world", seed=13, kill_at=0.09, outage=outage,
        journal_factory=factory)
    assert killed
    assert resumed == reference
    # The audit trail really recorded the transactional undo.
    payloads, _torn = backend.read_all()
    records = [decode_record(p) for p in payloads]
    assert any(kind == "store" and data.get("op") == "restore"
               for kind, data in records)
    assert any(kind == "queue" and data.get("op") == "requeue"
               for kind, data in records)


def test_resume_refuses_diverged_journal():
    backend = MemoryJournal()
    journal = WorldJournal(backend)
    world = build_ft_ring("world", seed=5, journal=journal)
    launch_ft_tours(world)
    world.kill_world(at=0.1)
    with pytest.raises(WorldKilled):
        world.run(until=120.0)
    # Tamper with every committed digest: replay can no longer vouch
    # for the journaled history.
    payloads, _torn = backend.read_all()
    tampered = MemoryJournal()
    for payload in payloads:
        kind, data = decode_record(payload)
        if kind == "epoch":
            data["digest"] = tuple(d + 1 for d in data["digest"])
        tampered.append(encode_record(kind, data))
    with pytest.raises(JournalDiverged):
        resume_world(WorldJournal(tampered))
