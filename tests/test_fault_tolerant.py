"""Integration tests: fault-tolerant protocol (shadows + step ledger)."""


from repro import AgentStatus, RollbackMode
from repro.agent.packages import Protocol
from repro.sim.failures import CrashPlan

from tests.helpers import LinearAgent, bank_of, build_line_world


def test_ft_clean_run_ships_shadows_and_discards_them():
    world = build_line_world(3, ft_takeover_timeout=0.05)
    world.ft.set_alternates("n1", "n2")
    world.ft.set_alternates("n2", "n0")
    agent = LinearAgent("ft-agent", ["n0", "n1", "n2"])
    record = world.launch(agent, at="n0", method="step",
                          protocol=Protocol.FAULT_TOLERANT)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert world.metrics.count("ft.shadows_shipped") >= 2
    # All shadows garbage-collected once their work was claimed.
    assert world.metrics.count("ft.promotions") == 0
    for name in ("n0", "n1", "n2"):
        assert len(world.node(name).queue) == 0
    # Effects exactly once despite the replication.
    for i in range(3):
        assert bank_of(world, f"n{i}").peek("a")["balance"] == 990


def test_ft_takeover_executes_step_on_alternate_exactly_once():
    world = build_line_world(3, ft_takeover_timeout=0.1)
    world.ft.set_alternates("n1", "n2")
    # n1 dies in the middle of its step transaction (the package is in
    # its durable queue, the shadow already at n2) and stays down long.
    world.failures.apply_plan([CrashPlan("n1", at=0.08, duration=20.0)])
    agent = LinearAgent("ft-take", ["n0", "n1", "n2"])
    record = world.launch(agent, at="n0", method="step",
                          protocol=Protocol.FAULT_TOLERANT)
    world.run(until=30.0)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert world.metrics.count("ft.promotions") >= 1
    # n1's bank untouched (the alternate executed with its own bank);
    # n2 saw the promoted step plus its own step.
    assert bank_of(world, "n1").peek("a")["balance"] == 1_000
    assert bank_of(world, "n2").peek("a")["balance"] == 980
    # The stale primary package was discarded on recovery.
    assert (world.metrics.count("ft.stale_discarded")
            + world.metrics.count("packages.consumed.stale-agent")) >= 1
    assert len(world.node("n1").queue) == 0


def test_basic_protocol_blocks_where_ft_progresses():
    """Without FT, the same outage just stalls the agent until recovery."""
    world = build_line_world(3)
    world.failures.apply_plan([CrashPlan("n1", at=0.045, duration=5.0)])
    agent = LinearAgent("basic-block", ["n0", "n1", "n2"])
    record = world.launch(agent, at="n0", method="step")
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert world.sim.now > 5.0
    assert bank_of(world, "n1").peek("a")["balance"] == 990


def test_ledger_claim_is_exactly_once_arbitration():
    from repro.tx.manager import Transaction

    world = build_line_world(2)
    t1 = Transaction("step", "n0")
    assert world.ft.claim(t1, work_id=123, node="n0") == "acquired"
    t1.commit()
    t2 = Transaction("step", "n1")
    assert world.ft.claim(t2, work_id=123, node="n1") == "stale"
    t2.abort()
    # Re-claim by the committed owner stays acquired (idempotent).
    t3 = Transaction("step", "n0")
    assert world.ft.claim(t3, work_id=123, node="n0") == "acquired"


def test_ledger_claim_undone_on_abort():
    from repro.tx.manager import Transaction

    world = build_line_world(2)
    t1 = Transaction("step", "n0")
    assert world.ft.claim(t1, work_id=77, node="n0") == "acquired"
    t1.abort()
    t2 = Transaction("step", "n1")
    assert world.ft.claim(t2, work_id=77, node="n1") == "acquired"


class DeclaringAgent(LinearAgent):
    """Declares 'alt' as the alternate compensation node for its n1 step."""

    def step(self, ctx):
        super().step(ctx)
        if ctx.node_name == "n1":
            ctx.declare_alternates("alt")


def test_ft_compensation_diverts_to_alternate_node():
    """Fault-tolerant rollback (Section 4.3 discussion): when the
    step's node stays down, the compensation runs on an alternate node
    that shares the resource — and the resume step is diverted the same
    way."""
    world = build_line_world(3, ft_takeover_timeout=0.1)
    # A dedicated replica node hosts n1's bank (same resource object),
    # so it can run n1's compensations and diverted steps.
    shared_bank = bank_of(world, "n1")
    alt = world.add_node("alt")
    alt.share_resource(shared_bank)
    world.ft.set_alternates("n1", "alt")

    agent = DeclaringAgent("ft-comp", ["n0", "n1", "n2"],
                           savepoints={0: "sp"}, rollback_to="sp")
    # n1 dies right after its step committed (~t=0.11 under the FT
    # protocol's claim overhead) and stays down for long.
    world.failures.apply_plan([CrashPlan("n1", at=0.15, duration=60.0)])
    record = world.launch(agent, at="n0", method="step",
                          protocol=Protocol.FAULT_TOLERANT,
                          mode=RollbackMode.BASIC)
    world.run(until=50.0)
    assert record.status is AgentStatus.FINISHED, record.failure
    assert record.rollbacks_completed == 1
    # The rollback did NOT have to wait out the 60s outage.
    assert record.finished_at < 30.0
    assert world.metrics.count("ft.compensation_diverted") >= 1
    # n1's bank was still compensated (via the shared resource).
    assert shared_bank.peek("a")["balance"] == 990
