"""Edge-case integration tests for the rollback mechanisms."""


from repro import (
    AgentStatus,
    DataStore,
    Itinerary,
    MobileAgent,
    RollbackMode,
    StepEntry,
    SubItinerary,
)
from repro.core.checker import assert_clean

from tests.helpers import LinearAgent, bank_of, build_line_world
from tests.test_itinerary import Walker


def test_rollback_to_virtual_savepoint_target():
    """A nested sub-itinerary entered at the same boundary as its
    parent gets a *virtual* savepoint; rolling back to it restores the
    real savepoint's state without deleting either entry."""
    inner = SubItinerary("inner", [StepEntry("visit", "n1"),
                                   StepEntry("maybe_rollback", "n2")])
    outer = SubItinerary("outer", [inner, StepEntry("visit", "n0")])
    itinerary = Itinerary().add(outer)
    world = build_line_world(3)
    agent = Walker(itinerary, "virtual-target")
    # levels=0 targets inner's savepoint — virtual, because inner was
    # entered in the same advance as outer (no step in between).
    agent.sro["rollback_plan"] = {"levels": 0, "until_ticks": 1}
    record = world.launch_itinerary(agent)
    world.run(max_events=1_000_000)
    assert record.status is AgentStatus.FINISHED, record.failure
    assert record.rollbacks_completed == 1
    assert record.result["ticks"] == 1
    trace = record.result["trace"]
    assert [n for _, n in trace] == ["n1", "n2", "n0"]
    assert_clean(world)


class MultiSp(MobileAgent):
    def start(self, ctx):
        ctx.savepoint("deep")
        ctx.goto("n1", "mid")

    def mid(self, ctx):
        bank = ctx.resource("bank")
        bank.transfer("a", "b", 5)
        ctx.log_resource_compensation(
            "t.undo_transfer",
            {"src": "a", "dst": "b", "amount": 5}, resource="bank")
        ctx.log_agent_compensation("t.mark", {"tag": "mid"})
        # Two savepoints constituted at the same step end.
        ctx.savepoint("upper-1")
        ctx.savepoint("upper-2", virtual=True)
        ctx.goto("n2", "end")

    def end(self, ctx):
        if not self.wro.get("marks"):
            ctx.rollback("deep")  # crosses upper-1 AND upper-2
        ctx.finish(self.wro["marks"])


def test_stacked_savepoints_popped_when_crossed():
    """Rolling back across several adjacent savepoints pops them all
    (the while-loop generalisation of Figure 4b's single pop)."""
    world = build_line_world(3)
    record = world.launch(MultiSp("stacked"), at="n0", method="start",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.result == ["mid"]
    assert bank_of(world, "n1").peek("a")["balance"] == 995  # one net run
    assert_clean(world)


class PurgingAgent(MobileAgent):
    """Commits a non-compensatable bulk delete mid-tour."""

    def start(self, ctx):
        ctx.savepoint("sp")
        ctx.goto("n1", "purge")

    def purge(self, ctx):
        store = ctx.resource("records")
        deleted = store.purge("temp-")
        self.sro["deleted"] = deleted
        ctx.mark_non_compensatable()
        ctx.goto("n0", "regret")

    def regret(self, ctx):
        try:
            ctx.rollback("sp")
        except Exception as exc:
            ctx.finish({"refused": type(exc).__name__,
                        "deleted": self.sro["deleted"]})


def test_non_compensatable_purge_blocks_rollback_e2e():
    """Section 3.2's bulk-delete: once committed, rollback across the
    purging step is refused and the deletion stands."""
    world = build_line_world(2)
    store = DataStore("records")
    for i in range(10):
        store.seed(("rec", f"temp-{i}"), i)
    store.seed("count", 10)
    world.node("n1").add_resource(store)
    record = world.launch(PurgingAgent("purger"), at="n0", method="start",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.result == {"refused": "NotCompensatable", "deleted": 10}
    assert store.record_count() == 0  # the purge stands
    assert world.metrics.count("rollback.initiated") == 0


def test_rollback_with_consecutive_steps_on_same_node():
    """Adjacent steps on one node need no transfer between their
    compensation transactions — basic mode matches the prediction."""
    world = build_line_world(2)
    plan = ["n0", "n1", "n1", "n1"]  # three consecutive steps on n1
    agent = LinearAgent("samenode", plan, savepoints={0: "sp"},
                        rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # Wrap runs on n0; compensations: n1 (transfer), n1, n1 (local).
    assert world.metrics.count("agent.transfers.compensation") == 1
    assert record.result["compensations"] == 3
    assert_clean(world)


class TwoPhase(MobileAgent):
    def start(self, ctx):
        ctx.savepoint("sp-a")
        ctx.goto("n1", "work1")

    def work1(self, ctx):
        if self.wro.get("phase2"):
            ctx.savepoint("sp-b")
            ctx.goto("n2", "work2")
            return
        ctx.log_agent_compensation("t.mark", {"tag": "w1"})
        ctx.goto("n0", "decide1")

    def decide1(self, ctx):
        if not self.wro.get("marks"):
            ctx.rollback("sp-a")
        self.wro["phase2"] = True
        ctx.goto("n1", "work1")

    def work2(self, ctx):
        ctx.log_agent_compensation("t.mark", {"tag": "w2"})
        ctx.goto("n0", "decide2")

    def decide2(self, ctx):
        marks = self.wro.get("marks", [])
        if "w2" not in marks:
            ctx.rollback("sp-b")
        ctx.finish(marks)


def test_two_sequential_rollbacks_to_different_savepoints():
    """An agent may roll back, proceed, and roll back again to a later
    savepoint; the log shrinks and regrows correctly."""
    world = build_line_world(3)
    record = world.launch(TwoPhase("twophase"), at="n0", method="start",
                          mode=RollbackMode.OPTIMIZED)
    world.run(max_events=1_000_000)
    assert record.status is AgentStatus.FINISHED, record.failure
    assert record.rollbacks_completed == 2
    assert record.result == ["w1", "w2"]
    assert_clean(world)


class PureResourceAgent(MobileAgent):
    """Stop signal lives in committed resource state, not in the WROs.

    The 'attempted' flag is deposited WITHOUT a compensation entry —
    the developer chose not to compensate it (allowed; not every
    operation needs compensation) — so it survives the rollback and
    breaks the loop under any mechanism, including the saga baseline
    that clobbers WROs.
    """

    def start(self, ctx):
        ctx.savepoint("sp")
        ctx.goto("n1", "work")

    def work(self, ctx):
        bank = ctx.resource("bank")
        attempted = bank.balance("b") != 1_000
        if attempted:
            ctx.goto("n0", "wrap_up")
            return
        bank.deposit("b", 1)  # uncompensated marker
        bank.transfer("a", "b", 7)
        ctx.log_resource_compensation(
            "t.undo_transfer",
            {"src": "a", "dst": "b", "amount": 7}, resource="bank")
        ctx.goto("n0", "regret")

    def regret(self, ctx):
        ctx.rollback("sp")

    def wrap_up(self, ctx):
        ctx.finish("ok")


def test_saga_equivalent_when_no_wro_information_produced():
    """When compensation produces NO new WRO information (pure resource
    compensations, untouched WRO space), the saga baseline and the
    paper's mechanism coincide — the divergence requires weakly
    reversible data, which is the paper's §4.1 point inverted."""
    balances = {}
    for mode in (RollbackMode.BASIC, RollbackMode.SAGA):
        world = build_line_world(2, seed=9)
        agent = PureResourceAgent(f"pure-{mode.value}")
        record = world.launch(agent, at="n0", method="start", mode=mode)
        world.run(max_events=1_000_000)
        assert record.status is AgentStatus.FINISHED, record.failure
        assert record.rollbacks_completed == 1
        bank = bank_of(world, "n1")
        balances[mode] = (bank.peek("a")["balance"],
                          bank.peek("b")["balance"])
    assert balances[RollbackMode.BASIC] == balances[RollbackMode.SAGA]
    # The transfer was compensated; only the uncompensated marker stays.
    assert balances[RollbackMode.BASIC] == (1_000, 1_001)
