"""Unit tests: compensation registry, WRO view, resource views."""

import pytest

from repro.agent.agent import MobileAgent
from repro.agent.context import WROView
from repro.compensation.registry import (
    CompensationRegistry,
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)
from repro.errors import UnknownCompensation, UsageError
from repro.log.entries import OperationKind
from repro.resources.bank import Bank
from repro.resources.base import ResourceView
from repro.sim.timing import TimingModel
from repro.tx.manager import Transaction


# -- registry -------------------------------------------------------------------

def test_registry_register_resolve_kinds():
    registry = CompensationRegistry()

    @resource_compensation("r.op", registry=registry)
    def r_op(view, params, ctx):
        return "r"

    @agent_compensation("a.op", registry=registry)
    def a_op(wro, params, ctx):
        return "a"

    @mixed_compensation("m.op", registry=registry)
    def m_op(wro, view, params, ctx):
        return "m"

    assert registry.resolve("r.op").kind is OperationKind.RESOURCE
    assert registry.resolve("a.op").kind is OperationKind.AGENT
    assert registry.resolve("m.op").kind is OperationKind.MIXED
    assert registry.names() == ["a.op", "m.op", "r.op"]


def test_registry_unknown_name_raises():
    with pytest.raises(UnknownCompensation):
        CompensationRegistry().resolve("ghost")


def test_registry_conflicting_reregistration_rejected():
    registry = CompensationRegistry()

    def op1(view, params, ctx):
        pass

    def op2(view, params, ctx):
        pass

    registry.register("dup", OperationKind.RESOURCE, op1)
    registry.register("dup", OperationKind.RESOURCE, op1)  # same fn ok
    with pytest.raises(UsageError, match="already registered"):
        registry.register("dup", OperationKind.RESOURCE, op2)


# -- WRO view -------------------------------------------------------------------

def test_wro_view_exposes_only_weakly_reversible_space():
    agent = MobileAgent("v1")
    agent.sro["secret"] = "strongly reversible"
    agent.wro["cash"] = 100
    view = WROView(agent)
    assert view["cash"] == 100
    assert "cash" in view
    assert "secret" not in view
    with pytest.raises(KeyError):
        view["secret"]
    view["notes"] = ["a"]
    assert agent.wro["notes"] == ["a"]
    del view["notes"]
    assert "notes" not in agent.wro
    assert view.get("missing", 7) == 7
    assert view.setdefault("fresh", 1) == 1
    assert sorted(view) == ["cash", "fresh"]


# -- resource view ------------------------------------------------------------------

def test_resource_view_dispatches_and_charges():
    bank = Bank("bank")
    bank.seed_account("acct", 100)
    tx = Transaction("step", "n1")
    timing = TimingModel()
    view = ResourceView(bank, tx, timing)
    before = tx.cost
    assert view.balance("acct") == 100
    assert tx.cost == pytest.approx(before + timing.resource_op)
    view.deposit("acct", 50)
    assert bank.peek("acct")["balance"] == 150


def test_resource_view_compensating_charge_differs():
    bank = Bank("bank")
    bank.seed_account("acct", 100)
    timing = TimingModel(resource_op=0.5, compensation_op=0.25)
    tx = Transaction("comp", "n1")
    view = ResourceView(bank, tx, timing, compensating=True)
    view.balance("acct")
    assert tx.cost == pytest.approx(0.25)


def test_resource_view_unknown_or_private_op_rejected():
    bank = Bank("bank")
    tx = Transaction("step", "n1")
    view = ResourceView(bank, tx, TimingModel())
    with pytest.raises(UsageError):
        view.no_such_operation()
    with pytest.raises(UsageError):
        view._restore("x", None)


def test_resource_view_exposes_name_and_node():
    bank = Bank("bank")
    bank.attach("n7")
    view = ResourceView(bank, Transaction("step", "n7"), TimingModel())
    assert view.name == "bank"
    assert view.node == "n7"
