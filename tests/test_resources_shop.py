"""Unit tests: shop resource (refund policies of Section 3.2)."""

import pytest

from repro.errors import CompensationFailed, UsageError
from repro.resources.cash import Mint, purse_value
from repro.resources.shop import RefundPolicy, Shop
from repro.tx.manager import Transaction


def tx():
    return Transaction("test", "n1")


def make_shop(policy=None, stock=5, price=100):
    mint = Mint("mint")
    mint.seed("float", 10_000)
    shop = Shop("shop", mint, policy)
    shop.stock_item("widget", stock, price)
    return shop, mint


def coins_for(mint, t, value):
    return mint.issue(t, value, 1)


def test_buy_moves_stock_and_money():
    shop, mint = make_shop()
    t = tx()
    coins = coins_for(mint, t, 100)
    receipt, change = shop.buy(t, "widget", 1, coins, now=1.0)
    t.commit()
    assert shop.peek(("stock", "widget")) == 4
    assert shop.till_value() == 100
    assert change == []
    assert receipt.paid == 100


def test_buy_with_change():
    shop, mint = make_shop()
    t = tx()
    coins = coins_for(mint, t, 150)
    _receipt, change = shop.buy(t, "widget", 1, coins, now=1.0)
    assert purse_value(change) == 50


def test_buy_out_of_stock_rejected():
    shop, mint = make_shop(stock=1)
    t = tx()
    coins = coins_for(mint, t, 200)
    with pytest.raises(UsageError, match="in stock"):
        shop.buy(t, "widget", 2, coins, now=1.0)


def test_buy_underpaid_rejected():
    shop, mint = make_shop()
    t = tx()
    coins = coins_for(mint, t, 50)
    with pytest.raises(UsageError, match="cover"):
        shop.buy(t, "widget", 1, coins, now=1.0)


def test_refund_within_window_charges_fee_new_serials():
    shop, mint = make_shop(RefundPolicy(cash_window=100.0, fee=10))
    t = tx()
    paid = coins_for(mint, t, 100)
    receipt, _ = shop.buy(t, "widget", 1, paid, now=1.0)
    t.commit()
    t2 = tx()
    coins, note, fee = shop.refund(t2, receipt.receipt_id, now=50.0)
    t2.commit()
    assert fee == 10
    assert note is None
    assert purse_value(coins) == 90
    assert {c.serial for c in coins}.isdisjoint({c.serial for c in paid})
    assert shop.peek(("stock", "widget")) == 5
    assert shop.peek("fees") == 10


def test_refund_after_window_issues_credit_note():
    shop, mint = make_shop(RefundPolicy(cash_window=10.0))
    t = tx()
    receipt, _ = shop.buy(t, "widget", 1, coins_for(mint, t, 100), now=1.0)
    t.commit()
    t2 = tx()
    coins, note, fee = shop.refund(t2, receipt.receipt_id, now=100.0)
    t2.commit()
    assert coins == []
    assert note is not None and note.value == 100
    assert fee == 0


def test_refund_after_window_cash_policy():
    shop, mint = make_shop(RefundPolicy(cash_window=10.0,
                                        after_window="cash"))
    t = tx()
    receipt, _ = shop.buy(t, "widget", 1, coins_for(mint, t, 100), now=1.0)
    t.commit()
    coins, note, _ = shop.refund(tx(), receipt.receipt_id, now=100.0)
    assert purse_value(coins) == 100 and note is None


def test_refund_twice_fails():
    shop, mint = make_shop()
    t = tx()
    receipt, _ = shop.buy(t, "widget", 1, coins_for(mint, t, 100), now=1.0)
    t.commit()
    t2 = tx()
    shop.refund(t2, receipt.receipt_id, now=2.0)
    t2.commit()
    with pytest.raises(CompensationFailed):
        shop.refund(tx(), receipt.receipt_id, now=3.0)


def test_refund_unknown_receipt_fails():
    shop, _ = make_shop()
    with pytest.raises(CompensationFailed):
        shop.refund(tx(), "ghost", now=1.0)


def test_aborted_refund_leaves_receipt_open():
    shop, mint = make_shop()
    t = tx()
    receipt, _ = shop.buy(t, "widget", 1, coins_for(mint, t, 100), now=1.0)
    t.commit()
    t2 = tx()
    shop.refund(t2, receipt.receipt_id, now=2.0)
    t2.abort()
    # Retry succeeds: the abort restored the receipt and the till.
    t3 = tx()
    coins, _, _ = shop.refund(t3, receipt.receipt_id, now=2.0)
    t3.commit()
    assert purse_value(coins) == 100
