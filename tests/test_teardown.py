"""Tests: narrowed, observable teardown (no more silent ``pass``).

The contract under test (the PR-10 bug-swatting pass over
:mod:`repro.node.procshard` / :mod:`repro.node.shmring`):

* suppressed teardown failures are **narrow** (``OSError`` /
  ``BufferError`` / the documented per-step types — a ``KeyError``
  still propagates), **counted** in the ``teardown.suppressed``
  serialization stat, and **visible** as a :class:`ResourceWarning`
  naming the step that failed;
* ``__del__`` on partially-constructed objects (``ShmRing.attach`` on
  a bad name, a facade that never finished ``__init__``) must not mask
  the original error with an ``AttributeError`` at GC time.
"""

import warnings

import pytest

from repro.node.procshard import ProcShardedWorld, _teardown_step
from repro.node.shmring import ShmRing
from repro.storage import serialization


def test_teardown_step_suppresses_counts_and_warns():
    def boom():
        raise OSError("munmap failed")

    before = serialization.STATS["teardown.suppressed"]
    with pytest.warns(ResourceWarning, match="ring close.*munmap failed"):
        ok = _teardown_step("ring close (test)", boom, OSError, BufferError)
    assert ok is False
    assert serialization.STATS["teardown.suppressed"] == before + 1


def test_teardown_step_success_is_silent():
    before = serialization.STATS["teardown.suppressed"]
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _teardown_step("noop", lambda: None, OSError) is True
    assert serialization.STATS["teardown.suppressed"] == before


def test_teardown_step_lets_unexpected_errors_propagate():
    def boom():
        raise KeyError("not a teardown error")

    before = serialization.STATS["teardown.suppressed"]
    with pytest.raises(KeyError):
        _teardown_step("bogus", boom, OSError, BufferError)
    assert serialization.STATS["teardown.suppressed"] == before


def test_shmring_close_failure_is_counted_and_warned():
    ring = ShmRing.create(4096)
    name = ring.name

    class FussyShm:
        def __init__(self, shm):
            self._shm = shm
            self.name = shm.name
            self.size = shm.size

        def close(self):
            raise BufferError("memoryview still exported")

        def unlink(self):
            self._shm.unlink()

    real = ring.shm
    ring.shm = FussyShm(real)
    before = serialization.STATS["teardown.suppressed"]
    with pytest.warns(ResourceWarning, match=name):
        ring.close()
    assert serialization.STATS["teardown.suppressed"] == before + 1
    assert ring.shm is None  # close still completed
    real.close()
    real.unlink()


def test_shmring_unlink_survives_missing_segment():
    ring = ShmRing.create(4096)
    other = ShmRing.attach(ring.name)
    ring.unlink()
    before = serialization.STATS["teardown.suppressed"]
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        other.unlink()  # already gone: silent, not a warning
    assert serialization.STATS["teardown.suppressed"] == before


def test_shmring_del_on_partially_constructed_object():
    ring = object.__new__(ShmRing)  # attach() failed before __init__
    ring.__del__()  # must not raise AttributeError


def test_shmring_attach_bad_name_raises_cleanly():
    with pytest.raises(FileNotFoundError):
        ShmRing.attach("psm_does_not_exist_xyz")


def test_proc_world_del_on_partially_constructed_object():
    world = object.__new__(ProcShardedWorld)  # __init__ never ran
    world.__del__()  # must not raise (no _closed attribute yet)
