"""Optimistic entangled-epoch lockstep: speculate, detect, roll back.

The contract under test: ``lockstep="optimistic"`` runs entangled
epochs concurrently on every worker yet stays **bit-identical** to the
``"serial"`` schedule — outcomes, counters, epoch/event counts, kernel
trace digests — because the shard-order conflict detector
(:func:`repro.node.procshard.views_satisfy`) accepts a speculative
turn only when its read log proves it consumed exactly the inputs its
serial twin would have, and rolls conflicted shards back to their
epoch savepoint otherwise.

Covers the conflict-detector edge cases: two shards racing for the
same step claim within one epoch, speculation overlapping a
``kill_shard`` outage, and rollback-during-speculation composing with
``kill_world(phase="barrier")`` journal recovery.
"""

import pytest

from repro.errors import UsageError
from repro.node.procshard import views_satisfy
from tests.helpers import (
    build_ft_ring,
    launch_ft_tours,
    run_crash_resume_scenario,
    run_differential_scenario,
)


# -- conflict detector unit tests -------------------------------------------------


def _views(claims=None, locks=None, down=None, suspended=None):
    return {
        "claims": claims or {},
        "locks": locks or {},
        "down": down or {},
        "suspended": suspended if suspended is not None
        else [False, False, False],
    }


def test_empty_read_log_is_vacuously_valid():
    # A run=False shipping cycle (or an epoch with no foreign reads)
    # never conflicts.
    assert views_satisfy(_views(), [])


def test_matching_reads_validate():
    views = _views(claims={1: {7: "agent-a"}},
                   locks={1: {9: (2, 41)}},
                   down={1: frozenset({"n4"})},
                   suspended=[False, True, False])
    log = [
        ("claim", 1, 7, "agent-a"),
        ("lock", 1, 9, (2, 41)),
        ("up", 1, "n4", False),
        ("up", 1, "n5", True),
        ("susp", 1, None, True),
        ("susp", 2, None, False),
    ]
    assert views_satisfy(views, log)


def test_two_shards_claiming_same_step_conflict():
    # The double-claim race: the speculating shard read work id 7 as
    # unclaimed and unlocked, but by its serial turn another shard's
    # validated turn had claimed it.  Either read invalidates alone.
    speculated_free = [("lock", 1, 7, None), ("claim", 1, 7, None)]
    assert views_satisfy(_views(), speculated_free)
    now_claimed = _views(claims={1: {7: "agent-b"}})
    assert not views_satisfy(now_claimed, speculated_free)
    now_locked = _views(locks={1: {7: (0, 13)}})
    assert not views_satisfy(now_locked, speculated_free)


def test_liveness_and_suspension_mismatches_conflict():
    # Speculation saw node n2 up; the serial turn would have seen the
    # takeover-relevant outage.
    assert not views_satisfy(_views(down={1: frozenset({"n2"})}),
                             [("up", 1, "n2", True)])
    # Speculation saw shard 1 running; serially it was suspended.
    assert not views_satisfy(_views(suspended=[False, True, False]),
                             [("susp", 1, None, False)])


def test_unknown_read_kind_fails_closed():
    assert not views_satisfy(_views(), [("bogus", 0, 0, None)])


# -- differential: optimistic ≡ serial -------------------------------------------


def _assert_identical(a, b, label):
    for key in a:
        assert a[key] == b[key], (label, key)


def test_optimistic_identical_to_serial_crash_free():
    serial = run_differential_scenario("proc", seed=11, lockstep="serial")
    optimistic = run_differential_scenario("proc", seed=11,
                                           lockstep="optimistic")
    _assert_identical(serial, optimistic, "crash-free")
    assert all(o["status"] == "finished"
               for o in optimistic["outcomes"].values())


def test_optimistic_identical_to_serial_through_kill_shard():
    """Speculative epochs overlapping a whole-shard outage + restart."""
    outage = (1, 0.08, 2.0)
    serial = run_differential_scenario("proc", seed=11, outage=outage,
                                       lockstep="serial")
    optimistic = run_differential_scenario("proc", seed=11, outage=outage,
                                           lockstep="optimistic")
    _assert_identical(serial, optimistic, "kill-restart")


def test_optimistic_matches_auto_and_in_process_backend():
    proc_opt = run_differential_scenario("proc", seed=7,
                                         lockstep="optimistic")
    proc_auto = run_differential_scenario("proc", seed=7, lockstep="auto")
    _assert_identical(proc_auto, proc_opt, "auto-vs-optimistic")
    # The in-process backend accepts the knob (its sequential shards
    # make every schedule the serial one) and matches bit-for-bit.
    sharded = run_differential_scenario("sharded", seed=7,
                                        lockstep="optimistic")
    for key in ("outcomes", "debits", "counters", "epochs", "events"):
        assert sharded[key] == proc_opt[key], key


def test_optimistic_trace_digests_match_serial():
    """Kernel-level equivalence through a kill + restart: the exact
    (time, label) event stream, even on shards that were rolled back
    and re-executed."""
    digests = {}
    for lockstep in ("serial", "optimistic"):
        world = build_ft_ring("proc", seed=5, lockstep=lockstep)
        try:
            world.enable_trace_digest()
            world.kill_shard(1, at=0.08, restart_at=2.0)
            launch_ft_tours(world)
            world.run()
            digests[lockstep] = world.trace_digests()
        finally:
            world.close()
    assert digests["serial"] == digests["optimistic"]
    assert len(digests["optimistic"]) == 3


# -- speculation accounting -------------------------------------------------------


def test_speculation_counters_and_stats():
    world = build_ft_ring("proc", seed=3, lockstep="optimistic")
    try:
        world.kill_shard(1, at=0.08, restart_at=2.0)
        launch_ft_tours(world)
        world.run()
        stats = world.serialization_stats()
    finally:
        world.close()
    assert world.spec_epochs_speculated > 0
    assert world.spec_epochs_rolled_back > 0  # the outage invalidates
    assert world.spec_shards_rolled_back >= world.spec_epochs_rolled_back
    assert stats["spec.epochs_speculated"] == world.spec_epochs_speculated
    assert stats["spec.epochs_rolled_back"] == world.spec_epochs_rolled_back
    assert stats["spec.shards_rolled_back"] == world.spec_shards_rolled_back
    assert 0.0 < stats["spec.conflict_rate"] < 1.0


def test_serial_runs_never_speculate():
    world = build_ft_ring("proc", seed=3, lockstep="serial")
    try:
        launch_ft_tours(world)
        world.run()
        stats = world.serialization_stats()
    finally:
        world.close()
    assert stats["spec.epochs_speculated"] == 0
    assert stats["spec.conflict_rate"] == 0.0


def test_in_process_stats_have_zero_spec_keys():
    world = build_ft_ring("sharded", seed=3, lockstep="optimistic")
    launch_ft_tours(world)
    world.run()
    stats = world.serialization_stats()
    assert stats["spec.epochs_speculated"] == 0
    assert stats["spec.epochs_rolled_back"] == 0
    assert stats["spec.conflict_rate"] == 0.0


# -- composition with the journal -------------------------------------------------


def test_optimistic_crash_resume_identical_to_serial():
    """Rollback-during-speculation composing with journal recovery:
    ``kill_world(phase="barrier")`` tears the commit marker mid-run,
    the resumed optimistic world replays and continues — landing on
    the same bits as the serial crash-resume."""
    serial, killed_s = run_crash_resume_scenario(
        "proc", seed=5, kill_at=0.1, phase="barrier", lockstep="serial")
    optimistic, killed_o = run_crash_resume_scenario(
        "proc", seed=5, kill_at=0.1, phase="barrier",
        lockstep="optimistic")
    assert killed_s and killed_o  # the kill really interrupted both
    _assert_identical(serial, optimistic, "crash-resume")


def test_optimistic_crash_resume_through_outage():
    """The full composition: speculation + kill_shard conflicts +
    mid-barrier world kill + journal recovery."""
    outage = (1, 0.08, 2.0)
    serial, killed_s = run_crash_resume_scenario(
        "proc", seed=11, kill_at=0.1, phase="barrier", outage=outage,
        lockstep="serial")
    optimistic, killed_o = run_crash_resume_scenario(
        "proc", seed=11, kill_at=0.1, phase="barrier", outage=outage,
        lockstep="optimistic")
    assert killed_s and killed_o
    _assert_identical(serial, optimistic, "crash-resume-outage")


# -- knob validation --------------------------------------------------------------


def test_unknown_lockstep_rejected_by_both_backends():
    from repro import ProcShardedWorld, ShardedWorld

    with pytest.raises(UsageError):
        ShardedWorld(n_shards=2, lockstep="hopeful")
    with pytest.raises(UsageError):
        ProcShardedWorld(n_shards=2, lockstep="hopeful")
