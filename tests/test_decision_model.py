"""Unit tests: the RPC-vs-migration decision model (ref [16])."""


from repro.core.decision import AccessPlan, DecisionModel
from repro.sim.timing import NetworkParams


def model(latency=0.005, bandwidth=1_250_000.0):
    return DecisionModel(network=NetworkParams(
        latency=latency, bandwidth_bytes_per_s=bandwidth))


def test_few_interactions_prefer_rpc():
    m = model()
    plan = m.choose(interactions=1, request_bytes=100, reply_bytes=100,
                    agent_bytes=50_000)
    assert plan is AccessPlan.RPC


def test_many_interactions_prefer_migration():
    m = model()
    plan = m.choose(interactions=200, request_bytes=100, reply_bytes=100,
                    agent_bytes=5_000)
    assert plan is AccessPlan.MIGRATE


def test_huge_agent_prefers_rpc_even_for_many_interactions():
    m = model()
    plan = m.choose(interactions=20, request_bytes=64, reply_bytes=64,
                    agent_bytes=10_000_000)
    assert plan is AccessPlan.RPC


def test_crossover_is_consistent_with_choose():
    m = model()
    crossover = m.crossover_interactions(request_bytes=200, reply_bytes=400,
                                         agent_bytes=20_000)
    below = max(1, int(crossover) - 1)
    above = int(crossover) + 2
    assert m.choose(below, 200, 400, 20_000) is AccessPlan.RPC
    assert m.choose(above, 200, 400, 20_000) is AccessPlan.MIGRATE


def test_costs_scale_with_network_parameters():
    slow = model(latency=0.1)
    fast = model(latency=0.001)
    assert slow.rpc_cost(10, 100, 100) > fast.rpc_cost(10, 100, 100)
    assert slow.migration_cost(1_000) > fast.migration_cost(1_000)


def test_one_way_migration_cheaper_than_round_trip():
    m = model()
    assert (m.migration_cost(10_000, round_trip=False)
            < m.migration_cost(10_000, round_trip=True))


def test_bandwidth_dominates_for_large_payloads():
    thin = model(bandwidth=10_000.0)
    thick = model(bandwidth=10_000_000.0)
    assert thin.migration_cost(100_000) > thick.migration_cost(100_000) * 10
