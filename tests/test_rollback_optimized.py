"""Integration tests: the optimized rollback mechanism (Fig 5, §4.4.1)."""

import pytest

from repro import AgentStatus, RollbackMode
from repro.bench import make_tour_plan, run_tour

from tests.helpers import LinearAgent, bank_of, build_line_world


def test_no_mixed_entries_no_agent_transfers():
    """Steps with only RCE/ACE entries never move the agent back."""
    plan = make_tour_plan([f"n{i}" for i in range(5)], 6,
                          mixed_fraction=0.0, rollback_depth=5)
    result = run_tour(plan, 5, mode=RollbackMode.OPTIMIZED, seed=1)
    assert result.status is AgentStatus.FINISHED
    assert result.compensation_transfers == 0
    assert result.rce_ship_messages >= 4
    assert result.rollbacks == 1


def test_all_mixed_entries_degenerates_to_basic_transfers():
    plan = make_tour_plan([f"n{i}" for i in range(5)], 6,
                          mixed_fraction=1.0, rollback_depth=5)
    optimized = run_tour(plan, 5, mode=RollbackMode.OPTIMIZED, seed=1)
    basic = run_tour(plan, 5, mode=RollbackMode.BASIC, seed=1)
    assert optimized.compensation_transfers == basic.compensation_transfers
    assert optimized.rce_ship_messages == 0


@pytest.mark.parametrize("mixed_fraction,expected_mixed_steps", [
    (0.0, 0), (0.25, 2), (0.5, 4), (1.0, 7),
])
def test_transfers_equal_number_of_mixed_steps(mixed_fraction,
                                               expected_mixed_steps):
    """The paper's claim, quantified: the agent is transferred during
    rollback only for steps containing a mixed compensation entry."""
    plan = make_tour_plan([f"n{i}" for i in range(6)], 8,
                          mixed_fraction=mixed_fraction, rollback_depth=7)
    result = run_tour(plan, 6, mode=RollbackMode.OPTIMIZED, seed=2)
    assert result.status is AgentStatus.FINISHED
    assert result.compensation_transfers == expected_mixed_steps


def test_optimized_and_basic_reach_equivalent_final_state():
    """Optimized ≡ basic on the augmented state (same workload)."""
    nodes = [f"n{i}" for i in range(5)]
    outcomes = {}
    for mode in (RollbackMode.BASIC, RollbackMode.OPTIMIZED):
        plan = make_tour_plan(nodes, 7, mixed_fraction=0.4,
                              ace_fraction=0.2, rollback_depth=6)
        result = run_tour(plan, 5, mode=mode, seed=3)
        assert result.status is AgentStatus.FINISHED
        outcomes[mode] = result
    basic, optimized = (outcomes[RollbackMode.BASIC],
                        outcomes[RollbackMode.OPTIMIZED])
    assert basic.result == optimized.result
    assert basic.rollbacks == optimized.rollbacks == 1
    # And strictly fewer agent moves for the optimized mechanism.
    assert optimized.compensation_transfers < basic.compensation_transfers


def test_optimized_bytes_on_wire_smaller():
    """Shipping RCE lists moves far fewer bytes than moving the agent."""
    nodes = [f"n{i}" for i in range(5)]
    plan = make_tour_plan(nodes, 7, mixed_fraction=0.0, rollback_depth=6,
                          sro_ballast=30_000)
    basic = run_tour(plan, 5, mode=RollbackMode.BASIC, seed=4)
    optimized = run_tour(plan, 5, mode=RollbackMode.OPTIMIZED, seed=4)
    basic_bytes = basic.compensation_transfer_bytes
    optimized_bytes = (optimized.compensation_transfer_bytes
                       + optimized.rce_ship_bytes)
    assert optimized_bytes < basic_bytes / 5


def test_rce_executes_on_resource_node_ace_on_agent_node():
    """Resource effects land on the step's node even though the agent
    stays put during the optimized rollback."""
    world = build_line_world(3)
    agent = LinearAgent("where", ["n0", "n1", "n2"],
                        savepoints={0: "sp"}, rollback_to="sp")
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.OPTIMIZED)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert world.metrics.count("agent.transfers.compensation") == 0
    # After compensation + one re-execution: exactly one net transfer
    # per node (same as the basic mechanism would leave).
    for i in range(3):
        assert bank_of(world, f"n{i}").peek("a")["balance"] == 990
    assert record.result["compensations"] == 2


def test_concurrency_saving_observed():
    """ACE ∥ RCE overlap shortens compensation transactions."""
    plan = make_tour_plan([f"n{i}" for i in range(5)], 6,
                          mixed_fraction=0.0, ace_fraction=0.5,
                          rollback_depth=5)
    result = run_tour(plan, 5, mode=RollbackMode.OPTIMIZED, seed=5)
    assert result.status is AgentStatus.FINISHED


def test_resume_transfer_counted_when_control_elsewhere():
    """After an all-local rollback the agent must still travel to the
    savepoint's control node to resume — counted as a resume transfer."""
    # 7 steps over 5 nodes: the decision node (n2) differs from the
    # savepoint's resume node (n1), so resuming costs one transfer.
    plan = make_tour_plan([f"n{i}" for i in range(5)], 7,
                          mixed_fraction=0.0, rollback_depth=6)
    result = run_tour(plan, 5, mode=RollbackMode.OPTIMIZED, seed=6)
    assert result.resume_transfers >= 1
