"""Tests: message board and auction resources, unit + end-to-end."""

import pytest

from repro import AgentStatus, MobileAgent, RollbackMode
from repro.compensation.registry import resource_compensation
from repro.errors import CompensationFailed, UsageError
from repro.node.runtime import RetryPolicy
from repro.resources.auction import AuctionHouse
from repro.resources.mailbox import MessageBoard
from repro.tx.manager import Transaction

from tests.helpers import build_line_world


def tx():
    return Transaction("test", "n0")


# -- message board units ---------------------------------------------------------

def test_post_read_and_counts():
    board = MessageBoard("board")
    t = tx()
    board.post(t, "status", "50% done", sender="agent-1")
    board.post(t, "status", "75% done", sender="agent-1")
    t.commit()
    t2 = tx()
    assert board.read_topic(t2, "status", reader="owner") == \
        ["50% done", "75% done"]
    t2.commit()
    assert board.message_count("status") == 2


def test_retract_unread_message():
    board = MessageBoard("board")
    t = tx()
    message_id = board.post(t, "status", "oops", sender="a")
    t.commit()
    t2 = tx()
    board.retract(t2, message_id)
    t2.commit()
    assert board.message_count() == 0
    assert board.peek("retracted") == 1


def test_retract_read_message_fails():
    board = MessageBoard("board")
    t = tx()
    message_id = board.post(t, "status", "leaked", sender="a")
    board.read_topic(t, "status", reader="owner")
    t.commit()
    with pytest.raises(CompensationFailed, match="already read"):
        board.retract(tx(), message_id)


def test_peek_does_not_consume():
    board = MessageBoard("board")
    t = tx()
    message_id = board.post(t, "status", "quiet", sender="a")
    assert board.peek_topic(t, "status") == ["quiet"]
    board.retract(t, message_id)  # still unread => retractable
    t.commit()
    assert board.message_count() == 0


def test_retract_unknown_fails():
    with pytest.raises(CompensationFailed):
        MessageBoard("board").retract(tx(), "ghost")


# -- auction units -----------------------------------------------------------------

def make_house(closes_at=100.0):
    house = AuctionHouse("auction")
    house.open_lot("painting", reserve=50, closes_at=closes_at)
    return house


def test_bid_must_beat_reserve_and_highest():
    house = make_house()
    t = tx()
    house.bid(t, "painting", "alice", 60, now=1.0)
    with pytest.raises(UsageError, match="below reserve"):
        house.bid(t, "painting", "bob", 40, now=1.0)
    with pytest.raises(UsageError, match="does not beat"):
        house.bid(t, "painting", "bob", 60, now=1.0)
    house.bid(t, "painting", "bob", 70, now=1.0)
    t.commit()
    assert house.highest_bid(tx(), "painting")[1:] == ("bob", 70)


def test_withdraw_open_lot_then_impossible_after_close():
    house = make_house(closes_at=10.0)
    t = tx()
    bid_id = house.bid(t, "painting", "alice", 60, now=1.0)
    t.commit()
    t2 = tx()
    assert house.withdraw_bid(t2, "painting", bid_id, now=2.0) == 60
    t2.abort()  # keep the bid; we only probed withdrawability
    # Past the deadline the lot auto-closes on next access.
    with pytest.raises(CompensationFailed, match="final"):
        house.withdraw_bid(tx(), "painting", bid_id, now=11.0)
    assert house.winner_of("painting")[1] == "alice"


def test_close_picks_highest_and_is_idempotent():
    house = make_house()
    t = tx()
    house.bid(t, "painting", "alice", 60, now=1.0)
    house.bid(t, "painting", "bob", 80, now=1.0)
    first = house.close(t, "painting", now=1.0)
    second = house.close(t, "painting", now=2.0)
    t.commit()
    assert first[1:] == ("bob", 80)
    assert second == first


def test_unknown_lot_rejected():
    with pytest.raises(UsageError):
        make_house().bid(tx(), "ghost", "x", 60, now=0.0)


# -- end-to-end: bidding agent rolls back before/after close ------------------------

@resource_compensation("mb.retract")
def mb_retract(board, params, ctx):
    board.retract(params["message_id"])


@resource_compensation("au.withdraw")
def au_withdraw(house, params, ctx):
    house.withdraw_bid(params["lot"], params["bid_id"], ctx.now)


class Bidder(MobileAgent):
    """Posts a status note, bids, then reconsiders."""

    def __init__(self, agent_id, wait_before_deciding=0.0):
        super().__init__(agent_id)
        self.wait = wait_before_deciding

    def start(self, ctx):
        ctx.savepoint("sp")
        ctx.goto("n1", "act")

    def act(self, ctx):
        if self.wro.get("marks"):
            # Post-rollback pass: the compensations left their mark.
            ctx.goto("n0", "decide")
            return
        board = ctx.resource("board")
        message_id = board.post("bids", "I am bidding", "bidder")
        ctx.log_resource_compensation("mb.retract",
                                      {"message_id": message_id},
                                      resource="board")
        house = ctx.resource("auction")
        bid_id = house.bid("painting", self.agent_id, 60, ctx.now)
        ctx.log_resource_compensation(
            "au.withdraw", {"lot": "painting", "bid_id": bid_id},
            resource="auction")
        ctx.log_agent_compensation("t.mark", {"tag": "undone"})
        ctx.goto("n0", "decide")

    def decide(self, ctx):
        if self.wait:
            wait, self.wait = self.wait, 0.0
            # Model deliberation time by charging the transaction.
            ctx._tx.charge(wait)
        if not self.wro.get("marks"):
            ctx.rollback("sp")
        ctx.finish("done")


def build_auction_world(closes_at, retry_attempts=4):
    world = build_line_world(
        2, retry_policy=RetryPolicy(max_attempts=retry_attempts,
                                    backoff=0.01))
    board = MessageBoard("board")
    world.node("n1").add_resource(board)
    house = AuctionHouse("auction")
    house.open_lot("painting", reserve=50, closes_at=closes_at)
    world.node("n1").add_resource(house)
    return world, board, house


def test_rollback_before_close_withdraws_bid_and_retracts_post():
    world, board, house = build_auction_world(closes_at=100.0)
    record = world.launch(Bidder("early-bird"), at="n0", method="start",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.rollbacks_completed == 1
    assert board.message_count() == 0
    assert house.highest_bid(tx(), "painting") is None


def test_rollback_after_close_fails_compensation():
    """The auction closes while the agent deliberates: the withdrawal
    compensation is impossible and the rollback cannot complete."""
    world, board, house = build_auction_world(closes_at=0.15)
    record = world.launch(Bidder("too-slow", wait_before_deciding=0.3),
                          at="n0", method="start",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FAILED
    assert "permanently failing" in record.failure
    # The allocation stands: the house's own closing run finds the
    # agent's bid still in place (the failing compensation transactions
    # always aborted, undoing their lazy close each time).
    t = Transaction("external", "n1")
    winner = house.close(t, "painting", now=world.sim.now)
    t.commit()
    assert winner[1] == "too-slow"
    assert house.winner_of("painting")[1] == "too-slow"
