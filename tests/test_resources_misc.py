"""Unit tests: exchange, directory, datastore, economy auditor."""

import pytest

from repro.errors import UsageError
from repro.resources.bank import Bank
from repro.resources.cash import Mint, purse_value
from repro.resources.database import DataStore
from repro.resources.directory import InfoDirectory
from repro.resources.economy import EconomyAuditor
from repro.resources.exchange import CurrencyExchange
from repro.tx.manager import Transaction


def tx():
    return Transaction("test", "n1")


# -- currency exchange ---------------------------------------------------------

def make_exchange(spread_bps=0):
    usd = Mint("usd", "USD")
    usd.seed("float", 10_000)
    eur = Mint("eur", "EUR")
    eur.seed("float", 10_000)
    exchange = CurrencyExchange("fx", {"USD": usd, "EUR": eur},
                                spread_bps=spread_bps)
    exchange.set_rate("USD", "EUR", 9, 10)
    return exchange, usd, eur


def test_convert_applies_rate_and_mints_fresh_coins():
    exchange, usd, _eur = make_exchange()
    t = tx()
    dollars = usd.issue(t, 100, 2)
    euros = exchange.convert(t, dollars, "EUR")
    t.commit()
    assert purse_value(euros, "EUR") == 180
    assert all(c.currency == "EUR" for c in euros)
    assert usd.live_serials() == set()  # originals retired


def test_round_trip_is_lossless_without_spread():
    exchange, usd, _ = make_exchange()
    t = tx()
    dollars = usd.issue(t, 200, 1)
    euros = exchange.convert(t, dollars, "EUR")
    back = exchange.convert(t, euros, "USD")
    t.commit()
    assert purse_value(back, "USD") == 200
    assert back[0].serial != dollars[0].serial


def test_spread_reduces_round_trip():
    exchange, usd, _ = make_exchange(spread_bps=100)  # 1%
    t = tx()
    dollars = usd.issue(t, 1_000, 1)
    euros = exchange.convert(t, dollars, "EUR")
    back = exchange.convert(t, euros, "USD")
    t.commit()
    assert purse_value(back, "USD") < 1_000
    assert exchange.peek("spread_earned") > 0


def test_convert_rejects_mixed_or_same_currency():
    exchange, usd, eur = make_exchange()
    t = tx()
    dollars = usd.issue(t, 100, 1)
    euros = eur.issue(t, 100, 1)
    with pytest.raises(UsageError):
        exchange.convert(t, dollars + euros, "EUR")
    with pytest.raises(UsageError):
        exchange.convert(t, dollars, "USD")


def test_convert_unknown_rate_rejected():
    usd = Mint("usd", "USD")
    usd.seed("float", 1_000)
    gbp = Mint("gbp", "GBP")
    exchange = CurrencyExchange("fx", {"USD": usd, "GBP": gbp})
    t = tx()
    coins = usd.issue(t, 100, 1)
    with pytest.raises(UsageError, match="no rate"):
        exchange.convert(t, coins, "GBP")


# -- directory -------------------------------------------------------------------

def test_directory_query_and_best_offer():
    directory = InfoDirectory("dir")
    directory.publish("books", [{"price": 30}, {"price": 10}, {"price": 20}])
    t = tx()
    assert len(directory.query(t, "books")) == 3
    assert directory.best_offer(t, "books")["price"] == 10
    with pytest.raises(UsageError):
        directory.query(t, "ghosts")


def test_directory_query_returns_copy():
    directory = InfoDirectory("dir")
    directory.publish("books", [{"price": 1}])
    t = tx()
    result = directory.query(t, "books")
    result.append({"price": 99})
    assert len(directory.query(t, "books")) == 1


# -- datastore ----------------------------------------------------------------------

def test_datastore_insert_get_remove():
    store = DataStore("db")
    t = tx()
    store.insert(t, "r1", {"v": 1})
    assert store.get(t, "r1") == {"v": 1}
    # write-through: peek sees the staged value before commit
    assert store.record_count() == 1
    t.commit()
    t2 = tx()
    assert store.remove(t2, "r1") == {"v": 1}
    t2.commit()
    assert store.record_count() == 0


def test_datastore_purge_deletes_matching_and_returns_count():
    store = DataStore("db")
    t = tx()
    for i in range(5):
        store.insert(t, f"temp-{i}", i)
    store.insert(t, "keep", "me")
    t.commit()
    t2 = tx()
    assert store.purge(t2, prefix="temp-") == 5
    t2.commit()
    assert store.record_count() == 1
    assert store.peek(("rec", "keep")) == "me"


def test_datastore_purge_undone_by_abort():
    store = DataStore("db")
    t = tx()
    store.insert(t, "r", 1)
    t.commit()
    t2 = tx()
    store.purge(t2)
    t2.abort()
    assert store.record_count() == 1


# -- economy auditor -----------------------------------------------------------------

def test_money_supply_counts_banks_floats_and_live_coins():
    bank = Bank("bank")
    bank.seed_account("a", 500)
    mint = Mint("mint")
    mint.seed("float", 300)
    t = tx()
    mint.issue(t, 100, 2)
    t.commit()
    auditor = EconomyAuditor(banks=[bank], mints=[mint])
    assert auditor.money_supply() == {"USD": 500 + 100 + 200}


def test_money_supply_multi_currency():
    usd = Mint("usd", "USD")
    usd.seed("float", 100)
    eur = Mint("eur", "EUR")
    eur.seed("float", 50)
    auditor = EconomyAuditor(mints=[usd, eur])
    assert auditor.money_supply() == {"USD": 100, "EUR": 50}
