"""Unit + property tests: state vs transition logging (Section 4.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.log.entries import BeginOfStepEntry, EndOfStepEntry, SavepointEntry
from repro.log.modes import (
    LoggingMode,
    sro_apply,
    sro_compose,
    sro_content_hashes,
    sro_diff,
    sro_diff_hashed,
    sro_image_hashed,
)
from repro.log.rollback_log import RollbackLog

# SRO spaces: flat string keys to small picklable values.
sro_values = st.one_of(st.integers(), st.text(max_size=8),
                       st.lists(st.integers(), max_size=4))
sro_spaces = st.dictionaries(st.text(min_size=1, max_size=4), sro_values,
                             max_size=6)


# -- diff algebra -------------------------------------------------------------

@given(sro_spaces, sro_spaces)
@settings(max_examples=80, deadline=None)
def test_apply_diff_reproduces_new_state(old, new):
    assert sro_apply(old, sro_diff(old, new)) == new


@given(sro_spaces)
@settings(max_examples=40, deadline=None)
def test_self_diff_is_empty(state):
    assert sro_diff(state, state).is_empty()


@given(sro_spaces, sro_spaces, sro_spaces)
@settings(max_examples=60, deadline=None)
def test_compose_equals_sequential_application(a, b, c):
    d1 = sro_diff(a, b)
    d2 = sro_diff(b, c)
    composed = sro_compose(d1, d2)
    assert sro_apply(a, composed) == c


def test_diff_snapshots_values():
    old = {}
    value = [1, 2]
    diff = sro_diff(old, {"k": value})
    value.append(3)
    assert diff.changed["k"] == [1, 2]


# -- hashed diffs (the snapshot-arena fast path) ------------------------------

@given(sro_spaces, sro_spaces)
@settings(max_examples=80, deadline=None)
def test_hashed_diff_matches_reconstructing_diff(old, new):
    reference = sro_diff(old, new)
    diff, hashes = sro_diff_hashed(sro_content_hashes(old), new)
    assert diff.changed == reference.changed
    assert diff.removed == reference.removed
    assert sro_apply(old, diff) == new
    assert hashes == sro_content_hashes(new)


@given(sro_spaces)
@settings(max_examples=40, deadline=None)
def test_hashed_self_diff_is_empty(state):
    diff, _hashes = sro_diff_hashed(sro_content_hashes(state), state)
    assert diff.is_empty()


def test_hashed_diff_snapshots_values():
    value = [1, 2]
    diff, _ = sro_diff_hashed({}, {"k": value})
    value.append(3)
    assert diff.changed["k"] == [1, 2]


def test_hashed_image_is_aliasing_free():
    value = {"nested": [1]}
    image, hashes = sro_image_hashed({"k": value})
    value["nested"].append(2)
    assert image == {"k": {"nested": [1]}}
    assert hashes == sro_content_hashes({"k": {"nested": [1]}})


def test_hashed_diff_serialises_each_key_once(monkeypatch):
    """The fast path's promise: one capture per key, no reconstruction."""
    import repro.log.modes as modes

    old = {"same": [1, 2], "gone": "x"}
    new = {"same": [1, 2], "changed": "y"}
    prev_hashes = sro_content_hashes(old)
    calls = []
    real_capture = modes.capture
    monkeypatch.setattr(modes, "capture",
                        lambda value: calls.append(value) or
                        real_capture(value))
    diff, _ = sro_diff_hashed(prev_hashes, new)
    assert len(calls) == len(new)
    assert set(diff.changed) == {"changed"}
    assert diff.removed == ("gone",)


def test_savepoint_sro_hashes_accessor():
    log = RollbackLog(LoggingMode.TRANSITION)
    hashes = sro_content_hashes({"a": 1})
    log.append(SavepointEntry(sp_id="sp-h", mode="transition",
                              payload={"a": 1}, sro_hashes=hashes))
    log.append(SavepointEntry(sp_id="sp-bare", mode="transition",
                              payload=sro_diff({"a": 1}, {"a": 2})))
    assert log.savepoint_sro_hashes("sp-h") == hashes
    # Entries written before the arena existed carry no hashes; the
    # protocol falls back to reconstruct-and-diff for those.
    assert log.savepoint_sro_hashes("sp-bare") is None


# -- transition logging in the log ----------------------------------------------

def build_transition_log(states):
    """One savepoint per state; first is a full image, rest are diffs."""
    log = RollbackLog(LoggingMode.TRANSITION)
    previous = None
    for i, state in enumerate(states):
        payload = state if previous is None else sro_diff(previous, state)
        log.append(SavepointEntry(sp_id=f"sp-{i}", mode="transition",
                                  payload=payload))
        log.append(BeginOfStepEntry(node="n", step_index=i))
        log.append(EndOfStepEntry(node="n", step_index=i))
        previous = state
    return log


def test_transition_log_reconstructs_every_savepoint():
    states = [{"a": 1}, {"a": 2, "b": [1]}, {"b": [1, 2]}, {}]
    log = build_transition_log(states)
    for i, state in enumerate(states):
        assert log.reconstruct_sro(f"sp-{i}") == state


def test_discard_intermediate_savepoint_merges_diffs():
    """Section 4.4.2's 'non-trivial task if transition logging is used'."""
    states = [{"a": 1}, {"a": 2}, {"a": 3, "b": 1}, {"a": 3}]
    log = build_transition_log(states)
    assert log.discard_savepoint("sp-1")
    # sp-1 is gone but later savepoints still reconstruct correctly.
    assert not log.has_savepoint("sp-1")
    assert log.reconstruct_sro("sp-2") == states[2]
    assert log.reconstruct_sro("sp-3") == states[3]
    assert log.reconstruct_sro("sp-0") == states[0]


def test_discard_base_image_promotes_next_savepoint():
    states = [{"a": 1, "keep": 9}, {"a": 2, "keep": 9}, {"a": 3, "keep": 9}]
    log = build_transition_log(states)
    assert log.discard_savepoint("sp-0")
    assert log.reconstruct_sro("sp-1") == states[1]
    assert log.reconstruct_sro("sp-2") == states[2]


@given(st.lists(sro_spaces, min_size=2, max_size=5), st.data())
@settings(max_examples=40, deadline=None)
def test_random_discards_preserve_remaining_reconstruction(states, data):
    log = build_transition_log(states)
    discardable = list(range(len(states)))
    order = data.draw(st.permutations(discardable))
    kept = set(discardable)
    for index in order[:len(order) // 2]:
        assert log.discard_savepoint(f"sp-{index}")
        kept.discard(index)
        for still in sorted(kept):
            assert log.reconstruct_sro(f"sp-{still}") == states[still]


def test_state_vs_transition_savepoint_sizes():
    """Transition savepoints are smaller when little changes per step.

    Each state carries its own ballast object (as real savepoint images
    do — the protocol snapshots the SRO space per savepoint, so pickle
    cannot deduplicate across entries).
    """
    states = [{"ballast": bytes(bytearray(b"x" * 20_000)), "counter": i}
              for i in range(4)]

    state_log = RollbackLog(LoggingMode.STATE)
    for i, s in enumerate(states):
        state_log.append(SavepointEntry(sp_id=f"sp-{i}", mode="state",
                                        payload=s))
    transition_log = build_transition_log(states)
    assert transition_log.size_bytes() < state_log.size_bytes() / 2
