"""Integration tests: itineraries + rollback (Section 4.4.2, Figure 6)."""

import pytest

from repro import (
    AgentStatus,
    Itinerary,
    ItineraryAgent,
    StepEntry,
    SubItinerary,
    agent_compensation,
)
from repro.errors import ItineraryError

from tests.helpers import build_line_world


@agent_compensation("t.itin_tick")
def t_itin_tick(wro, params, ctx):
    wro["ticks"] = wro.get("ticks", 0) + 1


class Walker(ItineraryAgent):
    """Records visits; steps register a tick compensation."""

    def visit(self, ctx):
        self.sro.setdefault("trace", []).append(
            (self.step_count, ctx.node_name))
        ctx.log_agent_compensation("t.itin_tick", {})

    def maybe_rollback(self, ctx):
        self.visit(ctx)
        plan = self.sro.get("rollback_plan")
        if plan is not None:
            ticks = self.wro.get("ticks", 0)
            if ticks < plan["until_ticks"]:
                self.rollback_scope(ctx, levels=plan["levels"])

    def itinerary_result(self):
        return {
            "trace": list(self.sro.get("trace", [])),
            "ticks": self.wro.get("ticks", 0),
        }


# -- model validation -------------------------------------------------------------

def test_main_itinerary_rejects_step_entries():
    itinerary = Itinerary()
    itinerary.entries.append(StepEntry("visit", "n0"))  # type: ignore
    with pytest.raises(ItineraryError, match="not allowed"):
        itinerary.validate()


def test_empty_itineraries_rejected():
    with pytest.raises(ItineraryError):
        Itinerary().validate()
    with pytest.raises(ItineraryError):
        Itinerary().add(SubItinerary("empty")).validate()


def test_resolve_paths():
    si2 = SubItinerary("si2", [StepEntry("visit", "n1")])
    si1 = SubItinerary("si1", [StepEntry("visit", "n0"), si2])
    itinerary = Itinerary().add(si1)
    assert itinerary.resolve(()) is itinerary
    assert itinerary.resolve((0,)) is si1
    assert itinerary.resolve((0, 1)) is si2
    assert itinerary.resolve((0, 1, 0)).method == "visit"


def test_walk_steps_depth_first():
    itinerary = Itinerary().add(SubItinerary("a", [
        StepEntry("visit", "n0"),
        SubItinerary("b", [StepEntry("visit", "n1")]),
        StepEntry("visit", "n2"),
    ]))
    assert [s.loc for s in itinerary.walk_steps()] == ["n0", "n1", "n2"]


# -- execution --------------------------------------------------------------------

def simple_itinerary():
    return (Itinerary()
            .add(SubItinerary("first", [StepEntry("visit", "n0"),
                                        StepEntry("visit", "n1")]))
            .add(SubItinerary("second", [StepEntry("visit", "n2")])))


def test_itinerary_executes_in_order_and_truncates_log():
    world = build_line_world(3)
    agent = Walker(simple_itinerary(), "walk-1")
    record = world.launch_itinerary(agent)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert [n for _, n in record.result["trace"]] == ["n0", "n1", "n2"]
    # One truncation per completed top-level sub-itinerary.
    assert world.metrics.count("log.truncations") == 2
    # The finished agent carries an empty log.
    assert record.final_agent is not None


def test_nested_subitineraries_write_virtual_savepoints():
    """Entering parent+child at one step boundary writes one real and
    one virtual savepoint (the paper's 'only one agent savepoint is
    really necessary')."""
    inner = SubItinerary("inner", [StepEntry("visit", "n1")])
    outer = SubItinerary("outer", [inner, StepEntry("visit", "n2")])
    itinerary = Itinerary().add(
        SubItinerary("lead", [StepEntry("visit", "n0")])).add(outer)
    world = build_line_world(3)
    agent = Walker(itinerary, "walk-2")
    record = world.launch_itinerary(agent)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # Savepoints: launch writes one real for "lead"; entering
    # outer+inner together writes real + virtual.
    assert world.metrics.count("savepoints.written") == 3


def test_rollback_nested_scope_only():
    """Rolling back the inner sub-itinerary does not undo outer steps.

    Mirrors the paper's SI4 example: the inner scope has one committed
    step (visit/n2) before the step that aborts (maybe_rollback/n0), so
    rolling back the inner scope compensates exactly that one step.
    """
    inner = SubItinerary("inner", [StepEntry("visit", "n2"),
                                   StepEntry("maybe_rollback", "n0")])
    outer = SubItinerary("outer", [StepEntry("visit", "n1"), inner])
    itinerary = Itinerary().add(outer)
    world = build_line_world(3)
    agent = Walker(itinerary, "walk-3")
    agent.sro["rollback_plan"] = {"levels": 0, "until_ticks": 1}
    record = world.launch_itinerary(agent)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    # The trace is strongly reversible: restoring the inner savepoint
    # erased the first visit to n2, and the re-execution re-added it —
    # so the nodes read clean, while the step-count gap betrays the
    # extra execution.
    trace = record.result["trace"]
    assert [n for _, n in trace] == ["n1", "n2", "n0"]
    counts = [c for c, _ in trace]
    assert counts == [0, 2, 3]  # step 1 (first n2 visit) was rolled back
    assert record.result["ticks"] == 1  # only the inner step compensated
    assert record.rollbacks_completed == 1


def test_rollback_enclosing_scope_undoes_both_levels():
    inner = SubItinerary("inner", [StepEntry("visit", "n2"),
                                   StepEntry("maybe_rollback", "n0")])
    outer = SubItinerary("outer", [StepEntry("visit", "n1"), inner])
    itinerary = Itinerary().add(outer)
    world = build_line_world(3)
    agent = Walker(itinerary, "walk-4")
    agent.sro["rollback_plan"] = {"levels": 1, "until_ticks": 2}
    record = world.launch_itinerary(agent)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    trace = record.result["trace"]
    # The whole outer scope was rolled back (trace restored to empty)
    # and re-executed: nodes read clean, step counts start at 3.
    assert [n for _, n in trace] == ["n1", "n2", "n0"]
    assert [c for c, _ in trace] == [2, 3, 4]
    assert record.result["ticks"] == 2  # inner + outer step compensated
    assert record.rollbacks_completed == 1


def test_savepoint_discarded_when_subitinerary_completes():
    """After 'first' completes, its savepoint is gone: a rollback
    attempt into it must fail (the log was also truncated — completing
    a top-level sub-itinerary discards everything)."""
    world = build_line_world(3)
    agent = Walker(simple_itinerary(), "walk-5")
    record = world.launch_itinerary(agent)
    world.run(max_events=500_000)
    assert world.metrics.count("savepoints.written") == 2
    assert record.status is AgentStatus.FINISHED


class Chooser(Walker):
    def wants_fallback(self):
        return False


class Rogue(Walker):
    def visit(self, ctx):
        ctx.goto("n0", "visit")


def test_preconditions_skip_entries():
    itinerary = Itinerary().add(SubItinerary("choose", [
        StepEntry("visit", "n0"),
        StepEntry("visit", "n1", precondition="wants_fallback"),
        StepEntry("visit", "n2"),
    ]))
    world = build_line_world(3)
    agent = Chooser(itinerary, "walk-6")
    record = world.launch_itinerary(agent)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert [n for _, n in record.result["trace"]] == ["n0", "n2"]


def test_goto_forbidden_for_itinerary_agents():
    itinerary = Itinerary().add(
        SubItinerary("only", [StepEntry("visit", "n0")]))
    world = build_line_world(1)
    record = world.launch_itinerary(Rogue(itinerary, "walk-7"))
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FAILED
    assert "must not call ctx.goto" in record.failure
