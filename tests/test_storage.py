"""Unit tests: stable storage, queues, serialization."""

import pytest

from repro.errors import UsageError
from repro.storage.queues import AgentInputQueue
from repro.storage.serialization import capture, restore, size_of, snapshot
from repro.storage.stable import StableStore
from repro.tx.manager import Transaction


def tx(kind="test", home="n1"):
    return Transaction(kind, home)


# -- serialization -----------------------------------------------------------

def test_capture_restore_round_trip():
    value = {"a": [1, 2, 3], "b": ("x", b"bytes")}
    assert restore(capture(value)) == value


def test_snapshot_is_a_deep_copy():
    value = {"inner": [1, 2]}
    copy = snapshot(value)
    copy["inner"].append(3)
    assert value["inner"] == [1, 2]


def test_size_of_grows_with_payload():
    small = size_of({"k": b"x" * 10})
    big = size_of({"k": b"x" * 10_000})
    assert big > small + 9_000


# -- stable store ---------------------------------------------------------------

def test_store_put_get_delete():
    store = StableStore("s")
    store.put("k", 1)
    assert store.get("k") == 1
    assert "k" in store
    assert store.delete("k") == 1
    assert store.get("k") is None


def test_store_delete_missing_raises():
    with pytest.raises(UsageError):
        StableStore("s").delete("nope")


def test_store_transactional_put_undone_on_abort():
    store = StableStore("s")
    store.put("k", "old")
    t = tx()
    store.put("k", "new", t)
    store.put("fresh", 1, t)
    assert store.get("k") == "new"
    t.abort()
    assert store.get("k") == "old"
    assert "fresh" not in store


def test_store_transactional_delete_undone_on_abort():
    store = StableStore("s")
    store.put("k", "v")
    t = tx()
    store.delete("k", t)
    assert "k" not in store
    t.abort()
    assert store.get("k") == "v"


def test_store_commit_keeps_changes():
    store = StableStore("s")
    t = tx()
    store.put("k", 42, t)
    t.commit()
    assert store.get("k") == 42


# -- agent input queue --------------------------------------------------------------

def test_enqueue_without_tx_is_immediate():
    queue = AgentInputQueue("n1")
    item = queue.enqueue("payload", 100)
    assert len(queue) == 1
    assert queue.head() is item


def test_enqueue_with_tx_visible_only_at_commit():
    queue = AgentInputQueue("n1")
    t = tx()
    queue.enqueue("payload", 100, t)
    assert len(queue) == 0
    t.commit()
    assert len(queue) == 1


def test_enqueue_with_tx_aborted_never_visible():
    queue = AgentInputQueue("n1")
    t = tx()
    queue.enqueue("payload", 100, t)
    t.abort()
    assert len(queue) == 0


def test_dequeue_restores_to_front_on_abort_with_attempt_bump():
    queue = AgentInputQueue("n1")
    first = queue.enqueue("first", 10)
    queue.enqueue("second", 10)
    t = tx()
    taken = queue.dequeue(t)
    assert taken is first
    assert len(queue) == 1
    t.abort()
    assert queue.head() is first
    assert first.attempts == 1


def test_dequeue_by_id_and_missing_id():
    queue = AgentInputQueue("n1")
    queue.enqueue("a", 1)
    b = queue.enqueue("b", 1)
    t = tx()
    assert queue.dequeue(t, item_id=b.item_id) is b
    with pytest.raises(UsageError):
        queue.dequeue(t, item_id=999_999)


def test_dequeue_empty_raises():
    with pytest.raises(UsageError):
        AgentInputQueue("n1").dequeue(tx())


def test_on_visible_fires_for_enqueue_and_abort_restore():
    queue = AgentInputQueue("n1")
    seen = []
    queue.on_visible = lambda item: seen.append(item.item_id)
    item = queue.enqueue("p", 1)
    assert seen == [item.item_id]
    t = tx()
    queue.dequeue(t)
    t.abort()
    assert seen == [item.item_id, item.item_id]


def test_fifo_order_preserved():
    queue = AgentInputQueue("n1")
    items = [queue.enqueue(i, 1) for i in range(5)]
    t = tx()
    taken = [queue.dequeue(t) for _ in range(5)]
    assert taken == items
