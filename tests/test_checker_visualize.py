"""Tests: run-invariant checker and itinerary visualisation."""

import pytest

from repro import Itinerary, RollbackMode, StepEntry, SubItinerary
from repro.core.checker import assert_clean, check_world
from repro.itinerary.builder import parse_itinerary
from repro.itinerary.visualize import render_tree, to_dot

from tests.helpers import LinearAgent, build_line_world


# -- checker --------------------------------------------------------------------

def run_clean_world():
    world = build_line_world(3)
    agent = LinearAgent("check-me", ["n0", "n1", "n2"],
                        savepoints={0: "sp"}, rollback_to="sp")
    world.launch(agent, at="n0", method="step", mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    return world


def test_clean_run_passes_all_checks():
    world = run_clean_world()
    assert check_world(world) == []
    assert_clean(world)


def test_checker_flags_fabricated_completion():
    world = run_clean_world()
    world.metrics.record(99.0, "rollback-completed", agent="ghost",
                         savepoint="x", node="n0")
    violations = check_world(world)
    assert any("never initiated" in v for v in violations)
    with pytest.raises(AssertionError):
        assert_clean(world)


def test_checker_flags_record_timeline_mismatch():
    world = run_clean_world()
    record = world.record_of("check-me")
    record.rollbacks_completed += 1
    violations = check_world(world)
    assert any("timeline says" in v for v in violations)


def test_checker_flags_residue_for_terminal_agent():
    world = run_clean_world()
    from repro.agent.packages import AgentPackage, PackageKind
    from repro.log.rollback_log import RollbackLog

    stale_agent = LinearAgent("check-me-2", ["n0"])
    stale_agent.set_control("n0", "step")
    package = AgentPackage.pack(PackageKind.STEP, stale_agent,
                                RollbackLog(), 0)
    package = package.__class__(**{**package.__dict__,
                                   "agent_id": "check-me"})
    world.node("n1").queue.enqueue(package, package.size_bytes)
    violations = check_world(world)
    assert any("terminal agent" in v for v in violations)


def test_checker_flags_compensation_without_rollback():
    world = run_clean_world()
    record = world.record_of("check-me")
    record.rollbacks_initiated = 0
    violations = check_world(world)
    assert any("without any rollback initiation" in v for v in violations)


# -- visualisation -----------------------------------------------------------------

FIG6 = ("I{ SI1{ s1/n0, s2/n1, s3/n2 },"
        "   SI3{ s6/n0, SI4{ s5/n1, s4/n2 }, SI5{ s9/n0, s10/n1 } } }")


def test_render_tree_shows_hierarchy():
    text = render_tree(parse_itinerary(FIG6))
    assert text.splitlines()[0] == "I"
    assert "SI3" in text and "SI4" in text
    assert "s4()/n2" in text
    # SI4's children are indented deeper than SI3.
    s5_line = next(line for line in text.splitlines() if "s5()" in line)
    assert len(s5_line) - len(s5_line.lstrip("│ ├└─")) > 0


def test_render_tree_flags_order_and_preconditions():
    itinerary = Itinerary(order="any").add(
        SubItinerary("alt", [StepEntry("a", "n0", precondition="maybe")],
                     order="any"))
    text = render_tree(itinerary)
    assert "(any order)" in text.splitlines()[0]
    assert "alt (any order)" in text
    assert "?maybe" in text


def test_to_dot_is_valid_digraph():
    dot = to_dot(parse_itinerary(FIG6))
    assert dot.startswith("digraph itinerary {")
    assert dot.rstrip().endswith("}")
    assert dot.count("->") >= 9  # root->2 subs + steps + nested
    assert '"s6()/n0"' in dot
