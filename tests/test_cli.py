"""Tests: the command-line interface."""

import pytest

from repro.cli import main


def test_tour_command_prints_metrics(capsys):
    code = main(["tour", "--steps", "5", "--nodes", "3", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "steps committed" in out
    assert "rollbacks completed" in out


def test_tour_with_crashes_still_finishes(capsys):
    code = main(["tour", "--steps", "5", "--nodes", "3",
                 "--crash-rate", "0.3", "--seed", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "crashes injected" in out


def test_compare_command_shows_both_modes(capsys):
    code = main(["compare", "--steps", "6", "--nodes", "4",
                 "--mixed", "0.5", "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "basic" in out and "optimized" in out


def test_predict_command_matches(capsys):
    code = main(["predict", "--steps", "5", "--nodes", "3",
                 "--mixed", "0.4", "--mode", "optimized", "--seed", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "predicted" in out and "measured" in out
    assert "BOS" in out  # the log rendering


def test_trace_command_emits_timeline(capsys):
    code = main(["trace", "--steps", "4", "--nodes", "3", "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert "rollback initiated" in out
    assert "agents:" in out


def test_saga_mode_accepted(capsys):
    code = main(["tour", "--steps", "4", "--nodes", "3",
                 "--mode", "saga", "--seed", "8"])
    capsys.readouterr()
    assert code in (0, 1)  # saga may fail its agent — that is the point


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_fuzz_rejects_malformed_seed_range(capsys):
    code = main(["fuzz", "--seed-range", "abc"])
    out = capsys.readouterr().out
    assert code == 2
    assert "must be A:B" in out


def test_fuzz_rejects_empty_seed_range(capsys):
    # 5:5 is half-open and empty: sweeping zero seeds must not report
    # "all clean" with exit 0 — that would let a typo'd CI job pass.
    code = main(["fuzz", "--seed-range", "5:5"])
    out = capsys.readouterr().out
    assert code == 2
    assert "empty" in out and "A < B" in out


def test_fuzz_rejects_inverted_seed_range(capsys):
    code = main(["fuzz", "--seed-range", "10:3"])
    out = capsys.readouterr().out
    assert code == 2
    assert "inverted" in out and "A < B" in out


def test_fuzz_accepts_minimal_valid_range(capsys):
    code = main(["fuzz", "--seed-range", "0:1", "--backends", "world"])
    out = capsys.readouterr().out
    assert code == 0
    assert "all 1 seeds clean" in out


def test_serve_rejects_bad_port(capsys):
    code = main(["serve", "--port", "70000"])
    out = capsys.readouterr().out
    assert code == 2
    assert "--port" in out


def test_serve_rejects_nonpositive_caps(capsys):
    code = main(["serve", "--port", "0", "--max-inflight", "0"])
    out = capsys.readouterr().out
    assert code == 2
    assert "--max-inflight" in out
    code = main(["serve", "--port", "0", "--max-pending", "-1"])
    out = capsys.readouterr().out
    assert code == 2
    assert "--max-pending" in out
