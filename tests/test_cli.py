"""Tests: the command-line interface."""

import pytest

from repro.cli import main


def test_tour_command_prints_metrics(capsys):
    code = main(["tour", "--steps", "5", "--nodes", "3", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "steps committed" in out
    assert "rollbacks completed" in out


def test_tour_with_crashes_still_finishes(capsys):
    code = main(["tour", "--steps", "5", "--nodes", "3",
                 "--crash-rate", "0.3", "--seed", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "crashes injected" in out


def test_compare_command_shows_both_modes(capsys):
    code = main(["compare", "--steps", "6", "--nodes", "4",
                 "--mixed", "0.5", "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "basic" in out and "optimized" in out


def test_predict_command_matches(capsys):
    code = main(["predict", "--steps", "5", "--nodes", "3",
                 "--mixed", "0.4", "--mode", "optimized", "--seed", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "predicted" in out and "measured" in out
    assert "BOS" in out  # the log rendering


def test_trace_command_emits_timeline(capsys):
    code = main(["trace", "--steps", "4", "--nodes", "3", "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert "rollback initiated" in out
    assert "agents:" in out


def test_saga_mode_accepted(capsys):
    code = main(["tour", "--steps", "4", "--nodes", "3",
                 "--mode", "saga", "--seed", "8"])
    capsys.readouterr()
    assert code in (0, 1)  # saga may fail its agent — that is the point


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])
