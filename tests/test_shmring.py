"""Shared-memory ring + barrier wire-format unit tests (see
repro/node/shmring.py).

The corruption matrix mirrors test_journal.py's torn-tail discipline:
any damaged frame — header or payload — must surface as TornFrame,
never as silently corrupt state.
"""

import pickle

import pytest

from repro.agent.packages import AgentPackage, PackageKind
from repro.net.messages import Message
from repro.node.sharded import _Transfer
from repro.node.shmring import (
    _HEADER,
    _WRAP,
    RingDecoder,
    RingEncoder,
    ShmRing,
    TornFrame,
    decode_epoch,
    decode_reply,
    encode_epoch,
    encode_reply,
    map_transfer,
)
from repro.storage import serialization


@pytest.fixture
def ring():
    r = ShmRing.create(1 << 16)
    yield r
    r.unlink()


@pytest.fixture
def tiny_ring():
    r = ShmRing.create(64)
    yield r
    r.unlink()


def write_all(r, payloads):
    r.begin_batch()
    for p in payloads:
        assert r.try_write(p)


# -- framing ------------------------------------------------------------------


def test_frames_round_trip_in_order(ring):
    payloads = [b"alpha", b"", b"x" * 1000, bytes(range(256))]
    write_all(ring, payloads)
    assert [ring.read_frame() for _ in payloads] == payloads


def test_multiple_batches_round_trip(ring):
    for batch in ([b"a", b"bb"], [b"ccc"], [b"d" * 500, b"e"]):
        write_all(ring, batch)
        assert [ring.read_frame() for _ in batch] == batch


def test_wrap_with_sentinel(tiny_ring):
    # First frame: 8 + 30 = 38 bytes -> tail of 26 left.  The second
    # frame needs 28 > 26, and the tail fits a wrap sentinel (>= 8).
    first, second = b"a" * 30, b"b" * 20
    write_all(tiny_ring, [first])
    assert tiny_ring.read_frame() == first
    write_all(tiny_ring, [second])
    size, _crc = _HEADER.unpack_from(tiny_ring.shm.buf, 38)
    assert size == _WRAP  # the sentinel really was written at the tail
    assert tiny_ring.read_frame() == second


def test_wrap_without_room_for_sentinel(tiny_ring):
    # 8 + 50 = 58 bytes -> tail of 6 < header size: the writer wraps
    # implicitly and the reader must infer it from the short tail.
    first, second = b"a" * 50, b"b" * 40
    write_all(tiny_ring, [first])
    assert tiny_ring.read_frame() == first
    write_all(tiny_ring, [second])
    assert tiny_ring.read_frame() == second


def test_batch_budget_rejects_overflow(tiny_ring):
    tiny_ring.begin_batch()
    assert tiny_ring.try_write(b"a" * 30)
    assert not tiny_ring.try_write(b"b" * 30)  # 38 + 38 > 64
    assert not tiny_ring.try_write(b"c" * 100)  # larger than the ring
    assert tiny_ring.try_write(b"d" * 10)  # smaller frames still fit


def test_oversized_frame_rejected_even_on_empty_ring(tiny_ring):
    tiny_ring.begin_batch()
    assert not tiny_ring.try_write(b"x" * 64)  # 8 + 64 > capacity


# -- corruption matrix --------------------------------------------------------


def test_torn_payload_fails_crc(ring):
    write_all(ring, [b"hello world"])
    ring.shm.buf[_HEADER.size + 2] ^= 0xFF
    with pytest.raises(TornFrame):
        ring.read_frame()


def test_torn_header_length_out_of_bounds(ring):
    write_all(ring, [b"hello"])
    _HEADER.pack_into(ring.shm.buf, 0, ring.capacity + 1, 0)
    with pytest.raises(TornFrame):
        ring.read_frame()


def test_torn_header_crc_mismatch(ring):
    write_all(ring, [b"hello"])
    size, crc = _HEADER.unpack_from(ring.shm.buf, 0)
    _HEADER.pack_into(ring.shm.buf, 0, size, crc ^ 1)
    with pytest.raises(TornFrame):
        ring.read_frame()


def test_double_wrap_sentinel_is_torn(ring):
    # A sentinel immediately after a wrap cannot be legitimate.
    _HEADER.pack_into(ring.shm.buf, 0, _WRAP, 0)
    with pytest.raises(TornFrame):
        ring.read_frame()


def test_unwritten_ring_reads_as_torn():
    r = ShmRing.create(256)  # zero-filled: length 0, crc 0 is frame b""
    try:
        # A zeroed header decodes as an empty frame (crc32(b"") == 0);
        # that is indistinguishable from a real empty frame by design —
        # the pipe protocol never reads frames that were not announced.
        assert r.read_frame() == b""
    finally:
        r.unlink()


# -- lifecycle ----------------------------------------------------------------


def test_unlink_is_idempotent_and_detaches():
    r = ShmRing.create(256)
    name = r.name
    r.unlink()
    r.unlink()
    with pytest.raises(FileNotFoundError):
        ShmRing.attach(name)


def test_attach_sees_writes():
    a = ShmRing.create(4096)
    try:
        b = ShmRing.attach(a.name)
        write_all(a, [b"ping", b"pong"])
        assert b.read_frame() == b"ping"
        assert b.read_frame() == b"pong"
        b.close()
    finally:
        a.unlink()


# -- wire codec ---------------------------------------------------------------


def make_package(tag: bytes) -> AgentPackage:
    return AgentPackage(kind=PackageKind.STEP, agent_id="ag-1",
                        blob=b"agent:" + tag, step_index=2,
                        log_blobs=(b"frame-0:" + tag, b"frame-1:" + tag),
                        payload_bytes=99, work_id=7)


def make_transfers() -> list[_Transfer]:
    package = _Transfer(at=1.0, seq=0, kind="package", dest_shard=1,
                        dest_name="n1", package=make_package(b"pkg"),
                        record_blob=b"record-bytes")
    shadow = _Transfer(at=1.5, seq=1, kind="shadow", dest_shard=0,
                       dest_name="n0",
                       message=Message(src="n1", dst="n0", kind="shadow",
                                       payload=make_package(b"shadow"),
                                       size_bytes=123),
                       max_retries=2)
    ledger = _Transfer(at=2.0, seq=2, kind="ledger", dest_shard=1,
                       ledger_write=(41, "n0"))
    return [package, shadow, ledger]


def assert_same_transfer(decoded: _Transfer, original: _Transfer):
    assert decoded == original  # dataclass equality, all fields deep


def test_epoch_payload_round_trip_is_zero_copy(ring):
    serialization.reset_stats()
    transfers = make_transfers()
    payload = {"items": [("deliver", t) for t in transfers],
               "records": {"ag-1": b"record-a", "ag-2": b"record-b"},
               "barrier": 3.0}
    encoded = encode_epoch(dict(payload), ring)
    assert encoded["wire"] > 0
    # The originals were never mutated: re-shipped adopted transfers
    # must keep their real bytes.
    assert transfers[0].package.blob == b"agent:pkg"
    blob = pickle.dumps(encoded)  # manifest crosses the pipe pickled
    decoded = decode_epoch(pickle.loads(blob), ring)
    assert decoded["barrier"] == 3.0
    assert decoded["records"] == payload["records"]
    for (_, got), want in zip(decoded["items"], transfers):
        assert_same_transfer(got, want)
    stats = serialization.stats()
    assert stats["ring_spills"] == 0
    assert stats["ipc_bytes_copied"] == 0
    assert stats["frame_reused"] == encoded["wire"]
    assert stats["ipc_bytes_framed"] > 0


def test_reply_round_trip_with_journal_notes(ring):
    serialization.reset_stats()
    transfers = make_transfers()
    notes = [("savepoint", {"agent": "ag-1", "sp": "sp-3",
                            "virtual": False, "frame": b"sp-frame"}),
             ("store", {"store": "s", "op": "put", "key": "k",
                        "value": {"not": "bytes"}}),
             ("queue", {"node": "n0", "op": "enqueue", "item": 4,
                        "bytes": b"item-bytes"})]
    reply = {"outbox": transfers,
             "record_deltas": {"ag-1": b"delta-bytes"},
             "journal": notes, "ok": True, "state": {"now": 1.0}}
    encoded = encode_reply(dict(reply), ring)
    decoded = decode_reply(pickle.loads(pickle.dumps(encoded)), ring)
    for got, want in zip(decoded["outbox"], transfers):
        assert_same_transfer(got, want)
    assert decoded["record_deltas"] == {"ag-1": b"delta-bytes"}
    assert decoded["journal"] == notes
    assert serialization.stats()["ipc_bytes_copied"] == 0


def test_spill_keeps_blob_in_band(tiny_ring):
    serialization.reset_stats()
    enc = RingEncoder(tiny_ring)
    big = b"B" * 1000  # cannot ever fit a 64-byte ring
    small = b"s"
    assert enc.add(big) is big  # spilled: stays in the manifest
    ref = enc.add(small)
    assert not isinstance(ref, bytes)
    dec = RingDecoder(tiny_ring, enc.frames)
    assert dec.resolve(big) is big
    assert dec.resolve(ref) == small
    stats = serialization.stats()
    assert stats["ring_spills"] == 1
    assert stats["ipc_bytes_copied"] == len(big)
    assert stats["ipc_bytes_framed"] == len(small)


def test_map_transfer_identity_without_blobs():
    ledger = make_transfers()[2]
    assert map_transfer(ledger, lambda b: b) is ledger
