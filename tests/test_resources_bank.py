"""Unit tests: bank resource (the paper's Section 3.2 examples)."""

import pytest

from repro.errors import CompensationFailed, LockConflict, UsageError
from repro.resources.bank import Bank, OverdraftPolicy
from repro.tx.manager import Transaction


def tx():
    return Transaction("test", "n1")


@pytest.fixture
def bank():
    b = Bank("bank")
    b.seed_account("alice", 100)
    b.seed_account("rich", 1_000, overdraft=OverdraftPolicy.ALLOWED)
    return b


def test_deposit_withdraw_balance(bank):
    t = tx()
    assert bank.deposit(t, "alice", 50) == 150
    assert bank.withdraw(t, "alice", 30) == 120
    assert bank.balance(t, "alice") == 120


def test_abort_restores_balances(bank):
    t = tx()
    bank.deposit(t, "alice", 50)
    t.abort()
    assert bank.peek("alice")["balance"] == 100


def test_overdraft_forbidden_blocks_withdrawal(bank):
    with pytest.raises(UsageError):
        bank.withdraw(tx(), "alice", 200)


def test_overdraft_allowed_goes_negative(bank):
    t = tx()
    assert bank.withdraw(t, "rich", 1_500) == -500


def test_compensating_withdrawal_failure_is_compensation_failed(bank):
    """The 20 USD example: compensation fails when the money is gone."""
    t = tx()
    bank.withdraw(t, "alice", 100)  # another tx drained the account
    t.commit()
    with pytest.raises(CompensationFailed):
        bank.withdraw(tx(), "alice", 20, compensating=True)


def test_transfer_moves_atomically(bank):
    t = tx()
    bank.transfer(t, "rich", "alice", 40)
    t.commit()
    assert bank.peek("rich")["balance"] == 960
    assert bank.peek("alice")["balance"] == 140


def test_transfer_compensation_is_reverse_transfer(bank):
    t = tx()
    bank.transfer(t, "rich", "alice", 40)
    t.commit()
    t2 = tx()
    bank.transfer(t2, "alice", "rich", 40, compensating=True)
    t2.commit()
    assert bank.peek("rich")["balance"] == 1_000
    assert bank.peek("alice")["balance"] == 100


def test_conditional_withdraw_reads_balance(bank):
    t = tx()
    assert bank.conditional_withdraw(t, "alice", 10, threshold=50)
    assert not bank.conditional_withdraw(t, "alice", 10, threshold=500)
    assert bank.balance(t, "alice") == 90


def test_concurrent_transactions_conflict_on_same_account(bank):
    t1, t2 = tx(), tx()
    bank.deposit(t1, "alice", 1)
    with pytest.raises(LockConflict):
        bank.deposit(t2, "alice", 1)
    t1.commit()
    bank.deposit(t2, "alice", 1)  # lock free after commit


def test_concurrent_transactions_on_different_accounts_ok(bank):
    t1, t2 = tx(), tx()
    bank.deposit(t1, "alice", 1)
    bank.deposit(t2, "rich", 1)
    t1.commit()
    t2.commit()


def test_open_account_and_duplicate_rejected(bank):
    t = tx()
    bank.open_account(t, "new", 5)
    assert bank.balance(t, "new") == 5
    with pytest.raises(UsageError):
        bank.open_account(t, "new", 5)


def test_unknown_account_rejected(bank):
    with pytest.raises(UsageError):
        bank.balance(tx(), "ghost")


def test_negative_amounts_rejected(bank):
    with pytest.raises(UsageError):
        bank.deposit(tx(), "alice", -1)
    with pytest.raises(UsageError):
        bank.withdraw(tx(), "alice", -1)


def test_total_balance_audits_all_accounts(bank):
    assert bank.total_balance() == 1_100
