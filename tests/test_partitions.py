"""Integration tests: network partitions (temporary, per the paper)."""


from repro import AgentStatus, RollbackMode
from repro.sim.failures import PartitionPlan

from tests.helpers import LinearAgent, bank_of, build_line_world


def test_partition_blocks_step_commit_until_heal():
    world = build_line_world(2)
    world.failures.apply_partitions(
        [PartitionPlan("n0", "n1", at=0.0, duration=1.0)])
    agent = LinearAgent("parted", ["n0", "n1"])
    record = world.launch(agent, at="n0", method="step")
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert world.sim.now > 1.0
    assert world.metrics.count("2pc.aborts") >= 1
    assert bank_of(world, "n1").peek("a")["balance"] == 990


def test_partition_blocks_rce_shipping_until_heal():
    world = build_line_world(3)
    agent = LinearAgent("rce-part", ["n0", "n1", "n2"],
                        savepoints={0: "sp"}, rollback_to="sp")
    # Partition the link the RCE shipment for n1 will need, during the
    # rollback window (the agent sits on n0 in optimized mode).
    world.failures.apply_partitions(
        [PartitionPlan("n0", "n1", at=0.12, duration=2.0)])
    record = world.launch(agent, at="n0", method="step",
                          mode=RollbackMode.OPTIMIZED)
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.rollbacks_completed == 1
    assert world.sim.now > 2.0
    for i in range(3):
        assert bank_of(world, f"n{i}").peek("a")["balance"] == 990


def test_partition_unrelated_link_no_effect():
    world = build_line_world(3)
    world.failures.apply_partitions(
        [PartitionPlan("n0", "n2", at=0.0, duration=10.0)])
    agent = LinearAgent("bypass", ["n0", "n1"])  # never uses n0-n2
    record = world.launch(agent, at="n0", method="step")
    world.run(max_events=500_000)
    assert record.status is AgentStatus.FINISHED
    assert record.finished_at < 1.0  # unaffected by the unrelated cut


def test_asymmetric_routing_not_modelled_partition_is_symmetric():
    world = build_line_world(2)
    world.failures.force_partition("n0", "n1")
    assert not world.network.reachable("n0", "n1")
    assert not world.network.reachable("n1", "n0")
    world.failures.force_heal("n0", "n1")
    assert world.network.reachable("n0", "n1")
