"""EVAL-SHARDED-SCALE — batched transfers and sharded multi-world runs.

The ROADMAP's production-scale direction: (a) coalescing co-located
network traffic for the same link into framed batch transfers amortizes
the per-message latency that dominates the paper's migration cost
model, and (b) partitioning the node set across several simulator
kernels scales concurrent-agent workloads past what one event queue
holds — while the deterministic cross-shard bridge keeps per-agent
outcomes identical to an unsharded run at the same seed.

Emits the paper-style tables plus a machine-readable
``benchmarks/results/BENCH_sharded_scale.json`` artifact (consumed by
the CI bench-smoke step).  ``BENCH_QUICK=1`` shrinks the sweep for
smoke runs.
"""

import json
import os

from repro import AgentStatus, NetworkParams, RollbackMode, ShardedWorld
from repro.agent.packages import Protocol
from repro.bench import format_table
from repro.bench.harness import build_tour_world
from repro.bench.workloads import TourAgent, TourPlan, make_tour_plan
from repro.resources.bank import Bank, OverdraftPolicy
from repro.resources.directory import InfoDirectory
from repro.bench.workloads import BANK, DIRECTORY

from bench_paths import results_dir

QUICK = bool(os.environ.get("BENCH_QUICK"))

N_NODES = 8
N_STEPS = 4 if QUICK else 6
#: The single-kernel reference agent count (bench_concurrent_agents'
#: largest swarm); the sharded workload must complete >= 2x this.
BASE_AGENTS = 4 if QUICK else 8
SHARDED_AGENTS = 2 * BASE_AGENTS
N_SHARDS = 4

RESULTS_DIR = results_dir()
JSON_PATH = RESULTS_DIR / "BENCH_sharded_scale.json"


def record_json(section, payload):
    """Merge one section into the shared JSON artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    # Top-level mode marker so the bench-regression gate can refuse to
    # diff a quick-mode emission against a full-mode baseline.
    data["quick_mode"] = QUICK
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# Part A — batched transfers: fewer network events for equal payload bytes
# ---------------------------------------------------------------------------


def ace_tour_plan(nodes, n_steps):
    """A lock-free tour (pure WRO work) so co-located agents commit at
    the same instants — the co-location batching exploits."""
    base = make_tour_plan(nodes, n_steps, rollback_times=0)
    for spec in base.steps:
        spec.kind = "ace"
    return TourPlan(steps=base.steps, decision_node=base.decision_node,
                    rollback_to=None)


def run_ft_swarm(batch_window, n_agents, seed=11):
    """FT-protocol agents whose shadow copies share links; batching is
    the only knob varied, so byte totals must match across runs."""
    world = build_tour_world(
        4, seed=seed, net_params=NetworkParams(batch_window=batch_window))
    for i in range(4):
        world.ft.set_alternates(f"n{i}", f"n{(i + 1) % 4}")
    nodes = [f"n{i}" for i in range(4)]
    for a in range(n_agents):
        agent = TourAgent(f"batch-{a}", ace_tour_plan(nodes, N_STEPS))
        world.launch(agent, at=nodes[0], method="run",
                     protocol=Protocol.FAULT_TOLERANT)
    world.run(max_events=5_000_000)
    assert all(r.status is AgentStatus.FINISHED
               for r in world.agents.values())
    return world


def test_eval_batching_reduces_network_events(benchmark, record_table):
    def sweep():
        rows = []
        windows = (0.0, 0.02) if QUICK else (0.0, 0.01, 0.02, 0.05)
        for window in windows:
            world = run_ft_swarm(window, BASE_AGENTS)
            m = world.metrics
            rows.append([window,
                         m.count("net.messages"),
                         m.count("net.messages.shadow-copy"),
                         m.total_bytes("net.shadow-copy"),
                         m.count("net.batches"),
                         m.total_bytes("net.batch.framing")])
        baseline = rows[0]
        for row in rows[1:]:
            # Same logical shadow traffic, same payload bytes...
            assert row[2] == baseline[2]
            assert row[3] == baseline[3]
            # ...but strictly fewer physical network events.
            assert row[1] < baseline[1]
            assert row[4] > 0
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["batch window (s)", "net.messages", "shadow msgs", "shadow bytes",
         "batches", "framing bytes"],
        rows,
        title="EVAL-SHARDED-SCALE (A): batched transfers — physical "
              "network events vs coalescing window "
              f"({BASE_AGENTS} FT agents, equal payload bytes)")
    record_table("sharded_scale_batching", table)
    record_json("batching", {
        "agents": BASE_AGENTS,
        "rows": [{"window": r[0], "net_messages": r[1],
                  "shadow_messages": r[2], "shadow_bytes": r[3],
                  "batches": r[4], "framing_bytes": r[5]} for r in rows],
        "reduction": 1 - rows[-1][1] / rows[0][1],
    })


# ---------------------------------------------------------------------------
# Part B — sharded multi-world: 2x the single-kernel swarm, same outcomes
# ---------------------------------------------------------------------------


def build_sharded_ring(n_shards, seed):
    world = ShardedWorld(n_shards=n_shards, seed=seed)
    for i in range(N_NODES):
        node = world.add_node(f"n{i}")  # round-robin: every hop crosses
        bank = Bank(BANK)
        bank.seed_account("merchant", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("escrow", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
        directory = InfoDirectory(DIRECTORY)
        directory.publish("offers", [{"item": "widget", "price": 10 + i}])
        node.add_resource(directory)
    return world


def run_sharded_swarm(n_shards, n_agents, seed=40):
    world = build_sharded_ring(n_shards, seed)
    nodes = [f"n{i}" for i in range(N_NODES)]
    for a in range(n_agents):
        rotated = nodes[a % N_NODES:] + nodes[:a % N_NODES]
        plan = make_tour_plan(rotated, N_STEPS, mixed_fraction=0.4,
                              rollback_depth=N_STEPS - 1)
        agent = TourAgent(f"shard-{seed}-{a}", plan)
        world.launch(agent, at=plan.steps[0].node, method="run",
                     mode=RollbackMode.BASIC)
    world.run()
    return world


def test_eval_sharded_scale(benchmark, record_table):
    def sweep():
        results = {}
        for n_shards in (1, N_SHARDS):
            world = run_sharded_swarm(n_shards, SHARDED_AGENTS)
            outcomes = world.outcomes()
            assert all(o["status"] == "finished"
                       for o in outcomes.values())
            assert all(o["rollbacks_completed"] == 1
                       for o in outcomes.values())
            results[n_shards] = world
        # The acceptance bar: a 4-shard run completes a workload at
        # least 2x the single-kernel reference swarm, with per-agent
        # outcomes identical to the equivalent unsharded run.
        assert SHARDED_AGENTS >= 2 * BASE_AGENTS
        assert results[N_SHARDS].outcomes() == results[1].outcomes()
        rows = []
        for n_shards, world in results.items():
            finish = max(r.finished_at for r in world.agents.values())
            per_kernel = max(w.sim.events_processed for w in world.shards)
            rows.append([n_shards, SHARDED_AGENTS, round(finish, 3),
                         world.events_processed(), per_kernel,
                         world.bridge.transfers_total, world.epochs_run])
        # Sharding spreads the event load: the busiest kernel processes
        # well under the whole-run event count.
        assert rows[1][4] < rows[0][4]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["shards", "agents", "makespan (s)", "events total",
         "events busiest kernel", "bridge transfers", "epochs"],
        rows,
        title="EVAL-SHARDED-SCALE (B): "
              f"{SHARDED_AGENTS} agents (2x the single-kernel swarm) on "
              f"{N_NODES} nodes — identical outcomes at every shard count")
    record_table("sharded_scale_worlds", table)
    record_json("sharding", {
        "agents": SHARDED_AGENTS,
        "base_agents": BASE_AGENTS,
        "rows": [{"shards": r[0], "agents": r[1], "makespan": r[2],
                  "events_total": r[3], "events_busiest_kernel": r[4],
                  "bridge_transfers": r[5], "epochs": r[6]} for r in rows],
        "outcomes_identical": True,
    })
