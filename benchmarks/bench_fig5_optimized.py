"""FIG5 / EVAL-TRANSFERS — the optimized rollback algorithm (§4.4.1).

The paper's claim: with typed operation entries the agent has to be
transferred during rollback *only* for steps containing a mixed
compensation entry; resource compensation entries are shipped to the
resource node instead, and execute concurrently with the local agent
compensation entries.

The bench sweeps the fraction of steps with a mixed entry and compares
basic vs optimized on: agent transfers, bytes on the wire, RCE-list
messages, and rollback latency.  A second table shows the byte savings
grow with agent state size (the heavier the agent, the more shipping
entries beats shipping the agent).
"""


from repro import AgentStatus, RollbackMode
from repro.bench import format_table, make_tour_plan, run_tour

N_NODES = 6
N_STEPS = 9


def run_mode(mode, mixed_fraction, seed=5, ballast=0):
    nodes = [f"n{i}" for i in range(N_NODES)]
    plan = make_tour_plan(nodes, N_STEPS, mixed_fraction=mixed_fraction,
                          ace_fraction=0.2 if mixed_fraction <= 0.8 else 0.0,
                          rollback_depth=N_STEPS - 1,
                          sro_ballast=ballast)
    return run_tour(plan, N_NODES, mode=mode, seed=seed)


def test_fig5_transfers_vs_mixed_fraction(benchmark, record_table):
    def sweep():
        rows = []
        for tenth in (0, 2, 5, 8, 10):
            fraction = tenth / 10.0
            basic = run_mode(RollbackMode.BASIC, fraction)
            optimized = run_mode(RollbackMode.OPTIMIZED, fraction)
            assert basic.status is AgentStatus.FINISHED
            assert optimized.status is AgentStatus.FINISHED
            assert basic.result == optimized.result
            rows.append([
                fraction,
                basic.compensation_transfers,
                optimized.compensation_transfers,
                optimized.rce_ship_messages,
                basic.compensation_transfer_bytes,
                (optimized.compensation_transfer_bytes
                 + optimized.rce_ship_bytes),
                round(basic.rollback_latency, 4),
                round(optimized.rollback_latency, 4),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["mixed frac", "transfers basic", "transfers opt",
         "RCE ships", "bytes basic", "bytes opt",
         "latency basic", "latency opt"],
        rows,
        title="FIG5/EVAL-TRANSFERS: agent transfers during rollback, "
              "basic vs optimized")
    record_table("fig5_optimized", table)
    # Shape checks: basic is flat at depth; optimized grows from 0 to
    # basic as the mixed fraction goes 0 -> 1.
    basic_transfers = {row[1] for row in rows}
    assert len(basic_transfers) == 1
    opt_transfers = [row[2] for row in rows]
    assert opt_transfers[0] == 0
    assert opt_transfers == sorted(opt_transfers)
    assert opt_transfers[-1] == rows[-1][1]


def test_fig5_bytes_vs_agent_size(benchmark, record_table):
    def sweep():
        rows = []
        for ballast in (0, 10_000, 50_000, 200_000):
            basic = run_mode(RollbackMode.BASIC, 0.0, ballast=ballast)
            optimized = run_mode(RollbackMode.OPTIMIZED, 0.0,
                                 ballast=ballast)
            bytes_basic = basic.compensation_transfer_bytes
            bytes_opt = (optimized.compensation_transfer_bytes
                         + optimized.rce_ship_bytes)
            rows.append([ballast, bytes_basic, bytes_opt,
                         round(bytes_basic / max(1, bytes_opt), 1),
                         round(basic.rollback_latency
                               / max(1e-9, optimized.rollback_latency), 2)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["agent ballast (B)", "rollback bytes basic", "rollback bytes opt",
         "byte ratio", "latency ratio"],
        rows,
        title="FIG5/EVAL-TRANSFERS: byte and latency savings grow with "
              "agent state size (no mixed entries)")
    record_table("fig5_bytes_vs_size", table)
    ratios = [row[3] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 20


def test_fig5_optimized_rollback_cost(benchmark):
    result = benchmark.pedantic(
        lambda: run_mode(RollbackMode.OPTIMIZED, 0.2), rounds=5,
        iterations=1)
    assert result.status is AgentStatus.FINISHED
    benchmark.extra_info["rollback_latency_s"] = result.rollback_latency
    benchmark.extra_info["rce_ships"] = result.rce_ship_messages
