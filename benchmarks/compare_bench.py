#!/usr/bin/env python3
"""Bench-regression gate: diff fresh bench JSONs against baselines.

CI runs the benches with ``BENCH_RESULTS_DIR`` pointing at a scratch
directory, then invokes this script to compare the freshly emitted
``BENCH_*.json`` artifacts against the committed baselines in
``benchmarks/results/`` with per-metric tolerances:

* ``higher`` — fresh must be >= baseline * tolerance (throughput-like
  metrics; tolerance < 1 absorbs machine noise);
* ``lower``  — fresh must be <= baseline * tolerance (latency-like);
* ``within`` — |fresh - baseline| <= tolerance * |baseline| (sizes);
* ``equal``  — exact match (deterministic counts, booleans).

Exit status: 0 when every metric passes, 1 on any regression, 2 on
usage/environment errors (missing fresh artifact, quick/full-mode
mismatch), 3 when a gated file has **no committed baseline** — a bench
was added to ``SPECS`` without committing its
``benchmarks/results/BENCH_*.json`` (run the bench once and commit the
emitted file).  A markdown report is written to ``--report`` (and
echoed) so CI can upload it as an artifact.

Refreshing baselines after an intentional perf change::

    PYTHONPATH=src python -m pytest -q --benchmark-disable \
        benchmarks/bench_serialization.py \
        benchmarks/bench_sharded_scale.py \
        benchmarks/bench_cross_shard_ft.py \
        benchmarks/bench_multiproc_shards.py \
        benchmarks/bench_journal.py \
        benchmarks/bench_fuzz_differential.py \
        benchmarks/bench_service.py

(which rewrites ``benchmarks/results/BENCH_*.json`` in place) — then
commit the changed JSONs with a note in the PR.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Any, Optional

#: Metrics the gate enforces.  Deterministic counters get ``equal``;
#: wall-clock-derived ratios get generous tolerances (CI machines are
#: noisy); invariants (completion rate, exactly-once, quorum agreement)
#: must not degrade at all.
@dataclass(frozen=True)
class Spec:
    file: str
    path: str
    mode: str  # "higher" | "lower" | "within" | "equal"
    tolerance: float = 1.0


SPECS = [
    # Incremental serialization: the headline speedup may wobble with
    # the machine, but losing ~2/3 of it means a real regression; the
    # per-step flatness ratio is what guards the amortized-O(1) claim.
    Spec("BENCH_serialization.json", "speedup", "higher", 0.35),
    Spec(
        "BENCH_serialization.json",
        "incremental_flatness_last_over_first_chunk",
        "lower",
        2.0,
    ),
    # Batching / sharding: event counts are deterministic at a fixed
    # seed; byte totals depend on pickle details, so they get a band.
    Spec("BENCH_sharded_scale.json", "batching.reduction", "higher", 0.999),
    Spec("BENCH_sharded_scale.json", "batching.rows.0.net_messages", "equal"),
    Spec("BENCH_sharded_scale.json", "batching.rows.0.shadow_bytes", "within", 0.05),
    Spec("BENCH_sharded_scale.json", "sharding.outcomes_identical", "equal"),
    Spec(
        "BENCH_sharded_scale.json",
        "sharding.rows.1.events_busiest_kernel",
        "lower",
        1.10,
    ),
    # Cross-shard fault tolerance: pure invariants — any drop is a bug.
    Spec(
        "BENCH_cross_shard_ft.json",
        "scenarios.kill-1.completion_rate",
        "higher",
        1.0,
    ),
    Spec("BENCH_cross_shard_ft.json", "scenarios.kill-1.exactly_once", "equal"),
    Spec("BENCH_cross_shard_ft.json", "scenarios.kill-1.ledger_agrees", "equal"),
    Spec("BENCH_cross_shard_ft.json", "scenarios.kill-2.exactly_once", "equal"),
    Spec(
        "BENCH_cross_shard_ft.json",
        "scenarios.kill-1.max_recovery_latency",
        "lower",
        1.5,
    ),
    # Multiprocess shard workers: the equivalence half is invariant
    # (identical outcomes/counters and deterministic event/epoch totals
    # at a fixed seed — any drift is a correctness bug); the wall-clock
    # speedup is hardware-dependent (the baseline records cpu_count, the
    # bench itself asserts >= 1.5x whenever >= `workers` cores exist),
    # so the gate only refuses a large relative slide.
    Spec("BENCH_multiproc_shards.json", "speedup.outcomes_identical", "equal"),
    Spec("BENCH_multiproc_shards.json", "speedup.events_total", "equal"),
    Spec("BENCH_multiproc_shards.json", "speedup.epochs", "equal"),
    Spec("BENCH_multiproc_shards.json", "speedup.speedup", "higher", 0.6),
    # Zero-copy shm wire format: the invariant half is exact — the shm
    # and pipe runs must compute identical outcomes, the shm barrier
    # must copy zero bulk bytes (no spills at the default ring size) —
    # while the shm-over-pipe wall-clock ratio is hardware noise on
    # shared runners and only guards against a collapse.
    Spec("BENCH_multiproc_shards.json", "ipc.outcomes_identical", "equal"),
    Spec("BENCH_multiproc_shards.json", "ipc.zero_copy_unchanged", "equal"),
    Spec("BENCH_multiproc_shards.json", "ipc.shm_ring_spills", "equal"),
    Spec("BENCH_multiproc_shards.json", "ipc.shm_over_pipe", "higher", 0.5),
    # Optimistic entangled-epoch speculation: the invariant half is
    # exact — speculation must not change a bit of the outcome surface,
    # and at a fixed seed the speculation/rollback counts are
    # deterministic (a drift means the conflict detector or the epoch
    # schedule changed); the serial-over-optimistic wall-clock ratio
    # needs real cores and only guards against a collapse.
    Spec("BENCH_multiproc_shards.json", "entangled.outcomes_identical",
         "equal"),
    Spec("BENCH_multiproc_shards.json", "entangled.epochs_speculated",
         "equal"),
    Spec("BENCH_multiproc_shards.json", "entangled.epochs_rolled_back",
         "equal"),
    Spec("BENCH_multiproc_shards.json", "entangled.conflict_rate", "equal"),
    Spec("BENCH_multiproc_shards.json", "entangled.optimistic_over_serial",
         "higher", 0.5),
    # Write-ahead world journal: journaling must not change the run
    # (identical outcomes, deterministic event/epoch/commit counts at a
    # fixed seed) and crash-resume must land on the identical outcome
    # from the journaled frontier; the wall-clock ratios are
    # group-commit overhead and replay cost, banded generously for CI
    # machine noise.
    Spec("BENCH_journal.json", "overhead.outcomes_identical", "equal"),
    Spec("BENCH_journal.json", "overhead.events_total", "equal"),
    Spec("BENCH_journal.json", "overhead.epochs", "equal"),
    Spec("BENCH_journal.json", "overhead.commits", "equal"),
    Spec("BENCH_journal.json", "overhead.file_overhead_ratio", "lower", 2.0),
    Spec("BENCH_journal.json", "resume.outcome_identical", "equal"),
    Spec("BENCH_journal.json", "resume.torn_tail", "equal"),
    Spec("BENCH_journal.json", "resume.frontier_barrier", "equal"),
    Spec("BENCH_journal.json", "resume.resume_over_full_ratio", "lower", 3.0),
    # Differential fuzzing: zero divergences is the whole point — any
    # failing seed is a cross-backend or model-oracle mismatch.  The
    # predicted rollback total is deterministic at a fixed
    # GENERATOR_VERSION (a drift means the generator changed without a
    # version bump); seeds/minute guards the nightly lane's budget.
    Spec("BENCH_fuzz_differential.json", "sweep.divergences", "equal"),
    Spec("BENCH_fuzz_differential.json", "sweep.predicted_rollbacks",
         "equal"),
    Spec("BENCH_fuzz_differential.json", "sweep.seeds_per_minute",
         "higher", 0.3),
    Spec("BENCH_fuzz_differential.json", "tri.divergences", "equal"),
    # World-as-a-service gateway: the parity flags are the whole
    # contract — a launch streamed over HTTP must be bit-identical to
    # the scripted run on every backend — and every load launch must
    # reach a terminal outcome.  Requests/second and the p99
    # launch-to-outcome latency are wall-clock on a threaded client,
    # so they only guard against a collapse.
    Spec("BENCH_service.json", "parity.world_identical", "equal"),
    Spec("BENCH_service.json", "parity.sharded_identical", "equal"),
    Spec("BENCH_service.json", "parity.proc_identical", "equal"),
    Spec("BENCH_service.json", "load.completed", "equal"),
    Spec("BENCH_service.json", "load.post_req_per_s", "higher", 0.25),
    Spec("BENCH_service.json", "load.p99_ms", "lower", 4.0),
]


def lookup(data: Any, path: str) -> Any:
    """Resolve a dotted path; integer components index into lists."""
    node = data
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict):
            if part not in node:
                raise KeyError(path)
            node = node[part]
        else:
            raise KeyError(path)
    return node


def check(spec: Spec, baseline: Any, fresh: Any) -> tuple[bool, str]:
    """One metric verdict: (passed, human-readable threshold)."""
    if spec.mode == "equal":
        return fresh == baseline, f"== {baseline!r}"
    if baseline is None or fresh is None:
        # A measurement that stopped being produced is a regression.
        return fresh == baseline, f"== {baseline!r}"
    if spec.mode == "higher":
        bound = baseline * spec.tolerance
        return fresh >= bound, f">= {bound:.6g}"
    if spec.mode == "lower":
        bound = baseline * spec.tolerance
        return fresh <= bound, f"<= {bound:.6g}"
    if spec.mode == "within":
        band = spec.tolerance * abs(baseline)
        return abs(fresh - baseline) <= band, f"{baseline:.6g} +/- {band:.6g}"
    raise ValueError(f"unknown mode {spec.mode!r}")


def load(directory: pathlib.Path, name: str) -> Optional[dict]:
    path = directory / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def compare(
    baseline_dir: pathlib.Path, fresh_dir: pathlib.Path
) -> tuple[list[str], int, int, int]:
    """Run every spec; returns (report lines, failures, usage errors,
    missing baseline files)."""
    lines = [
        "# Bench-regression report",
        "",
        f"baseline: `{baseline_dir}`  ",
        f"fresh: `{fresh_dir}`",
        "",
        "| metric | baseline | fresh | threshold | status |",
        "|---|---|---|---|---|",
    ]
    failures = 0
    errors = 0
    missing_baselines = 0
    for name in sorted({spec.file for spec in SPECS}):
        baseline_data = load(baseline_dir, name)
        fresh_data = load(fresh_dir, name)
        if fresh_data is None:
            lines.append(f"| {name} | - | **missing** | emitted | FAIL |")
            errors += 1
            continue
        if baseline_data is None:
            # A gated file with no committed baseline means the gate is
            # not actually gating it — fail loudly instead of skipping.
            lines.append(
                f"| {name} | **no baseline** | - | committed | NO-BASELINE |"
            )
            missing_baselines += 1
            continue
        if baseline_data.get("quick_mode") != fresh_data.get("quick_mode"):
            lines.append(
                f"| {name} | quick_mode="
                f"{baseline_data.get('quick_mode')} | quick_mode="
                f"{fresh_data.get('quick_mode')} | same mode | FAIL |"
            )
            errors += 1
            continue
        for spec in (s for s in SPECS if s.file == name):
            try:
                base_value = lookup(baseline_data, spec.path)
            except (KeyError, IndexError, ValueError):
                lines.append(
                    f"| {name}:{spec.path} | **no baseline** | - | - | SKIP |"
                )
                continue
            try:
                fresh_value = lookup(fresh_data, spec.path)
            except (KeyError, IndexError, ValueError):
                lines.append(
                    f"| {name}:{spec.path} | {fmt(base_value)} |"
                    f" **missing** | present | FAIL |"
                )
                failures += 1
                continue
            passed, threshold = check(spec, base_value, fresh_value)
            status = "ok" if passed else "FAIL"
            if not passed:
                failures += 1
            lines.append(
                f"| {name}:{spec.path} | {fmt(base_value)} |"
                f" {fmt(fresh_value)} | {threshold} | {status} |"
            )
    lines.append("")
    clean = not failures and not errors and not missing_baselines
    verdict = "PASS" if clean else "FAIL"
    lines.append(
        f"**{verdict}** — {failures} regression(s), {errors} gate"
        f" error(s), {missing_baselines} missing baseline file(s)."
    )
    if missing_baselines:
        lines.append(
            "\nA gated BENCH_*.json has no committed baseline: run the"
            " bench once and commit the emitted file under"
            " benchmarks/results/."
        )
    return lines, failures, errors, missing_baselines


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff fresh bench JSONs against committed baselines."
    )
    parser.add_argument(
        "--fresh",
        required=True,
        type=pathlib.Path,
        help="directory holding the freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent / "results",
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--report",
        type=pathlib.Path,
        default=None,
        help="write the markdown report here as well",
    )
    args = parser.parse_args(argv)
    lines, failures, errors, missing = compare(args.baseline, args.fresh)
    report = "\n".join(lines) + "\n"
    print(report)
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(report)
    if errors:
        return 2
    if missing:
        return 3
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
