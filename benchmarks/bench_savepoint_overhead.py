"""EVAL-SAVEPOINTS — forward-execution cost of savepoint granularity.

Section 4.4.2: "savepoint entries are written when an agent savepoint
is established.  This can be influenced by the application developer by
giving up the possibility to roll back an arbitrary number of steps".

The bench sweeps savepoint frequency on a fixed tour and reports the
forward-execution price (migration bytes, completion time) against the
rollback granularity bought (worst-case steps that must be compensated
to reach the nearest savepoint).
"""


from repro import AgentStatus
from repro.bench import format_table, make_tour_plan, run_tour
from repro.bench.harness import build_tour_world
from repro.bench.workloads import TourPlan

N_NODES = 4
N_STEPS = 12
BALLAST = 4_000


def run_granularity(savepoint_every, seed=50):
    nodes = [f"n{i}" for i in range(N_NODES)]
    base = make_tour_plan(nodes, N_STEPS, ace_fraction=1.0,
                          savepoint_every=savepoint_every,
                          sro_ballast=BALLAST)
    plan = TourPlan(steps=base.steps, decision_node=base.decision_node,
                    rollback_to=None, sro_ballast=BALLAST)
    world = build_tour_world(N_NODES, seed=seed)
    result = run_tour(plan, N_NODES, seed=seed, world=world)
    assert result.status is AgentStatus.FINISHED
    return world, result


def test_eval_savepoint_granularity(benchmark, record_table):
    def sweep():
        rows = []
        for every in (1, 2, 4, 12):
            world, result = run_granularity(every)
            savepoints = world.metrics.count("savepoints.written")
            bytes_moved = world.metrics.total_bytes("agent.transfers.step")
            # Worst-case rollback granularity: steps between savepoints.
            granularity = every
            rows.append([f"every {every}", savepoints, granularity,
                         bytes_moved, round(result.finished_at, 3)])
        costs = [row[3] for row in rows]
        assert costs == sorted(costs, reverse=True)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["savepoint policy", "savepoints", "worst rollback granularity",
         "migration bytes", "completion (s)"],
        rows,
        title="EVAL-SAVEPOINTS: forward cost vs rollback granularity "
              f"({N_STEPS} steps, {BALLAST}B SRO)")
    record_table("savepoint_overhead", table)
