"""EVAL-MIGRATION — log overhead on every migration (§4.4.2 motivation).

"Attaching the rollback log to the agent introduces some overhead to
the migration because the log has to be transferred additionally to the
agent state."  The bench separates the migration payload into agent
state vs rollback log share, across compensation-logging intensity and
network speeds.
"""


from repro import AgentStatus
from repro.agent.packages import Protocol
from repro.bench import format_table, make_tour_plan, run_tour
from repro.bench.harness import build_tour_world
from repro.bench.workloads import TourAgent, TourPlan
from repro.sim.timing import NetworkParams
from repro.storage.serialization import size_of

N_NODES = 4


def measure_payload_split(n_steps, seed=42):
    """Capture the (agent, log) sizes of the last forward migration."""
    nodes = [f"n{i}" for i in range(N_NODES)]
    base = make_tour_plan(nodes, n_steps, mixed_fraction=0.3,
                          ace_fraction=0.3, savepoint_every=2,
                          sro_ballast=2_000)
    plan = TourPlan(steps=base.steps, decision_node=base.decision_node,
                    rollback_to=None, sro_ballast=2_000)
    world = build_tour_world(N_NODES, seed=seed)
    agent = TourAgent(f"split-{n_steps}-{seed}", plan)
    record = world.launch(agent, at=plan.steps[0].node, method="run")
    sizes = {}
    protocol = world.step_protocol
    original = protocol.ship

    def spy(node, tx, package, dest_name):
        agent_copy, log_copy = package.unpack()
        sizes["agent"] = size_of(agent_copy)
        sizes["log"] = log_copy.size_bytes()
        sizes["package"] = package.size_bytes
        original(node, tx, package, dest_name)

    protocol.ship = spy
    world.run(max_events=1_000_000)
    protocol.ship = original
    assert record.status is AgentStatus.FINISHED
    return sizes


def test_eval_migration_log_share(benchmark, record_table):
    def sweep():
        rows = []
        for n_steps in (2, 6, 12, 20):
            sizes = measure_payload_split(n_steps)
            share = sizes["log"] / sizes["package"]
            rows.append([n_steps, sizes["agent"], sizes["log"],
                         sizes["package"], round(100 * share, 1)])
        shares = [row[4] for row in rows]
        assert shares == sorted(shares)  # log share grows with history
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["steps so far", "agent bytes", "log bytes", "package bytes",
         "log share (%)"],
        rows,
        title="EVAL-MIGRATION: rollback log share of the migration "
              "payload (savepoint every 2 steps)")
    record_table("migration_log_share", table)


def test_eval_migration_network_sensitivity(benchmark, record_table):
    """Completion time vs network speed: the log overhead costs real
    time on slow links — the economic case for Section 4.4.2."""

    def sweep():
        rows = []
        nodes = [f"n{i}" for i in range(N_NODES)]
        plan = make_tour_plan(nodes, 10, ace_fraction=1.0,
                              savepoint_every=1, rollback_depth=1,
                              rollback_times=0, sro_ballast=4_000)
        for label, bandwidth in (("modem 56k", 7_000.0),
                                 ("ISDN 128k", 16_000.0),
                                 ("LAN 10M", 1_250_000.0),
                                 ("LAN 100M", 12_500_000.0)):
            world = build_tour_world(
                N_NODES, seed=43,
                net_params=NetworkParams(
                    bandwidth_bytes_per_s=bandwidth))
            result = run_tour(plan, N_NODES, seed=43, world=world)
            assert result.status is AgentStatus.FINISHED
            rows.append([label, int(bandwidth),
                         round(result.sim_time, 3)])
        times = [row[2] for row in rows]
        assert times == sorted(times, reverse=True)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["link", "bytes/s", "completion time (s)"],
        rows,
        title="EVAL-MIGRATION: completion time vs link speed "
              "(10 steps, savepoint per step)")
    record_table("migration_network", table)


def test_eval_migration_batched_shadows(benchmark, record_table):
    """Per-migration network events with and without transfer batching.

    Every FT migration additionally ships the (agent, log) package as
    shadow copies; with several co-located agents those copies share
    links, and the batching transport collapses them into framed
    transfers — the amortization lever for the log-transfer overhead
    this bench file quantifies."""

    def run(batch_window, n_agents=6):
        nodes = [f"n{i}" for i in range(N_NODES)]
        base = make_tour_plan(nodes, 6, rollback_times=0)
        for spec in base.steps:
            spec.kind = "ace"  # lock-free: co-located commits coincide
        plan = TourPlan(steps=base.steps, decision_node=base.decision_node,
                        rollback_to=None)
        world = build_tour_world(
            N_NODES, seed=47,
            net_params=NetworkParams(batch_window=batch_window))
        for i in range(N_NODES):
            world.ft.set_alternates(f"n{i}", f"n{(i + 1) % N_NODES}")
        for a in range(n_agents):
            agent = TourAgent(f"mig-batch-{a}", plan)
            world.launch(agent, at=nodes[0], method="run",
                         protocol=Protocol.FAULT_TOLERANT)
        world.run(max_events=5_000_000)
        assert all(r.status is AgentStatus.FINISHED
                   for r in world.agents.values())
        return world.metrics

    def sweep():
        rows = []
        for window in (0.0, 0.02):
            m = run(window)
            migrations = m.count("agent.transfers.step")
            rows.append([window, migrations,
                         m.count("net.messages.shadow-copy"),
                         m.total_bytes("net.shadow-copy"),
                         m.count("net.messages"),
                         round(m.count("net.messages") / migrations, 2)])
        plain, batched = rows
        assert batched[3] == plain[3]  # equal payload bytes...
        assert batched[4] < plain[4]   # ...fewer network events
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["batch window (s)", "migrations", "shadow msgs", "shadow bytes",
         "net.messages", "net events / migration"],
        rows,
        title="EVAL-MIGRATION: batched shadow transfers — network events "
              "per migration (6 co-located FT agents)")
    record_table("migration_batched_shadows", table)
