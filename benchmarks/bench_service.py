"""EVAL-SERVICE — gateway throughput, launch latency, and parity.

The world-as-a-service tentpole's performance claims, measured against
a live in-process gateway (stdlib asyncio HTTP + SSE):

* **parity** — one seeded tour launched over HTTP into each backend
  (``world``, ``sharded``, ``proc``) must produce the identical
  per-agent outcome and trace digest as the same ``(WorldSpec,
  LaunchSpec)`` pair run scripted.  Gated ``equal`` — the gateway is
  not allowed to perturb a single bit of the run.
* **load** — a threaded load generator sustains launches against one
  hosted world while an SSE subscription timestamps each ``agent``
  outcome event; reports sustained requests/second and the p50/p99
  launch-to-outcome latency.  Wall-clock metrics get generous bands
  (CI machines are noisy); the completion count is exact.

Emits ``benchmarks/results/BENCH_service.json``; the bench-regression
gate (``compare_bench.py``) pins the parity flags and completion count
exactly and bands req/s and p99.

``BENCH_QUICK=1`` shrinks the workload for smoke runs.
"""

import asyncio
import json
import os
import threading
import time
import urllib.error
import urllib.request

from repro.bench import format_table
from repro.service import (
    Gateway,
    LaunchSpec,
    WorldSpec,
    build_world,
    resolve_launch,
)

from bench_paths import results_dir

QUICK = bool(os.environ.get("BENCH_QUICK"))

PARITY_SEED = 11
PARITY_STEPS = 4 if QUICK else 6
LOAD_LAUNCHES = 8 if QUICK else 48
LOAD_WORKERS = 2 if QUICK else 4
LOAD_STEPS = 4

RESULTS_DIR = results_dir()
JSON_PATH = RESULTS_DIR / "BENCH_service.json"


def record_json(section, payload):
    """Merge one section into the shared JSON artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    data["quick_mode"] = QUICK
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


class LiveGateway:
    """The gateway on a loop thread + blocking HTTP/SSE helpers."""

    def __init__(self, **kwargs):
        self.gateway = Gateway(**kwargs)
        self.base = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        async def run():
            host, port = await self.gateway.start("127.0.0.1", 0)
            self.base = f"http://{host}:{port}"
            self._ready.set()
            await self.gateway.serve_forever()

        self.loop = asyncio.new_event_loop()
        try:
            self.loop.run_until_complete(run())
        finally:
            self.loop.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "gateway never bound"
        return self

    def __exit__(self, *exc):
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.shutdown(), self.loop)
        future.result(timeout=120)
        self._thread.join(timeout=10)

    def request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(self.base + path, data=data,
                                     method=method)
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode())


def scripted_run(world_json, launch_json, agent_id):
    """The scripted twin of one gateway launch (shared build path)."""
    wspec = WorldSpec.from_json(dict(world_json))
    lspec = LaunchSpec.from_json(dict(launch_json))
    world, _journal = build_world(wspec)
    try:
        resolved = resolve_launch(lspec, wspec, agent_id)
        world.launch(resolved.agent, at=resolved.at,
                     method=resolved.method, **resolved.kwargs)
        world.run()
        return (json.loads(json.dumps(world.outcomes(), default=repr)),
                list(world.trace_digests()))
    finally:
        if hasattr(world, "close"):
            world.close()


def gateway_run(gw, world_json, launch_json):
    """One launch over HTTP, drained; returns (agent, outcomes, digests)."""
    status, made = gw.request("POST", "/worlds", world_json)
    assert status == 201, made
    wid = made["world"]
    status, launched = gw.request("POST", f"/worlds/{wid}/launch",
                                  launch_json)
    assert status == 202, launched
    agent = launched["agent"]
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status, snap = gw.request("GET", f"/worlds/{wid}/agents/{agent}")
        if snap.get("status") in ("finished", "failed"):
            break
        time.sleep(0.01)
    status, drained = gw.request("DELETE", f"/worlds/{wid}")
    assert status == 200, drained
    return agent, drained["agents"], drained["trace_digests"]


def test_eval_service_parity(benchmark, record_table):
    def measure():
        rows, verdicts = [], {}
        with LiveGateway() as gw:
            for backend in ("world", "sharded", "proc"):
                wjson = {"backend": backend, "nodes": 4, "n_shards": 2,
                         "seed": PARITY_SEED}
                ljson = {"steps": PARITY_STEPS, "mode": "optimized",
                         "mixed_fraction": 0.25}
                t0 = time.perf_counter()
                agent, got_out, got_dig = gateway_run(gw, wjson, ljson)
                gw_s = time.perf_counter() - t0
                want_out, want_dig = scripted_run(wjson, ljson, agent)
                identical = (got_out == want_out and got_dig == want_dig)
                verdicts[backend] = identical
                status = got_out.get(agent, {}).get("status")
                rows.append([backend, status, identical,
                             got_dig, round(gw_s, 3)])
        return rows, verdicts

    rows, verdicts = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["backend", "status", "gateway == scripted", "trace digests",
         "gateway run (s)"],
        rows,
        title=f"EVAL-SERVICE parity: {PARITY_STEPS}-step tour, "
              f"seed {PARITY_SEED}, HTTP vs scripted")
    record_table("service_parity", table)
    record_json("parity", {
        "seed": PARITY_SEED,
        "steps": PARITY_STEPS,
        "world_identical": verdicts["world"],
        "sharded_identical": verdicts["sharded"],
        "proc_identical": verdicts["proc"],
    })
    assert all(verdicts.values()), verdicts


def test_eval_service_load(benchmark, record_table):
    def measure():
        arrivals = {}
        starts = {}
        arrived = threading.Event()
        with LiveGateway(max_inflight=LOAD_LAUNCHES + 1) as gw:
            status, made = gw.request(
                "POST", "/worlds",
                {"backend": "world", "nodes": 4, "seed": 5})
            assert status == 201, made
            wid = made["world"]

            def watch_sse():
                # Timestamp every terminal-agent event off the live
                # stream: launch-to-outcome = agent event - POST start.
                with urllib.request.urlopen(
                        f"{gw.base}/worlds/{wid}/events",
                        timeout=300) as resp:
                    event = None
                    for raw in resp:
                        line = raw.decode().strip()
                        if line.startswith("event:"):
                            event = line.split(":", 1)[1].strip()
                        elif line.startswith("data:") and event == "agent":
                            data = json.loads(line.split(":", 1)[1])
                            arrivals.setdefault(data["agent"],
                                                time.perf_counter())
                            if len(arrivals) >= LOAD_LAUNCHES:
                                arrived.set()
                                return
                        elif line.startswith("event: end"):
                            return

            watcher = threading.Thread(target=watch_sse, daemon=True)
            watcher.start()
            time.sleep(0.1)  # let the subscription attach

            def worker(ids):
                for agent_id in ids:
                    starts[agent_id] = time.perf_counter()
                    while True:
                        status, body = gw.request(
                            "POST", f"/worlds/{wid}/launch",
                            {"steps": LOAD_STEPS, "agent_id": agent_id})
                        if status != 429:
                            break
                        time.sleep(0.01)
                    assert status == 202, body

            ids = [f"ld-{k}" for k in range(LOAD_LAUNCHES)]
            lanes = [ids[w::LOAD_WORKERS] for w in range(LOAD_WORKERS)]
            t0 = time.perf_counter()
            threads = [threading.Thread(target=worker, args=(lane,))
                       for lane in lanes]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            posted_s = time.perf_counter() - t0
            assert arrived.wait(240), \
                f"only {len(arrivals)}/{LOAD_LAUNCHES} outcomes arrived"
            total_s = time.perf_counter() - t0
            watcher.join(timeout=10)
            status, snap = gw.request("GET", f"/worlds/{wid}")
            finished = sum(1 for o in snap["agents"].values()
                           if o["status"] == "finished")
            gw.request("DELETE", f"/worlds/{wid}")
        latencies = sorted((arrivals[a] - starts[a]) * 1000.0
                           for a in arrivals)
        p50 = latencies[len(latencies) // 2]
        p99 = latencies[min(len(latencies) - 1,
                            int(len(latencies) * 0.99))]
        return {
            "launches": LOAD_LAUNCHES,
            "workers": LOAD_WORKERS,
            "steps": LOAD_STEPS,
            "completed": finished,
            "post_req_per_s": round(LOAD_LAUNCHES / posted_s, 1),
            "outcome_per_s": round(LOAD_LAUNCHES / total_s, 1),
            "p50_ms": round(p50, 1),
            "p99_ms": round(p99, 1),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["launches", "workers", "completed", "POST req/s",
         "outcomes/s", "p50 (ms)", "p99 (ms)"],
        [[result["launches"], result["workers"], result["completed"],
          result["post_req_per_s"], result["outcome_per_s"],
          result["p50_ms"], result["p99_ms"]]],
        title=f"EVAL-SERVICE load: {LOAD_LAUNCHES} launches x "
              f"{LOAD_STEPS} steps over {LOAD_WORKERS} client threads")
    record_table("service_load", table)
    record_json("load", result)
    assert result["completed"] == LOAD_LAUNCHES
