"""EVAL-RPC — the RPC-vs-migration decision model (ref [16], §4.4.1).

"A performance model similar to that introduced in [16] can be used to
determine if the agent or the resource compensation objects should be
transferred to the node where the resources reside or if RPC should be
used to access the resources."

The bench tabulates the model's decision across interaction counts and
agent sizes, locates the crossover, and validates the decisions against
measured costs in the simulator's network model.
"""


from repro.bench import format_table
from repro.core.decision import AccessPlan, DecisionModel
from repro.sim.timing import NetworkParams


def test_eval_rpc_decision_matrix(benchmark, record_table):
    model = DecisionModel(network=NetworkParams())

    def sweep():
        rows = []
        for agent_bytes in (2_000, 20_000, 200_000):
            for interactions in (1, 5, 20, 100):
                rpc = model.rpc_cost(interactions, 256, 1_024)
                migrate = model.migration_cost(agent_bytes)
                plan = model.choose(interactions, 256, 1_024, agent_bytes)
                rows.append([agent_bytes, interactions,
                             round(rpc * 1_000, 3),
                             round(migrate * 1_000, 3), plan.value])
                # The decision must match the cheaper measured cost.
                expected = (AccessPlan.RPC if rpc <= migrate
                            else AccessPlan.MIGRATE)
                assert plan is expected
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["agent bytes", "interactions", "rpc cost (ms)",
         "migrate cost (ms)", "decision"],
        rows, title="EVAL-RPC: decision matrix (request 256B, reply 1KB)")
    record_table("rpc_decision_matrix", table)


def test_eval_rpc_crossover_curve(benchmark, record_table):
    model = DecisionModel(network=NetworkParams())

    def sweep():
        rows = []
        for agent_kb in (1, 4, 16, 64, 256):
            crossover = model.crossover_interactions(
                256, 1_024, agent_kb * 1_024)
            rows.append([agent_kb, round(crossover, 1)])
        values = [row[1] for row in rows]
        assert values == sorted(values)  # heavier agent → later crossover
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["agent size (KB)", "crossover interactions (RPC→migrate)"],
        rows,
        title="EVAL-RPC: migration pays off beyond this many "
              "interactions")
    record_table("rpc_crossover", table)
