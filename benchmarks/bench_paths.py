"""Shared results-dir resolution for the benches.

Tables and JSON artifacts land in ``benchmarks/results/`` by default;
the CI bench-regression gate redirects fresh emissions with
``BENCH_RESULTS_DIR`` so they can be diffed against the committed
baselines without overwriting them.
"""

from __future__ import annotations

import os
import pathlib


def results_dir() -> pathlib.Path:
    """The directory bench artifacts should be written to."""
    override = os.environ.get("BENCH_RESULTS_DIR")
    if override:
        return pathlib.Path(override)
    return pathlib.Path(__file__).resolve().parent / "results"
