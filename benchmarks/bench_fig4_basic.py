"""FIG4 — cost of the basic rollback algorithm (Figures 4a/4b).

The basic mechanism drives the agent back along its path: one
compensation transaction (and, when the previous step ran elsewhere,
one agent transfer) per rolled-back step.  The bench sweeps the
rollback depth and reports transfers, compensation transactions, bytes
moved and rollback latency — the linear-in-depth cost profile the
optimized algorithm attacks.
"""


from repro import AgentStatus, RollbackMode
from repro.bench import format_table, make_tour_plan, run_tour

N_NODES = 6
N_STEPS = 9


def run_depth(depth: int, seed: int = 4):
    nodes = [f"n{i}" for i in range(N_NODES)]
    plan = make_tour_plan(nodes, N_STEPS, mixed_fraction=0.5,
                          savepoint_every=1, rollback_depth=depth)
    return run_tour(plan, N_NODES, mode=RollbackMode.BASIC, seed=seed)


def test_fig4_cost_vs_depth(benchmark, record_table):
    def sweep():
        rows = []
        for depth in (1, 2, 4, 6, 8):
            result = run_depth(depth)
            assert result.status is AgentStatus.FINISHED
            assert result.compensation_txs == depth
            rows.append([depth, result.compensation_txs,
                         result.compensation_transfers,
                         result.compensation_transfer_bytes,
                         round(result.rollback_latency, 4)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["rolled-back steps", "compensation txs", "agent transfers",
         "transfer bytes", "rollback latency (s)"],
        rows,
        title="FIG4: basic rollback cost grows linearly with depth")
    record_table("fig4_basic", table)
    # Linearity of transfers in depth (every step ran on another node).
    transfers = [r[2] for r in rows]
    assert transfers == sorted(transfers)
    assert transfers[-1] >= 7


def test_fig4_rollback_cost(benchmark):
    """Wall-clock cost of a depth-6 basic rollback scenario."""
    result = benchmark.pedantic(lambda: run_depth(6), rounds=5,
                                iterations=1)
    assert result.status is AgentStatus.FINISHED
    benchmark.extra_info["rollback_latency_s"] = result.rollback_latency
    benchmark.extra_info["compensation_txs"] = result.compensation_txs
