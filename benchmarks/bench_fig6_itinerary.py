"""FIG6 / EVAL-LOGSIZE(a) — the itinerary of Figure 6.

Reproduces the paper's exact itinerary::

    I { SI1{s1,s2,s3}, SI2{s7,s8}, SI3{ s6, SI4{s5,s4}, SI5{s9,s10} } }

and its Section 4.4.2 walkthrough: the agent starts with SI3 (executes
s6, then SI4's s5), decides to roll back during s4 — either SI4 only or
the enclosing SI3 — with only *two* savepoints in the log (one for SI3,
one for SI4).  The bench also verifies the log-hygiene semantics: SI4's
savepoint is discarded when SI4 completes, and completing a top-level
sub-itinerary discards the whole log.
"""


from repro import (
    AgentStatus,
    Itinerary,
    ItineraryAgent,
    StepEntry,
    SubItinerary,
    World,
    agent_compensation,
)
from repro.bench import format_table


@agent_compensation("fig6.tick")
def fig6_tick(wro, params, ctx):
    wro["ticks"] = wro.get("ticks", 0) + 1


class Fig6Agent(ItineraryAgent):
    """Executes the Figure-6 itinerary; s4 triggers the rollback."""

    def __init__(self, itinerary, agent_id, rollback_levels, node_of):
        super().__init__(itinerary, agent_id)
        self.rollback_levels = rollback_levels

    def do_step(self, ctx):
        self.sro.setdefault("trace", []).append(self.step_count)
        ctx.log_agent_compensation("fig6.tick", {})

    def s4(self, ctx):
        self.do_step(ctx)
        if self.wro.get("ticks", 0) == 0:
            self.rollback_scope(ctx, levels=self.rollback_levels)

    def __getattr__(self, name):
        # s1, s2, ... all behave like do_step; defined dynamically so
        # the itinerary reads exactly like the paper's figure.
        if name.startswith("s") and name[1:].isdigit():
            return self.do_step
        raise AttributeError(name)

    def itinerary_result(self):
        return {"trace": list(self.sro.get("trace", [])),
                "ticks": self.wro.get("ticks", 0)}


def figure6_itinerary(node_of):
    si1 = SubItinerary("SI1", [StepEntry("s1", node_of("s1")),
                               StepEntry("s2", node_of("s2")),
                               StepEntry("s3", node_of("s3"))])
    si2 = SubItinerary("SI2", [StepEntry("s7", node_of("s7")),
                               StepEntry("s8", node_of("s8"))])
    si4 = SubItinerary("SI4", [StepEntry("s5", node_of("s5")),
                               StepEntry("s4", node_of("s4"))])
    si5 = SubItinerary("SI5", [StepEntry("s9", node_of("s9")),
                               StepEntry("s10", node_of("s10"))])
    si3 = SubItinerary("SI3", [StepEntry("s6", node_of("s6")), si4, si5])
    # The paper's scenario begins with SI3; order of the main itinerary
    # entries is partial — we execute SI3 first as in the text.
    return Itinerary().add(si3).add(si1).add(si2)


def node_of(step: str) -> str:
    """Place step s<k> on host h<k mod 4>."""
    return f"h{int(step[1:]) % 4}"


def run_fig6(rollback_levels, seed=6):
    world = World(seed=seed)
    for i in range(4):
        world.add_node(f"h{i}")
    agent = Fig6Agent(figure6_itinerary(node_of),
                      f"fig6-{rollback_levels}-{seed}", rollback_levels,
                      node_of)
    record = world.launch_itinerary(agent)
    world.run(max_events=1_000_000)
    return world, record


def test_fig6_rollback_si4_vs_si3(benchmark, record_table):
    def scenario():
        rows = []
        # levels=0: roll back SI4 only (abort s4, compensate s5).
        world0, record0 = run_fig6(0)
        assert record0.status is AgentStatus.FINISHED, record0.failure
        assert record0.result["ticks"] == 1  # only s5 compensated
        rows.append(["rollback SI4 (levels=0)", 1,
                     record0.rollbacks_completed,
                     world0.metrics.count("savepoints.written"),
                     world0.metrics.count("log.truncations")])
        # levels=1: roll back SI3 as well (additionally compensate s6).
        world1, record1 = run_fig6(1)
        assert record1.status is AgentStatus.FINISHED, record1.failure
        assert record1.result["ticks"] == 2  # s5 AND s6 compensated
        rows.append(["rollback SI3 (levels=1)", 2,
                     record1.rollbacks_completed,
                     world1.metrics.count("savepoints.written"),
                     world1.metrics.count("log.truncations")])
        # Three top-level sub-itineraries => three log truncations.
        assert world0.metrics.count("log.truncations") == 3
        return rows

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    table = format_table(
        ["scenario", "steps compensated", "rollbacks",
         "savepoints written", "log truncations"],
        rows,
        title="FIG6: rollback scopes on the paper's sample itinerary")
    record_table("fig6_itinerary", table)


def test_fig6_savepoint_economy(benchmark, record_table):
    """Section 4.4.2: only one savepoint per *currently executing*
    sub-itinerary chain is needed — far fewer than one per step."""

    def scenario():
        world, record = run_fig6(0)
        steps_executed = record.steps_committed
        savepoints = world.metrics.count("savepoints.written")
        return [[steps_executed, savepoints,
                 world.metrics.count("log.truncations")]]

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    table = format_table(
        ["steps executed", "savepoints written", "log truncations"],
        rows,
        title="FIG6: savepoint economy (itinerary-managed savepoints "
              "vs one-per-step)")
    record_table("fig6_savepoints", table)
    # Far fewer savepoints than steps.
    assert rows[0][1] < rows[0][0]
