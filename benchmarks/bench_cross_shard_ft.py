"""EVAL-CROSS-SHARD-FT — surviving whole-shard outages exactly once.

A new scenario class the pre-existing suite cannot express: partial-
datacenter failure.  ``ShardedWorld.kill_shard`` takes a whole kernel
down mid-run — every node of the shard crashes and the kernel stops
advancing — while fault-tolerant agents keep touring.  With
``FTParams.cross_shard_alternates`` (shadows preferentially hosted by
*other* shards) and the bridge-replicated step ledger, the surviving
shards promote the shadows and every itinerary still completes exactly
once; with shard-local alternates (the pre-PR behaviour) the same
outage strands the work.

The sweep measures **completion rate** and **recovery latency** (first
shadow promotion after the kill; plus makespan) against the
shard-outage rate (0, 1 and 2 of 3 kernels killed, with and without
restart), at several seeds.  Exactly-once is checked through effects:
every executed tour step debits exactly one bank once, wherever it ran,
so the debit sum equals 10 x committed tour steps — and the ledger
replicas must agree on one holder per unit of work.

Emits ``benchmarks/results/BENCH_cross_shard_ft.json`` (consumed by the
CI bench-regression gate; redirect with ``BENCH_RESULTS_DIR``).
``BENCH_QUICK=1`` shrinks the sweep for smoke runs.
"""

import json
import os

from repro import AgentStatus, Bank, FTParams, ShardedWorld
from repro.agent.packages import Protocol
from repro.bench import format_table
from repro.resources.bank import OverdraftPolicy

from tests.helpers import LinearAgent

from bench_paths import results_dir

QUICK = bool(os.environ.get("BENCH_QUICK"))

N_SHARDS = 3
N_NODES = 9
RING = [f"n{i}" for i in range(N_NODES)]
N_AGENTS = 4 if QUICK else 6
PLAN_LEN = 4
SEEDS = (7,) if QUICK else (7, 23, 71)
KILL_AT = 0.055          # inside the second hop's step transactions
RESTART_AT = 2.0

RESULTS_DIR = results_dir()
JSON_PATH = RESULTS_DIR / "BENCH_cross_shard_ft.json"

#: (name, shards killed, restart time, cross-shard alternates?)
SCENARIOS = [
    ("no-outage", (), None, True),
    ("kill-1", (1,), None, True),
    ("kill-1-restart", (1,), RESTART_AT, True),
    ("kill-2", (1, 2), None, True),
    ("kill-1-shard-local", (1,), None, False),
]
if QUICK:
    SCENARIOS = [s for s in SCENARIOS if s[0] != "kill-2"]


def build_world(seed, cross_shard):
    world = ShardedWorld(
        n_shards=N_SHARDS, seed=seed,
        ft_params=FTParams(takeover_timeout=0.05,
                           cross_shard_alternates=cross_shard))
    for name in RING:
        node = world.add_node(name)
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    for i, name in enumerate(RING):
        if cross_shard:
            # Round-robin placement: the next two ring nodes live in
            # the two other shards.
            world.set_alternates(name, RING[(i + 1) % N_NODES],
                                 RING[(i + 2) % N_NODES])
        else:
            # The pre-PR posture: alternates confined to the same shard.
            world.set_alternates(name, RING[(i + 3) % N_NODES])
    return world


def run_scenario(name, kills, restart_at, cross_shard, seed):
    world = build_world(seed, cross_shard)
    for offset, shard in enumerate(kills):
        world.kill_shard(shard, at=KILL_AT + 0.005 * offset,
                         restart_at=restart_at)
    records = []
    for a in range(N_AGENTS):
        start = 3 * (a % 3)  # n0/n3/n6 — all shard 0, which survives
        plan = [RING[(start + j) % N_NODES] for j in range(PLAN_LEN)]
        agent = LinearAgent(f"xft-{name}-{seed}-{a}", plan)
        records.append(world.launch(agent, at=plan[0], method="step",
                                    protocol=Protocol.FAULT_TOLERANT))
    # Bounded run: the degraded scenario retries against the dead shard
    # forever (by design — that is the failure it demonstrates).
    world.run(until=60.0)

    finished = [r for r in records if r.status is AgentStatus.FINISHED]
    debits = sum(
        1_000 - world.node(n).get_resource("bank").peek("a")["balance"]
        for n in RING)
    # Each committed *tour* step (the wrap hop transfers nothing)
    # debited one bank exactly once, wherever it executed.
    committed_tour_steps = sum(min(r.steps_committed, PLAN_LEN)
                               for r in records)
    promotions = [t for w in world.shards
                  for (t, _kind, _d) in w.metrics.events("ft-promotion")]
    conflicts = sum(
        w.metrics.count("ft.ledger.mirror_conflicts")
        + w.metrics.count("ft.ledger.quorum_disagreement")
        for w in world.shards)
    makespan = max((r.finished_at for r in finished), default=None)
    recovery = (min(p for p in promotions if p >= KILL_AT) - KILL_AT
                if kills and promotions else None)
    return {
        "scenario": name,
        "seed": seed,
        "outage_rate": len(kills) / N_SHARDS,
        "restarted": restart_at is not None,
        "cross_shard_alternates": cross_shard,
        "agents": len(records),
        "finished": len(finished),
        "completion_rate": len(finished) / len(records),
        "debits": debits,
        "expected_debits": 10 * committed_tour_steps,
        "exactly_once": debits == 10 * committed_tour_steps,
        "promotions": len(promotions),
        "recovery_latency": recovery,
        "makespan": makespan,
        "ledger_agrees": world.ledger_quorum_agrees() and conflicts == 0,
    }


def test_eval_cross_shard_fault_tolerance(benchmark, record_table):
    def sweep():
        rows = []
        for name, kills, restart_at, cross_shard in SCENARIOS:
            for seed in SEEDS:
                rows.append(run_scenario(name, kills, restart_at,
                                         cross_shard, seed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for row in rows:
        # Exactly-once effects and quorum agreement hold in *every*
        # scenario — including the degraded one, where fewer agents
        # finish but none double-executes.
        assert row["exactly_once"], row
        assert row["ledger_agrees"], row
        if row["cross_shard_alternates"]:
            # Cross-shard alternates: every outage rate completes fully.
            assert row["completion_rate"] == 1.0, row
        if row["scenario"] == "kill-1":
            assert row["promotions"] >= 1, row
            assert row["recovery_latency"] is not None, row
    local = [r for r in rows if not r["cross_shard_alternates"]]
    assert local and all(r["completion_rate"] < 1.0 for r in local), (
        "shard-local alternates should strand work on a dead shard")

    table_rows = [
        [r["scenario"], r["seed"], f"{r['outage_rate']:.2f}",
         "yes" if r["cross_shard_alternates"] else "no",
         f"{r['completion_rate']:.2f}",
         r["promotions"],
         "-" if r["recovery_latency"] is None
         else f"{r['recovery_latency']:.3f}",
         "-" if r["makespan"] is None else f"{r['makespan']:.3f}",
         "yes" if r["exactly_once"] else "NO"]
        for r in rows]
    table = format_table(
        ["scenario", "seed", "outage rate", "x-shard alts",
         "completion", "promotions", "recovery (s)", "makespan (s)",
         "exactly once"],
        table_rows,
        title=f"EVAL-CROSS-SHARD-FT: {N_AGENTS} FT agents on {N_NODES} "
              f"nodes / {N_SHARDS} kernels — completion and recovery "
              f"vs whole-shard outage rate")
    record_table("cross_shard_ft", table)

    summary = {}
    for name, *_rest in SCENARIOS:
        per = [r for r in rows if r["scenario"] == name]
        latencies = [r["recovery_latency"] for r in per
                     if r["recovery_latency"] is not None]
        summary[name] = {
            "outage_rate": per[0]["outage_rate"],
            "cross_shard_alternates": per[0]["cross_shard_alternates"],
            "completion_rate": (sum(r["completion_rate"] for r in per)
                                / len(per)),
            "exactly_once": all(r["exactly_once"] for r in per),
            "ledger_agrees": all(r["ledger_agrees"] for r in per),
            "max_recovery_latency": max(latencies, default=None),
            "max_makespan": max((r["makespan"] for r in per
                                 if r["makespan"] is not None),
                                default=None),
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps({
        "bench": "cross_shard_fault_tolerance",
        "quick_mode": QUICK,
        "agents": N_AGENTS,
        "seeds": list(SEEDS),
        "kill_at": KILL_AT,
        "scenarios": summary,
        "rows": rows,
    }, indent=2, sort_keys=True) + "\n")
