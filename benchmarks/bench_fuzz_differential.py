"""EVAL-FUZZ — differential fuzzing throughput and divergence count.

The fuzz lane's performance envelope and its headline invariant,
measured exactly as the nightly CI job runs it:

* **sweep** — generated scenario workloads (random itineraries over
  the semantic compensations, crash/outage schedules) cross-checked on
  the unsharded and the in-process sharded backend plus the model
  oracle.  Records seeds/minute (the budget planner for the nightly
  seed range) and the divergence count, which is gated ``equal`` to 0.
  The model-predicted rollback total across the sweep is deterministic
  at a fixed ``GENERATOR_VERSION`` — a drift means the generator
  changed without a version bump.
* **tri** — a smaller range through all three backends including the
  multiprocess workers (spawn cost dominates), again gated at zero
  divergences.

Emits ``benchmarks/results/BENCH_fuzz_differential.json``;
``BENCH_QUICK=1`` shrinks both ranges for smoke runs.
"""

import json
import os
import time

from repro.fuzz import BACKENDS, generate_case, predict, run_seed_range

from bench_paths import results_dir
from repro.bench import format_table

QUICK = bool(os.environ.get("BENCH_QUICK"))

SWEEP_SEEDS = 12 if QUICK else 60
TRI_SEEDS = 2 if QUICK else 8

RESULTS_DIR = results_dir()
JSON_PATH = RESULTS_DIR / "BENCH_fuzz_differential.json"


def record_json(section, payload):
    """Merge one section into the shared JSON artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    data["quick_mode"] = QUICK
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def predicted_rollbacks(n_seeds):
    """Model-side rollback total — deterministic per generator version."""
    total = 0
    for seed in range(n_seeds):
        expected = predict(generate_case(seed))
        total += sum(agent["rollbacks"]
                     for agent in expected["agents"].values())
    return total


def test_eval_fuzz_sweep(benchmark, record_table):
    def measure():
        t0 = time.perf_counter()
        summary = run_seed_range(0, SWEEP_SEEDS,
                                 backends=("world", "sharded"))
        elapsed = time.perf_counter() - t0
        return summary, elapsed

    summary, elapsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_minute = SWEEP_SEEDS / elapsed * 60.0
    rollbacks = predicted_rollbacks(SWEEP_SEEDS)
    rows = [
        ["seeds checked", summary["seeds"]],
        ["divergences", len(summary["failing_seeds"])],
        ["predicted rollbacks", rollbacks],
        ["wall (s)", round(elapsed, 3)],
        ["seeds / minute", round(per_minute, 1)],
    ]
    record_table("fuzz_sweep", format_table(
        ["metric", "value"], rows,
        title=f"EVAL-FUZZ sweep: seeds [0:{SWEEP_SEEDS}) on "
              f"world+sharded + model oracle"))
    record_json("sweep", {
        "seeds": summary["seeds"],
        "backends": ["world", "sharded"],
        "divergences": len(summary["failing_seeds"]),
        "failing_repros": summary["repros"],
        "predicted_rollbacks": rollbacks,
        "elapsed_s": round(elapsed, 3),
        "seeds_per_minute": round(per_minute, 1),
    })
    assert summary["failing_seeds"] == []


def test_eval_fuzz_tri_backend(benchmark, record_table):
    def measure():
        t0 = time.perf_counter()
        summary = run_seed_range(0, TRI_SEEDS, backends=BACKENDS)
        return summary, time.perf_counter() - t0

    summary, elapsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        ["seeds checked", summary["seeds"]],
        ["divergences", len(summary["failing_seeds"])],
        ["wall (s)", round(elapsed, 3)],
        ["seconds / seed", round(elapsed / TRI_SEEDS, 2)],
    ]
    record_table("fuzz_tri", format_table(
        ["metric", "value"], rows,
        title=f"EVAL-FUZZ tri-backend: seeds [0:{TRI_SEEDS}) incl. "
              f"multiprocess workers"))
    record_json("tri", {
        "seeds": summary["seeds"],
        "backends": list(BACKENDS),
        "divergences": len(summary["failing_seeds"]),
        "failing_repros": summary["repros"],
        "elapsed_s": round(elapsed, 3),
        "seconds_per_seed": round(elapsed / TRI_SEEDS, 2),
    })
    assert summary["failing_seeds"] == []
