"""Shared bench plumbing.

Every bench regenerates one figure/table of the paper (or one claim of
the promised performance evaluation).  Beyond the wall-clock numbers
pytest-benchmark collects, each bench emits the paper-style ASCII table
to stdout *and* to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can reference stable artifacts.
"""

from __future__ import annotations

import pytest

from bench_paths import results_dir

RESULTS_DIR = results_dir()


@pytest.fixture
def record_table():
    """Write a result table to benchmarks/results/ and echo it."""

    def _record(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        return path

    return _record
