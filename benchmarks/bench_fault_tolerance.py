"""EVAL-FT — rollback completes under non-lasting crashes (§4.3).

"Assuming that node crashes and network crashes are only temporary and
further assuming that the network provides reliable data transfer, the
algorithm ensures that all steps which have to be rolled back are
eventually rolled back and finally, the state of the strongly
reversible objects is restored as well."

The bench sweeps a Poisson outage rate and reports: completion (always
true), the final agent state digest (always identical to the clean
run), crash counts, transaction aborts, and latency inflation.
"""


from repro import AgentStatus, RollbackMode
from repro.bench import format_table, make_tour_plan, run_tour
from repro.bench.harness import build_tour_world

N_NODES = 4
N_STEPS = 6


def run_with_outages(rate, seed=9, mode=RollbackMode.BASIC):
    nodes = [f"n{i}" for i in range(N_NODES)]
    plan = make_tour_plan(nodes, N_STEPS, mixed_fraction=0.5,
                          rollback_depth=N_STEPS - 1)
    world = build_tour_world(N_NODES, seed=seed)
    if rate > 0:
        world.failures.random_outages(
            [f"n{i}" for i in range(N_NODES)], horizon=20.0,
            rate_per_s=rate, mean_downtime=0.3)
    result = run_tour(plan, N_NODES, mode=mode, seed=seed, world=world,
                      max_events=3_000_000)
    return world, result


def test_eval_ft_outage_sweep(benchmark, record_table):
    def sweep():
        rows = []
        _, clean = run_with_outages(0.0)
        reference = clean.result
        for rate in (0.0, 0.2, 0.5, 1.0):
            world, result = run_with_outages(rate)
            assert result.status is AgentStatus.FINISHED
            assert result.result == reference  # same final agent state
            assert result.rollbacks == 1
            rows.append([
                rate,
                world.failures.crashes_injected,
                world.metrics.count("crash.tx_aborted"),
                world.metrics.count("2pc.aborts"),
                round(result.rollback_latency, 3),
                round(result.finished_at, 3),
            ])
        latencies = [row[5] for row in rows]
        assert latencies[-1] >= latencies[0]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["outage rate (/s/node)", "crashes", "tx aborted by crash",
         "2pc aborts", "rollback latency (s)", "completion time (s)"],
        rows,
        title="EVAL-FT: rollback completes under non-lasting crashes; "
              "only latency degrades")
    record_table("fault_tolerance", table)


def test_eval_ft_seed_sweep(benchmark, record_table):
    """Many seeds, fixed rate: completion is not luck."""

    def sweep():
        completed = 0
        total = 8
        worst = 0.0
        for seed in range(total):
            world, result = run_with_outages(0.6, seed=seed + 100)
            assert result.status is AgentStatus.FINISHED
            completed += 1
            worst = max(worst, result.finished_at)
        return [[total, completed, round(worst, 3)]]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["runs", "completed", "worst completion time (s)"],
        rows, title="EVAL-FT: completion across 8 seeds at 0.6 outages/s")
    record_table("fault_tolerance_seeds", table)
    assert rows[0][0] == rows[0][1]
