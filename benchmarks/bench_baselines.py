"""EVAL-BASELINE — the paper's mechanism vs saga-style restore (ref [4]).

Sagas restore the transaction program's full state from the savepoint
image; the paper argues (§3.2, §4.1) this is wrong for mobile agents
because compensation produces *new* information (fresh coin serials,
fees, credit notes) that must survive in the weakly reversible space.

Scorecard: on the digital-cash shopping scenario, the paper's
mechanism leaves a spendable purse and a visible fee; the saga baseline
resurrects retired serials (fatal double-spend on next use) and inflates
every savepoint with the WRO image.
"""


from repro import AgentStatus, RollbackMode
from repro.bench import format_table

from tests.test_baseline_saga import CoinShopper, build_world


def run_mode(mode, seed=17):
    world = build_world(seed=seed)
    agent = CoinShopper(f"bench-shopper-{mode.value}-{seed}")
    record = world.launch(agent, at="home", method="fund", mode=mode)
    world.run(max_events=500_000)
    return world, record


def test_eval_baseline_scorecard(benchmark, record_table):
    def scenario():
        rows = []
        world_b, record_b = run_mode(RollbackMode.BASIC)
        assert record_b.status is AgentStatus.FINISHED
        rows.append([
            "paper mechanism", record_b.status.value,
            record_b.result["second_spend"],
            record_b.result["purse_value"],
            record_b.result["fees_paid"],
        ])
        world_s, record_s = run_mode(RollbackMode.SAGA)
        assert record_s.status is AgentStatus.FAILED
        assert "double spend" in record_s.failure
        rows.append([
            "saga restore [4]", record_s.status.value,
            "double-spend crash", "-", "invisible",
        ])
        return rows

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    table = format_table(
        ["mechanism", "agent outcome", "post-rollback spend",
         "purse value", "fee visible"],
        rows,
        title="EVAL-BASELINE: correctness scorecard on the digital-cash "
              "scenario")
    record_table("baseline_scorecard", table)


def test_eval_baseline_savepoint_overhead(benchmark, record_table):
    """The saga baseline's savepoints carry the WRO image too."""
    from repro.log.rollback_log import RollbackLog
    from repro.tx.manager import Transaction

    def scenario():
        world = build_world()
        rows = []
        for wro_bytes in (1_000, 10_000, 100_000):
            agent = CoinShopper(f"sizer-{wro_bytes}")
            agent.wro["ballast"] = b"w" * wro_bytes
            agent.set_control("home", "fund")
            paper_log = RollbackLog()
            world.step_protocol._write_savepoint(
                paper_log, agent, ("sp", False),
                Transaction("step", "home"), include_wro=False)
            saga_log = RollbackLog()
            world.step_protocol._write_savepoint(
                saga_log, agent, ("sp", False),
                Transaction("step", "home"), include_wro=True)
            rows.append([wro_bytes, paper_log.size_bytes(),
                         saga_log.size_bytes()])
        assert rows[-1][2] > rows[-1][1] + 90_000
        return rows

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    table = format_table(
        ["WRO size (B)", "paper savepoint bytes", "saga savepoint bytes"],
        rows,
        title="EVAL-BASELINE: savepoint size overhead of imaging the "
              "weakly reversible objects")
    record_table("baseline_savepoint_overhead", table)
