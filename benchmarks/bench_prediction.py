"""EVAL-PREDICT — static cost prediction vs measured rollback cost.

:func:`repro.core.inspector.predict_rollback` mechanises the paper's
Section 4.4.1 analysis (which steps force agent transfers, which ship
RCE lists).  This bench validates prediction == measurement across the
mixed-fraction sweep — the ablation showing the EOS mixed-flag carries
exactly the information the optimized algorithm needs.
"""


from repro import AgentStatus, RollbackMode
from repro.bench import format_table, make_tour_plan
from repro.bench.harness import build_tour_world
from repro.bench.workloads import TourAgent
from repro.core.inspector import predict_rollback

N_NODES = 5
N_STEPS = 7


def run_with_spy(mixed_fraction, mode, seed=41):
    nodes = [f"n{i}" for i in range(N_NODES)]
    plan = make_tour_plan(nodes, N_STEPS, mixed_fraction=mixed_fraction,
                          rollback_depth=N_STEPS - 1)
    world = build_tour_world(N_NODES, seed=seed)
    agent = TourAgent(f"spy-{mode.value}-{mixed_fraction}-{seed}", plan)
    record = world.launch(agent, at=plan.steps[0].node, method="run",
                          mode=mode)
    captured = {}
    driver = world.rollback_driver(mode)
    original = driver.start_rollback

    def spy(node, item, sp_id):
        _, log = item.payload.unpack()
        captured["log"] = log
        captured["node"] = node.name
        original(node, item, sp_id)

    driver.start_rollback = spy
    world.run(max_events=1_000_000)
    driver.start_rollback = original
    assert record.status is AgentStatus.FINISHED
    prediction = predict_rollback(captured["log"], plan.rollback_to,
                                  captured["node"], mode)
    return world, prediction


def test_eval_prediction_matches_measurement(benchmark, record_table):
    def sweep():
        rows = []
        for mode in (RollbackMode.BASIC, RollbackMode.OPTIMIZED):
            for tenth in (0, 3, 6, 10):
                world, prediction = run_with_spy(tenth / 10.0, mode)
                measured_transfers = world.metrics.count(
                    "agent.transfers.compensation")
                measured_txs = world.metrics.count(
                    "compensation.tx_committed")
                measured_ships = world.metrics.count(
                    "net.messages.rce-list")
                assert prediction.agent_transfers == measured_transfers
                assert prediction.compensation_txs == measured_txs
                if mode is RollbackMode.OPTIMIZED:
                    assert prediction.rce_ships == measured_ships
                rows.append([mode.value, tenth / 10.0,
                             prediction.agent_transfers,
                             measured_transfers,
                             prediction.rce_ships, measured_ships])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["mode", "mixed frac", "predicted transfers",
         "measured transfers", "predicted ships", "measured ships"],
        rows,
        title="EVAL-PREDICT: static analysis (inspector) vs measured "
              "rollback cost")
    record_table("prediction", table)
