"""BENCH-SERIALIZATION — incremental packing vs the monolithic seed path.

The log travels with the agent on every migration, so the seed's
``pack()`` — one monolithic ``pickle((agent, log))`` per hop — performed
O(n) pickling work per step and O(n²) over an n-step tour, drowning the
log-size effects the paper benches measure.  The incremental subsystem
frames packages as ``agent_blob + per-entry log blobs`` with per-entry
blob caches, and maintains the log's serialised size as a running sum.

This bench drives the same growing-log tour through both paths and
asserts the headline claims:

* per-step pack + ``size_bytes()`` cost is flat (amortized O(1)) in the
  log length for the incremental path, and clearly growing for the
  monolithic path;
* the incremental path is ≥ 5× faster over a 200-step tour (≥ 2× in
  ``BENCH_QUICK`` smoke mode, which shortens the tour).

Beyond the ASCII table, results land machine-readable in
``benchmarks/results/BENCH_serialization.json`` so later PRs can track
the perf trajectory.
"""

from __future__ import annotations

import json
import os
import time

from repro.agent.packages import AgentPackage, PackageKind
from repro.bench import format_table
from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
    SavepointEntry,
)
from repro.log.rollback_log import RollbackLog
from repro.storage.serialization import capture, size_of

from bench_paths import results_dir

RESULTS_DIR = results_dir()
JSON_PATH = RESULTS_DIR / "BENCH_serialization.json"

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_STEPS = 60 if QUICK else 200
OPS_PER_STEP = 2
SAVEPOINT_EVERY = 4
SRO_BALLAST = 2_000
N_CHUNKS = 4  # flatness statistics granularity


class BenchAgent:
    """Minimal picklable agent stand-in with a realistic state payload."""

    def __init__(self, agent_id: str):
        # Constant-size state: the bench isolates cost growth in the
        # *log* length, not in the agent's own data space.
        self.agent_id = agent_id
        self.sro = {"ballast": b"s" * SRO_BALLAST, "last": 0}
        self.wro = {"notes": []}


def append_step(log: RollbackLog, index: int) -> None:
    node = f"n{index % 4}"
    log.append(BeginOfStepEntry(node=node, step_index=index))
    for i in range(OPS_PER_STEP):
        log.append(OperationEntry(op_kind=OperationKind.AGENT,
                                  op_name="bench.tick",
                                  params={"step": index, "op": i}))
    log.append(EndOfStepEntry(node=node, step_index=index))
    if index % SAVEPOINT_EVERY == 0:
        log.append(SavepointEntry(
            sp_id=f"sp-{index}", mode="state",
            payload={"ballast": b"p" * SRO_BALLAST, "step": index}))


def drive_tour(pack_and_size) -> list[float]:
    """Per-step wall-clock over a growing log.

    Each step is timed end to end — log appends (which is where the
    incremental path pays its once-per-entry pickling) plus the pack
    and size queries — so neither strategy hides work outside the
    timer.
    """
    agent = BenchAgent("bench-serialization")
    log = RollbackLog()
    per_step = []
    for index in range(N_STEPS):
        start = time.perf_counter()
        append_step(log, index)
        agent.sro["last"] = index
        pack_and_size(agent, log)
        per_step.append(time.perf_counter() - start)
    return per_step


def monolithic_pack_and_size(agent, log):
    """The seed path: re-pickle everything, re-pickle again for size.

    ``capture((agent, log))`` pickles the log *without* its frame cache
    (``RollbackLog.__getstate__`` drops derived state), so this is the
    honest pre-incremental cost, not an inflated strawman.
    """
    blob = capture((agent, log))
    size = size_of(log.entries())
    return blob, size


def incremental_pack_and_size(agent, log):
    """The new path: framed package + O(1) running-sum size."""
    package = AgentPackage.pack(PackageKind.STEP, agent, log,
                                step_index=agent.sro["last"])
    return package, log.size_bytes() + package.size_bytes


def chunk_means(per_step: list[float]) -> list[float]:
    chunk = max(1, len(per_step) // N_CHUNKS)
    return [sum(per_step[i:i + chunk]) / len(per_step[i:i + chunk])
            for i in range(0, chunk * N_CHUNKS, chunk)]


def flatness_ratio(per_step: list[float]) -> float:
    """Mean cost of the last chunk over the first (1.0 == flat)."""
    means = chunk_means(per_step)
    return means[-1] / means[0] if means[0] > 0 else float("inf")


def test_incremental_pack_is_flat_and_faster(benchmark, record_table):
    def sweep():
        # Best-of-3 to shave scheduler noise off the comparison.
        legacy_runs = [drive_tour(monolithic_pack_and_size)
                       for _ in range(3)]
        incremental_runs = [drive_tour(incremental_pack_and_size)
                            for _ in range(3)]
        legacy = min(legacy_runs, key=sum)
        incremental = min(incremental_runs, key=sum)
        return legacy, incremental

    legacy, incremental = benchmark.pedantic(sweep, rounds=1, iterations=1)

    legacy_total = sum(legacy)
    incremental_total = sum(incremental)
    speedup = legacy_total / incremental_total
    legacy_flatness = flatness_ratio(legacy)
    incremental_flatness = flatness_ratio(incremental)

    chunk = max(1, N_STEPS // N_CHUNKS)
    rows = []
    for i, (lm, im) in enumerate(zip(chunk_means(legacy),
                                     chunk_means(incremental))):
        rows.append([f"steps {i * chunk + 1}-{(i + 1) * chunk}",
                     lm * 1e6, im * 1e6, lm / im if im else 0.0])
    rows.append(["TOTAL (s)", legacy_total, incremental_total, speedup])
    table = format_table(
        ["tour segment", "monolithic us/step", "incremental us/step",
         "speedup"],
        rows,
        title=f"BENCH-SERIALIZATION: pack + size_bytes per step, "
              f"{N_STEPS}-step tour "
              f"({OPS_PER_STEP} OEs/step, SP every {SAVEPOINT_EVERY})")
    record_table("serialization", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps({
        "bench": "serialization_incremental_vs_monolithic",
        "quick_mode": QUICK,
        "steps": N_STEPS,
        "ops_per_step": OPS_PER_STEP,
        "savepoint_every": SAVEPOINT_EVERY,
        "sro_ballast_bytes": SRO_BALLAST,
        "monolithic_seconds": legacy_total,
        "incremental_seconds": incremental_total,
        "speedup": speedup,
        "monolithic_flatness_last_over_first_chunk": legacy_flatness,
        "incremental_flatness_last_over_first_chunk": incremental_flatness,
        "monolithic_chunk_means_us": [m * 1e6 for m in chunk_means(legacy)],
        "incremental_chunk_means_us": [m * 1e6
                                       for m in chunk_means(incremental)],
    }, indent=2) + "\n")

    # Headline claims: amortized-O(1) per-step cost (flat in log
    # length) and a clear wall-clock win over the monolithic seed path.
    assert speedup >= (2.0 if QUICK else 5.0)
    assert incremental_flatness < 3.0
    assert legacy_flatness > incremental_flatness


def test_size_bytes_is_constant_time(benchmark):
    """size_bytes() cost must not grow with the number of entries."""

    def measure(n_entries: int) -> float:
        log = RollbackLog()
        step = 0
        while len(log) < n_entries:
            append_step(log, step)
            step += 1
        log.size_bytes()  # warm the entry blob caches
        start = time.perf_counter()
        for _ in range(2_000):
            log.size_bytes()
        return time.perf_counter() - start

    def sweep():
        small = min(measure(40) for _ in range(3))
        large = min(measure(800) for _ in range(3))
        return small, large

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # O(1): a 20x larger log must not cost anywhere near 20x. Generous
    # bound to stay robust on noisy CI machines.
    assert large < small * 5
