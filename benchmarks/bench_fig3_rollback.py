"""FIG3 — the partial rollback walkthrough of Figure 3.

Figure 3 narrates: steps i..i+3 executed on nodes N_i..N_i+3 with a
savepoint before step i; the rollback initiated during step i+3 aborts
T_i+3 (transaction management undoes it), then compensation
transactions CT_i+2, CT_i+1, CT_i run in reverse order on their nodes,
and only when the savepoint is reached are the strongly reversible
objects restored.  The bench regenerates exactly this scenario and
checks every intermediate property the figure shows.
"""


from repro import AgentStatus, MobileAgent, RollbackMode, World
from repro.bench import format_table
from repro.compensation.registry import agent_compensation
from repro.resources.bank import Bank, OverdraftPolicy


@agent_compensation("fig3.note")
def fig3_note(wro, params, ctx):
    wro.setdefault("compensated_steps", []).append(params["step"])


class Fig3Agent(MobileAgent):
    """Savepoint before step i, rollback initiated in step i+3."""

    def __init__(self, agent_id="fig3"):
        super().__init__(agent_id)
        self.sro["i"] = 0
        self.sro["readings"] = []

    def step(self, ctx):
        i = self.sro["i"]
        bank = ctx.resource("bank")
        bank.transfer("src", "dst", 10)
        ctx.log_resource_compensation(
            "bench.undo_transfer",
            {"src": "src", "dst": "dst", "amount": 10}, resource="bank")
        ctx.log_agent_compensation("fig3.note", {"step": i})
        self.sro["readings"].append((i, ctx.node_name))
        self.sro["i"] = i + 1
        if i == 0:
            ctx.savepoint("before-step-i")  # effective before step i=1
        if i < 3:
            ctx.goto(f"N{i + 1}", "step")
        else:
            ctx.goto("N0", "evaluate")

    def evaluate(self, ctx):
        if not self.wro.get("compensated_steps"):
            ctx.rollback("before-step-i")
        ctx.finish({
            "compensated_steps": self.wro["compensated_steps"],
            "readings": list(self.sro["readings"]),
            "i": self.sro["i"],
        })


def run_fig3(seed=3):

    world = World(seed=seed)
    banks = {}
    for i in range(4):
        node = world.add_node(f"N{i}")
        bank = Bank("bank")
        bank.seed_account("src", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("dst", 0, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
        banks[f"N{i}"] = bank
    record = world.launch(Fig3Agent(f"fig3-{seed}"), at="N0", method="step",
                          mode=RollbackMode.BASIC)
    world.run(max_events=500_000)
    return world, record, banks


def test_fig3_walkthrough(benchmark, record_table):
    def scenario():
        world, record, banks = run_fig3()
        assert record.status is AgentStatus.FINISHED
        result = record.result
        # Compensations ran for steps i+2, i+1, i in REVERSE order (the
        # effects of step i+3's transaction were undone by its abort —
        # it never committed, so it is never compensated).
        assert result["compensated_steps"] == [3, 2, 1]
        # The SRO space snapped back to the savepoint and re-advanced:
        # readings show the re-execution of steps 1..3.
        assert result["i"] == 4
        assert [r[0] for r in result["readings"]] == [0, 1, 2, 3]
        # Resource states: each node's bank holds exactly one committed
        # transfer (the re-execution's), i.e. R_i'' -> R_i''' happened.
        rows = []
        for name, bank in banks.items():
            rows.append([name, 1_000 - bank.peek("src")["balance"],
                         bank.peek("dst")["balance"]])
            assert bank.peek("dst")["balance"] == 10 if name != "N0" \
                else bank.peek("dst")["balance"] >= 10
        comp_metrics = world.metrics
        rows.append(["(compensation txs)",
                     comp_metrics.count("compensation.tx_committed"), ""])
        rows.append(["(rollback latency s)",
                     round(_latency(world), 4), ""])
        return rows

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    table = format_table(["node", "moved from src", "held by dst"], rows,
                         title="FIG3: partial rollback walkthrough "
                               "(savepoint before step i, abort in i+3)")
    record_table("fig3_rollback", table)


def _latency(world):
    from repro.bench.harness import rollback_latencies
    values = rollback_latencies(world)
    return values[0] if values else 0.0


def test_fig3_scenario_cost(benchmark):
    """Wall-clock cost of the full figure-3 scenario."""
    out = benchmark.pedantic(lambda: run_fig3()[1].status, rounds=5,
                             iterations=1)
    assert out is AgentStatus.FINISHED
