"""FIG2 — the rollback log structure of Figure 2.

Figure 2 shows the log extract ``... SP_k BOS_n OE_n,1 .. OE_n,p EOS_n
BOS_n+1 ...`` and specifies that compensation executes the operation
entries in reverse order OE_n,p .. OE_n,1.  The bench regenerates the
exact structure for varying p, verifies the reverse-order property, and
measures log operation cost and serialized entry sizes.
"""


from repro.log.entries import (
    BeginOfStepEntry,
    EndOfStepEntry,
    OperationEntry,
    OperationKind,
    SavepointEntry,
)
from repro.log.rollback_log import RollbackLog
from repro.bench import format_table
from repro.storage.serialization import size_of


def build_figure2(p: int) -> RollbackLog:
    log = RollbackLog()
    log.append(SavepointEntry(sp_id="sp-k", mode="state",
                              payload={"vector": list(range(8))}))
    log.append(BeginOfStepEntry(node="N", step_index=7))
    for i in range(1, p + 1):
        log.append(OperationEntry(op_kind=OperationKind.RESOURCE,
                                  op_name="bench.undo_transfer",
                                  params={"src": "a", "dst": "b",
                                          "amount": i},
                                  node="N", resource="bank"))
    log.append(EndOfStepEntry(node="N", step_index=7))
    log.append(BeginOfStepEntry(node="M", step_index=8))
    log.append(EndOfStepEntry(node="M", step_index=8))
    return log


def test_fig2_structure_and_reverse_order(benchmark, record_table):
    def sweep():
        rows = []
        for p in (1, 2, 4, 8, 16):
            log = build_figure2(p)
            log.validate()
            kinds = [e.kind.value for e in log.entries()]
            assert kinds == (["SP", "BOS"] + ["OE"] * p
                             + ["EOS", "BOS", "EOS"])
            # Pop back to the BOS of step n: operation entries must
            # surface in reverse order OE_n,p .. OE_n,1.
            for _ in range(2):  # EOS_{n+1}, BOS_{n+1}
                log.pop()
            log.pop()  # EOS_n
            amounts = []
            entry = log.pop()
            while isinstance(entry, OperationEntry):
                amounts.append(entry.params["amount"])
                entry = log.pop()
            assert amounts == list(range(p, 0, -1))
            fresh = build_figure2(p)
            rows.append([p, len(fresh.entries()), fresh.size_bytes(),
                         size_of(fresh.entries()[2])])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["ops per step (p)", "log entries", "log bytes",
         "one OE bytes"],
        rows, title="FIG2: rollback log structure and sizes")
    record_table("fig2_log", table)


def test_fig2_append_pop_throughput(benchmark):
    """Raw log operation cost (append + pop of 1000 entries)."""

    def work():
        log = RollbackLog()
        for i in range(500):
            log.append(BeginOfStepEntry(node="N", step_index=i))
            log.append(EndOfStepEntry(node="N", step_index=i))
        while len(log):
            log.pop()
        return log

    benchmark(work)
