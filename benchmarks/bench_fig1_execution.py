"""FIG1 — the execution model of Figure 1.

Figure 1 shows steps i..i+3: each step reads the agent state A_i from
stable storage, executes inside step transaction T_i against resource
state R_i -> R_i', and writes A_{i+1} durably on the next node.  The
bench regenerates that pipeline, checks its structural properties, and
measures forward-execution cost as the tour length grows.
"""


from repro import AgentStatus, RollbackMode
from repro.bench import format_table, make_tour_plan, run_tour
from repro.bench.workloads import TourPlan


def run_pipeline(n_steps: int, seed: int = 1):
    nodes = [f"n{i}" for i in range(min(n_steps, 6))]
    base = make_tour_plan(nodes, n_steps)
    plan = TourPlan(steps=base.steps, decision_node=base.decision_node,
                    rollback_to=None)  # pure forward execution
    return run_tour(plan, len(nodes), mode=RollbackMode.BASIC, seed=seed)


def test_fig1_pipeline_structure(benchmark, record_table):
    """Regenerate Figure 1's scenario; series over tour length."""

    def sweep():
        rows = []
        for n_steps in (2, 4, 8, 16):
            result = run_pipeline(n_steps)
            assert result.status is AgentStatus.FINISHED
            # one step transaction per step plus the decision step
            assert result.steps_committed == n_steps + 1
            assert result.rollbacks == 0
            rows.append([n_steps, result.steps_committed,
                         result.step_transfers, result.step_transfer_bytes,
                         round(result.sim_time, 4)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["steps", "step txs", "agent transfers", "bytes moved",
         "virtual time (s)"],
        rows,
        title="FIG1: forward execution pipeline (exactly-once protocol)")
    record_table("fig1_execution", table)


def test_fig1_forward_execution_cost(benchmark):
    """Wall-clock cost of simulating an 8-step tour."""
    result = benchmark.pedantic(lambda: run_pipeline(8), rounds=5,
                                iterations=1)
    assert result.status is AgentStatus.FINISHED
    benchmark.extra_info["virtual_time_s"] = result.sim_time
    benchmark.extra_info["step_txs"] = result.steps_committed
