"""EVAL-LOGGING — state vs transition logging for SRO images (§4.2).

"This can be done either by writing a complete image of the objects
into the log (state logging) or by writing differences of the object
states between adjacent savepoints (transition logging)."

The bench measures the trade-off: savepoint bytes in the log (transition
wins when little changes between savepoints; state wins when everything
changes) and SRO reconstruction cost (state is O(1) per restore,
transition folds the diff chain).
"""


from repro.bench import format_table
from repro.log.entries import BeginOfStepEntry, EndOfStepEntry, SavepointEntry
from repro.log.modes import LoggingMode, sro_diff
from repro.log.rollback_log import RollbackLog
from repro.storage.serialization import snapshot


def make_states(n_savepoints, total_keys, changed_per_step,
                value_bytes=2_000):
    """SRO evolution: ``changed_per_step`` of ``total_keys`` mutate."""
    states = []
    state = {f"k{i}": b"v" * value_bytes + bytes([i % 256])
             for i in range(total_keys)}
    for step in range(n_savepoints):
        state = dict(state)
        for j in range(changed_per_step):
            key = f"k{(step * changed_per_step + j) % total_keys}"
            state[key] = bytes(bytearray(b"c" * value_bytes)) + bytes(
                [step % 256, j % 256])
        states.append(snapshot(state))
    return states


def build_log(states, mode):
    log = RollbackLog(mode)
    previous = None
    for i, state in enumerate(states):
        if mode is LoggingMode.STATE or previous is None:
            payload = snapshot(state)
        else:
            payload = sro_diff(previous, state)
        log.append(SavepointEntry(sp_id=f"sp-{i}", mode=mode.value,
                                  payload=payload))
        log.append(BeginOfStepEntry(node="n", step_index=i))
        log.append(EndOfStepEntry(node="n", step_index=i))
        previous = state
    return log


def test_eval_logging_size_tradeoff(benchmark, record_table):
    def sweep():
        rows = []
        total_keys = 10
        for changed in (0, 1, 3, 10):
            states = make_states(8, total_keys, changed)
            state_log = build_log(states, LoggingMode.STATE)
            transition_log = build_log(states, LoggingMode.TRANSITION)
            # Both reconstruct identically.
            for i in (0, 4, 7):
                assert (state_log.reconstruct_sro(f"sp-{i}")
                        == transition_log.reconstruct_sro(f"sp-{i}"))
            rows.append([f"{changed}/{total_keys}",
                         state_log.size_bytes(),
                         transition_log.size_bytes(),
                         round(state_log.size_bytes()
                               / transition_log.size_bytes(), 2)])
        # Transition logging wins big for small change rates and loses
        # its edge as the whole state churns.
        ratios = [row[3] for row in rows]
        assert ratios[0] > 4
        assert ratios == sorted(ratios, reverse=True)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["keys changed per savepoint", "state-log bytes",
         "transition-log bytes", "state/transition ratio"],
        rows,
        title="EVAL-LOGGING: savepoint bytes, state vs transition "
              "logging (8 savepoints, 10 keys x 2KB)")
    record_table("logging_modes_size", table)


def test_eval_logging_restore_cost_state(benchmark):
    states = make_states(12, 10, 1)
    log = build_log(states, LoggingMode.STATE)
    benchmark(lambda: log.reconstruct_sro("sp-11"))


def test_eval_logging_restore_cost_transition(benchmark):
    states = make_states(12, 10, 1)
    log = build_log(states, LoggingMode.TRANSITION)
    benchmark(lambda: log.reconstruct_sro("sp-11"))
