"""EVAL-JOURNAL — write-ahead journal overhead and crash-resume cost.

The durability tentpole's performance claims, measured on the sharded
backend with the partition-keyed tour swarm the other evals use:

* **overhead** — the same seeded run journal-off vs journal-on (in-RAM
  and append-only file backends).  Group commit batches every payload
  record behind one fsync per epoch barrier, so the wall-clock ratio
  must stay small; the invariant half (identical outcomes, identical
  event totals — journaling must not *change* the run) is gated
  ``equal``.
* **resume** — kill the coordinator mid-barrier (torn commit marker),
  reopen the journal from disk and resume.  Records recovery-frontier
  stats, the resume wall-clock relative to a full uninterrupted run
  (replay re-executes the committed prefix, so the ratio is O(1)-ish,
  not free), and the outcome-identity verdict.

Emits ``benchmarks/results/BENCH_journal.json``; the bench-regression
gate (``compare_bench.py``) pins the invariants exactly and puts a
generous band on the wall-clock ratios.

``BENCH_QUICK=1`` shrinks the workload for smoke runs.
"""

import json
import os
import tempfile
import time

from repro import (
    FileJournal,
    ShardedWorld,
    WorldJournal,
    WorldKilled,
    resume_world,
)
from repro.bench import format_table
from repro.bench.workloads import BANK, TourAgent, make_tour_plan
from repro.journal import MemoryJournal
from repro.resources.bank import Bank, OverdraftPolicy

from bench_paths import results_dir

QUICK = bool(os.environ.get("BENCH_QUICK"))

N_SHARDS = 3
NODES_PER_SHARD = 3
N_NODES = NODES_PER_SHARD * N_SHARDS
N_AGENTS = 6 if QUICK else 24
N_STEPS = 4 if QUICK else 8
SRO_BALLAST = 10_000 if QUICK else 40_000
EPOCH = 1.0
SEED = 41
#: Lands on the second epoch barrier (the EPOCH-spaced grid starts at
#: 0.0), so recovery has one committed epoch behind the torn one.
KILL_AT = 0.5

RESULTS_DIR = results_dir()
JSON_PATH = RESULTS_DIR / "BENCH_journal.json"


def record_json(section, payload):
    """Merge one section into the shared JSON artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    data["quick_mode"] = QUICK
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def build_world(journal=None):
    world = ShardedWorld(n_shards=N_SHARDS, seed=SEED, epoch=EPOCH,
                         journal=journal)
    for i in range(N_NODES):
        node = world.add_node(f"n{i}")
        bank = Bank(BANK)
        bank.seed_account("merchant", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("escrow", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    return world


def launch_swarm(world):
    for a in range(N_AGENTS):
        home = a % N_SHARDS
        partition = [f"n{i}" for i in range(N_NODES)
                     if i % N_SHARDS == home]
        offset = (a // N_SHARDS) % len(partition)
        rotated = partition[offset:] + partition[:offset]
        plan = make_tour_plan(rotated, N_STEPS, mixed_fraction=0.25,
                              rollback_depth=N_STEPS - 1,
                              sro_ballast=SRO_BALLAST)
        world.launch(TourAgent(f"wj-{a}", plan),
                     at=plan.steps[0].node, method="run")


def run_once(journal=None, kill_at=None):
    """One seeded swarm run; returns (summary, run_s, killed)."""
    world = build_world(journal)
    launch_swarm(world)
    if kill_at is not None:
        world.kill_world(at=kill_at, phase="barrier")
    killed = False
    t0 = time.perf_counter()
    try:
        world.run()
    except WorldKilled:
        killed = True
    run_s = time.perf_counter() - t0
    summary = None
    if not killed:
        outcomes = world.outcomes()
        assert all(o["status"] == "finished" for o in outcomes.values())
        summary = (outcomes, world.counters(), world.events_processed(),
                   world.epochs_run)
    return summary, run_s, killed


def test_eval_journal_overhead(benchmark, record_table):
    def measure():
        baseline, base_s, _ = run_once()
        rows = [["off", round(base_s, 3), 1.0, 0, 0, 0]]
        verdicts = []
        stats = {}
        with tempfile.TemporaryDirectory() as tmp:
            backends = {
                "memory": lambda: MemoryJournal(),
                "file": lambda: FileJournal(
                    os.path.join(tmp, "bench.journal")),
            }
            for name, factory in backends.items():
                journal = WorldJournal(factory())
                summary, run_s, _ = run_once(journal)
                verdicts.append(summary == baseline)
                stats[name] = journal.stats()
                journal.close()
                rows.append([name, round(run_s, 3),
                             round(run_s / base_s, 2),
                             stats[name]["commits"],
                             stats[name]["records_written"],
                             stats[name]["bytes"]])
        return baseline, rows, all(verdicts), stats

    baseline, rows, identical, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    table = format_table(
        ["journal", "run (s)", "ratio", "commits", "records", "bytes"],
        rows,
        title=f"EVAL-JOURNAL overhead: {N_AGENTS} agents x {N_STEPS} "
              f"steps, {N_SHARDS} shards")
    record_table("journal_overhead", table)
    record_json("overhead", {
        "agents": N_AGENTS,
        "steps": N_STEPS,
        "shards": N_SHARDS,
        "epoch": EPOCH,
        "outcomes_identical": identical,
        "events_total": baseline[2],
        "epochs": baseline[3],
        "baseline_run_s": rows[0][1],
        "memory_run_s": rows[1][1],
        "memory_overhead_ratio": rows[1][2],
        "file_run_s": rows[2][1],
        "file_overhead_ratio": rows[2][2],
        "commits": stats["file"]["commits"],
        "records": stats["file"]["records_written"],
        "journal_bytes": stats["file"]["bytes"],
    })
    assert identical


def test_eval_journal_resume(benchmark, record_table):
    def measure():
        reference, full_s, _ = run_once()
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.journal")
            journal = WorldJournal(FileJournal(path))
            _, killed_s, killed = run_once(journal, kill_at=KILL_AT)
            assert killed
            journal.close()
            # A "new process": reopen the journal file and resume.
            t0 = time.perf_counter()
            journal = WorldJournal(FileJournal(path))
            recovered = journal.recover()
            world = resume_world(journal)
            replay_s = time.perf_counter() - t0
            world.run()
            resume_s = time.perf_counter() - t0
            summary = (world.outcomes(), world.counters(),
                       world.events_processed(), world.epochs_run)
            journal.close()
        return (reference, summary, full_s, killed_s, replay_s, resume_s,
                recovered)

    (reference, summary, full_s, killed_s, replay_s, resume_s,
     recovered) = benchmark.pedantic(measure, rounds=1, iterations=1)
    identical = summary == reference
    rows = [
        ["uninterrupted", round(full_s, 3)],
        ["journaled, killed mid-barrier", round(killed_s, 3)],
        ["recover + replay to frontier", round(replay_s, 3)],
        ["resume to completion", round(resume_s, 3)],
    ]
    table = format_table(
        ["phase", "wall (s)"], rows,
        title=f"EVAL-JOURNAL resume: kill at t={KILL_AT}, "
              f"frontier={recovered.frontier_barrier}")
    record_table("journal_resume", table)
    record_json("resume", {
        "kill_at": KILL_AT,
        "frontier_barrier": recovered.frontier_barrier,
        "torn_tail": recovered.torn_tail,
        "kept_records": recovered.kept_records,
        "discarded_records": recovered.discarded_records,
        "outcome_identical": identical,
        "full_run_s": round(full_s, 3),
        "replay_s": round(replay_s, 3),
        "resume_s": round(resume_s, 3),
        "resume_over_full_ratio": round(resume_s / full_s, 2),
    })
    assert identical
    assert recovered.torn_tail
