"""EVAL-CONCURRENCY — many agents, shared resources, overlapping rollbacks.

The paper's isolation claim (§4.3) under load: compensation
transactions interleave with other agents' step transactions without
ever exposing half-compensated state, and throughput degrades
gracefully with contention (immediate-restart lock policy).
"""


from repro import AgentStatus, RollbackMode
from repro.bench import format_table
from repro.bench.harness import build_tour_world
from repro.bench.stats import summarize
from repro.bench.workloads import TourAgent, make_tour_plan

N_NODES = 4
N_STEPS = 5


def run_swarm(n_agents, seed=40, mode=RollbackMode.OPTIMIZED):
    world = build_tour_world(N_NODES, seed=seed)
    nodes = [f"n{i}" for i in range(N_NODES)]
    records = []
    for a in range(n_agents):
        # Stagger start nodes so agents chase each other around the ring.
        rotated = nodes[a % N_NODES:] + nodes[:a % N_NODES]
        plan = make_tour_plan(rotated, N_STEPS, mixed_fraction=0.4,
                              rollback_depth=N_STEPS - 1)
        agent = TourAgent(f"swarm-{seed}-{a}", plan)
        records.append(world.launch(agent, at=plan.steps[0].node,
                                    method="run", mode=mode))
    world.run(max_events=5_000_000)
    return world, records


def test_eval_concurrency_scaling(benchmark, record_table):
    def sweep():
        rows = []
        for n_agents in (1, 2, 4, 8):
            world, records = run_swarm(n_agents)
            assert all(r.status is AgentStatus.FINISHED for r in records)
            assert all(r.rollbacks_completed == 1 for r in records)
            finish_times = [r.finished_at for r in records]
            conflicts = world.metrics.count("abort.lock-conflict")
            rows.append([n_agents, round(max(finish_times), 3),
                         round(summarize(finish_times).mean, 3),
                         conflicts,
                         world.metrics.count("compensation.tx_committed")])
        # All agents complete at every contention level.
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["agents", "makespan (s)", "mean finish (s)", "lock conflicts",
         "compensation txs"],
        rows,
        title="EVAL-CONCURRENCY: overlapping rollbacks on shared banks")
    record_table("concurrent_agents", table)
    makespans = [row[1] for row in rows]
    assert makespans == sorted(makespans)


def test_eval_concurrency_cost(benchmark):
    world_records = benchmark.pedantic(lambda: run_swarm(4), rounds=3,
                                       iterations=1)
    world, records = world_records
    assert all(r.status is AgentStatus.FINISHED for r in records)
