"""EVAL-LOGSIZE — migration payload reduction from itinerary integration.

Section 4.4.2's motivation: "attaching the rollback log to the agent
introduces some overhead to the migration because the log has to be
transferred additionally to the agent state".  Two reductions are
offered: fewer savepoint entries, and discarding rollback information
at sub-task boundaries.

The bench runs the same 12-step job three ways and reports the total
bytes moved by migrations and the final log size:

* ``flat``      — one monolithic task, savepoint after every step;
* ``flat-1sp``  — one monolithic task, single savepoint at the start;
* ``itinerary`` — 4 top-level sub-itineraries of 3 steps each (the log
  is truncated at each boundary; savepoints managed automatically).
"""


from repro import (
    AgentStatus,
    Itinerary,
    ItineraryAgent,
    StepEntry,
    SubItinerary,
    World,
    agent_compensation,
)
from repro.bench import format_table, make_tour_plan, run_tour
from repro.bench.harness import build_tour_world

N_NODES = 4
N_STEPS = 12
BALLAST = 8_000


@agent_compensation("logsize.tick")
def logsize_tick(wro, params, ctx):
    wro["ticks"] = wro.get("ticks", 0) + 1


class SegmentedAgent(ItineraryAgent):
    """12 steps in 4 top-level segments; same SRO payload as the tour."""

    def __init__(self, itinerary, agent_id):
        super().__init__(itinerary, agent_id)
        self.sro["ballast"] = b"s" * BALLAST

    def work(self, ctx):
        self.sro.setdefault("done", []).append(self.step_count)
        ctx.log_agent_compensation("logsize.tick", {})

    def itinerary_result(self):
        return {"done": len(self.sro.get("done", []))}


def run_flat(savepoint_every, seed=7):
    nodes = [f"n{i}" for i in range(N_NODES)]
    plan = make_tour_plan(nodes, N_STEPS, ace_fraction=1.0,
                          savepoint_every=savepoint_every,
                          rollback_depth=1, rollback_times=0,
                          sro_ballast=BALLAST)
    world = build_tour_world(N_NODES, seed=seed)
    result = run_tour(plan, N_NODES, seed=seed, world=world)
    return world, result


def run_itinerary(seed=7):
    world = World(seed=seed)
    for i in range(N_NODES):
        world.add_node(f"n{i}")
    itinerary = Itinerary()
    for segment in range(4):
        entries = [StepEntry("work", f"n{(segment * 3 + i) % N_NODES}")
                   for i in range(3)]
        itinerary.add(SubItinerary(f"segment-{segment}", entries))
    agent = SegmentedAgent(itinerary, f"segmented-{seed}")
    record = world.launch_itinerary(agent)
    world.run(max_events=1_000_000)
    return world, record


def test_logsize_itinerary_vs_flat(benchmark, record_table):
    def sweep():
        rows = []
        world_a, flat_every = run_flat(savepoint_every=1)
        assert flat_every.status is AgentStatus.FINISHED
        rows.append(["flat, savepoint per step",
                     world_a.metrics.count("savepoints.written"),
                     world_a.metrics.total_bytes("agent.transfers.step"),
                     0])
        world_b, flat_one = run_flat(savepoint_every=None)
        assert flat_one.status is AgentStatus.FINISHED
        rows.append(["flat, one savepoint",
                     world_b.metrics.count("savepoints.written"),
                     world_b.metrics.total_bytes("agent.transfers.step"),
                     0])
        world_c, segmented = run_itinerary()
        assert segmented.status is AgentStatus.FINISHED
        rows.append(["itinerary (4 segments)",
                     world_c.metrics.count("savepoints.written"),
                     world_c.metrics.total_bytes("agent.transfers.step"),
                     world_c.metrics.count("log.truncations")])
        # The itinerary run must move fewer bytes than the
        # savepoint-per-step run.
        assert rows[2][2] < rows[0][2]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "savepoints", "migration bytes",
         "log truncations"],
        rows,
        title="EVAL-LOGSIZE: migration payload, flat vs itinerary-managed "
              f"log ({N_STEPS} steps, {BALLAST}B SRO payload)")
    record_table("logsize_itinerary", table)


def test_logsize_growth_without_truncation(benchmark, record_table):
    """Per-migration payload grows linearly when nothing is discarded."""

    def sweep():
        rows = []
        for steps in (4, 8, 16, 24):
            nodes = [f"n{i}" for i in range(N_NODES)]
            plan = make_tour_plan(nodes, steps, ace_fraction=1.0,
                                  savepoint_every=1, rollback_depth=1,
                                  rollback_times=0, sro_ballast=BALLAST)
            world = build_tour_world(N_NODES, seed=8)
            result = run_tour(plan, N_NODES, seed=8, world=world)
            assert result.status is AgentStatus.FINISHED
            total = world.metrics.total_bytes("agent.transfers.step")
            rows.append([steps, total, total // max(1, steps)])
        growth = [row[2] for row in rows]
        assert growth == sorted(growth)  # average payload keeps growing
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["steps", "total migration bytes", "avg bytes per migration"],
        rows,
        title="EVAL-LOGSIZE: unbounded log growth without itinerary "
              "truncation (savepoint per step)")
    record_table("logsize_growth", table)
