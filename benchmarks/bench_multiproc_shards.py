"""EVAL-MULTIPROC-SHARDS — worker processes vs in-process shard kernels.

The ROADMAP's oldest open item: ``ShardedWorld`` runs its N kernels in
one Python process, so N-way *logical* concurrency uses one core.
``ProcShardedWorld`` moves each kernel into a worker process behind
the same lockstep epoch protocol; on a multi-core machine the epochs
execute on real cores in parallel and the same seeded swarm finishes
in a fraction of the wall-clock time — with byte-identical per-agent
outcomes and aggregate counters (the differential harness in
tests/test_multiproc_differential.py proves the equivalence; this
bench measures the speed).

The workload is the sharded swarm in its production shape: tours are
**partition-keyed** — each agent's itinerary stays on the nodes its
home shard hosts — so shards scale the way real shardings do (local
traffic, the bridge only carries the occasional stray hop at lower
shard counts).  The same 64 agents run at every shard count, on both
backends, and every configuration must produce identical per-agent
outcomes.

Emits ``benchmarks/results/BENCH_multiproc_shards.json``:

* ``speedup.speedup`` — in-process wall-clock / process-backed
  wall-clock for the run phase at ``workers`` shards.  **Hardware
  dependent**: >= 1.5 is asserted only when the machine actually has
  at least that many cores (a single-core container can only lose to
  IPC overhead — the JSON records ``cpu_count`` so the committed
  baseline and the regression gate stay honest about what they
  measured).
* ``speedup.outcomes_identical`` — per-agent outcomes, aggregate
  counters, event and epoch totals equal between the two backends
  (the invariant part, gated ``equal`` regardless of hardware).
* ``scaling.rows`` — both backends' wall-clock per shard count.
* ``entangled.*`` — the optimistic entangled-epoch schedule measured
  against the serial turn schedule: the same seeded fault-tolerant
  swarm (cross-shard tours under ``Protocol.FAULT_TOLERANT`` with
  step alternates and a mid-run ``kill_shard``) run twice on the
  process backend, once with ``lockstep="serial"`` and once with
  ``lockstep="optimistic"``.  ``outcomes_identical`` gates the
  invariant half (speculation must not change a single bit of the
  outcome surface); ``epochs_speculated`` / ``epochs_rolled_back`` /
  ``conflict_rate`` come from the ``spec.*`` counters in
  ``serialization_stats()`` — the seeded outage guarantees at least
  one real conflict-and-rollback, and the conflict rate must stay
  below 1.0 (most speculation survives).  ``optimistic_over_serial``
  (serial wall-clock / optimistic wall-clock) is the
  hardware-dependent half: >1 needs real cores.
* ``ipc.*`` — the zero-copy wire format measured against the pipe:
  the same swarm run twice on the process backend, once with
  ``ipc="pipe"`` (every barrier re-pickled through the Connection) and
  once with ``ipc="shm"`` (cached blobs framed through shared-memory
  rings).  Per-barrier byte accounting comes straight from the
  ``serialization_stats()`` IPC counters; ``zero_copy_unchanged``
  asserts the headline claim — with rings sized for the traffic the
  shm barrier copies **zero** bulk bytes (``ipc_bytes_copied == 0``,
  no spills), deterministically on any hardware.  ``shm_over_pipe``
  (pipe wall-clock / shm wall-clock) is the hardware-dependent half.

``BENCH_QUICK=1`` shrinks the workload for smoke runs.
"""

import json
import os
import time

from repro import ProcShardedWorld, ShardedWorld
from repro.bench import format_table
from repro.bench.workloads import BANK, TourAgent, make_tour_plan
from repro.resources.bank import Bank, OverdraftPolicy

from bench_paths import results_dir

QUICK = bool(os.environ.get("BENCH_QUICK"))

N_SHARDS = 2 if QUICK else 4
NODES_PER_SHARD = 3
N_NODES = NODES_PER_SHARD * N_SHARDS
N_AGENTS = 8 if QUICK else 64
N_STEPS = 4 if QUICK else 8
#: Inert agent payload: makes the per-step serialization work (capture,
#: stable-store sizing, savepoint snapshots) large enough that compute
#: dominates the per-epoch pipe exchange.
SRO_BALLAST = 20_000 if QUICK else 60_000
#: Barrier spacing.  The default (= network latency) is the right
#: lookahead for correctness tests; a partition-keyed workload needs
#: no cross-shard lookahead at all, so throughput runs use a coarse
#: grid — hundreds of kernel events per barrier exchange instead of
#: one or two.  Applied identically to both backends — the comparison
#: stays apples-to-apples and outcomes stay identical.
EPOCH = 1.0
SPEEDUP_TARGET = 1.5

RESULTS_DIR = results_dir()
JSON_PATH = RESULTS_DIR / "BENCH_multiproc_shards.json"


def record_json(section, payload):
    """Merge one section into the shared JSON artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    data["quick_mode"] = QUICK
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def build_world(world):
    for i in range(N_NODES):
        node = world.add_node(f"n{i}")
        bank = Bank(BANK)
        bank.seed_account("merchant", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("escrow", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    return world


def launch_swarm(world):
    """64 partition-keyed tours: agent a tours its home partition's
    nodes (co-located at N_SHARDS shards; stray cross-shard hops at
    lower shard counts go over the bridge — outcomes must not care)."""
    for a in range(N_AGENTS):
        home = a % N_SHARDS
        partition = [f"n{i}" for i in range(N_NODES)
                     if i % N_SHARDS == home]
        offset = (a // N_SHARDS) % len(partition)
        rotated = partition[offset:] + partition[:offset]
        plan = make_tour_plan(rotated, N_STEPS, mixed_fraction=0.25,
                              rollback_depth=N_STEPS - 1,
                              sro_ballast=SRO_BALLAST)
        agent = TourAgent(f"mp-{a}", plan)
        world.launch(agent, at=plan.steps[0].node, method="run")


def run_backend(backend, n_shards, seed=40):
    """Build + run the swarm; returns (summary, setup_s, run_s)."""
    t0 = time.perf_counter()
    if backend == "proc":
        world = build_world(ProcShardedWorld(n_shards=n_shards, seed=seed,
                                             epoch=EPOCH))
    else:
        world = build_world(ShardedWorld(n_shards=n_shards, seed=seed,
                                         epoch=EPOCH))
    launch_swarm(world)
    t1 = time.perf_counter()
    world.run()
    t2 = time.perf_counter()
    outcomes = world.outcomes()
    assert all(o["status"] == "finished" for o in outcomes.values())
    summary = (outcomes, world.counters(), world.events_processed(),
               world.epochs_run)
    if backend == "proc":
        world.close()
    return summary, t1 - t0, t2 - t1


def run_proc_ipc(ipc, seed=40):
    """One process-backend run at N_SHARDS with the given wire format.

    Returns (summary, ipc stats, run seconds, epochs).  Stats are reset
    first so the counters cover exactly this run (workers are fresh
    processes; only the coordinator's counters persist across runs).
    """
    from repro.storage import serialization

    serialization.reset_stats()
    world = build_world(ProcShardedWorld(n_shards=N_SHARDS, seed=seed,
                                         epoch=EPOCH, ipc=ipc))
    assert world.ipc == ipc  # shm must not have silently fallen back
    launch_swarm(world)
    t0 = time.perf_counter()
    world.run()
    run_s = time.perf_counter() - t0
    outcomes = world.outcomes()
    assert all(o["status"] == "finished" for o in outcomes.values())
    summary = (outcomes, world.counters(), world.events_processed(),
               world.epochs_run)
    stats = world.serialization_stats()
    epochs = world.epochs_run
    world.close()
    return summary, stats, run_s, epochs


def test_eval_ipc_wire_format(benchmark, record_table):
    def measure():
        pipe = run_proc_ipc("pipe")
        shm = run_proc_ipc("shm")
        return pipe, shm

    pipe, shm = benchmark.pedantic(measure, rounds=1, iterations=1)
    pipe_summary, pipe_stats, pipe_run, pipe_epochs = pipe
    shm_summary, shm_stats, shm_run, shm_epochs = shm
    # The wire format must be invisible to the computation.
    outcomes_identical = pipe_summary == shm_summary
    assert outcomes_identical
    assert pipe_epochs == shm_epochs
    # The zero-copy claim, hardware-independent: every bulk blob rode
    # a ring frame; nothing was re-serialised or copied in-band.
    zero_copy_unchanged = (shm_stats["ipc_bytes_copied"] == 0
                           and shm_stats["ring_spills"] == 0)
    assert zero_copy_unchanged
    assert shm_stats["frame_reused"] > 0

    def per_barrier(stats, key, epochs):
        return round(stats[key] / max(epochs, 1))

    rows = [
        ["pipe", round(pipe_run, 3),
         per_barrier(pipe_stats, "ipc_bytes_copied", pipe_epochs),
         0, 0, 0],
        ["shm", round(shm_run, 3),
         per_barrier(shm_stats, "ipc_bytes_copied", shm_epochs),
         per_barrier(shm_stats, "ipc_bytes_framed", shm_epochs),
         per_barrier(shm_stats, "ipc_bytes_control", shm_epochs),
         shm_stats["frame_reused"]],
    ]
    table = format_table(
        ["ipc", "run (s)", "copied B/barrier", "framed B/barrier",
         "control B/barrier", "frames"],
        rows,
        title=f"EVAL-IPC-WIRE-FORMAT: {N_AGENTS} agents x {N_STEPS} "
              f"steps at {N_SHARDS} shards, {pipe_epochs} barriers")
    record_table("multiproc_ipc", table)
    record_json("ipc", {
        "workers": N_SHARDS,
        "epochs": pipe_epochs,
        "pipe_run_s": round(pipe_run, 3),
        "shm_run_s": round(shm_run, 3),
        "shm_over_pipe": round(pipe_run / shm_run, 2),
        "pipe_copied_bytes_per_barrier":
            per_barrier(pipe_stats, "ipc_bytes_copied", pipe_epochs),
        "shm_copied_bytes_total": shm_stats["ipc_bytes_copied"],
        "shm_framed_bytes_per_barrier":
            per_barrier(shm_stats, "ipc_bytes_framed", shm_epochs),
        "shm_control_bytes_per_barrier":
            per_barrier(shm_stats, "ipc_bytes_control", shm_epochs),
        "shm_ring_spills": shm_stats["ring_spills"],
        "shm_frames": shm_stats["frame_reused"],
        "zero_copy_unchanged": zero_copy_unchanged,
        "outcomes_identical": outcomes_identical,
    })


#: Entangled-workload sizing: a ring of banked nodes, every tour
#: crossing shards each hop under the fault-tolerant protocol (quorum
#: claim reads against every replica — the schedule-sensitive reads
#: the optimistic detector validates).
FT_RING_NODES = 3 * N_SHARDS
FT_AGENTS = 4 if QUICK else 12
FT_STEPS = 3 if QUICK else 6


def build_ft_world(lockstep, seed=41):
    from repro import FTParams

    world = ProcShardedWorld(n_shards=N_SHARDS, seed=seed,
                             lockstep=lockstep,
                             ft_params=FTParams(takeover_timeout=0.05))
    ring = [f"n{i}" for i in range(FT_RING_NODES)]
    for name in ring:
        node = world.add_node(name)
        bank = Bank(BANK)
        bank.seed_account("merchant", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("escrow", 1_000_000,
                          overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    for i, name in enumerate(ring):
        # Round-robin placement puts the next two ring nodes on other
        # shards: takeover and diversion targets are cross-shard.
        world.set_alternates(name, ring[(i + 1) % len(ring)],
                             ring[(i + 2) % len(ring)])
    return world, ring


def run_entangled(lockstep, seed=41):
    """One FT swarm run; returns (summary, spec stats, run seconds)."""
    from repro.agent.packages import Protocol

    world, ring = build_ft_world(lockstep, seed=seed)
    # The outage the speculation must survive: shard 1 dies mid-swarm
    # and restarts, invalidating in-flight liveness and claim reads.
    world.kill_shard(1, at=0.08, restart_at=2.0)
    for a in range(FT_AGENTS):
        start = (3 * a) % len(ring)
        plan = make_tour_plan(
            [ring[(start + j) % len(ring)] for j in range(FT_STEPS)],
            FT_STEPS, mixed_fraction=0.25, rollback_depth=FT_STEPS - 1,
            sro_ballast=2_000)
        world.launch(TourAgent(f"ft-{a}", plan), at=plan.steps[0].node,
                     method="run", protocol=Protocol.FAULT_TOLERANT)
    t0 = time.perf_counter()
    world.run()
    run_s = time.perf_counter() - t0
    outcomes = world.outcomes()
    assert all(o["status"] == "finished" for o in outcomes.values())
    summary = (outcomes, world.counters(), world.events_processed(),
               world.epochs_run)
    stats = world.serialization_stats()
    world.close()
    spec = {key: stats[key] for key in stats if key.startswith("spec.")}
    return summary, spec, run_s


def test_eval_entangled_speculation(benchmark, record_table):
    def measure():
        serial = run_entangled("serial")
        optimistic = run_entangled("optimistic")
        return serial, optimistic

    serial, optimistic = benchmark.pedantic(measure, rounds=1,
                                            iterations=1)
    serial_summary, serial_spec, serial_run = serial
    opt_summary, opt_spec, opt_run = optimistic
    # The invariant half: speculation must not change a bit of the
    # outcome surface, and the serial schedule never speculates.
    outcomes_identical = serial_summary == opt_summary
    assert outcomes_identical
    assert serial_spec["spec.epochs_speculated"] == 0
    # The speculation really ran and most epochs survived it.  The
    # full-size swarm's seeded outage provably conflicts (the quick
    # smoke's 2-shard swarm is too small to race for claims).
    assert opt_spec["spec.epochs_speculated"] > 0
    assert opt_spec["spec.conflict_rate"] < 1.0
    if not QUICK:
        assert opt_spec["spec.epochs_rolled_back"] > 0
        assert opt_spec["spec.conflict_rate"] > 0.0

    rows = [
        ["serial", round(serial_run, 3), 0, 0, "-"],
        ["optimistic", round(opt_run, 3),
         opt_spec["spec.epochs_speculated"],
         opt_spec["spec.epochs_rolled_back"],
         round(opt_spec["spec.conflict_rate"], 4)],
    ]
    table = format_table(
        ["lockstep", "run (s)", "speculated", "rolled back",
         "conflict rate"],
        rows,
        title=f"EVAL-ENTANGLED-SPECULATION: {FT_AGENTS} FT agents x "
              f"{FT_STEPS} steps on {FT_RING_NODES} ring nodes, "
              f"{N_SHARDS} shards, kill+restart shard 1")
    record_table("multiproc_entangled", table)
    record_json("entangled", {
        "workers": N_SHARDS,
        "agents": FT_AGENTS,
        "steps": FT_STEPS,
        "serial_run_s": round(serial_run, 3),
        "optimistic_run_s": round(opt_run, 3),
        "optimistic_over_serial": round(serial_run / opt_run, 2),
        "epochs_speculated": opt_spec["spec.epochs_speculated"],
        "epochs_rolled_back": opt_spec["spec.epochs_rolled_back"],
        "shards_rolled_back": opt_spec["spec.shards_rolled_back"],
        "conflict_rate": round(opt_spec["spec.conflict_rate"], 4),
        "outcomes_identical": outcomes_identical,
    })


def test_eval_multiproc_speedup(benchmark, record_table):
    def measure():
        cpu_count = os.cpu_count() or 1
        rows = []
        summaries = {}
        shard_counts = (N_SHARDS,) if QUICK else (1, 2, N_SHARDS)
        for n_shards in shard_counts:
            in_summary, _in_setup, in_run = run_backend("inline", n_shards)
            p_summary, p_setup, p_run = run_backend("proc", n_shards)
            summaries[n_shards] = (in_summary, p_summary)
            rows.append([n_shards, round(in_run, 3), round(p_setup, 3),
                         round(p_run, 3), round(in_run / p_run, 2)])
        # The invariant half of the claim, at every shard count: same
        # outcomes, same counters, same event and epoch totals —
        # process workers change where the kernels run, not what they
        # compute.  And the shard count itself must not change
        # per-agent outcomes either (the PR-2 bridge invariant).
        outcomes_identical = all(
            in_s == p_s for in_s, p_s in summaries.values())
        assert outcomes_identical
        reference = summaries[shard_counts[0]][0][0]
        assert all(in_s[0] == reference
                   for in_s, _ in summaries.values())
        speedup = rows[-1][4]
        # The performance half is hardware-gated: demanding parallel
        # speedup from a single-core container would be dishonest, and
        # shared CI runners report cores they time-slice — so the hard
        # assert is opt-in (BENCH_ASSERT_SPEEDUP=1 on dedicated
        # hardware); the JSON always records the verdict and the
        # bench-regression gate guards against relative slides.
        target_met = None
        if cpu_count >= N_SHARDS and not QUICK:
            target_met = speedup >= SPEEDUP_TARGET
            if os.environ.get("BENCH_ASSERT_SPEEDUP"):
                assert target_met, (
                    f"{N_SHARDS} workers on {cpu_count} cores: "
                    f"{speedup:.2f}x < {SPEEDUP_TARGET}x")
        in_summary = summaries[N_SHARDS][0]
        return (cpu_count, rows, outcomes_identical, speedup, target_met,
                in_summary)

    (cpu_count, rows, outcomes_identical, speedup, target_met,
     in_summary) = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["shards", "in-process run (s)", "worker setup (s)",
         "worker run (s)", "speedup"],
        rows,
        title=f"EVAL-MULTIPROC-SHARDS: {N_AGENTS} agents x {N_STEPS} "
              f"steps, partition-keyed tours, {cpu_count} core(s)")
    record_table("multiproc_shards", table)
    record_json("speedup", {
        "cpu_count": cpu_count,
        "workers": N_SHARDS,
        "agents": N_AGENTS,
        "steps": N_STEPS,
        "sro_ballast": SRO_BALLAST,
        "epoch": EPOCH,
        "inproc_run_s": rows[-1][1],
        "proc_run_s": rows[-1][3],
        "speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_met": target_met,
        "outcomes_identical": outcomes_identical,
        "events_total": in_summary[2],
        "epochs": in_summary[3],
    })
    record_json("scaling", {
        "rows": [{"shards": r[0], "inproc_run_s": r[1],
                  "proc_setup_s": r[2], "proc_run_s": r[3],
                  "speedup": r[4]} for r in rows],
    })
