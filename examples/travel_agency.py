"""Travel booking with alternatives — flexible itineraries + rollback.

A trip-booking agent uses the itinerary DSL with preconditions as the
alternatives mechanism (ref [14]): it books a flight and a hotel inside
one "booking" sub-task; if the combination busts the budget, the agent
rolls back the whole booking sub-task, and on the retry the
preconditions steer it to the budget airline and guesthouse instead.

Everything the agent pays moves through real bank transfers with
registered resource compensations, so the rollback measurably refunds
the first attempt.

Run:  python examples/travel_agency.py
"""

from repro import (
    Bank,
    ItineraryAgent,
    RollbackMode,
    World,
    agent_compensation,
    resource_compensation,
)
from repro.itinerary import parse_itinerary

PRICES = {
    "premium-air": 700,
    "budget-air": 280,
    "grand-hotel": 450,
    "guesthouse": 150,
}


@resource_compensation("travel.refund")
def travel_refund(bank, params, ctx):
    bank.transfer(params["merchant"], "traveller", params["amount"],
                  compensating=True)


@agent_compensation("travel.cancel_booking")
def travel_cancel_booking(wro, params, ctx):
    bookings = dict(wro.get("bookings", {}))
    bookings.pop(params["kind"], None)
    wro["bookings"] = bookings
    wro["cancellations"] = wro.get("cancellations", 0) + 1


ITINERARY = """
I{ research{ scout/info },
   booking{ book_flight/airline  ?prefer_premium,
            book_flight/discount ?prefer_budget,
            book_hotel/hotel     ?prefer_premium,
            book_hotel/hostel    ?prefer_budget,
            check_budget/home },
   confirm{ confirm_trip/home } }
"""


class TravelAgent(ItineraryAgent):
    """Books a trip within budget, falling back after a rollback."""

    def __init__(self, agent_id, budget):
        super().__init__(parse_itinerary(ITINERARY), agent_id)
        self.sro["budget"] = budget

    # -- preconditions (the alternatives mechanism) ----------------------

    def prefer_premium(self):
        return not self.wro.get("cancellations")

    def prefer_budget(self):
        return bool(self.wro.get("cancellations"))

    # -- steps -------------------------------------------------------------

    def scout(self, ctx):
        self.sro["options"] = dict(PRICES)

    def _book(self, ctx, kind, offer):
        price = self.sro["options"][offer]
        bank = ctx.resource("bank")
        bank.transfer("traveller", offer, price)
        ctx.log_resource_compensation(
            "travel.refund", {"merchant": offer, "amount": price},
            resource="bank")
        bookings = dict(self.wro.get("bookings", {}))
        bookings[kind] = {"offer": offer, "price": price}
        self.wro["bookings"] = bookings
        ctx.log_agent_compensation("travel.cancel_booking",
                                   {"kind": kind})

    def book_flight(self, ctx):
        offer = {"airline": "premium-air",
                 "discount": "budget-air"}[ctx.node_name]
        self._book(ctx, "flight", offer)

    def book_hotel(self, ctx):
        offer = {"hotel": "grand-hotel",
                 "hostel": "guesthouse"}[ctx.node_name]
        self._book(ctx, "hotel", offer)

    def check_budget(self, ctx):
        spent = sum(b["price"] for b in self.wro["bookings"].values())
        if spent > self.sro["budget"]:
            # Bust: roll back the whole booking sub-task.  The refunds
            # and cancellations arrive through the compensations; the
            # preconditions then flip to the budget alternatives.
            self.rollback_scope(ctx, levels=0)

    def confirm_trip(self, ctx):
        self.wro["confirmed"] = True

    def itinerary_result(self):
        return {
            "bookings": self.wro.get("bookings", {}),
            "cancellations": self.wro.get("cancellations", 0),
            "confirmed": self.wro.get("confirmed", False),
        }


def main():
    world = World(seed=77)
    world.add_nodes("home", "info", "airline", "discount", "hotel",
                    "hostel")
    bank = Bank("bank")
    bank.seed_account("traveller", 1_500)
    for merchant in PRICES:
        bank.seed_account(merchant, 0)
    # One clearing bank reachable from every sales node.
    for node in ("airline", "discount", "hotel", "hostel"):
        world.node(node).share_resource(bank)
    world.node("home").add_resource(bank)

    agent = TravelAgent("traveller-1", budget=500)
    record = world.launch_itinerary(agent, mode=RollbackMode.OPTIMIZED)
    world.run()

    result = record.result
    print("status:        ", record.status.value)
    print("bookings:      ", result["bookings"])
    print("cancellations: ", result["cancellations"])
    print("rollbacks:     ", record.rollbacks_completed)
    print("traveller left:", bank.peek("traveller")["balance"])
    print("premium-air:   ", bank.peek("premium-air")["balance"],
          "(refunded)")
    print("budget-air:    ", bank.peek("budget-air")["balance"])

    assert record.status.value == "finished", record.failure
    assert result["confirmed"] is True
    assert result["cancellations"] == 2  # flight + hotel cancelled once
    assert result["bookings"]["flight"]["offer"] == "budget-air"
    assert result["bookings"]["hotel"]["offer"] == "guesthouse"
    # First attempt fully refunded; only the budget trip was paid.
    assert bank.peek("premium-air")["balance"] == 0
    assert bank.peek("grand-hotel")["balance"] == 0
    assert bank.peek("traveller")["balance"] == 1_500 - 280 - 150
    print("OK: budget alternatives booked after the rollback refunded "
          "the premium attempt.")


if __name__ == "__main__":
    main()
