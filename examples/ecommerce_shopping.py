"""E-commerce shopping agent — the paper's motivating scenario.

An agent carries digital cash (Chaum-style coins with serial numbers),
buys goods at two shops, then decides the combined deal is bad and
rolls back.  The example demonstrates every compensation subtlety of
Section 3.2:

* the refunds return *equivalent* cash — same value, **different
  serial numbers** (the purse is weakly reversible; a before-image
  would resurrect retired serials);
* one shop charges a **refund fee** inside its cash window, so the
  agent comes back poorer — information produced *by* the rollback;
* the other shop's cash window has expired, so the agent receives a
  **credit note** instead of coins;
* money is conserved across the whole ordeal (banks + mint float +
  live coins are audited before and after).

Run:  python examples/ecommerce_shopping.py
"""

from repro import (
    Bank,
    EconomyAuditor,
    Mint,
    MobileAgent,
    RollbackMode,
    Shop,
    World,
    mixed_compensation,
)
from repro.resources.cash import purse_value
from repro.resources.shop import RefundPolicy


# -- compensating operations ----------------------------------------------------

@mixed_compensation("shopping.return_purchase")
def return_purchase(wro, shop, params, ctx):
    """Return the goods bought under ``params['receipt_id']``.

    A mixed compensation entry: it needs the shop (restock, pay the
    refund) *and* the agent's weakly reversible space (drop the goods,
    bank the refund coins or the credit note).  The refund outcome
    depends on the shop's policy and on *when* the compensation runs —
    the paper's time-dependent reimbursement.
    """
    receipt_id = params["receipt_id"]
    coins, note, fee = shop.refund(receipt_id, ctx.now)
    goods = [g for g in wro.get("goods", []) if g["receipt"] != receipt_id]
    wro["goods"] = goods
    wro["purse"] = list(wro.get("purse", [])) + list(coins)
    if note is not None:
        wro["credit_notes"] = list(wro.get("credit_notes", [])) + [note]
    wro["fees_paid"] = wro.get("fees_paid", 0) + fee


# -- the agent ---------------------------------------------------------------------

class ShoppingAgent(MobileAgent):
    """Buy a book and a record, then reconsider the whole trip."""

    def withdraw_cash(self, ctx):
        bank = ctx.resource("bank")
        mint = ctx.resource("mint")
        bank.withdraw("me", 300)
        mint.fund(300)
        self.wro["purse"] = mint.issue(100, 3)  # three 100-cent coins
        # Deliberately no compensation entry: the agent treats its cash
        # withdrawal as final (it can redeposit later by itself).
        ctx.savepoint("cash-in-hand")
        ctx.goto("bookshop", "buy_book")

    def _pay(self, ctx, shop_name, item):
        shop = ctx.resource(shop_name)
        purse = list(self.wro["purse"])
        price = shop.price_of(item)
        # Spend coins covering the price; change comes back as a fresh coin.
        paying, rest, total = [], [], 0
        for coin in purse:
            if total < price:
                paying.append(coin)
                total += coin.value
            else:
                rest.append(coin)
        receipt, change = shop.buy(item, 1, paying, ctx.now)
        self.wro["purse"] = rest + change
        self.wro.setdefault("goods", []).append(
            {"item": item, "receipt": receipt.receipt_id})
        ctx.log_mixed_compensation(
            "shopping.return_purchase", {"receipt_id": receipt.receipt_id},
            resource=shop_name)

    def _rolled_back_already(self) -> bool:
        # Rollback leaves its traces only in the weakly reversible
        # space: fees charged or credit notes received.
        return bool(self.wro.get("fees_paid")
                    or self.wro.get("credit_notes"))

    def buy_book(self, ctx):
        if not self._rolled_back_already():
            self._pay(ctx, "bookshop", "book")
        ctx.goto("recordshop", "buy_record")

    def buy_record(self, ctx):
        if not self._rolled_back_already():
            self._pay(ctx, "recordshop", "record")
        ctx.goto("home", "evaluate")

    def evaluate(self, ctx):
        if not self._rolled_back_already():
            # First pass: the agent's program logic decides the
            # purchases should be undone.
            ctx.rollback("cash-in-hand")
        ctx.finish({
            "purse_value": purse_value(self.wro["purse"]),
            "purse_serials": sorted(c.serial for c in self.wro["purse"]),
            "goods": self.wro.get("goods", []),
            "credit_notes": [n.value for n in
                             self.wro.get("credit_notes", [])],
            "fees_paid": self.wro.get("fees_paid", 0),
        })


def main():
    world = World(seed=7)
    world.add_nodes("home", "bookshop", "recordshop")

    bank = Bank("bank")
    bank.seed_account("me", 1000)
    world.node("home").add_resource(bank)
    mint = Mint("mint")
    world.node("home").add_resource(mint)
    # Shops share the mint for coin handling (one currency zone); it is
    # reachable from their nodes as a shared resource.
    bookshop = Shop("bookshop", mint,
                    RefundPolicy(cash_window=3600.0, fee=10))
    bookshop.stock_item("book", 5, 120)
    world.node("bookshop").add_resource(bookshop)
    world.node("bookshop").share_resource(mint)
    recordshop = Shop("recordshop", mint,
                      RefundPolicy(cash_window=0.0))  # window already over
    recordshop.stock_item("record", 2, 80)
    world.node("recordshop").add_resource(recordshop)
    world.node("recordshop").share_resource(mint)

    auditor = EconomyAuditor(banks=[bank], mints=[mint])
    supply_before = auditor.money_supply()

    agent = ShoppingAgent("shopper")
    serials_before_rollback: list[str] = []

    record = world.launch(agent, at="home", method="withdraw_cash",
                          mode=RollbackMode.BASIC)
    world.run()

    result = record.result
    supply_after = auditor.money_supply()

    print("agent status:        ", record.status.value)
    print("goods kept:          ", result["goods"])
    print("purse value (cents): ", result["purse_value"])
    print("purse serials:       ", result["purse_serials"])
    print("refund fees paid:    ", result["fees_paid"])
    print("credit notes (value):", result["credit_notes"])
    print("book stock restored: ", bookshop.peek(("stock", "book")))
    print("record stock restored:", recordshop.peek(("stock", "record")))
    print("money supply before: ", supply_before)
    print("money supply after:  ", supply_after)

    # Section 3.2's claims, machine-checked:
    assert result["goods"] == [], "purchases were compensated"
    assert result["fees_paid"] == 10, "bookshop charged its refund fee"
    assert result["credit_notes"] == [80], "recordshop issued a credit note"
    # value: 300 withdrawn - 120 book (refunded -10 fee) - 80 record
    # (credit note, not cash) => purse = 300 - 10 - 80 = 210
    assert result["purse_value"] == 210
    assert supply_before == supply_after, "money is conserved"
    print("OK: equivalent-state compensation, fees, credit notes, "
          "conservation all hold.")


if __name__ == "__main__":
    main()
