"""Fault injection: rollback survives node crashes (Section 4.3).

The paper's guarantee: "assuming that node crashes and network crashes
are only temporary [...] the algorithm ensures that all steps which
have to be rolled back are eventually rolled back and finally, the
state of the strongly reversible objects is restored as well."

Part 1 runs a tour whose rollback path is bombarded with node outages:
every compensation transaction's node crashes while the work is in
flight, aborting the transaction; the agent package stays in the
durable input queue and the compensation is retried at recovery.  The
rollback completes with exactly the right final state, just later.

Part 2 demonstrates the fault-tolerant extension: the node holding the
agent crashes *for a long time* mid-journey, and a shadow copy on an
alternate node takes over (step ledger arbitration keeps the execution
exactly-once).

Run:  python examples/fault_injection.py
"""

from repro import Bank, MobileAgent, RollbackMode, World
from repro.agent.packages import Protocol
from repro.bench import make_tour_plan, run_tour
from repro.bench.harness import build_tour_world
from repro.sim.failures import CrashPlan


def part1_crashes_during_rollback():
    nodes = [f"n{i}" for i in range(5)]
    plan = make_tour_plan(nodes, 6, mixed_fraction=0.5, rollback_depth=5)

    # Clean run for reference.
    clean = run_tour(plan, 5, mode=RollbackMode.BASIC, seed=3)

    # Same run, but every node suffers repeated short outages.
    world = build_tour_world(5, seed=3)
    outages = [CrashPlan(node=f"n{i}", at=0.05 + 0.04 * i, duration=0.25)
               for i in range(5)]
    outages += [CrashPlan(node=f"n{i}", at=0.6 + 0.05 * i, duration=0.2)
                for i in range(5)]
    world.failures.apply_plan(outages)
    crashed = run_tour(plan, 5, mode=RollbackMode.BASIC, seed=3,
                       world=world)

    print("--- part 1: crashes during execution and rollback ---")
    print(f"clean run:   status={clean.status.value} "
          f"sim_time={clean.sim_time:.3f}s rollbacks={clean.rollbacks}")
    print(f"crashed run: status={crashed.status.value} "
          f"sim_time={crashed.sim_time:.3f}s rollbacks={crashed.rollbacks} "
          f"(crashes injected: {world.failures.crashes_injected}, "
          f"tx aborted by crashes: "
          f"{world.metrics.count('crash.tx_aborted')})")
    assert crashed.status.value == "finished"
    assert crashed.rollbacks == clean.rollbacks == 1
    # The final agent state is identical; only the time differs.
    assert crashed.result == clean.result, (crashed.result, clean.result)
    assert crashed.sim_time > clean.sim_time
    print("OK: rollback completed despite the outages, same final state.")


class Courier(MobileAgent):
    """Carries a payment across nodes (used for the FT takeover demo)."""

    def hop(self, ctx):
        hops = self.sro.setdefault("hops", [])
        hops.append(ctx.node_name)
        if len(hops) == 1:
            ctx.goto("relay", "hop")
        elif len(hops) == 2:
            ctx.goto("destination", "deliver")
        else:  # pragma: no cover
            ctx.finish(hops)

    def deliver(self, ctx):
        bank = ctx.resource("bank")
        bank.transfer("escrow", "payee", 75)
        ctx.finish({"hops": self.sro["hops"], "delivered": 75})


def part2_ft_takeover():
    world = World(seed=9, ft_takeover_timeout=0.2)
    world.add_nodes("source", "relay", "relay-backup", "destination")
    bank = Bank("bank")
    bank.seed_account("escrow", 100)
    bank.seed_account("payee", 0)
    world.node("destination").add_resource(bank)
    # The backup node shadows step executions of the relay.
    world.ft.set_alternates("relay", "relay-backup")

    # The relay crashes just after the agent's package lands there and
    # stays down far beyond the takeover timeout.
    world.failures.apply_plan([CrashPlan(node="relay", at=0.08,
                                         duration=30.0)])

    agent = Courier("courier")
    record = world.launch(agent, at="source", method="hop",
                          protocol=Protocol.FAULT_TOLERANT)
    world.run(until=35.0)
    world.run()

    print("--- part 2: fault-tolerant takeover (ref [11]) ---")
    print(f"status:     {record.status.value}")
    print(f"result:     {record.result}")
    print(f"promotions: {world.ft.promotions}, "
          f"stale discarded: {world.metrics.count('ft.stale_discarded')}")
    print(f"payee balance: {bank.peek('payee')['balance']}")
    assert record.status.value == "finished"
    assert record.result["hops"][1] == "relay-backup", record.result
    assert world.ft.promotions >= 1
    # Exactly-once: the transfer happened exactly once even though the
    # relay eventually recovers and finds its stale package.
    assert bank.peek("payee")["balance"] == 75
    print("OK: alternate node took over; effects exactly once.")


if __name__ == "__main__":
    part1_crashes_during_rollback()
    print()
    part2_ft_takeover()
