"""Active messaging — retractable progress reports.

The paper's introduction names active messaging among the application
areas needing exactly-once agents.  A monitoring agent tours a server
fleet, posting findings to a message board on the operations hub.  When
it discovers its earlier readings were taken with a mis-calibrated
probe, it rolls back the whole measurement pass: the unread postings
are *retracted* by the compensating operations, and the re-executed
pass posts corrected readings.

A second part shows the compensation window closing: once the operator
has read a message, retraction fails (information escaped), so the
rollback can no longer cross that posting.

Run:  python examples/active_messaging.py
"""

from repro import (
    AgentStatus,
    DataStore,
    MessageBoard,
    MobileAgent,
    RollbackMode,
    World,
    agent_compensation,
    resource_compensation,
)
from repro.node.runtime import RetryPolicy
from repro.tx.manager import Transaction


@resource_compensation("monitor.retract_report")
def retract_report(board, params, ctx):
    board.retract(params["message_id"])


@agent_compensation("monitor.recalibrate")
def recalibrate(wro, params, ctx):
    wro["calibration"] = "fixed"
    wro["retracted_reports"] = wro.get("retracted_reports", 0) + 1


class MonitorAgent(MobileAgent):
    """Measures each server, reports to the hub, sanity-checks last."""

    SERVERS = ("web-1", "web-2")

    def begin(self, ctx):
        ctx.savepoint("pass-start")
        ctx.goto("web-1", "measure")

    def measure(self, ctx):
        store = ctx.resource("telemetry")
        raw = store.get("load")["value"]
        if self.wro.get("calibration") != "fixed":
            raw = raw * 10  # the mis-calibrated probe inflates readings
        self.sro.setdefault("readings", []).append((ctx.node_name, raw))
        ctx.goto("hub", "report")

    def report(self, ctx):
        board = ctx.resource("board")
        node, value = self.sro["readings"][-1]
        message_id = board.post("load-reports",
                                {"server": node, "load": value},
                                sender=self.agent_id)
        ctx.log_resource_compensation("monitor.retract_report",
                                      {"message_id": message_id},
                                      resource="board")
        ctx.log_agent_compensation("monitor.recalibrate", {})
        visited = [n for n, _ in self.sro["readings"]]
        remaining = [s for s in self.SERVERS if s not in visited]
        if remaining:
            ctx.goto(remaining[0], "measure")
        else:
            ctx.goto("hub", "sanity_check")

    def sanity_check(self, ctx):
        suspicious = [r for r in self.sro["readings"] if r[1] > 100]
        if suspicious and self.wro.get("calibration") != "fixed":
            # Readings are impossible: roll the whole pass back.  The
            # compensations retract the unread reports and note the
            # recalibration in the weakly reversible space.
            ctx.rollback("pass-start")
        ctx.finish({
            "readings": list(self.sro["readings"]),
            "calibration": self.wro.get("calibration", "factory"),
            "retracted": self.wro.get("retracted_reports", 0),
        })


def build_world():
    world = World(seed=99,
                  retry_policy=RetryPolicy(max_attempts=5, backoff=0.02))
    world.add_nodes("hub", "web-1", "web-2")
    board = MessageBoard("board")
    world.node("hub").add_resource(board)
    for name, load in (("web-1", 42), ("web-2", 57)):
        store = DataStore("telemetry")
        store.seed(("rec", "load"), {"value": load})
        world.node(name).add_resource(store)
    return world, board


def part1_retract_and_remeasure():
    world, board = build_world()
    agent = MonitorAgent("monitor-1")
    record = world.launch(agent, at="hub", method="begin",
                          mode=RollbackMode.OPTIMIZED)
    world.run()
    result = record.result
    print("--- part 1: bad pass retracted, clean pass posted ---")
    print("status:    ", record.status.value)
    print("readings:  ", result["readings"])
    print("board now: ", board.message_count("load-reports"), "reports")
    print("retracted: ", result["retracted"])
    assert record.status is AgentStatus.FINISHED
    assert result["calibration"] == "fixed"
    assert [value for _, value in result["readings"]] == [42, 57]
    assert board.message_count("load-reports") == 2  # only clean reports
    assert result["retracted"] == 2
    print("OK: the mis-calibrated pass left no trace on the board.")


def part2_read_messages_cannot_be_retracted():
    world, board = build_world()
    agent = MonitorAgent("monitor-2")
    record = world.launch(agent, at="hub", method="begin",
                          mode=RollbackMode.OPTIMIZED)

    # The operator reads the board while the agent is still touring —
    # after that, retraction of the read reports is impossible.
    def operator_reads():
        t = Transaction("operator", "hub")
        board.read_topic(t, "load-reports", reader="operator")
        t.commit()

    world.sim.schedule(0.16, operator_reads)
    world.run()
    print()
    print("--- part 2: read reports close the compensation window ---")
    print("status: ", record.status.value)
    print("failure:", record.failure)
    assert record.status is AgentStatus.FAILED
    assert "already read" in record.failure
    print("OK: rollback correctly refused — the information escaped.")


if __name__ == "__main__":
    part1_retract_and_remeasure()
    part2_read_messages_cannot_be_retracted()
