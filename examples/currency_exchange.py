"""Currency exchange — why mixed compensation entries exist.

Section 4.4.1's example: an agent changes USD into EUR at an exchange.
Compensating the conversion needs (a) the EUR coins in the agent's
weakly reversible purse, (b) the place where the returned USD must go
(also the purse), and (c) the exchange resource — so the agent must be
co-located with the resource: a *mixed* compensation entry.

The example runs the same scenario twice, with the basic and the
optimized rollback mechanism, and shows that even the optimized
mechanism must transfer the agent to the exchange node for this step —
while a sibling step that only moved money between accounts (pure
resource compensation) costs no transfer under the optimized mechanism.

Run:  python examples/currency_exchange.py
"""

from repro import (
    Bank,
    CurrencyExchange,
    Mint,
    MobileAgent,
    RollbackMode,
    World,
    mixed_compensation,
    resource_compensation,
)
from repro.resources.cash import purse_value


@resource_compensation("fx.undo_transfer")
def undo_transfer(bank, params, ctx):
    bank.transfer(params["dst"], params["src"], params["amount"],
                  compensating=True)


@mixed_compensation("fx.change_back")
def change_back(wro, exchange, params, ctx):
    """Change the EUR in the purse back into USD (new serials!)."""
    eur_coins = [c for c in wro.get("purse", []) if c.currency == "EUR"]
    other = [c for c in wro.get("purse", []) if c.currency != "EUR"]
    usd_coins = exchange.convert(eur_coins, "USD")
    wro["purse"] = other + usd_coins
    wro["conversions_undone"] = wro.get("conversions_undone", 0) + 1


class Changer(MobileAgent):
    def fund(self, ctx):
        bank = ctx.resource("bank")
        mint = ctx.resource("mint-usd")
        bank.withdraw("traveller", 200)
        mint.fund(200)
        self.wro["purse"] = mint.issue(200, 1)
        ctx.savepoint("funded")
        ctx.goto("branch", "move_money")

    def move_money(self, ctx):
        # A step whose compensation is a pure resource compensation
        # entry: under the optimized mechanism the agent never returns
        # here during rollback.
        bank = ctx.resource("branch-bank")
        bank.transfer("ops", "reserve", 50)
        ctx.log_resource_compensation(
            "fx.undo_transfer",
            {"src": "ops", "dst": "reserve", "amount": 50},
            resource="branch-bank")
        ctx.goto("exchange", "change_money")

    def change_money(self, ctx):
        if self.wro.get("conversions_undone"):
            ctx.goto("home", "reconsider")  # second pass: skip
            return
        exchange = ctx.resource("exchange")
        usd = [c for c in self.wro["purse"] if c.currency == "USD"]
        rest = [c for c in self.wro["purse"] if c.currency != "USD"]
        eur = exchange.convert(usd, "EUR")
        self.wro["purse"] = rest + eur
        ctx.log_mixed_compensation("fx.change_back", {},
                                   resource="exchange")
        ctx.goto("home", "reconsider")

    def reconsider(self, ctx):
        if not self.wro.get("conversions_undone"):
            ctx.rollback("funded")
        ctx.finish({
            "purse_currencies": sorted({c.currency
                                        for c in self.wro["purse"]}),
            "purse_value": purse_value(self.wro["purse"], "USD"),
            "serials": sorted(c.serial for c in self.wro["purse"]),
        })


def build_world(seed):
    world = World(seed=seed)
    world.add_nodes("home", "branch", "exchange")
    bank = Bank("bank")
    bank.seed_account("traveller", 1000)
    world.node("home").add_resource(bank)
    mint_usd = Mint("mint-usd", "USD")
    world.node("home").add_resource(mint_usd)
    branch_bank = Bank("branch-bank")
    branch_bank.seed_account("ops", 500)
    branch_bank.seed_account("reserve", 500)
    world.node("branch").add_resource(branch_bank)
    mint_eur = Mint("mint-eur", "EUR")
    mint_eur.seed("float", 10_000)  # exchange reserves
    exchange = CurrencyExchange("exchange",
                                {"USD": mint_usd, "EUR": mint_eur})
    exchange.set_rate("USD", "EUR", 9, 10)  # 1 USD = 0.9 EUR
    world.node("exchange").add_resource(exchange)
    world.node("exchange").share_resource(mint_usd)
    world.node("exchange").share_resource(mint_eur)
    return world


def run(mode):
    world = build_world(seed=11)
    record = world.launch(Changer(f"changer-{mode.value}"), at="home",
                          method="fund", mode=mode)
    world.run()
    return world, record


def main():
    for mode in (RollbackMode.BASIC, RollbackMode.OPTIMIZED):
        world, record = run(mode)
        transfers = world.metrics.count("agent.transfers.compensation")
        ships = world.metrics.count("net.messages.rce-list")
        print(f"[{mode.value:9s}] status={record.status.value} "
              f"purse={record.result['purse_value']} USD "
              f"agent-transfers-for-rollback={transfers} "
              f"rce-lists-shipped={ships}")
        assert record.result["purse_currencies"] == ["USD"]
        if mode is RollbackMode.BASIC:
            # Basic: agent visits exchange AND branch on the way back.
            assert transfers == 2, transfers
        else:
            # Optimized: agent goes to the exchange (mixed entry) but
            # the branch transfer is compensated by a shipped RCE list.
            assert transfers == 1, transfers
            assert ships == 1, ships
    print("OK: mixed compensation forces exactly the transfers the "
          "paper predicts.")


if __name__ == "__main__":
    main()
