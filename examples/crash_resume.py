"""Crash-resume: a coordinator dies mid-run and resumes from its journal.

A sharded deployment journals its execution to an append-only file —
the seeded configuration, every setup op, and one group-committed
marker per epoch barrier.  The coordinator is hard-killed mid-barrier
(the worst spot: the epoch ran, but its commit marker is physically
torn and the bridge never scattered).  A "new process" then reopens
the journal, discards the torn tail, rebuilds the world from the
journaled inputs, deterministically replays to the last committed
barrier, verifies the committed digest, and runs the continuation.

Because re-execution is bit-deterministic, the resumed run finishes
with exactly the outcomes, bank balances and exactly-once ledger state
of a run that was never interrupted — shown side by side at the end.

Run:  python examples/crash_resume.py
"""

import os
import tempfile

from repro import (
    AgentStatus,
    Bank,
    FTParams,
    FileJournal,
    MobileAgent,
    ShardedWorld,
    WorldJournal,
    WorldKilled,
    resume_world,
)
from repro.agent.packages import Protocol
from repro.compensation import resource_compensation
from repro.resources.bank import OverdraftPolicy

N_SHARDS = 3
N_NODES = 9
RING = [f"dc{i % N_SHARDS}-n{i // N_SHARDS}" for i in range(N_NODES)]


@resource_compensation("resume.undo_transfer")
def undo_transfer(bank, params, ctx):
    bank.transfer(params["dst"], params["src"], params["amount"],
                  compensating=True)


class PaymentAgent(MobileAgent):
    """Tours its plan, moving 10 units a->b at every node it visits."""

    def __init__(self, agent_id, plan):
        super().__init__(agent_id)
        self.plan = list(plan)
        self.sro["pos"] = 0

    def step(self, ctx):
        pos = self.sro["pos"]
        bank = ctx.resource("bank")
        bank.transfer("a", "b", 10)
        ctx.log_resource_compensation(
            "resume.undo_transfer",
            {"src": "a", "dst": "b", "amount": 10}, resource="bank")
        self.sro["pos"] = pos + 1
        if pos + 1 < len(self.plan):
            ctx.goto(self.plan[pos + 1], "step")
        else:
            ctx.finish({"visited": self.sro["pos"]})


def build_world(journal=None):
    world = ShardedWorld(n_shards=N_SHARDS, seed=11, journal=journal,
                         ft_params=FTParams(takeover_timeout=0.05))
    for i, name in enumerate(RING):
        node = world.add_node(name, shard=i % N_SHARDS)
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    for i, name in enumerate(RING):
        world.set_alternates(name, RING[(i + 1) % N_NODES],
                             RING[(i + 2) % N_NODES])
    return world


def launch(world):
    records = []
    for a in range(4):
        start = 3 * (a % 3)
        plan = [RING[(start + j) % N_NODES] for j in range(4)]
        agent = PaymentAgent(f"payment-{a}", plan)
        records.append(world.launch(agent, at=plan[0], method="step",
                                    protocol=Protocol.FAULT_TOLERANT))
    return records


def summarize(world):
    return {
        "outcomes": {agent_id: record.status.value
                     for agent_id, record in sorted(world.agents.items())},
        "debits": {
            name: 1_000
            - world.node(name).get_resource("bank").peek("a")["balance"]
            for name in RING},
        "ledger_agrees": world.ledger_quorum_agrees(),
    }


def main():
    tmp = tempfile.mkdtemp(prefix="repro-journal-")
    path = os.path.join(tmp, "world.journal")

    # --- original run: journaled, killed mid-barrier ----------------------
    journal = WorldJournal(FileJournal(path))
    world = build_world(journal)
    launch(world)
    world.kill_world(at=0.07, phase="barrier")
    print("--- crash-resume: journal to disk, kill mid-barrier, resume ---")
    try:
        world.run(until=30.0)
        raise SystemExit("the kill never fired")
    except WorldKilled as kill:
        print(f"coordinator killed at barrier {kill.barrier:.3f} "
              f"(phase={kill.phase}) — commit marker torn")
    journal.close()
    print(f"journal on disk: {os.path.getsize(path)} bytes")

    # --- resume in a "new process": reopen the file, rebuild, replay ------
    journal = WorldJournal(FileJournal(path))
    recovered = journal.recover()
    print(f"recovery frontier: barrier {recovered.frontier_barrier:.3f} "
          f"(torn tail discarded: {recovered.torn_tail})")
    resumed = resume_world(journal)
    resumed.run(until=30.0)
    resumed_summary = summarize(resumed)
    stats = journal.stats()
    journal.close()

    # --- reference: the same program, never interrupted -------------------
    reference = build_world()
    launch(reference)
    reference.run(until=30.0)
    reference_summary = summarize(reference)

    for agent_id, status in resumed_summary["outcomes"].items():
        print(f"{agent_id}: {status} (resumed) / "
              f"{reference_summary['outcomes'][agent_id]} (uninterrupted)")
    print(f"total debits: {sum(resumed_summary['debits'].values())} "
          f"(resumed) / {sum(reference_summary['debits'].values())} "
          f"(uninterrupted)")
    print(f"ledger replicas agree after resume: "
          f"{resumed_summary['ledger_agrees']}")
    print(f"journal after completion: {stats['commits']} commits, "
          f"{stats['records_written']} records")

    assert resumed_summary == reference_summary
    assert all(record.status is AgentStatus.FINISHED
               for record in resumed.agents.values())
    os.remove(path)
    os.rmdir(tmp)
    print("OK: resumed run identical to the uninterrupted run.")


if __name__ == "__main__":
    main()
