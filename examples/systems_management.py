"""Systems management with hierarchical itineraries (Section 4.4.2).

A software-rollout agent works through a Figure-6-shaped itinerary: the
main itinerary holds independent top-level sub-tasks (inventory,
rollout, wrap-up); the rollout sub-task nests a per-cluster install
sub-itinerary.  A failed verification rolls back *only* the install
sub-itinerary (the nested scope, ``levels=0``); a second failure
escalates and rolls back the whole rollout sub-task (the enclosing
scope, ``levels=1``).

The example also exercises the two log-hygiene rules: a sub-itinerary's
savepoint is discarded as soon as it completes, and completing a
top-level sub-task discards the entire rollback log (one truncation per
top-level sub-task).

Note the *only* way the resumed agent learns that a rollback happened:
a compensating operation writes it into the weakly reversible space
(``rollout.note_rollback``).  Everything mutated by the step that
initiated the rollback is aborted with its step transaction.

Run:  python examples/systems_management.py
"""

from repro import (
    DataStore,
    Itinerary,
    ItineraryAgent,
    RollbackMode,
    StepEntry,
    SubItinerary,
    World,
    agent_compensation,
    resource_compensation,
)


@resource_compensation("rollout.uninstall")
def uninstall(store, params, ctx):
    """Compensate an install: remove the deployed version record."""
    store.remove(params["record"])


@agent_compensation("rollout.note_rollback")
def note_rollback(wro, params, ctx):
    """Tell the resumed agent a rollback happened (WRO channel)."""
    wro["rollbacks_seen"] = wro.get("rollbacks_seen", 0) + 1
    wro["installed"] = []


class RolloutAgent(ItineraryAgent):
    """Inventory the fleet, then roll the new version out."""

    # -- sub-task 1: inventory (pure information gathering) -----------------

    def scan(self, ctx):
        store = ctx.resource("config")
        version = store.get("version")["version"]
        self.sro.setdefault("inventory", []).append(
            (ctx.node_name, version))

    # -- sub-task 2: rollout ---------------------------------------------------

    def prepare(self, ctx):
        self.sro["target_version"] = "2.0"

    def install(self, ctx):
        store = ctx.resource("config")
        record = f"deploy-{ctx.node_name}-{self.step_count}"
        store.insert(record, {"version": self.sro["target_version"]})
        ctx.log_resource_compensation("rollout.uninstall",
                                      {"record": record},
                                      resource="config")
        self.wro.setdefault("installed", []).append(record)
        ctx.log_agent_compensation("rollout.note_rollback", {})

    def verify(self, ctx):
        # note_rollback runs once per compensated install, so each
        # rollback of the two-web cluster adds 2 to the counter.
        seen = self.wro.get("rollbacks_seen", 0)
        if seen == 0:
            self.rollback_scope(ctx, levels=0)   # retry the cluster
        if seen == 2:
            self.rollback_scope(ctx, levels=1)   # escalate: whole rollout
        self.wro["verified"] = True

    # -- sub-task 3: wrap-up ------------------------------------------------------

    def wrap_up(self, ctx):
        self.wro["report"] = {
            "inventory": list(self.sro.get("inventory", [])),
            "installed": list(self.wro.get("installed", [])),
            "rollbacks_seen": self.wro.get("rollbacks_seen", 0),
            "verified": self.wro.get("verified", False),
        }

    def itinerary_result(self):
        return self.wro.get("report")


def build_itinerary():
    inventory = SubItinerary("inventory", [
        StepEntry("scan", "web-1"),
        StepEntry("scan", "web-2"),
    ])
    install_cluster = SubItinerary("install-cluster", [
        StepEntry("install", "web-1"),
        StepEntry("install", "web-2"),
        StepEntry("verify", "monitor"),
    ])
    rollout = SubItinerary("rollout", [
        StepEntry("prepare", "control"),
        install_cluster,
    ])
    wrap = SubItinerary("wrap-up", [StepEntry("wrap_up", "control")])
    return Itinerary().add(inventory).add(rollout).add(wrap)


def main():
    world = World(seed=23)
    for name in ("control", "monitor", "web-1", "web-2"):
        node = world.add_node(name)
        store = DataStore("config")
        store.seed(("rec", "version"), {"version": "1.0"})
        store.seed("count", 1)
        node.add_resource(store)

    agent = RolloutAgent(build_itinerary(), "rollout-agent")
    record = world.launch_itinerary(agent, mode=RollbackMode.OPTIMIZED)
    world.run()

    report = record.result
    print("status:          ", record.status.value)
    print("report:          ", report)
    print("rollbacks done:  ", record.rollbacks_completed)
    print("log truncations: ", world.metrics.count("log.truncations"))
    assert record.status.value == "finished", record.failure
    # One nested rollback + one escalation, each compensating both
    # installs => 4 note_rollback executions.
    assert record.rollbacks_completed == 2, record.rollbacks_completed
    assert report["rollbacks_seen"] == 4, report
    assert report["verified"] is True
    # The final (third) attempt deployed exactly one record per web
    # (plus the seeded version record).
    for web in ("web-1", "web-2"):
        store = world.node(web).get_resource("config")
        deploys = [k for k in store.keys()
                   if isinstance(k, tuple) and k[0] == "rec"
                   and k[1] != "version"]
        assert len(deploys) == 1, (web, deploys)
    # One log truncation per completed top-level sub-task.
    assert world.metrics.count("log.truncations") == 3
    print("OK: nested scope rolled back, enclosing scope escalated, "
          "final attempt deployed cleanly.")


if __name__ == "__main__":
    main()
