"""Quickstart: a mobile agent with savepoints and partial rollback.

A price-checking agent hops across three nodes: it queries an offer
directory (strongly reversible — no compensation needed), places a
deposit at a bank (compensable), and then decides the deal is bad and
rolls the whole thing back before finishing with a different strategy.

Run:  python examples/quickstart.py

Scaling out: swap ``World`` for ``ShardedWorld(n_shards=N)`` to
partition the nodes across N kernels, and add ``workers="process"``
to run each kernel in its own worker process on a real core — same
seeded outcomes on every backend (see the "Multiprocess shards" knobs
in ROADMAP.md; agents and resources must then be defined in an
importable module, as everything here is).
"""

from repro import (
    Bank,
    InfoDirectory,
    MobileAgent,
    RollbackMode,
    World,
    agent_compensation,
    resource_compensation,
)


# -- compensating operations (shipped by name + parameters in the log) -------

@resource_compensation("quickstart.refund_deposit")
def refund_deposit(bank, params, ctx):
    """Undo the deposit: move the money back to the agent's account."""
    bank.transfer("store-escrow", params["customer"], params["amount"],
                  compensating=True)


@agent_compensation("quickstart.forget_reservation")
def forget_reservation(wro, params, ctx):
    """Remove the reservation record from the agent's private data."""
    wro["reservation"] = None
    wro["cancelled"] = wro.get("cancelled", 0) + 1


# -- the agent ----------------------------------------------------------------

class PriceChecker(MobileAgent):
    """Find an offer, reserve it, then reconsider."""

    def collect_offers(self, ctx):
        directory = ctx.resource("directory")
        # Query results live in the strongly reversible space: restoring
        # the savepoint image rolls them back, no compensation needed.
        self.sro["offers"] = directory.query("gadgets")
        ctx.savepoint("before-reserving")
        ctx.goto("store", "reserve")

    def reserve(self, ctx):
        if self.wro.get("cancelled"):
            # Second pass, after the rollback: the compensation wrote
            # the cancellation into the weakly reversible space — the
            # only place information can survive a rollback — so the
            # agent changes strategy and goes home empty-handed.
            ctx.goto("home", "decide")
            return
        offer = min(self.sro["offers"], key=lambda o: o["price"])
        bank = ctx.resource("bank")
        bank.transfer("customer", "store-escrow", offer["price"])
        ctx.log_resource_compensation(
            "quickstart.refund_deposit",
            {"customer": "customer", "amount": offer["price"]},
            resource="bank")
        self.wro["reservation"] = offer
        ctx.log_agent_compensation("quickstart.forget_reservation", {})
        ctx.goto("home", "decide")

    def decide(self, ctx):
        if self.wro.get("reservation") and not self.wro.get("cancelled"):
            # The program logic decides the current strategy does not
            # lead to the goal: initiate a partial rollback (never
            # returns — the step transaction aborts and the rollback
            # mechanism takes over).
            ctx.rollback("before-reserving")
        ctx.finish({
            "reservation": self.wro.get("reservation"),
            "cancelled": self.wro.get("cancelled", 0),
            "offers_seen": len(self.sro["offers"]),
        })


def main():
    world = World(seed=42)
    world.add_nodes("home", "infohub", "store")

    directory = InfoDirectory("directory")
    directory.publish("gadgets", [
        {"item": "gadget-a", "price": 120},
        {"item": "gadget-b", "price": 95},
    ])
    world.node("infohub").add_resource(directory)

    bank = Bank("bank")
    bank.seed_account("customer", 500)
    bank.seed_account("store-escrow", 0)
    world.node("store").add_resource(bank)

    agent = PriceChecker("price-checker")
    record = world.launch(agent, at="infohub", method="collect_offers",
                          mode=RollbackMode.OPTIMIZED)
    world.run()

    print("agent status:      ", record.status.value)
    print("result:            ", record.result)
    print("customer balance:  ", bank.peek("customer")["balance"],
          "(deposit was compensated)")
    print("escrow balance:    ", bank.peek("store-escrow")["balance"])
    print("rollbacks:         ", record.rollbacks_completed)
    print("compensation txs:  ", record.compensation_txs)
    print("agent transfers during rollback:",
          world.metrics.count("agent.transfers.compensation"),
          "(optimized mechanism shipped the compensation instead)")
    assert record.result["cancelled"] == 1
    assert record.result["reservation"] is None
    assert bank.peek("customer")["balance"] == 500
    assert bank.peek("store-escrow")["balance"] == 0
    print("OK: partial rollback restored the world.")


if __name__ == "__main__":
    main()
