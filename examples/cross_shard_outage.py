"""Cross-shard fault tolerance: surviving a whole-datacenter outage.

A sharded deployment (three kernels standing for three datacenters)
runs fault-tolerant payment agents whose shadow copies are placed in
*other* shards (``FTParams.cross_shard_alternates``) and whose step
ledger is replicated across the shards through the epoch bridge.  One
whole kernel is killed mid-run — every node in it crashes and its
kernel stops advancing — and the surviving shards promote the
cross-shard shadows, so every itinerary still completes exactly once.
The dead shard is later restarted: its ledger replica catches up from
the bridge's mirror backlog and the stale primary packages discard
themselves instead of re-executing.

Run:  python examples/cross_shard_outage.py
"""

from repro import AgentStatus, Bank, FTParams, MobileAgent, ShardedWorld
from repro.agent.packages import Protocol
from repro.compensation import resource_compensation
from repro.resources.bank import OverdraftPolicy

N_SHARDS = 3
N_NODES = 9
RING = [f"dc{i % N_SHARDS}-n{i // N_SHARDS}" for i in range(N_NODES)]


@resource_compensation("xshard.undo_transfer")
def undo_transfer(bank, params, ctx):
    bank.transfer(params["dst"], params["src"], params["amount"],
                  compensating=True)


class PaymentAgent(MobileAgent):
    """Tours its plan, moving 10 units a->b at every node it visits."""

    def __init__(self, agent_id, plan):
        super().__init__(agent_id)
        self.plan = list(plan)
        self.sro["pos"] = 0

    def step(self, ctx):
        pos = self.sro["pos"]
        bank = ctx.resource("bank")
        bank.transfer("a", "b", 10)
        ctx.log_resource_compensation(
            "xshard.undo_transfer",
            {"src": "a", "dst": "b", "amount": 10}, resource="bank")
        self.sro["pos"] = pos + 1
        if pos + 1 < len(self.plan):
            ctx.goto(self.plan[pos + 1], "step")
        else:
            ctx.finish({"visited": self.sro["pos"]})


def build_world():
    world = ShardedWorld(n_shards=N_SHARDS, seed=11,
                         ft_params=FTParams(takeover_timeout=0.05))
    for i, name in enumerate(RING):
        node = world.add_node(name, shard=i % N_SHARDS)
        bank = Bank("bank")
        bank.seed_account("a", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        bank.seed_account("b", 1_000, overdraft=OverdraftPolicy.ALLOWED)
        node.add_resource(bank)
    # Each node's alternates are the next two ring nodes — hosted by
    # the two other shards, so replication survives a kernel outage.
    for i, name in enumerate(RING):
        world.set_alternates(name, RING[(i + 1) % N_NODES],
                             RING[(i + 2) % N_NODES])
    return world


def main():
    world = build_world()
    # Shard 1 — a whole datacenter — dies at t=0.055 (mid step
    # transactions) and comes back at t=2.0.
    world.kill_shard(1, at=0.055, restart_at=2.0)

    records = []
    for a in range(4):
        start = 3 * (a % 3)  # launch nodes hosted by shard 0
        plan = [RING[(start + j) % N_NODES] for j in range(4)]
        agent = PaymentAgent(f"payment-{a}", plan)
        records.append(world.launch(agent, at=plan[0], method="step",
                                    protocol=Protocol.FAULT_TOLERANT))
    world.run()

    promotions = sum(w.metrics.count("ft.promotions") for w in world.shards)
    stale = sum(w.metrics.count("ft.stale_discarded")
                + w.metrics.count("packages.consumed.stale-agent")
                for w in world.shards)
    debits = sum(
        1_000 - world.node(n).get_resource("bank").peek("a")["balance"]
        for n in RING)
    print("--- cross-shard outage: one of three kernels killed mid-run ---")
    for record in records:
        print(f"{record.agent_id}: {record.status.value} "
              f"(steps committed: {record.steps_committed})")
    print(f"shadow promotions in surviving shards: {promotions}")
    print(f"stale packages discarded after restart: {stale}")
    print(f"total debits: {debits} "
          f"(= 10 x {sum(min(r.steps_committed, 4) for r in records)} "
          f"committed tour steps)")
    print(f"ledger replicas agree: {world.ledger_quorum_agrees()}")

    assert all(r.status is AgentStatus.FINISHED for r in records)
    assert promotions >= 1
    assert debits == 10 * sum(min(r.steps_committed, 4) for r in records)
    assert world.ledger_quorum_agrees()
    assert world.shard_alive(1)
    print("OK: whole-shard outage survived; every payment exactly once.")


if __name__ == "__main__":
    main()
