"""Setup shim.

The environment has no ``wheel`` package (offline), so PEP 660 editable
installs cannot build editable wheels; this shim lets ``pip install -e .``
fall back to the classic ``setup.py develop`` path.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
