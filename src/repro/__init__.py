"""repro — reproduction of Straßer & Rothermel (ICDCS 2000),
"System Mechanisms for Partial Rollback of Mobile Agent Execution".

Quick start::

    from repro import World, MobileAgent

    class Probe(MobileAgent):
        def hop(self, ctx):
            self.sro.setdefault("visited", []).append(ctx.node_name)
            if len(self.sro["visited"]) < 3:
                ctx.savepoint(f"after-{ctx.node_name}")
                ctx.goto("n2" if ctx.node_name == "n1" else "n1", "hop")
            else:
                ctx.finish(self.sro["visited"])

    world = World(seed=1)
    world.add_nodes("n1", "n2")
    record = world.launch(Probe("probe"), at="n1", method="hop")
    world.run()
    print(record.result)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced figures/evaluation.
"""

from repro.agent import MobileAgent, StepContext
from repro.agent.packages import PackageKind, Protocol, RollbackMode
from repro.compensation import (
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)
from repro.errors import (
    CompensationFailed,
    JournalCorrupt,
    JournalDiverged,
    JournalError,
    NotCompensatable,
    ReproError,
    RollbackRequest,
    WorldKilled,
)
from repro.exactly_once.fault_tolerant import FTParams
from repro.journal import (
    FileJournal,
    MemoryJournal,
    SqliteJournal,
    WorldJournal,
    open_backend,
    resume_world,
)
from repro.itinerary import Itinerary, ItineraryAgent, StepEntry, SubItinerary
from repro.log import LoggingMode, RollbackLog
from repro.log.entries import Recoverability
from repro.node import (
    AgentRecord,
    AgentStatus,
    Node,
    ProcShardedWorld,
    ShardedWorld,
    World,
)
from repro.resources import (
    AuctionHouse,
    Bank,
    Coin,
    CurrencyExchange,
    DataStore,
    EconomyAuditor,
    InfoDirectory,
    MessageBoard,
    Mint,
    Shop,
)
from repro.sim import CrashPlan, TimingModel
from repro.sim.timing import NetworkParams

__version__ = "1.0.0"


def serialization_stats() -> dict:
    """This process's serialization / IPC counters, as a plain dict.

    A snapshot of :data:`repro.storage.serialization.STATS` — package
    capture/restore byte totals, incremental pack reuse, lazy log-entry
    hydration, and (for the process backend) shared-memory IPC traffic
    (``ipc_bytes_framed`` / ``ipc_bytes_copied`` / ``ipc_bytes_control``
    / ``frame_reused`` / ``ring_spills``).

    This module-level helper reads the *current process's* counters
    only.  For a multiprocess run, call
    :meth:`ProcShardedWorld.serialization_stats` instead: it sums every
    worker's counters, folds in the coordinator's own IPC accounting,
    and adds the optimistic-lockstep speculation keys
    (``spec.epochs_speculated`` / ``spec.epochs_rolled_back`` /
    ``spec.shards_rolled_back`` / ``spec.conflict_rate``).
    :meth:`ShardedWorld.serialization_stats` returns the same shape for
    the in-process backend (with zero ``spec.*`` values).

    Returns:
        A new ``dict`` mapping counter name to value; mutating it does
        not affect the live counters.
    """
    from repro.storage.serialization import stats
    return dict(stats())

__all__ = [
    "World",
    "ShardedWorld",
    "ProcShardedWorld",
    "Node",
    "AgentRecord",
    "AgentStatus",
    "MobileAgent",
    "StepContext",
    "ItineraryAgent",
    "Itinerary",
    "SubItinerary",
    "StepEntry",
    "RollbackMode",
    "Protocol",
    "PackageKind",
    "FTParams",
    "LoggingMode",
    "RollbackLog",
    "Recoverability",
    "resource_compensation",
    "agent_compensation",
    "mixed_compensation",
    "Bank",
    "Mint",
    "Coin",
    "Shop",
    "CurrencyExchange",
    "InfoDirectory",
    "DataStore",
    "MessageBoard",
    "AuctionHouse",
    "EconomyAuditor",
    "TimingModel",
    "NetworkParams",
    "CrashPlan",
    "ReproError",
    "RollbackRequest",
    "CompensationFailed",
    "NotCompensatable",
    "WorldJournal",
    "MemoryJournal",
    "FileJournal",
    "SqliteJournal",
    "open_backend",
    "resume_world",
    "serialization_stats",
    "WorldKilled",
    "JournalError",
    "JournalCorrupt",
    "JournalDiverged",
    "__version__",
]
