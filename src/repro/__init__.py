"""repro — reproduction of Straßer & Rothermel (ICDCS 2000),
"System Mechanisms for Partial Rollback of Mobile Agent Execution".

Quick start::

    from repro import World, MobileAgent

    class Probe(MobileAgent):
        def hop(self, ctx):
            self.sro.setdefault("visited", []).append(ctx.node_name)
            if len(self.sro["visited"]) < 3:
                ctx.savepoint(f"after-{ctx.node_name}")
                ctx.goto("n2" if ctx.node_name == "n1" else "n1", "hop")
            else:
                ctx.finish(self.sro["visited"])

    world = World(seed=1)
    world.add_nodes("n1", "n2")
    record = world.launch(Probe("probe"), at="n1", method="hop")
    world.run()
    print(record.result)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced figures/evaluation.
"""

from repro.agent import MobileAgent, StepContext
from repro.agent.packages import PackageKind, Protocol, RollbackMode
from repro.compensation import (
    agent_compensation,
    mixed_compensation,
    resource_compensation,
)
from repro.errors import (
    CompensationFailed,
    JournalCorrupt,
    JournalDiverged,
    JournalError,
    NotCompensatable,
    ReproError,
    RollbackRequest,
    WorldKilled,
)
from repro.exactly_once.fault_tolerant import FTParams
from repro.journal import (
    FileJournal,
    MemoryJournal,
    SqliteJournal,
    WorldJournal,
    open_backend,
    resume_world,
)
from repro.itinerary import Itinerary, ItineraryAgent, StepEntry, SubItinerary
from repro.log import LoggingMode, RollbackLog
from repro.node import (
    AgentRecord,
    AgentStatus,
    Node,
    ProcShardedWorld,
    ShardedWorld,
    World,
)
from repro.resources import (
    AuctionHouse,
    Bank,
    Coin,
    CurrencyExchange,
    DataStore,
    EconomyAuditor,
    InfoDirectory,
    MessageBoard,
    Mint,
    Shop,
)
from repro.sim import CrashPlan, TimingModel
from repro.sim.timing import NetworkParams

__version__ = "1.0.0"

__all__ = [
    "World",
    "ShardedWorld",
    "ProcShardedWorld",
    "Node",
    "AgentRecord",
    "AgentStatus",
    "MobileAgent",
    "StepContext",
    "ItineraryAgent",
    "Itinerary",
    "SubItinerary",
    "StepEntry",
    "RollbackMode",
    "Protocol",
    "PackageKind",
    "FTParams",
    "LoggingMode",
    "RollbackLog",
    "resource_compensation",
    "agent_compensation",
    "mixed_compensation",
    "Bank",
    "Mint",
    "Coin",
    "Shop",
    "CurrencyExchange",
    "InfoDirectory",
    "DataStore",
    "MessageBoard",
    "AuctionHouse",
    "EconomyAuditor",
    "TimingModel",
    "NetworkParams",
    "CrashPlan",
    "ReproError",
    "RollbackRequest",
    "CompensationFailed",
    "NotCompensatable",
    "WorldJournal",
    "MemoryJournal",
    "FileJournal",
    "SqliteJournal",
    "open_backend",
    "resume_world",
    "WorldKilled",
    "JournalError",
    "JournalCorrupt",
    "JournalDiverged",
    "__version__",
]
