"""Command-line interface.

``python -m repro <command>`` runs canned scenarios and prints the
metrics a platform operator would want.  Commands:

``tour``
    Run a tour workload (the benchmark workhorse): configurable steps,
    nodes, mixed-entry fraction, rollback mechanism, crash injection.
``compare``
    Run the same tour under the basic and the optimized mechanism and
    print the side-by-side table of Section 4.4.1's claims.
``predict``
    Run a tour's forward pass, then print the static rollback-cost
    prediction next to the measured values.
``trace``
    Run a tour with crash injection and print the event timeline.
``fuzz``
    Differential fuzzing: generate seeded scenario workloads and
    cross-check all three execution backends against each other and
    against the model oracle (``--seed-range A:B``), or replay one
    failing seed from its repro string (``--repro fuzz:v1:seed=N``).
``serve``
    Run the world-as-a-service HTTP gateway: create worlds with
    ``POST /worlds``, launch agents with ``POST /worlds/{id}/launch``,
    stream live telemetry from ``GET /worlds/{id}/events`` (SSE).
    SIGTERM/SIGINT drain gracefully (epoch finishes, journal commits,
    shm rings close).

All scenarios are deterministic per ``--seed``.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.agent.packages import RollbackMode
from repro.bench.harness import build_tour_world, format_table, run_tour
from repro.bench.workloads import make_tour_plan
from repro.sim.trace import describe_world, render_timeline


def _tour_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--mixed", type=float, default=0.3,
                        help="fraction of steps with a mixed entry")
    parser.add_argument("--ace", type=float, default=0.2,
                        help="fraction of steps with agent-only entries")
    parser.add_argument("--depth", type=int, default=None,
                        help="rollback depth (default: everything)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--crash-rate", type=float, default=0.0,
                        help="Poisson node outages per second per node")
    parser.add_argument("--mode", choices=["basic", "optimized", "saga"],
                        default="optimized")


def _build(args) -> tuple:
    nodes = [f"n{i}" for i in range(args.nodes)]
    plan = make_tour_plan(
        nodes, args.steps, mixed_fraction=args.mixed,
        ace_fraction=min(args.ace, max(0.0, 1.0 - args.mixed)),
        rollback_depth=args.depth or args.steps - 1)
    world = build_tour_world(args.nodes, seed=args.seed)
    if args.crash_rate > 0:
        world.failures.random_outages(nodes, horizon=30.0,
                                      rate_per_s=args.crash_rate,
                                      mean_downtime=0.3)
    return plan, world


def cmd_tour(args) -> int:
    from repro.errors import UsageError

    plan, world = _build(args)
    try:
        result = run_tour(plan, args.nodes, mode=RollbackMode(args.mode),
                          seed=args.seed, world=world,
                          max_events=300_000)
    except UsageError as exc:
        if "livelock" not in str(exc):
            raise
        # The saga baseline earns this honestly: its WRO image restore
        # erases the compensation-produced signal that would stop the
        # agent from rolling back again, so it loops forever.
        print(f"run livelocked: {exc}")
        print("(the saga baseline erases the weakly reversible rollback "
              "signal on restore — Section 4.1's argument, live)")
        return 1
    rows = [
        ["status", result.status.value],
        ["steps committed", result.steps_committed],
        ["rollbacks completed", result.rollbacks],
        ["compensation txs", result.compensation_txs],
        ["agent transfers (forward)", result.step_transfers],
        ["agent transfers (rollback)", result.compensation_transfers],
        ["RCE lists shipped", result.rce_ship_messages],
        ["rollback latency (s)", round(result.rollback_latency, 4)],
        ["finished at (s)", round(result.finished_at, 4)],
        ["crashes injected", world.failures.crashes_injected],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"tour: {args.steps} steps on {args.nodes} "
                             f"nodes, mode={args.mode}"))
    return 0 if result.status.value == "finished" else 1


def cmd_compare(args) -> int:
    rows = []
    for mode in (RollbackMode.BASIC, RollbackMode.OPTIMIZED):
        plan, world = _build(args)
        result = run_tour(plan, args.nodes, mode=mode, seed=args.seed,
                          world=world)
        rows.append([mode.value, result.status.value,
                     result.compensation_transfers,
                     result.rce_ship_messages,
                     result.compensation_transfer_bytes
                     + result.rce_ship_bytes,
                     round(result.rollback_latency, 4)])
    print(format_table(
        ["mode", "status", "rollback transfers", "RCE ships",
         "rollback bytes", "latency (s)"],
        rows, title="basic vs optimized (Section 4.4.1)"))
    return 0


def cmd_predict(args) -> int:
    from repro.bench.workloads import TourAgent
    from repro.core.inspector import format_log, predict_rollback

    plan, world = _build(args)
    mode = RollbackMode(args.mode)
    agent = TourAgent(f"cli-predict-{args.seed}", plan)
    world.launch(agent, at=plan.steps[0].node, method="run", mode=mode)
    captured = {}
    driver = world.rollback_driver(mode)
    original = driver.start_rollback

    def spy(node, item, sp_id):
        _agent, log = item.payload.unpack()
        captured["log"] = log
        captured["node"] = node.name
        original(node, item, sp_id)

    driver.start_rollback = spy
    world.run()
    driver.start_rollback = original
    if "log" not in captured:
        print("no rollback happened; nothing to predict")
        return 1
    prediction = predict_rollback(captured["log"], plan.rollback_to,
                                  captured["node"], mode)
    print("rollback log at initiation:")
    print(format_log(captured["log"]))
    print()
    rows = [
        ["compensation txs", prediction.compensation_txs,
         world.metrics.count("compensation.tx_committed")],
        ["agent transfers", prediction.agent_transfers,
         world.metrics.count("agent.transfers.compensation")],
        ["RCE lists shipped", prediction.rce_ships,
         world.metrics.count("net.messages.rce-list")],
    ]
    print(format_table(["metric", "predicted", "measured"], rows,
                       title=f"prediction vs measurement (mode={args.mode})"))
    return 0


def cmd_trace(args) -> int:
    plan, world = _build(args)
    result = run_tour(plan, args.nodes, mode=RollbackMode(args.mode),
                      seed=args.seed, world=world)
    print(render_timeline(world))
    print()
    print(describe_world(world))
    return 0 if result.status.value == "finished" else 1


def _fuzz_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed-range", default="0:20", metavar="A:B",
                        help="half-open seed range to sweep (default 0:20)")
    parser.add_argument("--repro", default=None, metavar="STRING",
                        help="replay one failing seed from its repro "
                             "string (fuzz:v1:seed=N)")
    parser.add_argument("--backends", default="world,sharded,proc",
                        help="comma-separated backend subset "
                             "(default: all three)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write failing-seed repro strings here, "
                             "one per line (CI artifact)")


def cmd_fuzz(args) -> int:
    from repro.fuzz import (
        BACKENDS,
        case_from_repro,
        check_case,
        parse_repro,
        repro_string,
        run_seed_range,
    )

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        print(f"unknown backend(s) {unknown}; choose from {BACKENDS}")
        return 2

    if args.repro is not None:
        try:
            seed = parse_repro(args.repro)
        except ValueError as exc:
            print(exc)
            return 2
        failures = check_case(case_from_repro(args.repro), backends=backends)
        if failures:
            print(f"seed {seed} REPRODUCES ({len(failures)} finding(s)):")
            for message in failures:
                print(f"  {message}")
            return 1
        print(f"seed {seed}: clean on {', '.join(backends)}")
        return 0

    try:
        start, stop = (int(part) for part in args.seed_range.split(":"))
    except ValueError:
        print(f"--seed-range must be A:B, got {args.seed_range!r}")
        return 2
    if stop <= start:
        # A vacuous "all 0 seeds clean" exit 0 on 5:5 / 10:3 would let a
        # typo'd CI sweep pass without fuzzing anything.
        shape = "empty" if stop == start else "inverted"
        print(f"--seed-range must satisfy A < B, got {args.seed_range!r} "
              f"({shape} range — zero seeds would be fuzzed)")
        return 2

    def progress(seed, messages):
        marker = "DIVERGED" if messages else "ok"
        print(f"  seed {seed}: {marker}", flush=True)

    print(f"fuzzing seeds [{start}:{stop}) on {', '.join(backends)}")
    summary = run_seed_range(start, stop, backends=backends,
                             on_progress=progress)
    if args.out is not None:
        import pathlib

        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(f"{line}\n" for line in summary["repros"]))
    if summary["failing_seeds"]:
        print(f"{len(summary['failing_seeds'])} of {summary['seeds']} "
              f"seeds diverged:")
        for seed in summary["failing_seeds"]:
            print(f"  {repro_string(seed)}")
            for message in summary["failures"][seed]:
                print(f"    {message}")
        return 1
    print(f"all {summary['seeds']} seeds clean "
          f"(zero divergences across {', '.join(backends)})")
    return 0


def _serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8472,
                        help="bind port; 0 picks a free one (default 8472)")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="per-tenant in-flight launch cap before "
                             "429 + Retry-After (default 8)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="per-world queued-launch cap (default 64)")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        help="Retry-After seconds on 429 (default 1.0)")
    parser.add_argument("--metrics-every", type=int, default=16,
                        help="emit a metrics SSE event every N epochs "
                             "(default 16)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds to wait for each world to drain "
                             "on shutdown (default 30)")


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import serve

    if args.port < 0 or args.port > 65535:
        print(f"--port must be in [0, 65535], got {args.port}")
        return 2
    for name in ("max_inflight", "max_pending"):
        if getattr(args, name) < 1:
            print(f"--{name.replace('_', '-')} must be >= 1, got "
                  f"{getattr(args, name)}")
            return 2
    try:
        asyncio.run(serve(
            args.host, args.port,
            max_inflight=args.max_inflight,
            max_pending=args.max_pending,
            retry_after=args.retry_after,
            metrics_every=args.metrics_every,
            drain_timeout=args.drain_timeout))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial rollback of mobile agent execution "
                    "(Straßer & Rothermel, ICDCS 2000) — scenario runner")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, doc in (
            ("tour", cmd_tour, "run one tour workload"),
            ("compare", cmd_compare, "basic vs optimized side by side"),
            ("predict", cmd_predict, "static rollback cost prediction"),
            ("trace", cmd_trace, "run with timeline output")):
        p = sub.add_parser(name, help=doc)
        _tour_args(p)
        p.set_defaults(fn=fn)
    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing across the three backends")
    _fuzz_args(fuzz)
    fuzz.set_defaults(fn=cmd_fuzz)
    srv = sub.add_parser(
        "serve", help="run the world-as-a-service HTTP gateway")
    _serve_args(srv)
    srv.set_defaults(fn=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
