"""Transaction substrate.

The paper assumes each step of an agent runs inside an ACID *step
transaction* and each compensation inside a *compensation transaction*
(Sections 2 and 4.3), provided by "legacy" transactional technology (TP
monitors, transactional resource managers).  This package is that
substrate, built from scratch:

* :class:`~repro.tx.manager.Transaction` — undo-log transactions with
  deferred commit actions and strict two-phase locking;
* :class:`~repro.tx.locks.LockManager` — per-node exclusive item locks
  with an immediate-restart conflict policy (no waiting ⇒ no deadlock);
* :class:`~repro.tx.coordinator.CommitCoordinator` — distributed commit
  across nodes (the "(distributed) step transaction" of Section 2).
"""

from repro.tx.manager import Transaction, TransactionManager, TxState
from repro.tx.locks import LockManager
from repro.tx.coordinator import CommitCoordinator

__all__ = [
    "Transaction",
    "TransactionManager",
    "TxState",
    "LockManager",
    "CommitCoordinator",
]
