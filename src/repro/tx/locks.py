"""Exclusive item locks with an immediate-restart conflict policy.

Locks are held by transactions until commit or abort (strict two-phase
locking), which gives the isolation property the paper relies on: "other
transactions see either a resource state affected by the step which has
to be compensated or the resource state after the compensation has taken
place" (Section 4.3).

Conflicts never wait: a conflicting request raises
:class:`~repro.errors.LockConflict` and the *requesting* transaction's
driver aborts and retries the whole unit of work later.  Because nothing
ever blocks holding a lock, wait-for cycles — and therefore deadlocks —
cannot form.  This is the classic immediate-restart policy; the paper's
platform resolved deadlocks by aborting one victim and retrying, which
has the same observable outcome (the compensation transaction "aborts
(node failures, deadlocks, ...)" and is restarted, Section 4.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.errors import LockConflict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tx.manager import Transaction


class LockManager:
    """Per-node registry of exclusive item locks."""

    def __init__(self, name: str = ""):
        self.name = name
        self._holders: dict[Hashable, "Transaction"] = {}
        self.conflicts = 0

    def acquire(self, item: Hashable, tx: "Transaction") -> None:
        """Grant ``tx`` the exclusive lock on ``item`` or raise.

        Re-acquisition by the holder is a no-op.  On success the lock is
        recorded with the transaction so commit/abort releases it.
        """
        holder = self._holders.get(item)
        if holder is tx:
            return
        if holder is not None and holder.is_active():
            self.conflicts += 1
            raise LockConflict(item, holder.txid)
        self._holders[item] = tx
        tx.note_lock(self, item)

    def release(self, item: Hashable, tx: "Transaction") -> None:
        """Release ``item`` if held by ``tx`` (idempotent)."""
        if self._holders.get(item) is tx:
            del self._holders[item]

    def holder_of(self, item: Hashable) -> "Transaction | None":
        """The transaction currently holding ``item`` (or None)."""
        holder = self._holders.get(item)
        if holder is not None and holder.is_active():
            return holder
        return None

    def held_count(self) -> int:
        """Number of items currently locked by active transactions."""
        return sum(1 for tx in self._holders.values() if tx.is_active())

    def held_items(self) -> list[tuple[Hashable, "Transaction"]]:
        """Every (item, holder) pair with an active holder.

        The multiprocess shard workers use this to publish their open
        cross-replica claim locks at each barrier turn.
        """
        return [(item, tx) for item, tx in self._holders.items()
                if tx.is_active()]
