"""Distributed commit.

The paper's step transaction spans the executing node (resource ops plus
the dequeue of the agent from the local input queue) and the destination
node (the durable enqueue of the captured agent): "the (distributed)
step transaction is committed" (Section 2).  The optimized rollback adds
a second flavour: a compensation transaction spanning the node where the
agent resides and the resource node executing shipped resource
compensation entries (Section 4.4.1).

:class:`CommitCoordinator` resolves such transactions with a
presumed-abort two-phase commit, compressed to the decision instant of
the simulation: at commit time the coordinator checks that every remote
participant is reachable; if any is not, the transaction aborts (undo
logs restore all participants — exactly what participant-side recovery
of prepared-but-unresolved work would do), otherwise all staged effects
apply atomically.  The latency of the prepare/commit rounds is charged
to the caller so downstream events happen at realistic times, but the
state flip itself is atomic — the simulation never exposes a window in
which one participant committed and another did not, matching the
atomicity contract the paper assumes from its transactional substrate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.timing import NetworkParams, TimingModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.metrics import Metrics
    from repro.tx.manager import Transaction


class CommitCoordinator:
    """Decides distributed transaction outcomes and charges 2PC costs."""

    def __init__(self, timing: TimingModel, network_params: NetworkParams,
                 reachable: Callable[[str, str], bool],
                 metrics: "Metrics"):
        self._timing = timing
        self._net = network_params
        self._reachable = reachable
        self._metrics = metrics

    def try_commit(self, tx: "Transaction") -> bool:
        """Attempt to commit ``tx``; True on success.

        The latency of the prepare/commit rounds is charged when remote
        participants are enlisted (``World.enlist_participant``), so the
        commit event already sits at the right virtual time; this method
        is the atomic decision.  On failure the transaction is aborted
        (undo actions run before this returns).
        """
        if not tx.is_active():
            return False
        remotes = sorted(tx.participants - {tx.home})
        unreachable = [r for r in remotes if not self._reachable(tx.home, r)]
        if unreachable:
            self._metrics.incr("2pc.aborts")
            tx.abort()
            return False
        self._metrics.incr("2pc.commits")
        if remotes:
            self._metrics.incr("2pc.remote_participants", len(remotes))
        tx.commit()
        return True
