"""Undo-log transactions.

A :class:`Transaction` collects three kinds of bookkeeping while the unit
of work runs:

* **undo actions** — run in reverse order on abort.  Components that
  apply effects immediately (resource writes, queue dequeues) register
  one per mutation; abort restores the exact prior state.
* **commit actions** — deferred effects that must stay invisible until
  the transaction commits (queue enqueues, message hand-off to the next
  node, metric commits).
* **locks** — strict 2PL; all released at commit/abort.

Transactions also accumulate a virtual-time **cost**: every charged
operation adds to :attr:`Transaction.cost`, and the driver schedules the
commit event ``cost`` seconds after the begin event, so lock hold times
and crash windows reflect the work performed.

The manager tracks active transactions per node so a node crash can
abort everything in flight there (the recovery procedure of a real
resource manager would roll uncommitted work back from its WAL; with an
in-process undo log this is the same state transition).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Callable, Hashable

from repro.errors import TransactionAborted, UsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tx.locks import LockManager

_TXID = itertools.count(1)


class TxState(enum.Enum):
    """Life cycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One ACID unit of work (step transaction or compensation transaction).

    Parameters
    ----------
    kind:
        Free-form label ("step", "compensation", "rollback-start", ...)
        used by metrics and tests.
    home:
        Name of the node that started the transaction (the coordinator in
        distributed commits).
    """

    def __init__(self, kind: str, home: str):
        self.txid: int = next(_TXID)
        self.kind = kind
        self.home = home
        self.state = TxState.ACTIVE
        self.cost: float = 0.0
        self.participants: set[str] = {home}
        self._undo: list[Callable[[], None]] = []
        self._on_commit: list[Callable[[], None]] = []
        self._locks: list[tuple["LockManager", Hashable]] = []
        self._managers: list["TransactionManager"] = []

    # -- bookkeeping ---------------------------------------------------------

    def require_active(self) -> None:
        """Raise :class:`TransactionAborted` unless the tx is still active."""
        if self.state is not TxState.ACTIVE:
            raise TransactionAborted(
                f"tx {self.txid} is {self.state.value}")

    def is_active(self) -> bool:
        return self.state is TxState.ACTIVE

    def register_undo(self, fn: Callable[[], None]) -> None:
        """Register an abort-time compensating closure (LIFO order)."""
        self.require_active()
        self._undo.append(fn)

    def register_commit(self, fn: Callable[[], None]) -> None:
        """Register a deferred effect applied only if the tx commits."""
        self.require_active()
        self._on_commit.append(fn)

    def note_lock(self, manager: "LockManager", item: Hashable) -> None:
        """Record a lock for release at commit/abort (LockManager calls this)."""
        self._locks.append((manager, item))

    def add_participant(self, node: str) -> None:
        """Record that durable state on ``node`` is involved."""
        self.require_active()
        self.participants.add(node)

    def charge(self, seconds: float) -> None:
        """Accumulate virtual-time cost for this unit of work."""
        if seconds < 0:
            raise UsageError("negative charge")
        self.cost += seconds

    def enlist(self, manager: "TransactionManager") -> None:
        """Track membership in a per-node active set (internal)."""
        if manager not in self._managers:
            self._managers.append(manager)
            manager.active.add(self)

    # -- outcome ---------------------------------------------------------------

    def commit(self) -> None:
        """Apply deferred effects, release locks, finalise.

        The caller (the commit coordinator) is responsible for having
        verified that every participant can commit; this method is the
        atomic state flip.
        """
        self.require_active()
        self.state = TxState.COMMITTED
        for fn in self._on_commit:
            fn()
        self._release_all()

    def abort(self) -> None:
        """Undo applied effects in reverse order, release locks, finalise.

        Idempotent: aborting a finished transaction is a no-op so crash
        handlers and drivers may race benignly.
        """
        if self.state is not TxState.ACTIVE:
            return
        self.state = TxState.ABORTED
        for fn in reversed(self._undo):
            fn()
        self._release_all()

    def _release_all(self) -> None:
        for manager, item in self._locks:
            manager.release(item, self)
        self._locks.clear()
        for manager in self._managers:
            manager.active.discard(self)
        self._managers.clear()
        self._undo.clear()
        self._on_commit.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tx {self.txid} {self.kind} {self.state.value}>"


class TransactionManager:
    """Per-node transaction registry.

    Tracks active transactions touching the node so that a crash can
    abort them, and hands out new transactions with the node as home.
    """

    def __init__(self, node: str):
        self.node = node
        self.active: set[Transaction] = set()
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    def begin(self, kind: str) -> Transaction:
        """Start a new transaction homed at this node."""
        tx = Transaction(kind, self.node)
        tx.enlist(self)
        self.begun += 1
        return tx

    def abort_all(self, reason: str = "node crash") -> int:
        """Abort every active transaction touching this node.

        Called by the node's crash handler.  Returns the number aborted.
        """
        victims = list(self.active)
        for tx in victims:
            tx.abort()
            self.aborted += 1
        return len(victims)

    def note_commit(self) -> None:
        self.committed += 1

    def note_abort(self) -> None:
        self.aborted += 1
