"""The pipelined exactly-once step protocol (paper, Section 2).

One step transaction, in order:

1. begin; read (and delete) the agent package from the local input
   queue; re-instantiate the agent;
2. append the begin-of-step entry to the rollback log;
3. invoke the step method — all resource accesses happen inside the
   transaction;
4. append the end-of-step entry (with the mixed-compensation flag and
   alternates), apply staged savepoint / log-hygiene requests;
5. capture the agent and enqueue it durably at the next node (or mark
   the agent finished);
6. commit the distributed transaction.

Failure handling is entirely queue-driven: any abort (crash, lock
conflict, explicit restart) restores the package, whose renewed
visibility schedules a retry — the paper's "the agent still resides in
the input queue of the node that executed the aborted step".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agent.agent import MobileAgent
from repro.agent.context import StepContext
from repro.agent.packages import (
    AgentPackage,
    PackageKind,
    Protocol,
    RollbackMode,
)
from repro.errors import (
    CompensationFailed,
    LockConflict,
    NotCompensatable,
    RollbackRequest,
    StepAbortRequest,
    UsageError,
)
from repro.log.entries import BeginOfStepEntry, EndOfStepEntry, SavepointEntry
from repro.log.modes import (
    LoggingMode,
    sro_content_hashes,
    sro_diff,
    sro_diff_hashed,
    sro_image_hashed,
)
from repro.log.rollback_log import RollbackLog
from repro.node.execution import abort_and_count, finalize
from repro.node.runtime import AgentStatus
from repro.storage.queues import QueueItem
from repro.storage.serialization import snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node
    from repro.node.runtime import World


class StepProtocol:
    """Executes step transactions on behalf of nodes."""

    def __init__(self, world: "World"):
        self.world = world

    # -- main entry -------------------------------------------------------------

    def execute(self, node: "Node", item: QueueItem) -> None:
        """Run one step-transaction attempt for the package in ``item``."""
        world = self.world
        package: AgentPackage = item.payload
        record = world.record_or_none(package.agent_id)
        if record is None or record.status is not AgentStatus.RUNNING:
            self._consume(node, item, "stale-agent")
            return

        tx = node.txm.begin("step")
        tx.charge(world.timing.tx_begin)
        tx.charge(world.timing.stable_read(item.size_bytes))
        node.queue.dequeue(tx, item.item_id)

        if package.protocol is Protocol.FAULT_TOLERANT:
            try:
                outcome = world.ft.claim(tx, package.work_id, node.name)
            except LockConflict:
                # A concurrent claimant (primary vs promoted shadow, or
                # two promoted shadows in different shards) holds the
                # claim key on a shared ledger replica.  Abort and let
                # the queue-driven retry re-read the settled ledger.
                abort_and_count(node, tx, "claim-conflict")
                return
            if outcome == "stale":
                # Someone else already committed this unit of work.
                world.metrics.incr("ft.stale_discarded")
                finalize(node, tx, label="discard-stale")
                return

        agent, log = package.unpack()
        tx.charge(world.timing.serialize(package.size_bytes))
        control = agent.control
        if control is None:
            abort_and_count(node, tx, "no-control")
            world.agent_failed(package.agent_id, "agent has no control record")
            self._consume(node, item, "no-control")
            return
        if control["node"] != node.name and not package.promoted:
            abort_and_count(node, tx, "misrouted")
            world.agent_failed(
                package.agent_id,
                f"package for {control['node']} landed on {node.name}")
            self._consume(node, item, "misrouted")
            return

        step_index = package.step_index
        log.append(BeginOfStepEntry(node=node.name, step_index=step_index),
                   tx)
        ctx = StepContext(node, agent, log, tx, step_index)
        tx.charge(world.timing.step_body_fixed)
        record.step_attempts += 1
        world.metrics.incr("steps.attempted")

        try:
            method = agent.step_method(control["method"])
            method(ctx)
        except RollbackRequest as request:
            abort_and_count(node, tx, "rollback-requested")
            record.rollbacks_initiated += 1
            world.metrics.incr("rollback.initiated")
            world.metrics.record(node.sim.now, "rollback-initiated",
                                 agent=agent.agent_id,
                                 savepoint=request.savepoint_id,
                                 node=node.name)
            # The queue undo restored the pre-step package; mark it so
            # the re-dispatch enters the rollback algorithm (Fig 4a/5a)
            # instead of re-executing the step.
            node.pending_rollback[item.item_id] = request.savepoint_id
            return
        except StepAbortRequest:
            abort_and_count(node, tx, "step-restart")
            return
        except LockConflict:
            abort_and_count(node, tx, "lock-conflict")
            return
        except (UsageError, NotCompensatable, CompensationFailed) as exc:
            abort_and_count(node, tx, "step-error")
            world.agent_failed(package.agent_id,
                               f"step {step_index} failed: {exc}")
            self._consume(node, item, "step-error")
            return

        self._complete_step(node, tx, item, package, agent, log, ctx, record)

    # -- step completion ------------------------------------------------------------

    def _complete_step(self, node: "Node", tx, item: QueueItem,
                       package: AgentPackage, agent: MobileAgent,
                       log: RollbackLog, ctx: StepContext, record) -> None:
        world = self.world
        flags = ctx.step_flags()
        log.append(EndOfStepEntry(node=node.name,
                                  step_index=package.step_index,
                                  has_mixed=flags["has_mixed"],
                                  alternates=flags["alternates"],
                                  non_compensatable=flags["non_compensatable"],
                                  recoverability=flags["recoverability"]),
                   tx)
        for sp_id in ctx.staged_discards():
            log.discard_savepoint(sp_id, tx)
        if ctx.staged_truncate():
            dropped = log.truncate(tx)
            world.metrics.incr("log.truncations")
            world.metrics.incr("log.entries_discarded", dropped)

        finishing, result = ctx.staged_finish()
        next_hop = ctx.staged_next()
        if not finishing and next_hop is None:
            abort_and_count(node, tx, "no-next-hop")
            world.agent_failed(
                package.agent_id,
                f"step {package.step_index} set neither goto nor finish")
            self._consume(node, item, "no-next-hop")
            return
        if finishing:
            agent.finished = True
            agent.clear_control()
        else:
            agent.set_control(next_hop["node"], next_hop["method"])
        agent.step_count = package.step_index + 1

        for sp_request in ctx.staged_savepoints():
            self._write_savepoint(log, agent, sp_request, tx,
                                  include_wro=(package.mode
                                               is RollbackMode.SAGA))

        if finishing:
            def _finished() -> None:
                record.steps_committed += 1
                world.metrics.incr("steps.committed")
                world.agent_finished(agent, result)

            finalize(node, tx, on_committed=_finished, label="step-final")
            return

        dest_name, promoted = self.resolve_step_destination(
            node, next_hop["node"], package.protocol)
        new_package = AgentPackage.pack(
            PackageKind.STEP, agent, log,
            step_index=package.step_index + 1,
            mode=package.mode, protocol=package.protocol,
            primary=dest_name, promoted=promoted)
        self.ship(node, tx, new_package, dest_name)

        def _committed() -> None:
            record.steps_committed += 1
            world.metrics.incr("steps.committed")
            if dest_name != node.name:
                record.agent_transfers += 1
                record.transfer_bytes += new_package.size_bytes
                world.metrics.incr("agent.transfers.step")
                world.metrics.add_bytes("agent.transfers.step",
                                        new_package.size_bytes)

        finalize(node, tx, on_committed=_committed, label="step-commit")

    def _write_savepoint(self, log: RollbackLog, agent: MobileAgent,
                         sp_request: tuple, tx,
                         include_wro: bool = False) -> None:
        """Append the savepoint entry for a staged savepoint request.

        Under transition logging the payload is the diff of the SRO
        space against the previous real savepoint (full image when the
        log has none), per Section 4.2.  ``include_wro`` is the saga
        baseline's full-program-state snapshot (never set by the
        paper's mechanism).
        """
        sp_id, virtual = sp_request
        world = self.world
        sro_hashes = None
        if virtual:
            payload = None
        elif world.logging_mode is LoggingMode.STATE:
            payload = snapshot(agent.sro)
        else:
            # O(#savepoints) via the savepoint index — no entry scan.
            previous = log.last_real_savepoint_id()
            prev_hashes = (None if previous is None
                           else log.savepoint_sro_hashes(previous))
            if previous is None:
                payload, sro_hashes = sro_image_hashed(agent.sro)
            elif prev_hashes is not None:
                # Content-hash diff base: compares 32-byte digests from
                # one entry read instead of reconstructing (and
                # re-serialising) the whole previous SRO state.
                payload, sro_hashes = sro_diff_hashed(prev_hashes,
                                                      agent.sro)
            else:
                # Previous savepoint predates per-key hashes (e.g. a
                # hand-built log): reconstruct-and-compare, and root a
                # fresh hash chain at this savepoint.
                base = log.reconstruct_sro(previous)
                payload = sro_diff(base, agent.sro)
                sro_hashes = sro_content_hashes(agent.sro)
        wro_payload = snapshot(agent.wro) if include_wro and not virtual \
            else None
        entry = SavepointEntry(sp_id=sp_id,
                               mode=world.logging_mode.value,
                               payload=payload, virtual=virtual,
                               wro_payload=wro_payload,
                               sro_hashes=sro_hashes)
        log.append(entry, tx)
        world.metrics.incr("savepoints.written")
        if world._journal_capture:
            # Reuses the entry's framed blob (PR 1) — append-only, the
            # world is never re-pickled.
            world.journal_note("savepoint", agent=agent.agent_id,
                               sp=sp_id, virtual=virtual,
                               frame=None if virtual else entry.blob())

    # -- shared shipping helpers ---------------------------------------------------------

    def resolve_step_destination(self, node: "Node", dest: str,
                                 protocol: Protocol) -> tuple[str, bool]:
        """Divert a step hand-off around an unreachable destination.

        Ref [11]: the step "may be even restarted on another node" —
        under the fault-tolerant protocol an unreachable destination is
        replaced by its first reachable configured step alternate
        instead of retrying the distributed commit until it recovers.
        In a sharded world the alternates prefer other shards, so this
        is also how an itinerary routes around a whole-kernel outage it
        is about to walk into.  Returns ``(destination, promoted)``;
        the package's ``primary`` is the returned destination (the node
        actually executing — what its shadows must watch).  Used by
        both the forward step path and the rollback drivers' resume
        path.
        """
        world = self.world
        if (protocol is not Protocol.FAULT_TOLERANT
                or world.reachable(node.name, dest)):
            return dest, False
        for alt in world.ft.step_alternates_for(dest):
            if world.reachable(node.name, alt):
                world.metrics.incr("ft.step_diverted")
                return alt, True
        return dest, False

    def ship(self, node: "Node", tx, package: AgentPackage,
             dest_name: str) -> None:
        """Stage the durable enqueue of ``package`` at ``dest_name``.

        Charges capture, transfer (when remote) and the destination's
        stable write; enlists the destination in the distributed
        commit; ships fault-tolerant shadow copies after commit.  The
        transfer cost comes from the world's Transport, and the durable
        hand-off goes through :meth:`~repro.node.runtime.World.
        deliver_package` — in a sharded world that seam routes
        cross-shard destinations over the bridge.
        """
        world = self.world
        tx.charge(world.timing.serialize(package.size_bytes))
        if dest_name != node.name:
            world.enlist_participant(tx, dest_name)
            tx.charge(world.transport.transfer_time(package.size_bytes))
        tx.charge(world.timing.stable_write(package.size_bytes))
        world.deliver_package(tx, package, dest_name)
        if package.protocol is Protocol.FAULT_TOLERANT:
            alternates = world.ft.alternates_for(dest_name, package)
            if alternates:
                tx.register_commit(
                    lambda: world.ft.ship_shadows(node, package, alternates))

    # -- housekeeping ---------------------------------------------------------------------

    def _consume(self, node: "Node", item: QueueItem, reason: str) -> None:
        """Durably drop a package that must not be processed again."""
        world = self.world
        if node._find(item.item_id) is None:
            return
        tx = node.txm.begin("consume")
        node.queue.dequeue(tx, item.item_id)
        world.metrics.incr(f"packages.consumed.{reason}")
        finalize(node, tx, label="consume")
