"""Exactly-once step execution (substrate, ref [11]).

Rothermel & Straßer's SRDS'98 protocols give mobile agents the
exactly-once property the rollback paper builds on: the agent is kept
in stable storage between steps, each step runs inside a (distributed)
step transaction spanning the dequeue on the executing node, all local
resource accesses, and the durable enqueue on the next node.  An abort
leaves the agent in the input queue of the node that executed the
aborted step, ready for restart.

:mod:`repro.exactly_once.protocol` implements the basic pipelined
protocol; :mod:`repro.exactly_once.fault_tolerant` adds the
shadow-copy / step-ledger machinery that lets a step (or a
compensation) be restarted on another node when the responsible node
stays down — the "may be even restarted on another node" option the
rollback paper invokes in Section 4.3.
"""

from repro.exactly_once.protocol import StepProtocol
from repro.exactly_once.fault_tolerant import (
    BridgedFaultTolerance,
    FaultTolerance,
    FTParams,
)

__all__ = ["StepProtocol", "FaultTolerance", "BridgedFaultTolerance",
           "FTParams"]
