"""Fault-tolerant execution: shadow copies and the step ledger.

The basic protocol blocks while the node holding the agent is down.
Ref [11]'s fault-tolerant variant replicates the agent to *observer*
nodes and elects a new executor when the current one stays down; the
rollback paper invokes the same idea twice — "it may be even restarted
on another node" (Section 4.3) for steps, and alternate compensation
nodes for the rollback itself (Section 4.3, discussion).

This module implements a faithful-in-behaviour simplification:

* when a step/compensation package is committed into a primary node's
  queue, *shadow* copies travel (reliably, after commit) to the
  configured alternate nodes;
* a shadow schedules periodic takeover checks; when the primary is down
  at check time and the unit of work is unclaimed, the shadow promotes
  itself to an active package on the alternate node;
* every fault-tolerant execution first *claims* its ``work_id`` in the
  **step ledger** inside its transaction.  The ledger — standing for
  the replicated observer quorum, modelled always-available — is the
  arbitration point: at most one claim commits, so effects happen
  exactly once no matter how primary and promoted executions race;
* an execution that finds a foreign committed claim discards its
  package ("stale").

Alternates for steps come from a world-level policy (default: none —
configure with :meth:`FaultTolerance.set_alternates`); alternates for
compensations come from the end-of-step entries in the rollback log
(``ctx.declare_alternates``), exactly where the paper puts them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agent.packages import AgentPackage, PackageKind
from repro.storage.queues import QueueItem
from repro.storage.stable import StableStore
from repro.tx.locks import LockManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node
    from repro.node.runtime import World
    from repro.tx.manager import Transaction

from repro.node.runtime import LEDGER_NODE

MAX_TAKEOVER_ROUNDS = 200


class FaultTolerance:
    """Step ledger + shadow replication + takeover watchdog."""

    def __init__(self, world: "World"):
        self.world = world
        self.ledger = StableStore("step-ledger")
        self.ledger_locks = LockManager("step-ledger")
        self._step_alternates: dict[str, tuple[str, ...]] = {}
        self.promotions = 0
        self.shadows_shipped = 0
        self.shadows_discarded = 0

    # -- configuration -----------------------------------------------------------

    def set_alternates(self, node: str, *alternates: str) -> None:
        """Declare which nodes shadow step executions of ``node``."""
        self._step_alternates[node] = tuple(alternates)

    def step_alternates_for(self, node: str) -> tuple[str, ...]:
        """Configured step alternates of ``node`` (may be empty)."""
        return self._step_alternates.get(node, ())

    def alternates_for(self, node: str,
                       package: AgentPackage) -> tuple[str, ...]:
        """Alternate nodes for a package headed to ``node``.

        Compensation packages carry their own alternates (from the EOS
        entry); step packages use the world policy.
        """
        if package.kind is PackageKind.COMPENSATION:
            return tuple(a for a in package.alternates if a != node)
        return tuple(a for a in self._step_alternates.get(node, ())
                     if a != node)

    # -- the step ledger ------------------------------------------------------------

    def claim(self, tx: "Transaction", work_id: int, node: str) -> str:
        """Claim ``work_id`` for ``node`` inside ``tx``.

        Returns ``"acquired"`` (claim staged; durable iff the
        transaction commits) or ``"stale"`` (another node's claim is
        already committed).  A quorum round trip is charged.
        """
        world = self.world
        tx.charge(2 * world.net_params.latency)
        self.ledger_locks.acquire(("claim", work_id), tx)
        tx.add_participant(LEDGER_NODE)
        holder: Optional[str] = self.ledger.get(("claim", work_id))
        if holder is None:
            self.ledger.put(("claim", work_id), node, tx)
            return "acquired"
        if holder == node:
            return "acquired"
        return "stale"

    def claimed_by(self, work_id: int) -> Optional[str]:
        """Committed-or-staged holder of ``work_id`` (watchdog checks)."""
        return self.ledger.get(("claim", work_id))

    # -- shadow replication ------------------------------------------------------------

    def ship_shadows(self, origin: "Node", package: AgentPackage,
                     alternates: tuple[str, ...]) -> None:
        """Reliably send shadow copies of ``package`` to ``alternates``.

        Runs as a commit action of the transaction that enqueued the
        primary package.  Shadows travel through the world's Transport,
        so co-located copies for the same alternate coalesce into one
        framed transfer when the batching layer is active.  If the
        transport gives up on a copy (retry budget exhausted), the loss
        is surfaced — the primary still makes progress and the metric
        lets operators see degraded replication instead of a silent
        gap.
        """
        shadow = package.as_kind(PackageKind.SHADOW,
                                 primary=package.primary)
        for alt in alternates:
            self.shadows_shipped += 1
            self.world.metrics.incr("ft.shadows_shipped")
            self.world.transport.send(
                origin.name, alt, "shadow-copy", shadow,
                shadow.size_bytes,
                on_delivered=lambda msg, a=alt: self._shadow_arrived(a, msg),
                on_gave_up=lambda msg, a=alt: self._shadow_lost(a, msg))

    def _shadow_lost(self, alt_name: str, message) -> None:
        """The transport gave up on a shadow copy: count, don't hang."""
        self.world.metrics.incr("ft.shadows_lost")
        self.world.metrics.record(self.world.sim.now, "ft-shadow-lost",
                                  node=alt_name,
                                  agent=message.payload.agent_id)

    def _shadow_arrived(self, alt_name: str, message) -> None:
        node = self.world.node(alt_name)
        shadow: AgentPackage = message.payload
        item = node.queue.enqueue(shadow)
        self._schedule_check(node, item.item_id, rounds=0)

    def _schedule_check(self, node: "Node", item_id: int,
                        rounds: int) -> None:
        self.world.sim.schedule(
            self.world.ft_takeover_timeout,
            lambda: self._takeover_check(node, item_id, rounds),
            label=f"ft-check:{node.name}:{item_id}")

    # -- takeover -----------------------------------------------------------------------

    def _takeover_check(self, node: "Node", item_id: int,
                        rounds: int) -> None:
        item = node._find(item_id)
        if item is None:
            return
        shadow: AgentPackage = item.payload
        if shadow.kind is not PackageKind.SHADOW:
            return  # already promoted
        if self.claimed_by(shadow.work_id) is not None:
            # The work committed somewhere; the shadow is garbage.
            self._discard_shadow(node, item_id)
            return
        primary = shadow.primary
        if primary is not None and not self.world.failures.node_up(primary):
            if node.up:
                self._promote(node, item, shadow)
                return
        if rounds + 1 >= MAX_TAKEOVER_ROUNDS:
            self._discard_shadow(node, item_id)
            return
        self._schedule_check(node, item_id, rounds + 1)

    def _promote(self, node: "Node", item: QueueItem,
                 shadow: AgentPackage) -> None:
        """Turn a shadow into an active package on the alternate node."""
        promoted = shadow.as_kind(
            PackageKind.STEP if shadow.sp_id is None
            else PackageKind.COMPENSATION,
            promoted=True)
        item.payload = promoted
        self.promotions += 1
        self.world.metrics.incr("ft.promotions")
        self.world.metrics.record(self.world.sim.now, "ft-promotion",
                                  node=node.name, agent=shadow.agent_id,
                                  work_id=shadow.work_id)
        node.request_dispatch(item)

    def _discard_shadow(self, node: "Node", item_id: int) -> None:
        if node._find(item_id) is None:
            return
        tx = node.txm.begin("shadow-gc")
        node.queue.dequeue(tx, item_id)
        tx.commit()
        node.txm.note_commit()
        self.shadows_discarded += 1
        self.world.metrics.incr("ft.shadows_discarded")
