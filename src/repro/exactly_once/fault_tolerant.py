"""Fault-tolerant execution: shadow copies and the step ledger.

The basic protocol blocks while the node holding the agent is down.
Ref [11]'s fault-tolerant variant replicates the agent to *observer*
nodes and elects a new executor when the current one stays down; the
rollback paper invokes the same idea twice — "it may be even restarted
on another node" (Section 4.3) for steps, and alternate compensation
nodes for the rollback itself (Section 4.3, discussion).

This module implements a faithful-in-behaviour simplification:

* when a step/compensation package is committed into a primary node's
  queue, *shadow* copies travel (reliably, after commit) to the
  configured alternate nodes;
* a shadow schedules periodic takeover checks; when the primary is down
  at check time and the unit of work is unclaimed, the shadow promotes
  itself to an active package on the alternate node;
* every fault-tolerant execution first *claims* its ``work_id`` in the
  **step ledger** inside its transaction.  The ledger — standing for
  the replicated observer quorum — is the arbitration point: at most
  one claim commits, so effects happen exactly once no matter how
  primary and promoted executions race;
* an execution that finds a foreign committed claim discards its
  package ("stale").

Alternates for steps come from a world-level policy (default: none —
configure with :meth:`FaultTolerance.set_alternates`); alternates for
compensations come from the end-of-step entries in the rollback log
(``ctx.declare_alternates``), exactly where the paper puts them.

Cross-shard fault tolerance
---------------------------

In a plain world the ledger is one always-available store.  A
:class:`~repro.node.sharded.ShardedWorld` cannot model it that way: a
whole-kernel outage must be allowed to take the ledger replica *and*
the shadows hosted by that kernel down together, or the protocol's
survival claims would be vacuous.  :class:`BridgedFaultTolerance`
therefore replicates the ledger — one replica per shard, in the style
of viewstamped/quorum replication adapted to the deterministic
lockstep-epoch bridge:

* a **claim** locks the claim key on every live replica (the quorum
  round trip the transaction is charged for), reads them all, stages
  the write on the local replica and mirrors it to the other replicas
  through the cross-shard bridge as a commit action — mirrors are
  applied inside the epoch barrier, so they survive the claiming
  kernel's death;
* **takeover checks** resolve ownership from the live replicas
  (majority certifies agreement; a sub-majority read is surfaced via
  ``ft.ledger.quorum_degraded``), and a shadow watching a primary in
  *another* shard only promotes after a bridge flush has happened
  since it first observed the outage — by then every claim the dead
  kernel committed has reached the surviving replicas, closing the
  mirror-lag window that could otherwise double-execute a step;
* :meth:`FaultTolerance.alternates_for` becomes **placement-aware**:
  with :attr:`FTParams.cross_shard_alternates` enabled, alternates
  hosted by other shards are preferred over same-shard ones (the
  same-shard ones remain as fallback, and an unsharded world is
  unaffected), so shadow redundancy survives a whole-shard outage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.agent.packages import AgentPackage, PackageKind
from repro.net.messages import Message
from repro.net.transport import surface_give_up
from repro.node.runtime import LEDGER_NODE
from repro.storage.queues import QueueItem
from repro.storage.stable import StableStore
from repro.tx.locks import LockManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node
    from repro.node.runtime import World
    from repro.node.sharded import ShardedWorld
    from repro.tx.manager import Transaction

MAX_TAKEOVER_ROUNDS = 200


@dataclass(frozen=True)
class FTParams:
    """Policy knobs of the fault-tolerant protocol.

    Attributes
    ----------
    takeover_timeout:
        Period of a shadow's takeover checks (virtual seconds).
    max_takeover_rounds:
        Checks before an unclaimed shadow gives up and self-discards.
    cross_shard_alternates:
        In a sharded world, prefer alternates hosted by *other* shards
        when ordering shadow placement and step/compensation diversion
        targets, so replication survives a whole-kernel outage.  A
        plain (unsharded) world ignores the knob; same-shard alternates
        always remain as fallback.
    """

    takeover_timeout: float = 1.0
    max_takeover_rounds: int = MAX_TAKEOVER_ROUNDS
    cross_shard_alternates: bool = True


class FaultTolerance:
    """Step ledger + shadow replication + takeover watchdog."""

    def __init__(self, world: "World"):
        self.world = world
        self.ledger = StableStore("step-ledger")
        self.ledger_locks = LockManager("step-ledger")
        self._step_alternates: dict[str, tuple[str, ...]] = {}
        self.promotions = 0
        self.shadows_shipped = 0
        self.shadows_discarded = 0

    # -- configuration -----------------------------------------------------------

    def set_alternates(self, node: str, *alternates: str) -> None:
        """Declare which nodes shadow step executions of ``node``."""
        self.world._journal_op("ft_alternates", node=node,
                               alternates=tuple(alternates))
        self._step_alternates[node] = tuple(alternates)

    def step_alternates_for(self, node: str) -> tuple[str, ...]:
        """Configured step alternates of ``node`` (may be empty).

        Placement-aware: in a sharded world with cross-shard alternates
        enabled, alternates in other shards come first.
        """
        return self._order_alternates(
            node, self._step_alternates.get(node, ()))

    def alternates_for(self, node: str,
                       package: AgentPackage) -> tuple[str, ...]:
        """Alternate nodes for a package headed to ``node``.

        Compensation packages carry their own alternates (from the EOS
        entry); step packages use the world policy.  Order encodes
        preference (shadow shipping preserves it, diversion picks the
        first reachable one): see :meth:`_order_alternates`.
        """
        if package.kind is PackageKind.COMPENSATION:
            alternates = tuple(a for a in package.alternates if a != node)
        else:
            alternates = tuple(a for a in self._step_alternates.get(node, ())
                               if a != node)
        return self._order_alternates(node, alternates)

    def _order_alternates(self, node: str,
                          alternates: tuple[str, ...]) -> tuple[str, ...]:
        """Placement preference hook; the base world has no placement."""
        return alternates

    # -- the step ledger ------------------------------------------------------------

    def claim(self, tx: "Transaction", work_id: int, node: str) -> str:
        """Claim ``work_id`` for ``node`` inside ``tx``.

        Returns ``"acquired"`` (claim staged; durable iff the
        transaction commits) or ``"stale"`` (another node's claim is
        already committed).  A quorum round trip is charged.  May raise
        :class:`~repro.errors.LockConflict` when a concurrent claimant
        holds the claim key — the caller aborts and retries the unit of
        work, exactly like any other lock conflict.
        """
        tx.charge(2 * self.world.net_params.latency)
        self._lock_claim(tx, work_id)
        tx.add_participant(LEDGER_NODE)
        holder: Optional[str] = self._read_claim(work_id)
        if holder is None:
            self._stage_claim(tx, work_id, node)
            return "acquired"
        if holder == node:
            return "acquired"
        return "stale"

    def claimed_by(self, work_id: int) -> Optional[str]:
        """Committed-or-staged holder of ``work_id`` (watchdog checks)."""
        return self._read_claim(work_id)

    def _lock_claim(self, tx: "Transaction", work_id: int) -> None:
        self.ledger_locks.acquire(("claim", work_id), tx)

    def _read_claim(self, work_id: int) -> Optional[str]:
        return self.ledger.get(("claim", work_id))

    def _stage_claim(self, tx: "Transaction", work_id: int,
                     node: str) -> None:
        self.ledger.put(("claim", work_id), node, tx)

    # -- shadow replication ------------------------------------------------------------

    def ship_shadows(self, origin: "Node", package: AgentPackage,
                     alternates: tuple[str, ...]) -> None:
        """Reliably send shadow copies of ``package`` to ``alternates``.

        Runs as a commit action of the transaction that enqueued the
        primary package.  Shadows travel through the world's Transport
        (or, for alternates hosted by another shard, through the
        cross-shard bridge), so co-located copies for the same
        alternate coalesce into one framed transfer when the batching
        layer is active.  If any path gives up on a copy (retry budget
        exhausted), the loss is surfaced — the primary still makes
        progress and the metric lets operators see degraded replication
        instead of a silent gap.
        """
        shadow = package.as_kind(
            PackageKind.SHADOW, primary=package.primary,
            primary_shard=self._placement_of(package.primary))
        for alt in alternates:
            self.shadows_shipped += 1
            self.world.metrics.incr("ft.shadows_shipped")
            self._ship_one_shadow(origin, shadow, alt)

    def _placement_of(self, node: Optional[str]) -> Optional[int]:
        """Shard index hosting ``node`` (None in an unsharded world)."""
        return None

    def _ship_one_shadow(self, origin: "Node", shadow: AgentPackage,
                         alt: str) -> None:
        self.world.transport.send(
            origin.name, alt, "shadow-copy", shadow,
            shadow.size_bytes,
            on_delivered=lambda msg, a=alt: self._shadow_arrived(a, msg),
            on_gave_up=lambda msg, a=alt: self._shadow_lost(a, msg))

    def _shadow_lost(self, alt_name: str, message) -> None:
        """A transfer path gave up on a shadow copy: count, don't hang."""
        self.world.metrics.incr("ft.shadows_lost")
        self.world.metrics.record(self.world.sim.now, "ft-shadow-lost",
                                  node=alt_name,
                                  agent=message.payload.agent_id)

    def _shadow_arrived(self, alt_name: str, message) -> None:
        self.adopt_shadow(alt_name, message.payload)

    def adopt_shadow(self, alt_name: str, shadow: AgentPackage) -> None:
        """Enqueue an arrived shadow and start its takeover watchdog."""
        node = self.world.node(alt_name)
        item = node.queue.enqueue(shadow)
        self._schedule_check(node, item.item_id, rounds=0)

    def _schedule_check(self, node: "Node", item_id: int,
                        rounds: int) -> None:
        self.world.sim.schedule(
            self.world.ft_takeover_timeout,
            lambda: self._takeover_check(node, item_id, rounds),
            label=f"ft-check:{node.name}:{item_id}")

    # -- takeover -----------------------------------------------------------------------

    def _takeover_check(self, node: "Node", item_id: int,
                        rounds: int) -> None:
        item = node._find(item_id)
        if item is None:
            return
        shadow: AgentPackage = item.payload
        if shadow.kind is not PackageKind.SHADOW:
            return  # already promoted
        if self.claimed_by(shadow.work_id) is not None:
            # The work committed somewhere; the shadow is garbage.
            self._discard_shadow(node, item_id)
            return
        primary = shadow.primary
        if primary is not None and not self.world.node_up(primary):
            if node.up and self._promotion_ready(shadow):
                self._promote(node, item, shadow)
                return
        else:
            self._observed_up(shadow)
        if rounds + 1 >= self.world.ft_params.max_takeover_rounds:
            self._discard_shadow(node, item_id)
            return
        self._schedule_check(node, item_id, rounds + 1)

    def _promotion_ready(self, shadow: AgentPackage) -> bool:
        """May the shadow promote now?  The base ledger is authoritative."""
        return True

    def _observed_up(self, shadow: AgentPackage) -> None:
        """The primary was seen alive at a check (staleness bookkeeping)."""

    def _promote(self, node: "Node", item: QueueItem,
                 shadow: AgentPackage) -> None:
        """Turn a shadow into an active package on the alternate node."""
        promoted = shadow.as_kind(
            PackageKind.STEP if shadow.sp_id is None
            else PackageKind.COMPENSATION,
            promoted=True)
        item.payload = promoted
        self.promotions += 1
        self.world.metrics.incr("ft.promotions")
        self.world.metrics.record(self.world.sim.now, "ft-promotion",
                                  node=node.name, agent=shadow.agent_id,
                                  work_id=shadow.work_id)
        node.request_dispatch(item)

    def _discard_shadow(self, node: "Node", item_id: int) -> None:
        if node._find(item_id) is None:
            return
        tx = node.txm.begin("shadow-gc")
        node.queue.dequeue(tx, item_id)
        tx.commit()
        node.txm.note_commit()
        self.shadows_discarded += 1
        self.world.metrics.incr("ft.shadows_discarded")


class BridgedFaultTolerance(FaultTolerance):
    """Per-shard fault tolerance with a bridge-replicated step ledger.

    One instance lives in every :class:`~repro.node.sharded.ShardWorld`;
    ``self.ledger`` is that shard's replica.  Step-alternate policy is
    shared across the shards (a dict owned by the
    :class:`~repro.node.sharded.ShardedWorld`), because the shipping
    shard must know the alternates of destinations it does not host.
    """

    def __init__(self, world: "World"):
        super().__init__(world)
        #: The shard context — the :class:`~repro.node.sharded.
        #: ShardedWorld` in-process, or a :class:`~repro.node.procshard.
        #: RemoteShardContext` inside a worker process.  Everything this
        #: driver needs from *other* shards goes through its narrow
        #: surface (placement map, foreign liveness, replica locks and
        #: claim reads, the bridge), which is what lets the same
        #: protocol code run against live sibling worlds or against
        #: barrier-synchronised views without behavioural difference.
        self.sharded: "ShardedWorld" = world._sharded
        # Shared across every shard's FT instance (set_alternates on
        # any shard, or on the ShardedWorld facade, is visible to all).
        self._step_alternates = self.sharded.ft_alternates
        # work_id -> virtual time its primary was first seen down by a
        # still-watching shadow (cleared when it is seen up again).
        self._down_observed: dict[int, float] = {}
        # Bridged shadow copies accepted at a barrier but not yet
        # adopted into a durable queue; swept back to the bridge if
        # this kernel dies in the window (see :meth:`receive_shadow`).
        self._inbound_shadows: dict[int, tuple] = {}
        self._inbound_seq = itertools.count()

    # -- placement ----------------------------------------------------------------

    def _placement_of(self, node: Optional[str]) -> Optional[int]:
        if node is None:
            return None
        return self.sharded.placement_of(node)

    def _order_alternates(self, node: str,
                          alternates: tuple[str, ...]) -> tuple[str, ...]:
        """Prefer alternates hosted by other shards (policy knob).

        Same-shard alternates stay available as fallback, and a
        single-shard world degenerates to the unsharded ordering.
        """
        if (not self.world.ft_params.cross_shard_alternates
                or self.sharded.n_shards == 1):
            return alternates
        home = self._placement_of(node)
        cross = tuple(a for a in alternates
                      if self._placement_of(a) != home)
        local = tuple(a for a in alternates
                      if self._placement_of(a) == home)
        return cross + local

    # -- the bridged ledger quorum ----------------------------------------------------

    def _lock_claim(self, tx: "Transaction", work_id: int) -> None:
        # Locking the claim key on every live replica is what a quorum
        # write's replica-side ordering gives a real system: two
        # concurrent claimants always collide on at least one common
        # replica, so the loser aborts and retries (and then reads the
        # winner's claim).  A suspended kernel (whole-shard outage)
        # takes its replica down with it; individual node crashes do
        # not — each shard's ledger replica models that shard's
        # always-available observer set.  Deterministic shard order.
        for shard in self.sharded.live_shard_indices():
            self.sharded.claim_lock(tx, shard, work_id)

    def _read_claim(self, work_id: int) -> Optional[str]:
        live = self.sharded.live_shard_indices()
        metrics = self.world.metrics
        metrics.incr("ft.ledger.quorum_reads")
        if 2 * len(live) <= self.sharded.n_shards:
            # Fewer than a majority of replicas reachable: answer from
            # what is left (availability over strictness — claims are
            # write-once, so a reported holder is always real), but
            # make the degraded read observable.
            metrics.incr("ft.ledger.quorum_degraded")
        holders = []
        for shard in live:
            value = self.sharded.read_claim(shard, work_id)
            if value is not None and value not in holders:
                holders.append(value)
        if not holders:
            return None
        if len(holders) > 1:  # two committed claims — must never happen
            metrics.incr("ft.ledger.quorum_disagreement")
            metrics.record(self.world.sim.now, "ledger-disagreement",
                           work_id=work_id, holders=tuple(holders))
        return holders[0]

    def _stage_claim(self, tx: "Transaction", work_id: int,
                     node: str) -> None:
        super()._stage_claim(tx, work_id, node)  # local replica, undoable
        bridge = self.sharded.bridge
        shard = self.world.shard_index
        world = self.world
        # Mirror on commit: the forward outlives this kernel, so a
        # claim committed just before a whole-shard outage still
        # reaches the surviving replicas at the next epoch barrier.
        tx.register_commit(
            lambda: bridge.forward_ledger(shard, work_id, node,
                                          world.sim.now))

    def apply_mirror(self, work_id: int, holder: str) -> None:
        """Apply a bridged ledger write to this shard's replica."""
        key = ("claim", work_id)
        current = self.ledger.get(key)
        if current is None:
            self.ledger.put(key, holder)
            self.world.metrics.incr("ft.ledger.mirrors_applied")
        elif current != holder:
            self.world.metrics.incr("ft.ledger.mirror_conflicts")
            self.world.metrics.record(self.world.sim.now, "ledger-conflict",
                                      work_id=work_id, ours=current,
                                      theirs=holder)

    # -- cross-shard shadow transfer ------------------------------------------------------

    def _ship_one_shadow(self, origin: "Node", shadow: AgentPackage,
                         alt: str) -> None:
        if alt in self.world.nodes:
            super()._ship_one_shadow(origin, shadow, alt)
            return
        dest_shard = self.sharded.shard_of(alt)
        self.world.metrics.incr("bridge.shadow_forwards")
        message = Message(src=origin.name, dst=alt, kind="shadow-copy",
                          payload=shadow, size_bytes=shadow.size_bytes)
        self.sharded.bridge.forward_shadow(
            dest_shard, message, at=self.world.sim.now,
            max_retries=self.world.net_params.max_retries,
            source_shard=self.world.shard_index,
            give_up=("shadow-lost", alt))

    def apply_bridge_give_up(self, message: Message,
                             give_up: Optional[tuple]) -> None:
        """Surface a bridged transfer the routing layer abandoned.

        The bridge carries a declarative ``give_up`` tag instead of a
        closure (closures cannot cross the worker-process boundary);
        this method — running on the *source* shard, at the barrier —
        resolves the tag to the concrete loss handler and funnels
        through :func:`~repro.net.transport.surface_give_up` exactly
        like a direct send's give-up.
        """
        callback = None
        if give_up is not None and give_up[0] == "shadow-lost":
            alt = give_up[1]
            callback = lambda msg: self._shadow_lost(alt, msg)
        surface_give_up(self.world.metrics, self.world.sim.now, message,
                        callback)

    def receive_shadow(self, message: Message, max_retries: int,
                       retries: int, source_shard: int,
                       give_up: Optional[tuple], when: float) -> None:
        """Arrival half of a bridged shadow (called at the flush barrier).

        Adoption into the destination node's durable queue is scheduled
        at ``when`` in this shard's kernel; the node itself being down
        is no obstacle — the copy waits inertly in the durable queue
        and the watchdog only promotes while the node is up, exactly
        like a same-shard shadow after its host crashed.  Until the
        adoption event fires the copy is tracked in
        ``_inbound_shadows`` so that a whole-kernel outage in the
        window (:meth:`sweep_inbound_shadows`) hands it back to the
        bridge instead of stranding it in a frozen kernel — a bridged
        shadow is either adopted or surfaced, never silently dropped.
        """
        key = next(self._inbound_seq)

        def _arrive() -> None:
            self._inbound_shadows.pop(key, None)
            self.adopt_shadow(message.dst, message.payload)

        event = self.world.sim.schedule_at(
            when, _arrive, label=f"bridge-shadow:{message.dst}")
        self._inbound_shadows[key] = (event, message, max_retries, retries,
                                      source_shard, give_up)

    def sweep_inbound_shadows(self) -> int:
        """This kernel is dying: re-route undelivered bridged shadows.

        Called by ``kill_shard`` at the kill instant, before the kernel
        suspends.  Each not-yet-adopted copy goes back to the bridge
        (retry count preserved), where the flush retry path either
        delivers it after a restart or surfaces its loss through
        :func:`~repro.net.transport.surface_give_up` once the budget is
        exhausted.
        """
        swept = list(self._inbound_shadows.values())
        self._inbound_shadows.clear()
        for (event, message, max_retries, retries, source_shard,
                give_up) in swept:
            event.cancel()
            self.sharded.bridge.forward_shadow(
                self.world.shard_index, message, at=self.world.sim.now,
                max_retries=max_retries, source_shard=source_shard,
                give_up=give_up, retries=retries)
        return len(swept)

    # -- takeover staleness guard --------------------------------------------------------

    def _promotion_ready(self, shadow: AgentPackage) -> bool:
        """Promote only once the dead shard's mirrors have settled.

        A primary in *this* shard shares our authoritative replica, so
        its claims are immediately visible and promotion may proceed at
        once.  A primary in another shard may have committed a claim
        whose mirror is still travelling when that shard dies; every
        such mirror is flushed at the first epoch barrier after the
        outage, so requiring one bridge flush at-or-after the moment we
        first observed the primary down guarantees the claim check
        above saw the settled state.
        """
        primary = shadow.primary
        if primary is None:
            return True
        shard = shadow.primary_shard
        if shard is None:
            shard = self._placement_of(primary)
        if shard is None or shard == self.world.shard_index:
            return True
        observed = self._down_observed.setdefault(shadow.work_id,
                                                  self.world.sim.now)
        return self.sharded.last_flush_at >= observed

    def _observed_up(self, shadow: AgentPackage) -> None:
        self._down_observed.pop(shadow.work_id, None)

    def _discard_shadow(self, node: "Node", item_id: int) -> None:
        item = node._find(item_id)
        if item is not None:  # drop the watch bookkeeping with the shadow
            self._down_observed.pop(item.payload.work_id, None)
        super()._discard_shadow(node, item_id)

    def _promote(self, node: "Node", item: QueueItem,
                 shadow: AgentPackage) -> None:
        observed = self._down_observed.pop(shadow.work_id, None)
        super()._promote(node, item, shadow)
        if observed is not None:
            self.world.metrics.observe("ft.takeover_delay",
                                       self.world.sim.now,
                                       self.world.sim.now - observed)
