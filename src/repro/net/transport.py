"""The Transport abstraction — how anything moves between nodes.

Every layer that moves bytes between nodes (FT shadow copies, protocol
acknowledgements, cross-shard packages) talks to a :class:`Transport`,
never to a concrete network implementation.  A transport offers three
services:

* :meth:`Transport.reachable` — instantaneous reachability, used by
  layers that implement their own retry policies (the commit
  coordinator, the rollback drivers);
* :meth:`Transport.transfer_time` — the cost model for one-way payload
  movement, charged into transactions by the shipping helpers;
* :meth:`Transport.send` / :meth:`Transport.transmit` — reliable
  delivery with backoff-retry across downtime, used for
  fire-and-forget traffic where the paper assumes reliable transfer.
  A sender that wants to react when the transport finally gives up
  (``max_retries`` exhausted) passes ``on_gave_up``.

Implementations:

* :class:`~repro.net.network.SimTransport` — the latency/bandwidth
  modelled, partition-aware fabric (the former monolithic ``Network``);
* :class:`~repro.net.batching.BatchingTransport` — a decorator that
  coalesces co-located messages for the same link into one framed
  transfer, amortizing per-message latency at high agent counts.

The split keeps delivery *semantics* (retries, partitions, per-kind
metrics) in one place while letting cost/aggregation policy stack on
top — a new fabric (e.g. a real socket transport) only has to satisfy
this protocol.

Give-up surfacing is shared: every path that abandons a message —
the fabric's retry loop, a batch frame that splits and re-fails, or
the cross-shard bridge mirroring path of
:class:`~repro.node.sharded.CrossShardBridge` — funnels through
:func:`surface_give_up`, so the ``net.gave_up`` counter, the
``net-gave-up`` timeline event and the ``on_gave_up`` callback fire
identically no matter which layer lost the message.

One caveat layered on by the multiprocess shard workers
(:mod:`repro.node.procshard`): traffic that may cross a *process*
boundary cannot carry ``on_gave_up`` closures.  The bridge therefore
ships a declarative give-up tag (e.g. ``("shadow-lost", alt)``) and
the source shard resolves it back to the concrete callback before
calling :func:`surface_give_up` — in-process transports keep using
plain callables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Protocol, \
    runtime_checkable

from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.metrics import Metrics

#: Signature of a delivery handler installed per node.
Handler = Callable[[Message], None]
#: Signature of the delivery / give-up callbacks of one send.
SendCallback = Callable[[Message], None]


def surface_give_up(metrics: "Metrics", now: float, message: Message,
                    on_gave_up: Optional[SendCallback],
                    default: Optional[SendCallback] = None) -> None:
    """Surface an abandoned message the way direct sends do.

    One shared tail for every transfer path: increments ``net.gave_up``,
    records the ``net-gave-up`` timeline event and invokes the per-send
    ``on_gave_up`` callback (falling back to the transport-wide
    ``default``).  Layered transports and the cross-shard bridge call
    this instead of open-coding their own loss accounting, so a message
    is never dropped silently regardless of which layer gave up on it.
    """
    metrics.incr("net.gave_up")
    metrics.record(now, "net-gave-up", message_kind=message.kind,
                   src=message.src, dst=message.dst)
    callback = on_gave_up if on_gave_up is not None else default
    if callback is not None:
        callback(message)


@runtime_checkable
class Transport(Protocol):
    """What the protocol layers require from a message fabric."""

    def register(self, node: str, handler: Handler) -> None:
        """Install the delivery handler for ``node``."""
        ...

    def reachable(self, a: str, b: str) -> bool:
        """True when a message sent now from ``a`` would reach ``b``."""
        ...

    def transfer_time(self, size_bytes: int) -> float:
        """One-way transfer duration for a payload of ``size_bytes``."""
        ...

    def send(self, src: str, dst: str, kind: str, payload: object,
             size_bytes: int,
             on_delivered: Optional[SendCallback] = None,
             on_gave_up: Optional[SendCallback] = None) -> Message:
        """Reliably deliver ``payload`` from ``src`` to ``dst``.

        ``on_delivered`` fires at the delivery instant (after the
        destination handler ran); ``on_gave_up`` fires if the transport
        exhausts its retry budget — the caller can then re-ship, fail
        over, or surface the loss instead of hanging forever.
        """
        ...

    def transmit(self, message: Message,
                 on_delivered: Optional[SendCallback] = None,
                 on_gave_up: Optional[SendCallback] = None) -> None:
        """Deliver an already-constructed :class:`Message`.

        The low-level primitive behind :meth:`send`; decorators use it
        to re-inject constituent messages (e.g. when a batch splits)
        without minting new envelopes.
        """
        ...
