"""The simulated fabric: latency/bandwidth-modelled reliable transfer.

This module holds the concrete :class:`~repro.net.transport.Transport`
implementation for the discrete-event simulation.  It used to be a
monolithic ``Network`` class that every layer called directly; it is
now one pluggable fabric behind the Transport interface (see
:mod:`repro.net.transport` for the architecture), optionally wrapped by
the batching layer (:mod:`repro.net.batching`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.messages import Message
from repro.net.transport import surface_give_up
from repro.sim.timing import NetworkParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.failures import FailureInjector
    from repro.sim.kernel import Simulator
    from repro.sim.metrics import Metrics


class SimTransport:
    """Latency/bandwidth-modelled, partition-aware message fabric.

    Two services are offered:

    * :meth:`reachable` — instantaneous reachability (both endpoints up,
      link not partitioned); used by the commit coordinator and the
      rollback drivers, which implement their own retry policies.
    * :meth:`send` — reliable delivery with backoff-retry across
      downtime; used for fire-and-forget traffic (FT shadow copies,
      acknowledgements) where the paper assumes reliable transfer.

    Reliability is bounded by ``params.max_retries``: when a message
    exhausts its retry budget the failure is *surfaced*, never
    swallowed — the ``net.gave_up`` counter and timeline event fire,
    and the per-send ``on_gave_up`` callback (or the transport-wide
    :attr:`on_gave_up` default) lets protocol drivers react (re-ship,
    fail over) instead of waiting for a delivery that will never come.
    """

    def __init__(self, sim: "Simulator", failures: "FailureInjector",
                 params: NetworkParams, metrics: "Metrics"):
        self.sim = sim
        self.failures = failures
        self.params = params
        self.metrics = metrics
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._jitter_rng = sim.fork_rng("net-jitter")
        #: Transport-wide fallback invoked when a send without its own
        #: ``on_gave_up`` exhausts the retry budget.
        self.on_gave_up: Optional[Callable[[Message], None]] = None

    # -- wiring ---------------------------------------------------------------

    def register(self, node: str, handler: Callable[[Message], None]) -> None:
        """Install the delivery handler for ``node``."""
        self._handlers[node] = handler

    # -- queries ----------------------------------------------------------------

    def reachable(self, a: str, b: str) -> bool:
        """True when a message sent now from ``a`` would reach ``b``."""
        if a == b:
            return self.failures.node_up(a)
        return (self.failures.node_up(a) and self.failures.node_up(b)
                and self.failures.link_up(a, b))

    def transfer_time(self, size_bytes: int) -> float:
        """One-way transfer duration for a payload of ``size_bytes``."""
        base = self.params.transfer_time(size_bytes)
        if self.params.jitter:
            base *= 1.0 + self._jitter_rng.uniform(0, self.params.jitter)
        return base

    # -- transfer ------------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any,
             size_bytes: int,
             on_delivered: Optional[Callable[[Message], None]] = None,
             on_gave_up: Optional[Callable[[Message], None]] = None
             ) -> Message:
        """Reliably deliver ``payload`` from ``src`` to ``dst``.

        Delivery is attempted now and re-attempted with backoff while
        either endpoint is down or the link is partitioned.  Bytes are
        charged once per successful transfer (retries before the payload
        moves cost only time).  ``on_delivered`` fires at the delivery
        instant, after the destination handler ran; ``on_gave_up`` fires
        if ``params.max_retries`` is exhausted first.
        """
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          size_bytes=size_bytes)
        self.transmit(message, on_delivered, on_gave_up)
        return message

    def transmit(self, message: Message,
                 on_delivered: Optional[Callable[[Message], None]] = None,
                 on_gave_up: Optional[Callable[[Message], None]] = None
                 ) -> None:
        """Deliver an already-constructed message (see :meth:`send`)."""
        self._attempt(message, on_delivered, on_gave_up)

    # -- internals -----------------------------------------------------------------

    def _gave_up(self, message: Message,
                 on_gave_up: Optional[Callable[[Message], None]]) -> None:
        surface_give_up(self.metrics, self.sim.now, message, on_gave_up,
                        default=self.on_gave_up)

    def _attempt(self, message: Message,
                 on_delivered: Optional[Callable[[Message], None]],
                 on_gave_up: Optional[Callable[[Message], None]]) -> None:
        if not self.reachable(message.src, message.dst):
            message.retries += 1
            self.metrics.incr("net.retries")
            if message.retries > self.params.max_retries:
                self._gave_up(message, on_gave_up)
                return
            self.sim.schedule(
                self.params.retry_backoff,
                lambda: self._attempt(message, on_delivered, on_gave_up),
                label=f"net-retry:{message.kind}")
            return
        delay = self.transfer_time(message.size_bytes)

        def _deliver() -> None:
            if not self.failures.node_up(message.dst):
                # Destination crashed while the message was in flight;
                # reliable transfer retries from the source.
                message.retries += 1
                self.metrics.incr("net.retries")
                if message.retries > self.params.max_retries:
                    self._gave_up(message, on_gave_up)
                    return
                self.sim.schedule(
                    self.params.retry_backoff,
                    lambda: self._attempt(message, on_delivered, on_gave_up),
                    label=f"net-retry:{message.kind}")
                return
            self.metrics.incr("net.messages")
            self.metrics.incr(f"net.messages.{message.kind}")
            self.metrics.add_bytes("net.total", message.size_bytes)
            self.metrics.add_bytes(f"net.{message.kind}", message.size_bytes)
            handler = self._handlers.get(message.dst)
            if handler is not None:
                handler(message)
            if on_delivered is not None:
                on_delivered(message)

        self.sim.schedule(delay, _deliver, label=f"deliver:{message.kind}")


#: Backwards-compatible alias — the fabric was called ``Network`` before
#: the Transport refactor; existing scenarios keep working.
Network = SimTransport
