"""Reliable message transfer over the simulated topology."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.messages import Message
from repro.sim.timing import NetworkParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.failures import FailureInjector
    from repro.sim.kernel import Simulator
    from repro.sim.metrics import Metrics


class Network:
    """Latency/bandwidth-modelled, partition-aware message fabric.

    Two services are offered:

    * :meth:`reachable` — instantaneous reachability (both endpoints up,
      link not partitioned); used by the commit coordinator and the
      rollback drivers, which implement their own retry policies.
    * :meth:`send` — reliable delivery with backoff-retry across
      downtime; used for fire-and-forget traffic (FT shadow copies,
      acknowledgements) where the paper assumes reliable transfer.
    """

    def __init__(self, sim: "Simulator", failures: "FailureInjector",
                 params: NetworkParams, metrics: "Metrics"):
        self.sim = sim
        self.failures = failures
        self.params = params
        self.metrics = metrics
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._jitter_rng = sim.fork_rng("net-jitter")

    # -- wiring ---------------------------------------------------------------

    def register(self, node: str, handler: Callable[[Message], None]) -> None:
        """Install the delivery handler for ``node``."""
        self._handlers[node] = handler

    # -- queries ----------------------------------------------------------------

    def reachable(self, a: str, b: str) -> bool:
        """True when a message sent now from ``a`` would reach ``b``."""
        if a == b:
            return self.failures.node_up(a)
        return (self.failures.node_up(a) and self.failures.node_up(b)
                and self.failures.link_up(a, b))

    def transfer_time(self, size_bytes: int) -> float:
        """One-way transfer duration for a payload of ``size_bytes``."""
        base = self.params.transfer_time(size_bytes)
        if self.params.jitter:
            base *= 1.0 + self._jitter_rng.uniform(0, self.params.jitter)
        return base

    # -- transfer ------------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any,
             size_bytes: int,
             on_delivered: Optional[Callable[[Message], None]] = None) -> Message:
        """Reliably deliver ``payload`` from ``src`` to ``dst``.

        Delivery is attempted now and re-attempted with backoff while
        either endpoint is down or the link is partitioned.  Bytes are
        charged once per successful transfer (retries before the payload
        moves cost only time).  ``on_delivered`` fires at the delivery
        instant, after the destination handler ran.
        """
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          size_bytes=size_bytes)
        self._attempt(message, on_delivered)
        return message

    def _attempt(self, message: Message,
                 on_delivered: Optional[Callable[[Message], None]]) -> None:
        if not self.reachable(message.src, message.dst):
            message.retries += 1
            self.metrics.incr("net.retries")
            if message.retries > self.params.max_retries:
                self.metrics.incr("net.gave_up")
                return
            self.sim.schedule(self.params.retry_backoff,
                              lambda: self._attempt(message, on_delivered),
                              label=f"net-retry:{message.kind}")
            return
        delay = self.transfer_time(message.size_bytes)

        def _deliver() -> None:
            if not self.failures.node_up(message.dst):
                # Destination crashed while the message was in flight;
                # reliable transfer retries from the source.
                message.retries += 1
                self.metrics.incr("net.retries")
                self.sim.schedule(self.params.retry_backoff,
                                  lambda: self._attempt(message, on_delivered),
                                  label=f"net-retry:{message.kind}")
                return
            self.metrics.incr("net.messages")
            self.metrics.incr(f"net.messages.{message.kind}")
            self.metrics.add_bytes("net.total", message.size_bytes)
            self.metrics.add_bytes(f"net.{message.kind}", message.size_bytes)
            handler = self._handlers.get(message.dst)
            if handler is not None:
                handler(message)
            if on_delivered is not None:
                on_delivered(message)

        self.sim.schedule(delay, _deliver, label=f"deliver:{message.kind}")
