"""Batched transfers: coalesce co-located traffic for the same link.

The paper's migration cost model is dominated by per-hop transfer of
the (agent, log) package; at high agent counts many packages (and FT
shadow copies) leave one node for the same destination at nearly the
same instant, and each pays the full link latency.  The
:class:`BatchingTransport` decorator coalesces every message bound for
the same ``(src, dst)`` link within a configurable window
(``NetworkParams.batch_window``) into **one framed transfer**: one
latency charge, summed payload bytes plus fixed framing overhead.

Delivery semantics are exactly those of single sends:

* the framed transfer travels through the inner transport, so retries
  across downtime and partitions apply to the batch as a whole;
* if the frame exhausts the retry budget, the batch **splits**: every
  constituent message is re-injected individually with a fresh retry
  budget and its own ``on_gave_up`` path — a batch is never less
  reliable than the singles it replaced;
* on arrival each constituent message is dispatched to the
  destination handler and fires its own ``on_delivered``, in send
  order, and is counted under its own kind
  (``net.messages.<kind>`` / ``net.<kind>`` bytes) exactly as an
  unbatched send would be.

Metric conventions: ``net.messages`` counts *physical* transfers (one
per frame), per-kind counters count *logical* messages, so benches can
show fewer network events for equal payload bytes.  Per-batch metrics:
``net.batches``, ``net.batched_messages``, ``net.batch.splits`` and the
framing-byte overhead under ``bytes net.batch.framing``.

A batch frame reuses the incremental blobs of PR 1: the coalesced
payloads are :class:`~repro.agent.packages.AgentPackage` objects whose
``size_bytes`` come from their cached per-entry frames, so framing a
batch serialises nothing — the frame size is header + per-message
length prefixes + the already-known payload sizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.messages import Message
from repro.sim.timing import NetworkParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import SimTransport
    from repro.sim.kernel import Event, Simulator
    from repro.sim.metrics import Metrics

#: Routing tag of a framed batch transfer on the inner transport.
BATCH_KIND = "batch"
#: Fixed framing overhead of one batch frame (header + message count).
BATCH_HEADER_BYTES = 8
#: Per-message length prefix inside a batch frame.
BATCH_ENTRY_PREFIX_BYTES = 4


def batch_frame_bytes(sizes: list[int]) -> int:
    """Wire size of a batch frame carrying payloads of ``sizes``."""
    return BATCH_HEADER_BYTES + sum(BATCH_ENTRY_PREFIX_BYTES + s
                                    for s in sizes)


class BatchingTransport:
    """Transport decorator that coalesces same-link sends in a window.

    Wraps an inner :class:`~repro.net.network.SimTransport` (or any
    transport exposing ``transmit``).  A window of ``0`` disables
    coalescing and turns every call into a passthrough, which is the
    default — worlds opt in via ``NetworkParams.batch_window``.
    """

    def __init__(self, inner: "SimTransport", sim: "Simulator",
                 params: NetworkParams, metrics: "Metrics"):
        self.inner = inner
        self.sim = sim
        self.params = params
        self.metrics = metrics
        self.window = params.batch_window
        self._handlers: dict[str, Callable[[Message], None]] = {}
        # Per-link pending sends: (src, dst) -> [(message, cb, gcb)].
        self._pending: dict[tuple[str, str], list[tuple]] = {}
        self._flush_events: dict[tuple[str, str], "Event"] = {}

    # -- wiring ---------------------------------------------------------------

    def register(self, node: str, handler: Callable[[Message], None]) -> None:
        """Install the delivery handler for ``node``.

        The inner fabric gets a filtering wrapper: batch frames are
        invisible to node handlers — their constituents are dispatched
        individually by :meth:`_deliver_batch` — while unbatched
        messages pass straight through.
        """
        self._handlers[node] = handler
        self.inner.register(
            node, lambda message, n=node: self._on_inner_message(n, message))

    def _on_inner_message(self, node: str, message: Message) -> None:
        if message.kind == BATCH_KIND:
            return  # constituents are dispatched via the frame callback
        handler = self._handlers.get(node)
        if handler is not None:
            handler(message)

    @property
    def on_gave_up(self) -> Optional[Callable[[Message], None]]:
        """The inner transport's transport-wide give-up fallback."""
        return self.inner.on_gave_up

    @on_gave_up.setter
    def on_gave_up(self, callback: Optional[Callable[[Message], None]]
                   ) -> None:
        self.inner.on_gave_up = callback

    # -- queries ----------------------------------------------------------------

    def reachable(self, a: str, b: str) -> bool:
        return self.inner.reachable(a, b)

    def transfer_time(self, size_bytes: int) -> float:
        return self.inner.transfer_time(size_bytes)

    def pending_messages(self) -> int:
        """Messages buffered in not-yet-flushed batches (tests/benches)."""
        return sum(len(batch) for batch in self._pending.values())

    # -- transfer ------------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any,
             size_bytes: int,
             on_delivered: Optional[Callable[[Message], None]] = None,
             on_gave_up: Optional[Callable[[Message], None]] = None
             ) -> Message:
        """Queue ``payload`` for the next framed transfer on the link.

        The message joins the open batch for ``(src, dst)`` (opening
        one, and scheduling its flush ``window`` seconds out, if none is
        open).  Local traffic and zero-window transports pass straight
        through to the inner fabric.
        """
        if self.window <= 0 or src == dst:
            return self.inner.send(src, dst, kind, payload, size_bytes,
                                   on_delivered, on_gave_up)
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          size_bytes=size_bytes)
        key = (src, dst)
        self._pending.setdefault(key, []).append(
            (message, on_delivered, on_gave_up))
        if key not in self._flush_events:
            self._flush_events[key] = self.sim.schedule(
                self.window, lambda: self._flush(key),
                label=f"net-batch:{src}->{dst}")
        return message

    def transmit(self, message: Message,
                 on_delivered: Optional[Callable[[Message], None]] = None,
                 on_gave_up: Optional[Callable[[Message], None]] = None
                 ) -> None:
        """Bypass coalescing: hand the message straight to the fabric."""
        self.inner.transmit(message, on_delivered, on_gave_up)

    def flush_all(self) -> None:
        """Flush every open batch now (deterministic teardown, tests)."""
        for key in list(self._pending):
            event = self._flush_events.pop(key, None)
            if event is not None:
                event.cancel()
            self._flush(key)

    # -- internals -----------------------------------------------------------------

    def _flush(self, key: tuple[str, str]) -> None:
        self._flush_events.pop(key, None)
        batch = self._pending.pop(key, [])
        if not batch:
            return
        if len(batch) == 1:
            # A lone message gains nothing from framing; ship it as-is
            # so sparse traffic keeps exact single-send accounting.
            message, on_delivered, on_gave_up = batch[0]
            self.inner.transmit(message, on_delivered, on_gave_up)
            return
        src, dst = key
        frame_size = batch_frame_bytes([m.size_bytes for m, _, _ in batch])
        payload_size = sum(m.size_bytes for m, _, _ in batch)
        self.metrics.incr("net.batches")
        self.metrics.incr("net.batched_messages", len(batch))
        self.metrics.add_bytes("net.batch.framing",
                               frame_size - payload_size)
        self.metrics.observe("net.batch.size", self.sim.now, len(batch))
        self.inner.send(
            src, dst, BATCH_KIND, [m for m, _, _ in batch], frame_size,
            on_delivered=lambda _frame, b=batch, d=dst:
                self._deliver_batch(d, b),
            on_gave_up=lambda _frame, b=batch: self._split(b))

    def _deliver_batch(self, dst: str, batch: list[tuple]) -> None:
        """Dispatch the constituents of a delivered frame, in send order.

        Runs at the frame's delivery instant (the inner transport
        already verified the destination is up and charged the frame's
        bytes), so per-message handler + ``on_delivered`` ordering
        matches single-send semantics.
        """
        handler = self._handlers.get(dst)
        for message, on_delivered, _on_gave_up in batch:
            self.metrics.incr(f"net.messages.{message.kind}")
            self.metrics.add_bytes(f"net.{message.kind}", message.size_bytes)
            if handler is not None:
                handler(message)
            if on_delivered is not None:
                on_delivered(message)

    def _split(self, batch: list[tuple]) -> None:
        """The frame exhausted its retry budget: fall back to singles.

        Each constituent re-enters the fabric with a *fresh* retry
        budget and its own give-up path, so a batch is never less
        reliable than the unbatched sends it replaced.
        """
        self.metrics.incr("net.batch.splits")
        for message, on_delivered, on_gave_up in batch:
            self.inner.transmit(message, on_delivered, on_gave_up)
