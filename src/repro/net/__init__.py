"""Simulated network.

Reliable message transfer between nodes with a latency + bandwidth cost
model, partition awareness and byte accounting.  "Reliable" matches the
paper's assumption (Section 4.3): messages are never silently lost —
delivery is retried with backoff across node downtime and partitions —
but a *currently* unreachable peer is visible to protocol layers that
prefer to abort and retry at their own granularity (reachability
checks at commit time).
"""

from repro.net.network import Network
from repro.net.messages import Message

__all__ = ["Network", "Message"]
