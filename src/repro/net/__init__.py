"""Simulated network: the pluggable transport stack.

Architecture (bottom up):

* :class:`~repro.net.transport.Transport` — the protocol every layer
  above codes against: reachability checks, the transfer cost model,
  and reliable ``send`` with explicit give-up surfacing.
* :class:`~repro.net.network.SimTransport` — the concrete fabric: a
  latency + bandwidth cost model, partition awareness, byte accounting
  and backoff-retry across node downtime.  "Reliable" matches the
  paper's assumption (Section 4.3): messages are never *silently* lost
  — delivery is retried with backoff, and when the retry budget is
  exhausted the failure is surfaced via the ``net.gave_up`` metric and
  the ``on_gave_up`` callback so protocol drivers can react.
* :class:`~repro.net.batching.BatchingTransport` — an optional
  decorator (``NetworkParams.batch_window``) that coalesces co-located
  messages for the same link into one framed transfer, amortizing
  per-message latency at high agent counts while preserving
  delivery semantics (retries, partitions, per-kind metrics,
  split-on-give-up).

``Network`` remains as an alias of :class:`SimTransport` for scenarios
written against the pre-refactor monolithic class.
"""

from repro.net.batching import BatchingTransport
from repro.net.messages import Message
from repro.net.network import Network, SimTransport
from repro.net.transport import Transport

__all__ = ["Transport", "SimTransport", "BatchingTransport", "Network",
           "Message"]
