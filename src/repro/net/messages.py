"""Message envelope used by the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_MSG_IDS = itertools.count(1)


@dataclass
class Message:
    """One network message.

    ``kind`` is a free-form routing tag ("agent-package", "rce-list",
    "rce-ack", "shadow-copy", ...) used for metric breakdowns and test
    assertions; ``payload`` is any picklable object; ``size_bytes`` is
    the serialised size charged against bandwidth.
    """

    src: str
    dst: str
    kind: str
    payload: Any
    size_bytes: int
    msg_id: int = field(default_factory=lambda: next(_MSG_IDS))
    retries: int = 0
