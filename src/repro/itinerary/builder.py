"""A compact textual DSL for itineraries.

The paper (and ref [14]) describe itineraries as nested sets of
entries; spelling them out as Python constructors gets verbose for
deep hierarchies, so this module adds a compact notation::

    I{ SI1{ s1/n0, s2/n1 },
       SI3{ s6/n2, SI4{ s5/n0, s4/n1 } } }

Grammar (whitespace insignificant)::

    itinerary   := "I" block
    block       := "{" entry ("," entry)* "}"
    entry       := sub | step
    sub         := NAME order? block
    step        := METHOD "/" LOC precond?
    order       := "|"            -- partial order: system picks ("any")
    precond     := "?" NAME       -- agent predicate method

``parse_itinerary`` builds the model objects; ``format_itinerary``
renders them back (round-trip stable up to whitespace), which the tests
use as the grammar's specification.
"""

from __future__ import annotations

import re
from typing import Union

from repro.errors import ItineraryError
from repro.itinerary.model import Itinerary, StepEntry, SubItinerary

_TOKEN = re.compile(r"\s*([{},|]|\?[A-Za-z_]\w*|[A-Za-z_][\w.-]*(?:/[\w.-]+)?)")


class _Tokens:
    def __init__(self, text: str):
        self.tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None:
                if text[pos:].strip():
                    raise ItineraryError(
                        f"cannot tokenise itinerary at: {text[pos:pos+20]!r}")
                break
            self.tokens.append(match.group(1))
            pos = match.end()
        self.index = 0

    def peek(self) -> str:
        if self.index >= len(self.tokens):
            raise ItineraryError("unexpected end of itinerary text")
        return self.tokens[self.index]

    def next(self) -> str:
        token = self.peek()
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ItineraryError(f"expected {token!r}, got {got!r}")

    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


def parse_itinerary(text: str) -> Itinerary:
    """Parse the DSL into a validated :class:`Itinerary`."""
    tokens = _Tokens(text)
    name = tokens.next()
    if name != "I":
        raise ItineraryError(f"itinerary must start with 'I', got {name!r}")
    order = "sequence"
    if tokens.peek() == "|":
        tokens.next()
        order = "any"
    itinerary = Itinerary(order=order)
    tokens.expect("{")
    while True:
        entry = _parse_entry(tokens)
        if not isinstance(entry, SubItinerary):
            raise ItineraryError(
                "step entries are not allowed in the main itinerary")
        itinerary.add(entry)
        token = tokens.next()
        if token == "}":
            break
        if token != ",":
            raise ItineraryError(f"expected ',' or '}}', got {token!r}")
    if not tokens.exhausted():
        raise ItineraryError(f"trailing input: {tokens.peek()!r}")
    itinerary.validate()
    return itinerary


def _parse_entry(tokens: _Tokens) -> Union[StepEntry, SubItinerary]:
    head = tokens.next()
    if head in "{},|" or head.startswith("?"):
        raise ItineraryError(f"expected entry, got {head!r}")
    if "/" in head:
        method, loc = head.split("/", 1)
        precondition = None
        if not tokens.exhausted() and tokens.peek().startswith("?"):
            precondition = tokens.next()[1:]
        return StepEntry(method=method, loc=loc, precondition=precondition)
    order = "sequence"
    precondition = None
    if tokens.peek() == "|":
        tokens.next()
        order = "any"
    if tokens.peek().startswith("?"):
        precondition = tokens.next()[1:]
    sub = SubItinerary(name=head, order=order, precondition=precondition)
    tokens.expect("{")
    while True:
        sub.add(_parse_entry(tokens))
        token = tokens.next()
        if token == "}":
            return sub
        if token != ",":
            raise ItineraryError(f"expected ',' or '}}', got {token!r}")


def format_itinerary(itinerary: Itinerary) -> str:
    """Render an itinerary back into the DSL."""
    order = "|" if itinerary.order == "any" else ""
    inner = ", ".join(_format_sub(sub) for sub in itinerary.entries)
    return f"I{order}{{ {inner} }}"


def _format_sub(sub: SubItinerary) -> str:
    order = "|" if sub.order == "any" else ""
    precond = f"?{sub.precondition}" if sub.precondition else ""
    inner = ", ".join(
        _format_sub(e) if isinstance(e, SubItinerary) else _format_step(e)
        for e in sub.entries)
    return f"{sub.name}{order}{precond}{{ {inner} }}"


def _format_step(step: StepEntry) -> str:
    precond = f" ?{step.precondition}" if step.precondition else ""
    return f"{step.method}/{step.loc}{precond}"
