"""Itinerary-driven agents (paper, Section 4.4.2).

:class:`ItineraryAgent` executes a hierarchical itinerary through one
generic step method, ``itinerary_step``, which runs the user method
named by the current step entry and then advances the cursor:

* entering a sub-itinerary constitutes its savepoint automatically —
  real for the first savepoint requested at a step boundary, *virtual*
  (data-less, denoting the same state) for sub-itineraries entered in
  the same boundary, reproducing the paper's "only one agent savepoint
  is really necessary" observation;
* completing a sub-itinerary discards its savepoint from the log;
* completing a sub-itinerary directly contained in the main itinerary
  discards the whole rollback log;
* the cursor (a stack of frames) lives in the strongly reversible
  space, so restoring a savepoint rewinds the itinerary position to the
  start of the rolled-back sub-itinerary.

Rollback is requested through :meth:`ItineraryAgent.rollback_scope`:
``levels=0`` rolls back the sub-itinerary currently executing,
``levels=1`` its parent, and so on — the paper's "whether only the
nested sub-task currently executed has to be rolled back or (one of)
the surrounding sub-tasks".
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.agent.agent import MobileAgent
from repro.agent.context import StepContext
from repro.errors import ItineraryError, UsageError
from repro.itinerary.model import Itinerary, StepEntry, SubItinerary
from repro.log.entries import SavepointEntry

ITINERARY_KEY = "__itinerary__"
STACK_KEY = "__itin_stack__"

STEP_METHOD = "itinerary_step"


def _frame(path: tuple, sp: Optional[str]) -> dict[str, Any]:
    return {"path": tuple(path), "done": [], "sp": sp, "current": None}


class ItineraryAgent(MobileAgent):
    """An agent whose control flow is an itinerary."""

    def __init__(self, itinerary: Itinerary,
                 agent_id: Optional[str] = None):
        super().__init__(agent_id)
        itinerary.validate()
        self.sro[ITINERARY_KEY] = itinerary
        self.sro[STACK_KEY] = [_frame((), None)]
        self._initial_savepoints: list[tuple[str, bool]] = []
        self._descend_initial()

    # -- launch wiring -------------------------------------------------------------

    def launch_entry(self) -> tuple[str, str]:
        """(node, method) for :meth:`repro.node.runtime.World` launching."""
        entry = self._current_entry()
        return entry.loc, STEP_METHOD

    def initial_savepoints(self) -> list[tuple[str, bool]]:
        """Savepoints to be written into the log before the first step."""
        return list(self._initial_savepoints)

    # -- the generic step ------------------------------------------------------------

    def itinerary_step(self, ctx: StepContext) -> None:
        """Run the current step entry's method, then advance the cursor.

        The entry's precondition is (re-)evaluated at execution time:
        after a rollback the restored cursor may point at an entry
        whose condition no longer holds (the weakly reversible state
        changed), in which case the entry is skipped and the cursor
        advances — ref [14]'s "whether and when an entry can be
        executed".
        """
        entry = self._current_entry()
        if not self._precondition_ok(entry):
            self._advance(ctx)
            return
        method = self.step_method(entry.method)
        method(ctx)
        finishing, _ = ctx.staged_finish()
        if finishing:
            return
        if ctx.staged_next() is not None:
            raise UsageError(
                "itinerary agents must not call ctx.goto(); adapt the "
                "itinerary instead")
        self._advance(ctx)

    def itinerary_result(self) -> Any:
        """Hook: the agent's result when the itinerary completes."""
        return None

    # -- rollback scoping --------------------------------------------------------------

    def rollback_scope(self, ctx: StepContext, levels: int = 0) -> None:
        """Roll back the current sub-itinerary (or an enclosing one).

        Never returns (raises the rollback request).  When the chosen
        frame's savepoint entry is no longer in the log (it was a
        virtual savepoint consumed by an earlier, deeper rollback), the
        nearest enclosing savepoint still present is used — by
        construction it denotes the same agent state.
        """
        stack = self.sro[STACK_KEY]
        frames = stack[1:]  # skip the main frame (never has a savepoint)
        if not frames:
            raise UsageError("no sub-itinerary is executing")
        if levels >= len(frames):
            raise UsageError(
                f"levels={levels} exceeds nesting depth {len(frames)}")
        target_index = len(frames) - 1 - levels
        for index in range(target_index, -1, -1):
            sp_id = frames[index]["sp"]
            if sp_id is not None and ctx.has_savepoint(sp_id):
                ctx.rollback(sp_id)
        raise UsageError("no restorable savepoint found for this scope")

    # -- cursor machinery -----------------------------------------------------------------

    def _itinerary(self) -> Itinerary:
        return self.sro[ITINERARY_KEY]

    def _stack(self) -> list[dict[str, Any]]:
        return self.sro[STACK_KEY]

    def _current_entry(self) -> StepEntry:
        frame = self._stack()[-1]
        sub = self._itinerary().resolve(tuple(frame["path"]))
        index = frame["current"]
        if index is None:
            raise ItineraryError("no current step entry (cursor desync)")
        entry = sub.entries[index]
        if not isinstance(entry, StepEntry):
            raise ItineraryError("cursor points at a sub-itinerary")
        return entry

    def _precondition_ok(self, entry: Union[StepEntry, SubItinerary]) -> bool:
        if entry.precondition is None:
            return True
        predicate = getattr(self, entry.precondition, None)
        if predicate is None:
            raise ItineraryError(
                f"unknown precondition method {entry.precondition!r}")
        return bool(predicate())

    def _next_ready(self, sub: Union[Itinerary, SubItinerary],
                    frame: dict[str, Any]) -> Optional[int]:
        """Choose the next entry index, skipping false preconditions.

        Entries whose precondition evaluates false at selection time are
        marked done without executing — the mechanism used for
        alternatives ("skip the fallback shop if we already bought").
        """
        done = frame["done"]
        pending = [i for i in range(len(sub.entries)) if i not in done]
        for index in pending:
            entry = sub.entries[index]
            if self._precondition_ok(entry):
                return index
            frame["done"].append(index)
        return None

    def _descend_initial(self) -> None:
        """Push frames down to the first step entry (constructor time)."""

        def request_sp(_ctx: None, virtual: bool) -> str:
            sp_id = SavepointEntry.fresh_id("itin")
            self._initial_savepoints.append((sp_id, virtual))
            return sp_id

        if not self._descend(None, request_sp):
            raise ItineraryError(
                "itinerary has no executable step entry (all "
                "preconditions false?)")

    def _request_savepoint(self, ctx: StepContext, virtual: bool) -> str:
        return ctx.savepoint(SavepointEntry.fresh_id("itin"),
                             virtual=virtual)

    def _descend(self, ctx: Optional[StepContext], request_sp) -> bool:
        """From the top frame, descend to the next step entry.

        ``request_sp(ctx, virtual)`` creates savepoints for entered
        sub-itineraries.  Returns False when the whole itinerary
        completed.  The first savepoint requested in one call batch is
        real; the rest are virtual (same agent state — no step runs in
        between).
        """
        stack = self._stack()
        requested_real = False
        while True:
            frame = stack[-1]
            sub = self._itinerary().resolve(tuple(frame["path"]))
            index = self._next_ready(sub, frame)
            if index is None:
                # (sub-)itinerary completed
                if frame["path"] == ():
                    return False
                if ctx is not None:
                    if frame["sp"] is not None:
                        ctx.discard_savepoint(frame["sp"])
                    if len(frame["path"]) == 1:
                        ctx.truncate_log()
                stack.pop()
                parent = stack[-1]
                parent["done"].append(frame["path"][-1])
                parent["current"] = None
                continue
            entry = sub.entries[index]
            if isinstance(entry, StepEntry):
                frame["current"] = index
                return True
            sp_id = request_sp(ctx, requested_real)
            requested_real = True
            stack.append(_frame(tuple(frame["path"]) + (index,), sp_id))

    def _advance(self, ctx: StepContext) -> None:
        """Mark the current entry done and move to the next one."""
        stack = self._stack()
        frame = stack[-1]
        if frame["current"] is not None:
            frame["done"].append(frame["current"])
            frame["current"] = None
        more = self._descend(ctx, self._request_savepoint)
        if not more:
            ctx.finish(self.itinerary_result())
            return
        entry = self._current_entry()
        ctx.goto(entry.loc, STEP_METHOD)
