"""Itinerary structure (paper, Section 4.4.2; concept from ref [14]).

An itinerary entry is either a :class:`StepEntry` — "a tuple
(meth()/loc) which describes that the agent has to execute the step
specified by the method meth() on the node specified by loc" — or a
nested :class:`SubItinerary`.  The order among a sub-itinerary's
entries may be total (``order="sequence"``) or partial
(``order="any"``, the system chooses among ready entries); entries may
carry a *precondition* (the name of a predicate method on the agent,
kept as a string so itineraries stay picklable), the mechanism ref [14]
uses for alternatives and conditional execution.

Everything here is plain picklable data: itineraries live in the
agent's strongly reversible space, so adaptations made during execution
roll back with the agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.errors import ItineraryError


@dataclass
class StepEntry:
    """Execute ``method()`` on node ``loc``."""

    method: str
    loc: str
    precondition: Optional[str] = None  # agent predicate method name

    def label(self) -> str:
        return f"{self.method}()/{self.loc}"


@dataclass
class SubItinerary:
    """A (sub-)task: ordered collection of steps and nested sub-tasks."""

    name: str
    entries: list[Union[StepEntry, "SubItinerary"]] = field(
        default_factory=list)
    order: str = "sequence"  # "sequence" | "any"
    precondition: Optional[str] = None

    def add(self, entry: Union[StepEntry, "SubItinerary"]) -> "SubItinerary":
        self.entries.append(entry)
        return self

    def validate(self) -> None:
        if self.order not in ("sequence", "any"):
            raise ItineraryError(
                f"{self.name}: unknown order {self.order!r}")
        if not self.entries:
            raise ItineraryError(f"{self.name}: empty sub-itinerary")
        for entry in self.entries:
            if isinstance(entry, SubItinerary):
                entry.validate()

    def walk_steps(self) -> Iterator[StepEntry]:
        """All step entries, depth-first (static analysis / benches)."""
        for entry in self.entries:
            if isinstance(entry, StepEntry):
                yield entry
            else:
                yield from entry.walk_steps()


@dataclass
class Itinerary:
    """The main itinerary: only sub-itineraries allowed (Section 4.4.2).

    "To provide a clear semantics, no step entries are allowed in the
    main itinerary" — completing a direct child discards the whole
    rollback log, so each child is a unit the agent can never roll back
    out of once done.
    """

    entries: list[SubItinerary] = field(default_factory=list)
    order: str = "sequence"

    def add(self, sub: SubItinerary) -> "Itinerary":
        self.entries.append(sub)
        return self

    def validate(self) -> None:
        if not self.entries:
            raise ItineraryError("empty main itinerary")
        if self.order not in ("sequence", "any"):
            raise ItineraryError(f"unknown order {self.order!r}")
        for entry in self.entries:
            if not isinstance(entry, SubItinerary):
                raise ItineraryError(
                    "step entries are not allowed in the main itinerary")
            entry.validate()

    def resolve(self, path: tuple[int, ...]) -> Union[
            "Itinerary", SubItinerary, StepEntry]:
        """The entry at ``path`` (a tuple of child indices from the root)."""
        node: Union[Itinerary, SubItinerary, StepEntry] = self
        for index in path:
            if isinstance(node, StepEntry):
                raise ItineraryError(f"path {path} descends into a step")
            node = node.entries[index]
        return node

    def walk_steps(self) -> Iterator[StepEntry]:
        for sub in self.entries:
            yield from sub.walk_steps()
