"""Itineraries integrated with rollback (paper, Section 4.4.2, Fig 6).

An itinerary structures an agent's job into a hierarchy of sub-tasks:

* the **main itinerary** contains only sub-itineraries (no step
  entries) — completing one of them discards the entire rollback log,
  splitting the agent's execution into parts that can never be rolled
  back once finished;
* a **sub-itinerary** contains step entries ``(meth()/loc)`` and nested
  sub-itineraries; entering one automatically constitutes an agent
  savepoint (virtual if no step ran since the enclosing savepoint);
  completing one discards its savepoint from the log (the operation
  entries stay — they are still needed to roll back the enclosing
  sub-itinerary).

Rollback is always to the start of a currently-executing sub-itinerary:
the current one or any enclosing one
(:meth:`~repro.itinerary.executor.ItineraryAgent.rollback_scope`).
"""

from repro.itinerary.model import Itinerary, StepEntry, SubItinerary
from repro.itinerary.executor import ItineraryAgent
from repro.itinerary.builder import format_itinerary, parse_itinerary

__all__ = [
    "Itinerary",
    "SubItinerary",
    "StepEntry",
    "ItineraryAgent",
    "parse_itinerary",
    "format_itinerary",
]
