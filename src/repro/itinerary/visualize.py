"""Itinerary rendering: ASCII trees and Graphviz dot.

Documentation/debugging aids for the hierarchical itineraries of
Section 4.4.2 — the ASCII form mirrors the paper's Figure 6 layout.
"""

from __future__ import annotations

from typing import Union

from repro.itinerary.model import Itinerary, StepEntry, SubItinerary


def render_tree(itinerary: Itinerary) -> str:
    """ASCII tree of the itinerary (Figure-6 style)."""
    lines = ["I" + (" (any order)" if itinerary.order == "any" else "")]
    entries = list(itinerary.entries)
    for i, entry in enumerate(entries):
        _render_entry(entry, "", i == len(entries) - 1, lines)
    return "\n".join(lines)


def _render_entry(entry: Union[StepEntry, SubItinerary], prefix: str,
                  last: bool, lines: list[str]) -> None:
    branch = "└─ " if last else "├─ "
    if isinstance(entry, StepEntry):
        suffix = f" ?{entry.precondition}" if entry.precondition else ""
        lines.append(f"{prefix}{branch}{entry.method}()/{entry.loc}"
                     f"{suffix}")
        return
    flags = []
    if entry.order == "any":
        flags.append("any order")
    if entry.precondition:
        flags.append(f"?{entry.precondition}")
    suffix = f" ({', '.join(flags)})" if flags else ""
    lines.append(f"{prefix}{branch}{entry.name}{suffix}")
    child_prefix = prefix + ("   " if last else "│  ")
    children = list(entry.entries)
    for i, child in enumerate(children):
        _render_entry(child, child_prefix, i == len(children) - 1, lines)


def to_dot(itinerary: Itinerary, name: str = "itinerary") -> str:
    """Graphviz dot source for the itinerary hierarchy."""
    lines = [f"digraph {name} {{", "  node [shape=box];",
             '  root [label="I", shape=ellipse];']
    counter = [0]

    def emit(entry: Union[StepEntry, SubItinerary], parent: str) -> None:
        counter[0] += 1
        node_id = f"n{counter[0]}"
        if isinstance(entry, StepEntry):
            label = f"{entry.method}()/{entry.loc}"
            lines.append(f'  {node_id} [label="{label}"];')
        else:
            lines.append(f'  {node_id} [label="{entry.name}", '
                         "shape=ellipse];")
        lines.append(f"  {parent} -> {node_id};")
        if isinstance(entry, SubItinerary):
            for child in entry.entries:
                emit(child, node_id)

    for sub in itinerary.entries:
        emit(sub, "root")
    lines.append("}")
    return "\n".join(lines)
