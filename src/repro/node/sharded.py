"""Sharded multi-world execution: N kernels, one simulated system.

One :class:`~repro.sim.kernel.Simulator` processes every event of a
world in a single totally-ordered queue, which caps how many concurrent
agents a run can hold.  :class:`ShardedWorld` scales past that by
partitioning the node set across N independent shard worlds — each with
its own kernel, transport stack, failure injector and metrics — and
connecting them with a deterministic **cross-shard bridge**.

Lockstep epochs
---------------

Virtual clocks stay consistent through barrier synchronisation: the
driver picks the next epoch barrier (a multiple of ``epoch``), advances
every shard's kernel exactly to it (:meth:`Simulator.run_epoch`), then
exchanges the packages that crossed shard boundaries during the epoch.
A cross-shard migration commits in its source shard with the same
transfer / 2PC-round / stable-write charges as a remote migration in a
plain world; the durable enqueue at the destination is carried by the
bridge and injected into the destination kernel at the barrier.
Because forwards are collected in deterministic order (shards run
sequentially per epoch; transfers sort by commit time then sequence)
and injected at deterministic times, a sharded run is fully
reproducible — and because the bridge only *delays* the enqueue to the
next barrier (never reorders per-link, never drops), per-agent
outcomes match an equivalent unsharded run of the same topology at the
same seed.

Failure semantics across shards differ from the in-world case in two
bounded ways.  Reachability checks against a remote-shard node consult
that shard's failure injector, whose state may lag the querying shard
by at most one epoch (kernels only synchronise at barriers).  And the
destination's *transaction manager* cannot be enlisted across kernels,
so a destination crash inside the shipping commit window aborts the
transaction in an unsharded run but lets it commit in a sharded one —
the bridged package then simply waits in the durable queue for the
recovery rescan.  Both paths are correct executions of the same
deterministic agent program (exactly-once is arbitrated by the durable
queues either way), so per-agent *outcomes* still agree; aggregate
*counters* are only shard-count-invariant for crash-free runs.

Scope notes: per-agent records are shared across shards (an agent may
migrate anywhere), while fault-tolerant shadow replication and its step
ledger stay shard-local — configure FT alternates within the shard of
the node they back.

Knobs: ``n_shards`` (kernel count), ``epoch`` (barrier spacing;
defaults to the network latency, the natural lookahead of the fabric),
plus everything a plain :class:`~repro.node.runtime.World` accepts.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import UsageError
from repro.node.runtime import LEDGER_NODE, AgentRecord, World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.agent import MobileAgent
    from repro.agent.packages import AgentPackage
    from repro.node.node import Node
    from repro.tx.manager import Transaction


@dataclass
class _Transfer:
    """One package crossing a shard boundary."""

    at: float          # source-shard commit time
    seq: int           # global order among forwards of the same instant
    dest_shard: int
    dest_name: str
    package: "AgentPackage"


class CrossShardBridge:
    """Deterministic package exchange between shard kernels.

    Forwards accumulate while the shards run one epoch; at the barrier
    the driver flushes them, sorted by ``(commit time, sequence)``, into
    the destination kernels.  The transfer cost was already charged
    into the shipping transaction (the commit instant includes it), so
    injection happens at the barrier — the bridge adds at most one
    epoch of staleness, never extra cost, and never reorders the
    per-link package stream.
    """

    def __init__(self) -> None:
        self._pending: list[_Transfer] = []
        self._seq = itertools.count()
        self.transfers_total = 0

    def pending(self) -> int:
        """Forwards awaiting the next barrier flush."""
        return len(self._pending)

    def forward(self, dest_shard: int, dest_name: str,
                package: "AgentPackage", at: float) -> None:
        """Hand a committed package to the bridge (source commit action)."""
        self._pending.append(_Transfer(at=at, seq=next(self._seq),
                                       dest_shard=dest_shard,
                                       dest_name=dest_name, package=package))

    def flush(self, shards: list["ShardWorld"], barrier: float) -> int:
        """Inject every pending forward into its destination kernel.

        Runs between epochs, when every shard's clock sits exactly at
        ``barrier``; deliveries are scheduled at the barrier instant in
        deterministic order.  Returns the number of packages moved.
        """
        pending = self._pending
        self._pending = []
        pending.sort(key=lambda t: (t.at, t.seq))
        for transfer in pending:
            world = shards[transfer.dest_shard]
            when = max(transfer.at, world.sim.now)
            world.metrics.incr("bridge.transfers")
            world.metrics.add_bytes("bridge.bytes",
                                    transfer.package.size_bytes)
            world.sim.schedule_at(
                when,
                lambda w=world, t=transfer:
                    w.node(t.dest_name).queue.enqueue(t.package),
                label=f"bridge:{transfer.dest_name}")
        self.transfers_total += len(pending)
        return len(pending)


class ShardWorld(World):
    """One shard: a plain world whose remote deliveries may leave it.

    Identical to :class:`~repro.node.runtime.World` except for the
    delivery seam: a package whose destination node lives in another
    shard is handed to the bridge as a commit action of the shipping
    transaction, instead of being enqueued locally.
    """

    def __init__(self, shard_index: int, sharded: "ShardedWorld",
                 **world_kwargs: Any):
        super().__init__(**world_kwargs)
        self.shard_index = shard_index
        self._sharded = sharded

    def reachable(self, a: str, b: str) -> bool:
        """Reachability, extended to nodes hosted by other shards.

        For a remote-shard destination the owning shard's failure
        injector is consulted — its state lags this kernel by at most
        one epoch (shards only synchronise at barriers), which bounds
        how stale a cross-shard up/down answer can be.  Cross-shard
        links have no partition model; node liveness is the signal.
        """
        if b != LEDGER_NODE and b not in self.nodes:
            shard = self._sharded._node_shard.get(b)
            if shard is not None:
                other = self._sharded.shards[shard]
                return (self.failures.node_up(a)
                        and other.failures.node_up(b))
        return super().reachable(a, b)

    def deliver_package(self, tx: "Transaction", package: "AgentPackage",
                        dest_name: str) -> None:
        if dest_name in self.nodes:
            super().deliver_package(tx, package, dest_name)
            return
        dest_shard = self._sharded.shard_of(dest_name)  # raises if unknown
        bridge = self._sharded.bridge
        self.metrics.incr("bridge.forwards")
        tx.register_commit(
            lambda: bridge.forward(dest_shard, dest_name, package,
                                   self.sim.now))


class ShardedWorld:
    """A simulated mobile-agent system partitioned across N kernels.

    The facade mirrors :class:`~repro.node.runtime.World` where it
    matters (``add_node`` / ``launch`` / ``run`` / ``agents``), so
    benches can swap one for the other.  ``n_shards=1`` runs the same
    code path with the bridge idle — the reference configuration the
    determinism tests compare against.
    """

    def __init__(self, n_shards: int = 2, seed: int = 0,
                 epoch: Optional[float] = None, **world_kwargs: Any):
        if n_shards < 1:
            raise UsageError(f"need at least 1 shard, got {n_shards}")
        self.n_shards = n_shards
        self.seed = seed
        net_params = world_kwargs.get("net_params")
        if epoch is None:
            epoch = net_params.latency if net_params is not None else 0.005
        if epoch <= 0:
            raise UsageError(f"epoch must be positive, got {epoch}")
        self.epoch = epoch
        self.bridge = CrossShardBridge()
        #: Per-agent records, shared by every shard world: an agent may
        #: migrate to any shard, and whichever shard executes its steps
        #: updates the same record.
        self.agents: dict[str, AgentRecord] = {}
        self.shards: list[ShardWorld] = []
        for index in range(n_shards):
            world = ShardWorld(shard_index=index, sharded=self,
                               seed=seed + 100_003 * index, **world_kwargs)
            world.agents = self.agents
            self.shards.append(world)
        self._node_shard: dict[str, int] = {}
        self.epochs_run = 0

    # -- topology -------------------------------------------------------------------

    def add_node(self, name: str, shard: Optional[int] = None) -> "Node":
        """Create node ``name`` in ``shard`` (round-robin by default)."""
        if name in self._node_shard:
            raise UsageError(f"node {name!r} already exists")
        if shard is None:
            shard = len(self._node_shard) % self.n_shards
        if not 0 <= shard < self.n_shards:
            raise UsageError(f"no shard {shard} (have {self.n_shards})")
        node = self.shards[shard].add_node(name)
        self._node_shard[name] = shard
        return node

    def add_nodes(self, *names: str) -> list["Node"]:
        """Create several nodes at once (round-robin placement)."""
        return [self.add_node(n) for n in names]

    def shard_of(self, name: str) -> int:
        """Index of the shard hosting node ``name``."""
        shard = self._node_shard.get(name)
        if shard is None:
            raise UsageError(f"no node {name!r}")
        return shard

    def world_of(self, name: str) -> ShardWorld:
        """The shard world hosting node ``name``."""
        return self.shards[self.shard_of(name)]

    def node(self, name: str) -> "Node":
        return self.world_of(name).node(name)

    # -- agent management -----------------------------------------------------------------

    def launch(self, agent: "MobileAgent", at: str, method: str,
               **launch_kwargs: Any) -> AgentRecord:
        """Launch ``agent`` at node ``at`` (in whichever shard hosts it)."""
        return self.world_of(at).launch(agent, at=at, method=method,
                                        **launch_kwargs)

    def record_of(self, agent_id: str) -> AgentRecord:
        record = self.agents.get(agent_id)
        if record is None:
            raise UsageError(f"no agent {agent_id!r}")
        return record

    def all_done(self) -> bool:
        """True when no agent is still running."""
        return self.shards[0].all_done()

    # -- execution ------------------------------------------------------------------------------

    @property
    def now(self) -> float:
        """The lockstep virtual clock (all shards agree at barriers)."""
        return max(world.sim.now for world in self.shards)

    def run(self, until: Optional[float] = None,
            max_epochs: int = 1_000_000,
            max_events_per_epoch: int = 10_000_000) -> None:
        """Run all shards in lockstep epochs until drained (or ``until``).

        Each iteration: pick the next barrier on the epoch grid (skipping
        grid points no shard has work before — the barrier sequence is a
        pure function of event times, so runs stay deterministic),
        advance every shard to it, then flush the bridge.
        """
        for _ in range(max_epochs):
            next_times = [t for t in (w.sim.peek_time() for w in self.shards)
                          if t is not None]
            if not next_times:
                if self.bridge.pending():
                    # Defensive: a forward committed on the last epoch's
                    # final event must still reach its destination.
                    self.bridge.flush(self.shards, self.now)
                    continue
                return  # every kernel drained, nothing left to bridge
            soonest = min(next_times)
            if until is not None and soonest > until:
                for world in self.shards:
                    world.sim.run_epoch(max(until, world.sim.now))
                return
            barrier = self.epoch * math.ceil(soonest / self.epoch)
            if barrier < soonest:  # float guard: stay at-or-after the event
                barrier += self.epoch
            if until is not None and barrier > until:
                barrier = until
            for world in self.shards:
                world.sim.run_epoch(barrier,
                                    max_events=max_events_per_epoch)
            self.bridge.flush(self.shards, barrier)
            self.epochs_run += 1
        raise UsageError(
            f"sharded run exceeded {max_epochs} epochs; likely livelock")

    # -- results ----------------------------------------------------------------------------

    def outcomes(self) -> dict[str, dict[str, Any]]:
        """Canonical per-agent outcomes, for cross-configuration checks.

        Status, result, committed-step and rollback counts — everything
        that must be identical between a sharded run and an equivalent
        unsharded run at the same seed (timing may differ by bridge
        staleness; outcomes may not).
        """
        return {
            agent_id: {
                "status": record.status.value,
                "result": record.result,
                "failure": record.failure,
                "steps_committed": record.steps_committed,
                "rollbacks_completed": record.rollbacks_completed,
            }
            for agent_id, record in sorted(self.agents.items())
        }

    def counters(self, exclude_prefixes: tuple[str, ...] = ()
                 ) -> dict[str, int]:
        """Aggregate counters/byte totals across every shard's metrics.

        ``exclude_prefixes`` drops families that legitimately differ
        between shard counts (e.g. ``bridge.`` traffic exists only when
        N > 1).
        """
        totals: dict[str, int] = {}
        for world in self.shards:
            for key, value in world.metrics.summary().items():
                if any(key.startswith(p) or key.startswith(f"bytes.{p}")
                       for p in exclude_prefixes):
                    continue
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def events_processed(self) -> int:
        """Total kernel events fired across all shards."""
        return sum(world.sim.events_processed for world in self.shards)
