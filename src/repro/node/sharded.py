"""Sharded multi-world execution: N kernels, one simulated system.

One :class:`~repro.sim.kernel.Simulator` processes every event of a
world in a single totally-ordered queue, which caps how many concurrent
agents a run can hold.  :class:`ShardedWorld` scales past that by
partitioning the node set across N independent shard worlds — each with
its own kernel, transport stack, failure injector and metrics — and
connecting them with a deterministic **cross-shard bridge**.

Lockstep epochs
---------------

Virtual clocks stay consistent through barrier synchronisation: the
driver picks the next epoch barrier (a multiple of ``epoch``), advances
every shard's kernel exactly to it (:meth:`Simulator.run_epoch`), then
exchanges the traffic that crossed shard boundaries during the epoch.
A cross-shard migration commits in its source shard with the same
transfer / 2PC-round / stable-write charges as a remote migration in a
plain world; the durable enqueue at the destination is carried by the
bridge and injected into the destination kernel at the barrier.
Because forwards are collected in deterministic order (shards run
sequentially per epoch; transfers sort by commit time then sequence)
and injected at deterministic times, a sharded run is fully
reproducible — and because the bridge only *delays* the enqueue to the
next barrier (never reorders per-link, never drops), per-agent
outcomes match an equivalent unsharded run of the same topology at the
same seed.

Besides agent packages the bridge now carries two further kinds of
traffic for the fault-tolerant protocol: **shadow copies** bound for
alternates in other shards (message semantics — retried across
downtime, give-ups surfaced through the same
:func:`~repro.net.transport.surface_give_up` path as direct sends,
never silently dropped) and **ledger mirrors** that replicate step
claims to every shard's ledger replica inside the epoch barrier (see
:class:`~repro.exactly_once.fault_tolerant.BridgedFaultTolerance`).

Whole-shard outages
-------------------

:meth:`ShardedWorld.kill_shard` injects the failure mode a sharded
deployment actually fears: at the kill instant every node of the shard
crashes and the shard's *kernel* suspends
(:meth:`Simulator.suspend`) — the dead kernel stops advancing while the
surviving shards keep running, promote cross-shard shadows and complete
itineraries exactly once.  An optional restart resumes the kernel at
the restart time: the backlog replays (deliveries retry across the
downtime, exactly like a node crash in a plain world), the ledger
replica catches up from the bridge's mirror backlog, and the recovery
rescan re-dispatches the durable queues — stale primaries then discard
themselves against the replicated ledger.

Failure semantics across shards differ from the in-world case in two
bounded ways.  Reachability/liveness checks against a remote-shard node
consult that shard's failure injector, whose state may lag the querying
shard by at most one epoch (kernels only synchronise at barriers).  And
the destination's *transaction manager* cannot be enlisted across
kernels, so a destination crash inside the shipping commit window
aborts the transaction in an unsharded run but lets it commit in a
sharded one — the bridged package then simply waits in the durable
queue for the recovery rescan.  Both paths are correct executions of
the same deterministic agent program (exactly-once is arbitrated by the
durable queues and the replicated step ledger either way), so per-agent
*outcomes* still agree; aggregate *counters* are only
shard-count-invariant for crash-free runs.

Knobs: ``n_shards`` (kernel count), ``epoch`` (barrier spacing;
defaults to the network latency, the natural lookahead of the fabric),
:meth:`kill_shard` (whole-kernel outage injection),
``FTParams.cross_shard_alternates`` (prefer shadow placement in other
shards), plus everything a plain :class:`~repro.node.runtime.World`
accepts.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import UsageError
from repro.node.runtime import LEDGER_NODE, AgentRecord, World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.agent import MobileAgent
    from repro.agent.packages import AgentPackage
    from repro.journal.journal import WorldJournal
    from repro.net.messages import Message
    from repro.node.node import Node
    from repro.tx.manager import Transaction


def next_epoch_barrier(soonest: float, epoch: float,
                       floor_now: float) -> float:
    """The next barrier on the epoch grid at-or-after ``soonest``.

    Shared by the in-process and multiprocess epoch drivers so both
    walk exactly the same barrier sequence: the grid point covering the
    earliest pending event, nudged up one grid step on float round-down,
    and never behind ``floor_now`` (the fastest running kernel's clock —
    a revival may be due before it, but barriers cannot move backwards).
    """
    barrier = epoch * math.ceil(soonest / epoch)
    if barrier < soonest:  # float guard: stay at-or-after the event
        barrier += epoch
    while barrier < floor_now:
        barrier += epoch
    return barrier


def outcomes_of(agents: dict[str, AgentRecord]) -> dict[str, dict[str, Any]]:
    """Canonical per-agent outcomes, for cross-configuration checks.

    Status, result, committed-step and rollback counts — everything
    that must be identical between runs of the same seeded workload on
    any execution backend (unsharded, in-process shards, process-backed
    shards); timing may differ by bridge staleness, outcomes may not.
    """
    return {
        agent_id: {
            "status": record.status.value,
            "result": record.result,
            "failure": record.failure,
            "steps_committed": record.steps_committed,
            "rollbacks_completed": record.rollbacks_completed,
        }
        for agent_id, record in sorted(agents.items())
    }


def aggregate_counters(summaries: list[dict[str, Any]],
                       exclude_prefixes: tuple[str, ...] = ()
                       ) -> dict[str, int]:
    """Sum per-shard metric summaries, dropping excluded families."""
    totals: dict[str, int] = {}
    for summary in summaries:
        for key, value in summary.items():
            if any(key.startswith(p) or key.startswith(f"bytes.{p}")
                   for p in exclude_prefixes):
                continue
            totals[key] = totals.get(key, 0) + value
    return dict(sorted(totals.items()))


@dataclass
class _Transfer:
    """One unit of traffic crossing a shard boundary.

    Deliberately **process-picklable**: the payloads are agent packages
    / messages (already pickle-framed) and the source/give-up context
    is carried as a shard index plus a declarative tag instead of live
    world references or closures, so the same object can ride a
    :mod:`multiprocessing` pipe between a shard worker and the
    coordinator (see :mod:`repro.node.procshard`).
    """

    at: float          # source-shard commit time
    seq: int           # global order among forwards of the same instant
    kind: str          # "package" | "shadow" | "ledger"
    dest_shard: int
    dest_name: str = ""
    package: Optional["AgentPackage"] = None
    message: Optional["Message"] = None        # shadow envelope
    ledger_write: Optional[tuple] = None       # (work_id, holder)
    max_retries: int = 0
    retries: int = 0
    source_shard: int = -1
    #: Declarative give-up context, e.g. ``("shadow-lost", alt_name)``;
    #: resolved to the concrete handler on the *source* shard by
    #: :meth:`~repro.exactly_once.fault_tolerant.BridgedFaultTolerance.
    #: apply_bridge_give_up` (never a closure — closures cannot cross a
    #: process boundary).
    give_up: Optional[tuple] = None
    #: Worker mode only: the shipped agent's record state, captured by
    #: the source worker when the transfer left it, applied by the
    #: destination worker before the payload is delivered.  The agent's
    #: record travels *with* the agent instead of being broadcast every
    #: epoch (in-process shards share the record table directly and
    #: leave this None).
    record_blob: Optional[bytes] = None


@dataclass
class _ShardOutage:
    """One scheduled whole-shard outage (and optional restart)."""

    shard: int
    at: float
    restart_at: Optional[float] = None
    revived: bool = False


class CrossShardBridge:
    """Deterministic traffic exchange between shard kernels.

    Forwards accumulate while the shards run one epoch; at the barrier
    the driver flushes them, sorted by ``(commit time, sequence)``, into
    the destination kernels.  The transfer cost was already charged
    into the shipping transaction (the commit instant includes it), so
    injection happens at the barrier — the bridge adds at most one
    epoch of staleness, never extra cost, and never reorders the
    per-link stream.

    Three kinds of traffic, three delivery contracts:

    * **packages** — durable-queue semantics: always injected, even
      into a suspended kernel (the enqueue fires when the kernel is
      resumed; a shard that never restarts simply never sees it — the
      outage the cross-shard shadows exist to survive);
    * **shadows** — message semantics: a copy bound for a suspended
      shard is retried at subsequent flushes, and exhausting its retry
      budget surfaces the loss through
      :func:`~repro.net.transport.surface_give_up` — the same
      ``net.gave_up`` counter / timeline event / ``on_gave_up``
      callback as a direct send, never a silent drop;
    * **ledger mirrors** — replica semantics: applied to live replicas
      at the barrier, banked for suspended ones and applied when the
      shard's replica catches up at restart.
    """

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards
        self._pending: list[_Transfer] = []
        self._seq = itertools.count()
        self._ledger_backlog: dict[int, list[tuple]] = {}
        self.transfers_total = 0
        #: Shadow copies abandoned after exhausting their flush-retry
        #: budget (each was surfaced through the give-up path).
        self.shadows_dropped = 0

    def pending(self) -> int:
        """Forwards awaiting the next barrier flush."""
        return len(self._pending)

    def drain_pending(self) -> list[_Transfer]:
        """Take every pending forward, in insertion order (worker outbox).

        A shard worker's bridge is a pure accumulator: the worker drains
        it after each epoch and ships the transfers to the coordinator,
        whose own bridge re-registers them (in shard order, so the
        global sequence numbers reproduce the in-process interleaving)
        and performs the actual routing.
        """
        pending = self._pending
        self._pending = []
        return pending

    def adopt(self, transfer: _Transfer) -> None:
        """Re-register a worker-shipped transfer under a fresh sequence."""
        transfer.seq = next(self._seq)
        self._pending.append(transfer)

    def forward(self, dest_shard: int, dest_name: str,
                package: "AgentPackage", at: float) -> None:
        """Hand a committed package to the bridge (source commit action)."""
        self._pending.append(_Transfer(
            at=at, seq=next(self._seq), kind="package",
            dest_shard=dest_shard, dest_name=dest_name, package=package))

    def forward_shadow(self, dest_shard: int, message: "Message",
                       at: float, max_retries: int, source_shard: int,
                       give_up: Optional[tuple] = None,
                       retries: int = 0) -> None:
        """Hand a committed FT shadow copy to the bridge.

        ``retries`` carries over consumed budget when a dying kernel
        sweeps an undelivered copy back onto the bridge.
        """
        self._pending.append(_Transfer(
            at=at, seq=next(self._seq), kind="shadow",
            dest_shard=dest_shard, dest_name=message.dst, message=message,
            max_retries=max_retries, retries=retries,
            source_shard=source_shard, give_up=give_up))

    def forward_ledger(self, source_shard: int, work_id: int, holder: str,
                       at: float) -> None:
        """Mirror a committed ledger claim to every other replica."""
        for dest in range(self.n_shards):
            if dest == source_shard:
                continue
            self._pending.append(_Transfer(
                at=at, seq=next(self._seq), kind="ledger", dest_shard=dest,
                ledger_write=(work_id, holder)))

    def take_backlog(self, shard: int) -> list[tuple]:
        """Claim the banked ledger mirrors of a restarting shard.

        The caller hands them to the shard's
        :meth:`ShardWorld.apply_ledger_catchup` (directly in-process;
        over the revive command in worker mode).
        """
        return self._ledger_backlog.pop(shard, [])

    def route(self, suspended: list[bool]) -> list[tuple[int, str, _Transfer]]:
        """Decide the fate of every pending forward — no state applied.

        The pure half of a barrier flush: sorts the pending transfers
        into the deterministic ``(commit time, sequence)`` order and
        classifies each against the destination suspension states into
        an ordered list of ``(shard, action, transfer)`` deliveries,
        where ``action`` is ``"deliver"`` (apply to the shard world via
        :func:`apply_transfer`) or ``"give-up"`` (surface on the
        *source* shard via :func:`apply_give_up`).  Shadow retries for
        suspended destinations are retained internally; ledger mirrors
        for them are banked until :meth:`take_backlog`.

        Splitting decision from application is what lets the same
        bridge drive in-process shard worlds (apply immediately) and
        multiprocess shard workers (ship each shard its ordered inbox):
        the decisions — and therefore the runs — are identical.
        """
        pending = self._pending
        self._pending = []
        pending.sort(key=lambda t: (t.at, t.seq))
        retained: list[_Transfer] = []
        deliveries: list[tuple[int, str, _Transfer]] = []
        moved = 0
        for transfer in pending:
            down = suspended[transfer.dest_shard]
            if transfer.kind == "ledger":
                if down:
                    self._ledger_backlog.setdefault(
                        transfer.dest_shard, []).append(transfer.ledger_write)
                else:
                    deliveries.append((transfer.dest_shard, "deliver",
                                       transfer))
                moved += 1
                continue
            if transfer.kind == "shadow" and down:
                transfer.retries += 1
                if transfer.retries > transfer.max_retries:
                    # Surfaced as lost, not moved: transfers_total
                    # counts only traffic that reached a shard.
                    deliveries.append((transfer.source_shard, "give-up",
                                       transfer))
                    self.shadows_dropped += 1
                else:
                    retained.append(transfer)
                continue
            deliveries.append((transfer.dest_shard, "deliver", transfer))
            moved += 1
        self._pending.extend(retained)
        self.transfers_total += moved
        return deliveries

    def flush(self, shards: list["ShardWorld"], barrier: float) -> int:
        """Route every pending forward and apply it to its destination.

        Runs between epochs, when every live shard's clock sits exactly
        at ``barrier``; deliveries are applied at the barrier instant
        in deterministic order.  Returns the number of transfers moved
        (retained shadow retries for suspended shards don't count).
        """
        moved = 0
        for shard, action, transfer in self.route(
                [w.sim.suspended for w in shards]):
            if action == "give-up":
                apply_give_up(shards[shard], transfer)
            else:
                apply_transfer(shards[shard], transfer)
                moved += 1
        return moved


def apply_transfer(world: "ShardWorld", transfer: _Transfer) -> None:
    """Apply one routed bridge delivery to its destination shard world.

    The application half of a barrier flush (see
    :meth:`CrossShardBridge.route`): runs inside the destination's
    kernel context — directly during an in-process flush, or when a
    shard worker applies its inbox at the start of the next cycle.
    Both happen with the destination clock at the same instant, so the
    scheduled event sequence is identical in either mode.
    """
    if transfer.kind == "ledger":
        world.ft.apply_mirror(*transfer.ledger_write)
        return
    if transfer.kind == "shadow":
        when = max(transfer.at, world.sim.now)
        world.metrics.incr("bridge.shadows")
        world.metrics.add_bytes("bridge.bytes", transfer.message.size_bytes)
        world.ft.receive_shadow(transfer.message, transfer.max_retries,
                                transfer.retries, transfer.source_shard,
                                transfer.give_up, when)
        return
    when = max(transfer.at, world.sim.now)
    world.metrics.incr("bridge.transfers")
    world.metrics.add_bytes("bridge.bytes", transfer.package.size_bytes)
    world.sim.schedule_at(
        when,
        lambda w=world, t=transfer:
            w.node(t.dest_name).queue.enqueue(t.package),
        label=f"bridge:{transfer.dest_name}")


def apply_give_up(world: "ShardWorld", transfer: _Transfer) -> None:
    """Surface an abandoned bridged transfer on its *source* shard."""
    world.ft.apply_bridge_give_up(transfer.message, transfer.give_up)


class ShardWorld(World):
    """One shard: a plain world whose remote deliveries may leave it.

    Identical to :class:`~repro.node.runtime.World` except for three
    seams: the delivery seam (a package whose destination node lives in
    another shard is handed to the bridge as a commit action of the
    shipping transaction), the liveness seam (``node_up`` /
    ``reachable`` consult the owning shard's failure injector for
    foreign nodes), and the fault-tolerance driver (the bridged,
    ledger-replicated variant).
    """

    def __init__(self, shard_index: int, sharded: "ShardedWorld",
                 **world_kwargs: Any):
        # Set before super().__init__: the FT factory runs inside it
        # and needs the backrefs.
        self.shard_index = shard_index
        self._sharded = sharded
        super().__init__(**world_kwargs)

    def _make_fault_tolerance(self):
        from repro.exactly_once.fault_tolerant import BridgedFaultTolerance
        return BridgedFaultTolerance(self)

    def node_up(self, name: str) -> bool:
        """Liveness, extended to nodes hosted by other shards.

        The answer for a foreign node may lag this kernel by at most
        one epoch (kernels only synchronise at barriers).
        """
        if name != LEDGER_NODE and name not in self.nodes:
            shard = self._sharded.placement_of(name)
            if shard is not None:
                return self._sharded.foreign_node_up(shard, name)
        return super().node_up(name)

    def reachable(self, a: str, b: str) -> bool:
        """Reachability, extended to nodes hosted by other shards.

        For a remote-shard destination the owning shard's failure
        injector is consulted — its state lags this kernel by at most
        one epoch (shards only synchronise at barriers), which bounds
        how stale a cross-shard up/down answer can be.  Cross-shard
        links have no partition model; node liveness is the signal.
        """
        if b != LEDGER_NODE and b not in self.nodes:
            shard = self._sharded.placement_of(b)
            if shard is not None:
                return (self.failures.node_up(a)
                        and self._sharded.foreign_node_up(shard, b))
        return super().reachable(a, b)

    # -- whole-kernel outage handling (shared by both shard drivers) ------------------

    def schedule_kill(self, at: float) -> None:
        """Schedule this kernel's whole-shard outage at time ``at``."""
        self.sim.schedule_at(at, self.die_now,
                             label=f"kill-shard:{self.shard_index}",
                             priority=-100)

    def die_now(self) -> None:
        """The kill instant: crash every node, sweep, suspend the kernel."""
        for name in self.nodes:
            self.failures.force_crash(name)
        # Bridged shadows accepted at a barrier but not yet adopted
        # would strand in the frozen kernel; hand them back to the
        # bridge so they are delivered after a restart or surfaced.
        self.ft.sweep_inbound_shadows()
        self.metrics.incr("shard.kills")
        self.metrics.record(self.sim.now, "shard-killed",
                            shard=self.shard_index)
        self.sim.suspend()

    def schedule_revival(self, restart_at: float,
                         ledger_backlog: list[tuple]) -> None:
        """Resume the kernel and schedule node recovery at ``restart_at``.

        ``ledger_backlog`` is the banked mirror traffic claimed from the
        bridge (:meth:`CrossShardBridge.take_backlog`) at revival time —
        no further mirrors can be banked between the revival decision at
        the barrier and the recovery event, so claiming it early is
        equivalent to the catch-up running inside the recovery event.
        """
        self.sim.resume()

        def _recover() -> None:
            # Replica catch-up first, so recovered dispatches see the
            # settled ledger before re-executing anything.
            self.apply_ledger_catchup(ledger_backlog)
            self.metrics.incr("shard.restarts")
            self.metrics.record(self.sim.now, "shard-restarted",
                                shard=self.shard_index)
            for name in self.nodes:
                self.failures.force_recover(name)

        self.sim.schedule_at(restart_at, _recover,
                             label=f"restart-shard:{self.shard_index}",
                             priority=-10)

    def apply_ledger_catchup(self, backlog: list[tuple]) -> int:
        """Apply banked mirror writes to this shard's ledger replica."""
        for work_id, holder in backlog:
            self.ft.apply_mirror(work_id, holder)
        if backlog:
            self.metrics.incr("ft.ledger.catch_up_applied", len(backlog))
        return len(backlog)

    def deliver_package(self, tx: "Transaction", package: "AgentPackage",
                        dest_name: str) -> None:
        if dest_name in self.nodes:
            super().deliver_package(tx, package, dest_name)
            return
        dest_shard = self._sharded.shard_of(dest_name)  # raises if unknown
        bridge = self._sharded.bridge
        self.metrics.incr("bridge.forwards")
        tx.register_commit(
            lambda: bridge.forward(dest_shard, dest_name, package,
                                   self.sim.now))


class ShardedWorld:
    """A simulated mobile-agent system partitioned across N kernels.

    The facade mirrors :class:`~repro.node.runtime.World` where it
    matters (``add_node`` / ``launch`` / ``run`` / ``agents`` /
    ``set_alternates``), so benches can swap one for the other.
    ``n_shards=1`` runs the same code path with the bridge idle — the
    reference configuration the determinism tests compare against.

    Args:
        n_shards: Number of shard kernels the nodes partition across.
        seed: Root seed; shard ``i`` runs at ``seed + 100_003 * i``.
            Equal seeds give bit-identical runs on every backend.
        epoch: Virtual-time length of one lockstep epoch (defaults to
            the network latency — cross-shard traffic can never skip
            a barrier it should have been routed at).
        workers: ``"inline"`` runs every kernel in this process;
            ``"process"`` returns a
            :class:`~repro.node.procshard.ProcShardedWorld` instead
            (construction-time dispatch — extra keyword arguments
            such as ``lockstep`` / ``ipc`` flow through).
        journal: Attach a :class:`~repro.journal.WorldJournal` for
            crash-resumable execution.
        lockstep: Epoch schedule knob, accepted for facade parity
            with the process backend: ``"auto"`` / ``"serial"`` /
            ``"parallel"`` / ``"optimistic"``.  In-process shards
            always execute sequentially against live sibling state,
            so every schedule already *is* the serial one here; the
            knob changes nothing but is recorded in the journal
            config and in :meth:`serialization_stats` shape.
        **world_kwargs: Forwarded to every shard's
            :class:`~repro.node.runtime.World` (``net_params``,
            ``ft_params``, ``timing``, ...).

    Raises:
        UsageError: ``n_shards < 1``, a non-positive ``epoch``, an
            unknown ``workers`` or ``lockstep`` mode.
    """

    def __new__(cls, n_shards: int = 2, seed: int = 0,
                epoch: Optional[float] = None, workers: str = "inline",
                **world_kwargs: Any):
        if cls is ShardedWorld and workers == "process":
            # Construction-time dispatch: ``ShardedWorld(workers=
            # "process")`` hands back the multiprocess driver (a
            # sibling facade, not a subclass — __init__ below is then
            # skipped because the instance is not a ShardedWorld).
            from repro.node.procshard import ProcShardedWorld
            return ProcShardedWorld(n_shards=n_shards, seed=seed,
                                    epoch=epoch, **world_kwargs)
        if workers not in ("inline", "process"):
            raise UsageError(f"unknown workers mode {workers!r} "
                             f"(use 'inline' or 'process')")
        return super().__new__(cls)

    def __init__(self, n_shards: int = 2, seed: int = 0,
                 epoch: Optional[float] = None, workers: str = "inline",
                 journal: Optional["WorldJournal"] = None,
                 lockstep: str = "auto",
                 **world_kwargs: Any):
        if n_shards < 1:
            raise UsageError(f"need at least 1 shard, got {n_shards}")
        if lockstep not in ("auto", "serial", "parallel", "optimistic"):
            raise UsageError(f"unknown lockstep mode {lockstep!r}")
        self.n_shards = n_shards
        self.seed = seed
        #: Accepted for facade parity with :class:`ProcShardedWorld`.
        #: In-process shards always execute sequentially against live
        #: sibling state, so every schedule — including
        #: ``"optimistic"`` — already *is* the serial schedule here:
        #: there is nothing to speculate against and nothing to roll
        #: back (``spec.*`` stats stay zero).
        self.lockstep = lockstep
        net_params = world_kwargs.get("net_params")
        if epoch is None:
            epoch = net_params.latency if net_params is not None else 0.005
        if epoch <= 0:
            raise UsageError(f"epoch must be positive, got {epoch}")
        self.epoch = epoch
        self.journal = journal
        self._world_kwargs = dict(world_kwargs)
        self._kill_plan: Optional[tuple[float, str]] = None
        if journal is not None and journal.armed \
                and not journal.config_written:
            from repro.storage.serialization import capture
            journal.record_config(backend="sharded", seed=seed,
                                  n_shards=n_shards, epoch=epoch,
                                  lockstep=lockstep,
                                  world_kwargs=capture(world_kwargs))
        self.bridge = CrossShardBridge(n_shards)
        self._node_shard: dict[str, int] = {}
        #: Step-alternate policy shared by every shard's FT driver: the
        #: shipping shard must know the alternates of destinations it
        #: does not host.
        self.ft_alternates: dict[str, tuple[str, ...]] = {}
        #: Virtual time of the most recent bridge flush — the takeover
        #: watchdog's mirror-settlement guard reads it.
        self.last_flush_at = float("-inf")
        self._outages: list[_ShardOutage] = []
        #: Per-agent records, shared by every shard world: an agent may
        #: migrate to any shard, and whichever shard executes its steps
        #: updates the same record.
        self.agents: dict[str, AgentRecord] = {}
        self.shards: list[ShardWorld] = []
        for index in range(n_shards):
            world = ShardWorld(shard_index=index, sharded=self,
                               seed=seed + 100_003 * index,
                               journal_capture=journal is not None,
                               **world_kwargs)
            world.agents = self.agents
            # The shards buffer payload notes straight into the
            # coordinator's journal (attached after construction so
            # they never believe they own the op channel or the
            # config record).
            world.journal = journal
            world.journal_shard = index
            self.shards.append(world)
        self.epochs_run = 0

    # -- topology -------------------------------------------------------------------

    def add_node(self, name: str, shard: Optional[int] = None) -> "Node":
        """Create node ``name`` in ``shard`` (round-robin by default)."""
        if name in self._node_shard:
            raise UsageError(f"node {name!r} already exists")
        if shard is None:
            shard = len(self._node_shard) % self.n_shards
        if not 0 <= shard < self.n_shards:
            raise UsageError(f"no shard {shard} (have {self.n_shards})")
        self._journal_op("add_node", name=name, shard=shard)
        node = self.shards[shard].add_node(name)
        self._node_shard[name] = shard
        return node

    def add_nodes(self, *names: str) -> list["Node"]:
        """Create several nodes at once (round-robin placement)."""
        return [self.add_node(n) for n in names]

    def shard_of(self, name: str) -> int:
        """Index of the shard hosting node ``name``."""
        shard = self._node_shard.get(name)
        if shard is None:
            raise UsageError(f"no node {name!r}")
        return shard

    def world_of(self, name: str) -> ShardWorld:
        """The shard world hosting node ``name``."""
        return self.shards[self.shard_of(name)]

    def node(self, name: str) -> "Node":
        return self.world_of(name).node(name)

    def set_alternates(self, node: str, *alternates: str) -> None:
        """Declare step alternates for ``node``, visible to all shards.

        With ``FTParams.cross_shard_alternates`` (the default) the FT
        drivers prefer the alternates hosted by other shards, so shadow
        redundancy survives a whole-kernel outage.
        """
        self._journal_op("set_alternates", node=node,
                         alternates=tuple(alternates))
        self.ft_alternates[node] = tuple(alternates)

    # -- whole-shard failure injection ------------------------------------------------

    def kill_shard(self, shard: int, at: float,
                   restart_at: Optional[float] = None) -> None:
        """Schedule a whole-kernel outage of ``shard`` at time ``at``.

        At the kill instant every node hosted by the shard crashes
        (in-flight transactions abort with full undo) and the shard's
        kernel suspends — it stops advancing, so nothing in it runs
        while the surviving shards promote cross-shard shadows.  With
        ``restart_at`` the kernel resumes at that time: its nodes
        recover, the ledger replica catches up from the bridge's mirror
        backlog, and the recovery rescan re-dispatches the durable
        queues (stale primaries then discard themselves against the
        replicated ledger).  Without it the shard stays dead for the
        rest of the run.
        """
        if not 0 <= shard < self.n_shards:
            raise UsageError(f"no shard {shard} (have {self.n_shards})")
        world = self.shards[shard]
        if at < world.sim.now:
            raise UsageError(f"cannot kill shard {shard} in the past "
                             f"(at={at}, now={world.sim.now})")
        if restart_at is not None and restart_at <= at:
            raise UsageError(f"restart_at ({restart_at}) must be after "
                             f"the kill time ({at})")
        self._journal_op("kill_shard", shard=shard, at=at,
                         restart_at=restart_at)
        self._outages.append(_ShardOutage(shard=shard, at=at,
                                          restart_at=restart_at))
        world.schedule_kill(at)

    def _revive(self, outage: _ShardOutage) -> None:
        outage.revived = True
        self.shards[outage.shard].schedule_revival(
            outage.restart_at, self.bridge.take_backlog(outage.shard))

    def shard_alive(self, shard: int) -> bool:
        """False while ``shard``'s kernel is suspended by an outage."""
        return not self.shards[shard].sim.suspended

    def apply_crash_plans(self, plans) -> None:
        """Schedule node-level outages, routed to the owning shards.

        The facade twin of ``world.failures.apply_plan`` on a plain
        :class:`~repro.node.runtime.World` — one call site that works
        no matter which shard hosts each node (and, via the matching
        method on :class:`~repro.node.procshard.ProcShardedWorld`, no
        matter which *process*).
        """
        plans = list(plans)
        if self.journal is not None and self.journal.armed:
            from repro.storage.serialization import capture
            self.journal.record_op("crash_plans", blob=capture(plans))
        for plan in plans:
            self.world_of(plan.node).failures.apply_plan([plan])

    # -- world-journal seams (see repro.journal) --------------------------------------

    def _journal_op(self, op: str, **data: Any) -> None:
        if self.journal is not None and self.journal.armed:
            self.journal.record_op(op, **data)

    def attach_journal(self, journal: "WorldJournal") -> None:
        """Start journaling a *live* sharded world from this moment on.

        The facade twin of :meth:`~repro.node.runtime.World.
        attach_journal`: every shard switches into capture mode
        (payload notes buffer straight into ``journal``), capture hooks
        are wired onto each shard's existing nodes and ledger replica,
        and subsequent ops and barrier group commits land exactly as if
        the journal had been passed to the constructor.  A non-pristine
        attach records a ``live_attach`` marker, making the journal
        telemetry-only (:func:`~repro.journal.resume_world` refuses it).

        Raises:
            UsageError: A journal is already attached.
        """
        if self.journal is not None:
            raise UsageError("world already has a journal attached")
        pristine = (not self._node_shard and not self.agents
                    and all(w.sim.events_processed == 0
                            for w in self.shards))
        self.journal = journal
        for index, world in enumerate(self.shards):
            world._journal_capture = True
            world.journal = journal
            world.journal_shard = index
            for node in world.nodes.values():
                world._wire_journal_hooks(node)
            world._wire_ledger_hook()
        if journal.armed and not journal.config_written:
            from repro.storage.serialization import capture
            config: dict[str, Any] = dict(
                backend="sharded", seed=self.seed,
                n_shards=self.n_shards, epoch=self.epoch,
                lockstep=self.lockstep,
                world_kwargs=capture(self._world_kwargs))
            if not pristine:
                config["live_attach"] = {
                    "events_processed": sum(w.sim.events_processed
                                            for w in self.shards),
                    "at": self.now}
            journal.record_config(**config)

    def detach_journal(self) -> "WorldJournal":
        """Stop journaling: final group commit, unhook every shard.

        Returns the journal; the world keeps running unjournaled.

        Raises:
            UsageError: No journal is attached.
        """
        if self.journal is None:
            raise UsageError("world has no journal attached")
        self._journal_final_commit()
        journal, self.journal = self.journal, None
        for world in self.shards:
            world._journal_capture = False
            world.journal = None
            world._journal_notes.clear()
            for node in world.nodes.values():
                node.stable.on_mutate = None
                node.queue.on_journal = None
            world.ft.ledger.on_mutate = None
        return journal

    def _journal_digest(self) -> tuple:
        """Per-shard event counts at the barrier — the commit digest."""
        return tuple(w.sim.events_processed for w in self.shards)

    def _journal_commit(self, barrier: float, torn: bool = False) -> None:
        journal = self.journal
        if journal is None or not journal.armed:
            return
        digest = self._journal_digest()
        if torn:
            journal.commit_torn(barrier, digest)
        else:
            journal.commit_epoch(barrier, digest)

    def _journal_final_commit(self) -> None:
        journal = self.journal
        if journal is not None and journal.armed and journal.buffered():
            journal.commit_epoch(self.now, self._journal_digest())

    def _kill_due(self, barrier: float) -> Optional[str]:
        plan = self._kill_plan
        if plan is not None and barrier >= plan[0]:
            return plan[1]
        return None

    def kill_world(self, at: float, phase: str = "commit") -> None:
        """Hard-stop the coordinator at the first epoch barrier >= ``at``.

        The sharded twin of :meth:`~repro.node.runtime.World.
        kill_world` — and unlike :meth:`kill_shard` (which models one
        kernel dying inside a run that keeps going) this kills the
        *driver*: ``phase="commit"`` stops right after the barrier's
        journal commit; ``"barrier"`` stops mid-barrier — the epoch has
        executed and its traffic been collected, but the commit marker
        is torn and the bridge never scatters.  Never journaled: it is
        the crash being recovered from.
        """
        if phase not in ("commit", "barrier"):
            raise UsageError(f"unknown kill phase {phase!r} "
                             f"(use 'commit' or 'barrier')")
        if at < self.now:
            raise UsageError(f"cannot kill the world in the past "
                             f"(at={at}, now={self.now})")
        self._kill_plan = (float(at), phase)

    # -- cross-shard state seams (the worker-mode boundary) ---------------------------
    #
    # Everything a ShardWorld or its BridgedFaultTolerance reads from
    # *another* shard mid-epoch funnels through these methods.  The
    # in-process implementations read the live sibling worlds; the
    # multiprocess driver gives each worker a
    # :class:`~repro.node.procshard.RemoteShardContext` implementing
    # the same surface from barrier-synchronised views, which the
    # serial-turn schedule keeps byte-identical to the live reads.

    def placement_of(self, name: str) -> Optional[int]:
        """Shard index hosting node ``name`` (None when unknown)."""
        return self._node_shard.get(name)

    def foreign_node_up(self, shard: int, name: str) -> bool:
        """Liveness of ``name`` as seen by its owning shard's injector."""
        return self.shards[shard].failures.node_up(name)

    def shard_suspended(self, shard: int) -> bool:
        """True while ``shard``'s kernel is halted by an outage."""
        return self.shards[shard].sim.suspended

    def live_shard_indices(self) -> list[int]:
        """Indices of the non-suspended shards, in shard order."""
        return [world.shard_index for world in self.shards
                if not world.sim.suspended]

    def claim_lock(self, tx: "Transaction", shard: int,
                   work_id: int) -> None:
        """Acquire the claim-key lock on ``shard``'s ledger replica."""
        self.shards[shard].ft.ledger_locks.acquire(("claim", work_id), tx)

    def read_claim(self, shard: int, work_id: int) -> Optional[str]:
        """Read ``shard``'s ledger replica's view of one claim."""
        return self.shards[shard].ft.ledger.get(("claim", work_id))

    # -- agent management -----------------------------------------------------------------

    def launch(self, agent: "MobileAgent", at: str, method: str,
               **launch_kwargs: Any) -> AgentRecord:
        """Launch ``agent`` at node ``at`` (in whichever shard hosts it)."""
        if self.journal is not None and self.journal.armed:
            # Captured before the launch mutates the agent (control
            # backref, itinerary cursor), so replay re-launches the
            # pristine bundle.
            from repro.storage.serialization import capture
            self.journal.record_op("launch", bundle=capture(
                (agent, at, method, launch_kwargs)))
        return self.world_of(at).launch(agent, at=at, method=method,
                                        **launch_kwargs)

    def record_of(self, agent_id: str) -> AgentRecord:
        record = self.agents.get(agent_id)
        if record is None:
            raise UsageError(f"no agent {agent_id!r}")
        return record

    def all_done(self) -> bool:
        """True when no agent is still running."""
        return self.shards[0].all_done()

    # -- execution ------------------------------------------------------------------------------

    @property
    def now(self) -> float:
        """The lockstep virtual clock (all shards agree at barriers)."""
        return max(world.sim.now for world in self.shards)

    def _due_restarts(self) -> list[_ShardOutage]:
        """Outages with a pending restart of an already-dead kernel."""
        return [o for o in self._outages
                if o.restart_at is not None and not o.revived
                and self.shards[o.shard].sim.suspended]

    def run(self, until: Optional[float] = None,
            max_epochs: int = 1_000_000,
            max_events_per_epoch: int = 10_000_000,
            _replay: Optional[list] = None) -> None:
        """Run all shards in lockstep epochs until drained (or ``until``).

        Each iteration: pick the next barrier on the epoch grid (skipping
        grid points no shard has work before — the barrier sequence is a
        pure function of event times and outage schedules, so runs stay
        deterministic), revive shards whose restart falls inside the
        epoch, advance every live shard to the barrier, then flush the
        bridge.  Suspended kernels are skipped — a dead shard stops
        advancing — but their scheduled restarts count as work, so a run
        never terminates with a revival pending.

        With a journal attached each flushed barrier gets a group
        commit, with the ``kill_world`` check around it.  ``_replay``
        (resume driver only) walks the journaled barrier sequence
        verbatim instead of re-deriving it, and returns once exhausted.
        """
        replay = iter(_replay) if _replay is not None else None
        for _ in range(max_epochs):
            if not self._step(until, max_events_per_epoch, replay):
                return
        raise UsageError(
            f"sharded run exceeded {max_epochs} epochs; likely livelock")

    def _step(self, until: Optional[float], max_events_per_epoch: int,
              replay) -> bool:
        """One iteration of the lockstep loop; False when nothing is left."""
        running = [w for w in self.shards if not w.sim.suspended]
        next_times = [t for t in (w.sim.peek_time() for w in running)
                      if t is not None]
        next_times += [o.restart_at for o in self._due_restarts()]
        if not next_times:
            if self.bridge.pending():
                # Retained shadow retries and forwards committed on
                # the last epoch's final event must still resolve.
                self.bridge.flush(self.shards, self.now)
                self.last_flush_at = self.now
                return True
            self._journal_final_commit()
            return False  # every live kernel drained, nothing to bridge
        soonest = min(next_times)
        if until is not None and soonest > until:
            for world in running:
                world.sim.run_epoch(max(until, world.sim.now))
            return False
        if replay is not None:
            barrier = next(replay, None)
            if barrier is None:
                return False  # replayed prefix complete
        else:
            # A revival may be due before the clocks of the running
            # shards (they advanced while the dead kernel froze);
            # the barrier can never move backwards.
            floor_now = max((w.sim.now for w in running),
                            default=self.now)
            barrier = next_epoch_barrier(soonest, self.epoch,
                                         floor_now)
            if until is not None and barrier > until:
                barrier = until
        for outage in self._due_restarts():
            if outage.restart_at <= barrier:
                self._revive(outage)
        for world in self.shards:
            if world.sim.suspended:
                continue
            world.sim.run_epoch(barrier,
                                max_events=max_events_per_epoch)
        kill = self._kill_due(barrier)
        if kill == "barrier":
            # Mid-barrier crash: the epoch ran and its payload
            # notes are buffered, but the marker is torn and the
            # bridge never scatters — recovery falls back one
            # barrier.
            self._journal_commit(barrier, torn=True)
            from repro.errors import WorldKilled
            raise WorldKilled(barrier, "barrier")
        moved = self.bridge.flush(self.shards, barrier)
        self.last_flush_at = barrier
        self.epochs_run += 1
        if moved and self.journal is not None and self.journal.armed:
            self.journal.buffer("bridge", moved=moved, barrier=barrier)
        self._journal_commit(barrier)
        if kill == "commit":
            from repro.errors import WorldKilled
            raise WorldKilled(barrier, "commit")
        return True

    def step_epoch(self, max_events_per_epoch: int = 10_000_000) -> bool:
        """Advance one lockstep iteration; False once every shard is idle.

        The reentrant twin of :meth:`run` (which is exactly
        ``while self.step_epoch(): pass`` bounded by ``max_epochs``):
        each call picks the next barrier on the same deterministic grid,
        advances every live kernel to it, flushes the bridge and group-
        commits the journal, so a stepped run reproduces a straight
        run's event order, outcomes and trace digests bit for bit.  A
        call may also resolve a pending bridge flush without advancing
        the clock — still True — and returns False only when every live
        kernel is drained and nothing is left to bridge.  Idle calls are
        repeatable; a later :meth:`launch` makes the next call True.
        """
        return self._step(None, max_events_per_epoch, None)

    # -- results ----------------------------------------------------------------------------

    def outcomes(self) -> dict[str, dict[str, Any]]:
        """Canonical per-agent outcomes, for cross-configuration checks.

        Status, result, committed-step and rollback counts — everything
        that must be identical between a sharded run and an equivalent
        unsharded run at the same seed (timing may differ by bridge
        staleness; outcomes may not).
        """
        return outcomes_of(self.agents)

    def counters(self, exclude_prefixes: tuple[str, ...] = ()
                 ) -> dict[str, int]:
        """Aggregate counters/byte totals across every shard's metrics.

        ``exclude_prefixes`` drops families that legitimately differ
        between shard counts (e.g. ``bridge.`` traffic exists only when
        N > 1).
        """
        return aggregate_counters(
            [world.metrics.summary() for world in self.shards],
            exclude_prefixes)

    def events_processed(self) -> int:
        """Total kernel events fired across all shards."""
        return sum(world.sim.events_processed for world in self.shards)

    def shard_metrics(self, shard: int) -> Any:
        """One shard's :class:`~repro.sim.metrics.Metrics` (live)."""
        return self.shards[shard].metrics

    def resource_state(self, node: str, resource: str) -> Any:
        """The named resource of ``node`` — live object in-process.

        Part of the backend-neutral inspection surface (same method on
        :class:`~repro.node.runtime.World` and on
        :class:`~repro.node.procshard.ProcShardedWorld`, where it
        returns a pickled snapshot fetched from the owning worker), so
        equivalence checks can read post-run resource state without
        caring which backend executed the run.
        """
        return self.node(node).get_resource(resource)

    def serialization_stats(self) -> dict[str, Any]:
        """Aggregate :data:`repro.storage.serialization.STATS` view.

        In-process every shard shares the module counters; the
        process-backed driver sums each worker's own counters.  The
        ``spec.*`` speculation keys are included for shape parity with
        :meth:`ProcShardedWorld.serialization_stats` and are always
        zero here: in-process shards execute sequentially against live
        sibling state, so no epoch ever speculates (see ``lockstep``).
        """
        from repro.storage.serialization import stats
        merged = dict(stats())
        merged["spec.epochs_speculated"] = 0
        merged["spec.epochs_rolled_back"] = 0
        merged["spec.shards_rolled_back"] = 0
        merged["spec.conflict_rate"] = 0.0
        return dict(sorted(merged.items()))

    def enable_trace_digest(self) -> None:
        """Turn on every shard kernel's event-stream digest."""
        for world in self.shards:
            world.sim.enable_trace_digest()

    def trace_digests(self) -> list[Optional[int]]:
        """Per-shard kernel event-stream digests (see Simulator)."""
        return [world.sim.trace_digest() for world in self.shards]

    # -- ledger inspection (tests / benches) -------------------------------------------------

    def ledger_claims(self) -> dict[int, dict[int, str]]:
        """Every replica's view of every claim: work_id -> shard -> holder."""
        claims: dict[int, dict[int, str]] = {}
        for world in self.shards:
            for key in world.ft.ledger.keys():
                if isinstance(key, tuple) and key and key[0] == "claim":
                    claims.setdefault(key[1], {})[world.shard_index] = \
                        world.ft.ledger.get(key)
        return claims

    def ledger_quorum_agrees(self) -> bool:
        """Do the live replicas agree on every claim, with a majority?

        The post-run invariant of the bridged ledger: each claimed
        ``work_id`` has exactly one holder across the live replicas,
        and a majority of them hold it (dead replicas may be behind —
        they catch up at restart).
        """
        alive = {w.shard_index for w in self.shards if not w.sim.suspended}
        if not alive:
            return True
        need = len(alive) // 2 + 1
        for replicas in self.ledger_claims().values():
            holders = [holder for shard, holder in replicas.items()
                       if shard in alive]
            if not holders:
                continue  # only dead replicas hold it — unresolvable now
            if len(set(holders)) != 1 or len(holders) < need:
                return False
        return True
