"""Sharded multi-world execution: N kernels, one simulated system.

One :class:`~repro.sim.kernel.Simulator` processes every event of a
world in a single totally-ordered queue, which caps how many concurrent
agents a run can hold.  :class:`ShardedWorld` scales past that by
partitioning the node set across N independent shard worlds — each with
its own kernel, transport stack, failure injector and metrics — and
connecting them with a deterministic **cross-shard bridge**.

Lockstep epochs
---------------

Virtual clocks stay consistent through barrier synchronisation: the
driver picks the next epoch barrier (a multiple of ``epoch``), advances
every shard's kernel exactly to it (:meth:`Simulator.run_epoch`), then
exchanges the traffic that crossed shard boundaries during the epoch.
A cross-shard migration commits in its source shard with the same
transfer / 2PC-round / stable-write charges as a remote migration in a
plain world; the durable enqueue at the destination is carried by the
bridge and injected into the destination kernel at the barrier.
Because forwards are collected in deterministic order (shards run
sequentially per epoch; transfers sort by commit time then sequence)
and injected at deterministic times, a sharded run is fully
reproducible — and because the bridge only *delays* the enqueue to the
next barrier (never reorders per-link, never drops), per-agent
outcomes match an equivalent unsharded run of the same topology at the
same seed.

Besides agent packages the bridge now carries two further kinds of
traffic for the fault-tolerant protocol: **shadow copies** bound for
alternates in other shards (message semantics — retried across
downtime, give-ups surfaced through the same
:func:`~repro.net.transport.surface_give_up` path as direct sends,
never silently dropped) and **ledger mirrors** that replicate step
claims to every shard's ledger replica inside the epoch barrier (see
:class:`~repro.exactly_once.fault_tolerant.BridgedFaultTolerance`).

Whole-shard outages
-------------------

:meth:`ShardedWorld.kill_shard` injects the failure mode a sharded
deployment actually fears: at the kill instant every node of the shard
crashes and the shard's *kernel* suspends
(:meth:`Simulator.suspend`) — the dead kernel stops advancing while the
surviving shards keep running, promote cross-shard shadows and complete
itineraries exactly once.  An optional restart resumes the kernel at
the restart time: the backlog replays (deliveries retry across the
downtime, exactly like a node crash in a plain world), the ledger
replica catches up from the bridge's mirror backlog, and the recovery
rescan re-dispatches the durable queues — stale primaries then discard
themselves against the replicated ledger.

Failure semantics across shards differ from the in-world case in two
bounded ways.  Reachability/liveness checks against a remote-shard node
consult that shard's failure injector, whose state may lag the querying
shard by at most one epoch (kernels only synchronise at barriers).  And
the destination's *transaction manager* cannot be enlisted across
kernels, so a destination crash inside the shipping commit window
aborts the transaction in an unsharded run but lets it commit in a
sharded one — the bridged package then simply waits in the durable
queue for the recovery rescan.  Both paths are correct executions of
the same deterministic agent program (exactly-once is arbitrated by the
durable queues and the replicated step ledger either way), so per-agent
*outcomes* still agree; aggregate *counters* are only
shard-count-invariant for crash-free runs.

Knobs: ``n_shards`` (kernel count), ``epoch`` (barrier spacing;
defaults to the network latency, the natural lookahead of the fabric),
:meth:`kill_shard` (whole-kernel outage injection),
``FTParams.cross_shard_alternates`` (prefer shadow placement in other
shards), plus everything a plain :class:`~repro.node.runtime.World`
accepts.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import UsageError
from repro.net.transport import surface_give_up
from repro.node.runtime import LEDGER_NODE, AgentRecord, World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.agent import MobileAgent
    from repro.agent.packages import AgentPackage
    from repro.net.messages import Message
    from repro.node.node import Node
    from repro.tx.manager import Transaction


@dataclass
class _Transfer:
    """One unit of traffic crossing a shard boundary."""

    at: float          # source-shard commit time
    seq: int           # global order among forwards of the same instant
    kind: str          # "package" | "shadow" | "ledger"
    dest_shard: int
    dest_name: str = ""
    package: Optional["AgentPackage"] = None
    message: Optional["Message"] = None        # shadow envelope
    ledger_write: Optional[tuple] = None       # (work_id, holder)
    max_retries: int = 0
    retries: int = 0
    source: Optional["ShardWorld"] = None
    on_gave_up: Optional[Callable] = None


@dataclass
class _ShardOutage:
    """One scheduled whole-shard outage (and optional restart)."""

    shard: int
    at: float
    restart_at: Optional[float] = None
    revived: bool = False


class CrossShardBridge:
    """Deterministic traffic exchange between shard kernels.

    Forwards accumulate while the shards run one epoch; at the barrier
    the driver flushes them, sorted by ``(commit time, sequence)``, into
    the destination kernels.  The transfer cost was already charged
    into the shipping transaction (the commit instant includes it), so
    injection happens at the barrier — the bridge adds at most one
    epoch of staleness, never extra cost, and never reorders the
    per-link stream.

    Three kinds of traffic, three delivery contracts:

    * **packages** — durable-queue semantics: always injected, even
      into a suspended kernel (the enqueue fires when the kernel is
      resumed; a shard that never restarts simply never sees it — the
      outage the cross-shard shadows exist to survive);
    * **shadows** — message semantics: a copy bound for a suspended
      shard is retried at subsequent flushes, and exhausting its retry
      budget surfaces the loss through
      :func:`~repro.net.transport.surface_give_up` — the same
      ``net.gave_up`` counter / timeline event / ``on_gave_up``
      callback as a direct send, never a silent drop;
    * **ledger mirrors** — replica semantics: applied to live replicas
      at the barrier, banked for suspended ones and applied when the
      shard's replica catches up at restart.
    """

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards
        self._pending: list[_Transfer] = []
        self._seq = itertools.count()
        self._ledger_backlog: dict[int, list[tuple]] = {}
        self.transfers_total = 0
        #: Shadow copies abandoned after exhausting their flush-retry
        #: budget (each was surfaced through the give-up path).
        self.shadows_dropped = 0

    def pending(self) -> int:
        """Forwards awaiting the next barrier flush."""
        return len(self._pending)

    def forward(self, dest_shard: int, dest_name: str,
                package: "AgentPackage", at: float) -> None:
        """Hand a committed package to the bridge (source commit action)."""
        self._pending.append(_Transfer(
            at=at, seq=next(self._seq), kind="package",
            dest_shard=dest_shard, dest_name=dest_name, package=package))

    def forward_shadow(self, dest_shard: int, message: "Message",
                       at: float, max_retries: int, source: "ShardWorld",
                       on_gave_up: Optional[Callable] = None,
                       retries: int = 0) -> None:
        """Hand a committed FT shadow copy to the bridge.

        ``retries`` carries over consumed budget when a dying kernel
        sweeps an undelivered copy back onto the bridge.
        """
        self._pending.append(_Transfer(
            at=at, seq=next(self._seq), kind="shadow",
            dest_shard=dest_shard, dest_name=message.dst, message=message,
            max_retries=max_retries, retries=retries, source=source,
            on_gave_up=on_gave_up))

    def forward_ledger(self, source_shard: int, work_id: int, holder: str,
                       at: float) -> None:
        """Mirror a committed ledger claim to every other replica."""
        for dest in range(self.n_shards):
            if dest == source_shard:
                continue
            self._pending.append(_Transfer(
                at=at, seq=next(self._seq), kind="ledger", dest_shard=dest,
                ledger_write=(work_id, holder)))

    def catch_up(self, shard: int, world: "ShardWorld") -> int:
        """Apply the mirror backlog to a restarted shard's replica."""
        backlog = self._ledger_backlog.pop(shard, [])
        for work_id, holder in backlog:
            world.ft.apply_mirror(work_id, holder)
        if backlog:
            world.metrics.incr("ft.ledger.catch_up_applied", len(backlog))
        return len(backlog)

    def flush(self, shards: list["ShardWorld"], barrier: float) -> int:
        """Move every pending forward to its destination.

        Runs between epochs, when every live shard's clock sits exactly
        at ``barrier``; deliveries are scheduled at the barrier instant
        in deterministic order.  Returns the number of transfers moved
        (retained shadow retries for suspended shards don't count).
        """
        pending = self._pending
        self._pending = []
        pending.sort(key=lambda t: (t.at, t.seq))
        retained: list[_Transfer] = []
        moved = 0
        for transfer in pending:
            world = shards[transfer.dest_shard]
            if transfer.kind == "ledger":
                if world.sim.suspended:
                    self._ledger_backlog.setdefault(
                        transfer.dest_shard, []).append(transfer.ledger_write)
                else:
                    world.ft.apply_mirror(*transfer.ledger_write)
                moved += 1
                continue
            if transfer.kind == "shadow":
                if world.sim.suspended:
                    transfer.retries += 1
                    if transfer.retries > transfer.max_retries:
                        # Surfaced as lost, not moved: transfers_total
                        # counts only traffic that reached a shard.
                        source = transfer.source
                        surface_give_up(source.metrics, source.sim.now,
                                        transfer.message,
                                        transfer.on_gave_up)
                        self.shadows_dropped += 1
                    else:
                        retained.append(transfer)
                    continue
                when = max(transfer.at, world.sim.now)
                world.metrics.incr("bridge.shadows")
                world.metrics.add_bytes("bridge.bytes",
                                        transfer.message.size_bytes)
                world.ft.receive_shadow(transfer.message,
                                        transfer.max_retries,
                                        transfer.retries, transfer.source,
                                        transfer.on_gave_up, when)
                moved += 1
                continue
            when = max(transfer.at, world.sim.now)
            world.metrics.incr("bridge.transfers")
            world.metrics.add_bytes("bridge.bytes",
                                    transfer.package.size_bytes)
            world.sim.schedule_at(
                when,
                lambda w=world, t=transfer:
                    w.node(t.dest_name).queue.enqueue(t.package),
                label=f"bridge:{transfer.dest_name}")
            moved += 1
        self._pending.extend(retained)
        self.transfers_total += moved
        return moved


class ShardWorld(World):
    """One shard: a plain world whose remote deliveries may leave it.

    Identical to :class:`~repro.node.runtime.World` except for three
    seams: the delivery seam (a package whose destination node lives in
    another shard is handed to the bridge as a commit action of the
    shipping transaction), the liveness seam (``node_up`` /
    ``reachable`` consult the owning shard's failure injector for
    foreign nodes), and the fault-tolerance driver (the bridged,
    ledger-replicated variant).
    """

    def __init__(self, shard_index: int, sharded: "ShardedWorld",
                 **world_kwargs: Any):
        # Set before super().__init__: the FT factory runs inside it
        # and needs the backrefs.
        self.shard_index = shard_index
        self._sharded = sharded
        super().__init__(**world_kwargs)

    def _make_fault_tolerance(self):
        from repro.exactly_once.fault_tolerant import BridgedFaultTolerance
        return BridgedFaultTolerance(self)

    def node_up(self, name: str) -> bool:
        """Liveness, extended to nodes hosted by other shards.

        The answer for a foreign node may lag this kernel by at most
        one epoch (kernels only synchronise at barriers).
        """
        if name != LEDGER_NODE and name not in self.nodes:
            shard = self._sharded._node_shard.get(name)
            if shard is not None:
                return self._sharded.shards[shard].failures.node_up(name)
        return super().node_up(name)

    def reachable(self, a: str, b: str) -> bool:
        """Reachability, extended to nodes hosted by other shards.

        For a remote-shard destination the owning shard's failure
        injector is consulted — its state lags this kernel by at most
        one epoch (shards only synchronise at barriers), which bounds
        how stale a cross-shard up/down answer can be.  Cross-shard
        links have no partition model; node liveness is the signal.
        """
        if b != LEDGER_NODE and b not in self.nodes:
            shard = self._sharded._node_shard.get(b)
            if shard is not None:
                other = self._sharded.shards[shard]
                return (self.failures.node_up(a)
                        and other.failures.node_up(b))
        return super().reachable(a, b)

    def deliver_package(self, tx: "Transaction", package: "AgentPackage",
                        dest_name: str) -> None:
        if dest_name in self.nodes:
            super().deliver_package(tx, package, dest_name)
            return
        dest_shard = self._sharded.shard_of(dest_name)  # raises if unknown
        bridge = self._sharded.bridge
        self.metrics.incr("bridge.forwards")
        tx.register_commit(
            lambda: bridge.forward(dest_shard, dest_name, package,
                                   self.sim.now))


class ShardedWorld:
    """A simulated mobile-agent system partitioned across N kernels.

    The facade mirrors :class:`~repro.node.runtime.World` where it
    matters (``add_node`` / ``launch`` / ``run`` / ``agents`` /
    ``set_alternates``), so benches can swap one for the other.
    ``n_shards=1`` runs the same code path with the bridge idle — the
    reference configuration the determinism tests compare against.
    """

    def __init__(self, n_shards: int = 2, seed: int = 0,
                 epoch: Optional[float] = None, **world_kwargs: Any):
        if n_shards < 1:
            raise UsageError(f"need at least 1 shard, got {n_shards}")
        self.n_shards = n_shards
        self.seed = seed
        net_params = world_kwargs.get("net_params")
        if epoch is None:
            epoch = net_params.latency if net_params is not None else 0.005
        if epoch <= 0:
            raise UsageError(f"epoch must be positive, got {epoch}")
        self.epoch = epoch
        self.bridge = CrossShardBridge(n_shards)
        self._node_shard: dict[str, int] = {}
        #: Step-alternate policy shared by every shard's FT driver: the
        #: shipping shard must know the alternates of destinations it
        #: does not host.
        self.ft_alternates: dict[str, tuple[str, ...]] = {}
        #: Virtual time of the most recent bridge flush — the takeover
        #: watchdog's mirror-settlement guard reads it.
        self.last_flush_at = float("-inf")
        self._outages: list[_ShardOutage] = []
        #: Per-agent records, shared by every shard world: an agent may
        #: migrate to any shard, and whichever shard executes its steps
        #: updates the same record.
        self.agents: dict[str, AgentRecord] = {}
        self.shards: list[ShardWorld] = []
        for index in range(n_shards):
            world = ShardWorld(shard_index=index, sharded=self,
                               seed=seed + 100_003 * index, **world_kwargs)
            world.agents = self.agents
            self.shards.append(world)
        self.epochs_run = 0

    # -- topology -------------------------------------------------------------------

    def add_node(self, name: str, shard: Optional[int] = None) -> "Node":
        """Create node ``name`` in ``shard`` (round-robin by default)."""
        if name in self._node_shard:
            raise UsageError(f"node {name!r} already exists")
        if shard is None:
            shard = len(self._node_shard) % self.n_shards
        if not 0 <= shard < self.n_shards:
            raise UsageError(f"no shard {shard} (have {self.n_shards})")
        node = self.shards[shard].add_node(name)
        self._node_shard[name] = shard
        return node

    def add_nodes(self, *names: str) -> list["Node"]:
        """Create several nodes at once (round-robin placement)."""
        return [self.add_node(n) for n in names]

    def shard_of(self, name: str) -> int:
        """Index of the shard hosting node ``name``."""
        shard = self._node_shard.get(name)
        if shard is None:
            raise UsageError(f"no node {name!r}")
        return shard

    def world_of(self, name: str) -> ShardWorld:
        """The shard world hosting node ``name``."""
        return self.shards[self.shard_of(name)]

    def node(self, name: str) -> "Node":
        return self.world_of(name).node(name)

    def set_alternates(self, node: str, *alternates: str) -> None:
        """Declare step alternates for ``node``, visible to all shards.

        With ``FTParams.cross_shard_alternates`` (the default) the FT
        drivers prefer the alternates hosted by other shards, so shadow
        redundancy survives a whole-kernel outage.
        """
        self.ft_alternates[node] = tuple(alternates)

    # -- whole-shard failure injection ------------------------------------------------

    def kill_shard(self, shard: int, at: float,
                   restart_at: Optional[float] = None) -> None:
        """Schedule a whole-kernel outage of ``shard`` at time ``at``.

        At the kill instant every node hosted by the shard crashes
        (in-flight transactions abort with full undo) and the shard's
        kernel suspends — it stops advancing, so nothing in it runs
        while the surviving shards promote cross-shard shadows.  With
        ``restart_at`` the kernel resumes at that time: its nodes
        recover, the ledger replica catches up from the bridge's mirror
        backlog, and the recovery rescan re-dispatches the durable
        queues (stale primaries then discard themselves against the
        replicated ledger).  Without it the shard stays dead for the
        rest of the run.
        """
        if not 0 <= shard < self.n_shards:
            raise UsageError(f"no shard {shard} (have {self.n_shards})")
        world = self.shards[shard]
        if at < world.sim.now:
            raise UsageError(f"cannot kill shard {shard} in the past "
                             f"(at={at}, now={world.sim.now})")
        if restart_at is not None and restart_at <= at:
            raise UsageError(f"restart_at ({restart_at}) must be after "
                             f"the kill time ({at})")
        self._outages.append(_ShardOutage(shard=shard, at=at,
                                          restart_at=restart_at))
        world.sim.schedule_at(at, lambda: self._kill_now(shard),
                              label=f"kill-shard:{shard}", priority=-100)

    def _kill_now(self, shard: int) -> None:
        world = self.shards[shard]
        for name, placed in self._node_shard.items():
            if placed == shard:
                world.failures.force_crash(name)
        # Bridged shadows accepted at a barrier but not yet adopted
        # would strand in the frozen kernel; hand them back to the
        # bridge so they are delivered after a restart or surfaced.
        world.ft.sweep_inbound_shadows()
        world.metrics.incr("shard.kills")
        world.metrics.record(world.sim.now, "shard-killed", shard=shard)
        world.sim.suspend()

    def _revive(self, outage: _ShardOutage) -> None:
        world = self.shards[outage.shard]
        outage.revived = True
        world.sim.resume()
        names = [n for n, placed in self._node_shard.items()
                 if placed == outage.shard]

        def _recover() -> None:
            # Replica catch-up first, so recovered dispatches see the
            # settled ledger before re-executing anything.
            self.bridge.catch_up(outage.shard, world)
            world.metrics.incr("shard.restarts")
            world.metrics.record(world.sim.now, "shard-restarted",
                                 shard=outage.shard)
            for name in names:
                world.failures.force_recover(name)

        world.sim.schedule_at(outage.restart_at, _recover,
                              label=f"restart-shard:{outage.shard}",
                              priority=-10)

    def shard_alive(self, shard: int) -> bool:
        """False while ``shard``'s kernel is suspended by an outage."""
        return not self.shards[shard].sim.suspended

    # -- agent management -----------------------------------------------------------------

    def launch(self, agent: "MobileAgent", at: str, method: str,
               **launch_kwargs: Any) -> AgentRecord:
        """Launch ``agent`` at node ``at`` (in whichever shard hosts it)."""
        return self.world_of(at).launch(agent, at=at, method=method,
                                        **launch_kwargs)

    def record_of(self, agent_id: str) -> AgentRecord:
        record = self.agents.get(agent_id)
        if record is None:
            raise UsageError(f"no agent {agent_id!r}")
        return record

    def all_done(self) -> bool:
        """True when no agent is still running."""
        return self.shards[0].all_done()

    # -- execution ------------------------------------------------------------------------------

    @property
    def now(self) -> float:
        """The lockstep virtual clock (all shards agree at barriers)."""
        return max(world.sim.now for world in self.shards)

    def _due_restarts(self) -> list[_ShardOutage]:
        """Outages with a pending restart of an already-dead kernel."""
        return [o for o in self._outages
                if o.restart_at is not None and not o.revived
                and self.shards[o.shard].sim.suspended]

    def run(self, until: Optional[float] = None,
            max_epochs: int = 1_000_000,
            max_events_per_epoch: int = 10_000_000) -> None:
        """Run all shards in lockstep epochs until drained (or ``until``).

        Each iteration: pick the next barrier on the epoch grid (skipping
        grid points no shard has work before — the barrier sequence is a
        pure function of event times and outage schedules, so runs stay
        deterministic), revive shards whose restart falls inside the
        epoch, advance every live shard to the barrier, then flush the
        bridge.  Suspended kernels are skipped — a dead shard stops
        advancing — but their scheduled restarts count as work, so a run
        never terminates with a revival pending.
        """
        for _ in range(max_epochs):
            running = [w for w in self.shards if not w.sim.suspended]
            next_times = [t for t in (w.sim.peek_time() for w in running)
                          if t is not None]
            next_times += [o.restart_at for o in self._due_restarts()]
            if not next_times:
                if self.bridge.pending():
                    # Retained shadow retries and forwards committed on
                    # the last epoch's final event must still resolve.
                    self.bridge.flush(self.shards, self.now)
                    self.last_flush_at = self.now
                    continue
                return  # every live kernel drained, nothing left to bridge
            soonest = min(next_times)
            if until is not None and soonest > until:
                for world in running:
                    world.sim.run_epoch(max(until, world.sim.now))
                return
            barrier = self.epoch * math.ceil(soonest / self.epoch)
            if barrier < soonest:  # float guard: stay at-or-after the event
                barrier += self.epoch
            # A revival may be due before the clocks of the running
            # shards (they advanced while the dead kernel froze); the
            # barrier can never move backwards.
            floor_now = max((w.sim.now for w in running),
                            default=self.now)
            while barrier < floor_now:
                barrier += self.epoch
            if until is not None and barrier > until:
                barrier = until
            for outage in self._due_restarts():
                if outage.restart_at <= barrier:
                    self._revive(outage)
            for world in self.shards:
                if world.sim.suspended:
                    continue
                world.sim.run_epoch(barrier,
                                    max_events=max_events_per_epoch)
            self.bridge.flush(self.shards, barrier)
            self.last_flush_at = barrier
            self.epochs_run += 1
        raise UsageError(
            f"sharded run exceeded {max_epochs} epochs; likely livelock")

    # -- results ----------------------------------------------------------------------------

    def outcomes(self) -> dict[str, dict[str, Any]]:
        """Canonical per-agent outcomes, for cross-configuration checks.

        Status, result, committed-step and rollback counts — everything
        that must be identical between a sharded run and an equivalent
        unsharded run at the same seed (timing may differ by bridge
        staleness; outcomes may not).
        """
        return {
            agent_id: {
                "status": record.status.value,
                "result": record.result,
                "failure": record.failure,
                "steps_committed": record.steps_committed,
                "rollbacks_completed": record.rollbacks_completed,
            }
            for agent_id, record in sorted(self.agents.items())
        }

    def counters(self, exclude_prefixes: tuple[str, ...] = ()
                 ) -> dict[str, int]:
        """Aggregate counters/byte totals across every shard's metrics.

        ``exclude_prefixes`` drops families that legitimately differ
        between shard counts (e.g. ``bridge.`` traffic exists only when
        N > 1).
        """
        totals: dict[str, int] = {}
        for world in self.shards:
            for key, value in world.metrics.summary().items():
                if any(key.startswith(p) or key.startswith(f"bytes.{p}")
                       for p in exclude_prefixes):
                    continue
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def events_processed(self) -> int:
        """Total kernel events fired across all shards."""
        return sum(world.sim.events_processed for world in self.shards)

    # -- ledger inspection (tests / benches) -------------------------------------------------

    def ledger_claims(self) -> dict[int, dict[int, str]]:
        """Every replica's view of every claim: work_id -> shard -> holder."""
        claims: dict[int, dict[int, str]] = {}
        for world in self.shards:
            for key in world.ft.ledger.keys():
                if isinstance(key, tuple) and key and key[0] == "claim":
                    claims.setdefault(key[1], {})[world.shard_index] = \
                        world.ft.ledger.get(key)
        return claims

    def ledger_quorum_agrees(self) -> bool:
        """Do the live replicas agree on every claim, with a majority?

        The post-run invariant of the bridged ledger: each claimed
        ``work_id`` has exactly one holder across the live replicas,
        and a majority of them hold it (dead replicas may be behind —
        they catch up at restart).
        """
        alive = {w.shard_index for w in self.shards if not w.sim.suspended}
        if not alive:
            return True
        need = len(alive) // 2 + 1
        for replicas in self.ledger_claims().values():
            holders = [holder for shard, holder in replicas.items()
                       if shard in alive]
            if not holders:
                continue  # only dead replicas hold it — unresolvable now
            if len(set(holders)) != 1 or len(holders) < need:
                return False
        return True
