"""Shared-memory rings and the struct-framed barrier wire format.

The multiprocess shard driver's epoch barrier originally shipped its
bulk payloads — agent packages, shadow copies, ledger mirrors, buffered
journal notes — by pickling whole transfer objects into the worker
pipes.  That re-serialized state the incremental-serialization layer
(PR 1) already holds as cached per-entry byte frames: the pipe pickle
embedded every cached blob into a fresh monolithic pickle on every hop,
so IPC cost grew with total log size instead of with what changed.

This module moves the bulk bytes into **shared-memory rings**
(:mod:`multiprocessing.shared_memory`), one pair per worker (one ring
per direction).  Each cached blob crosses the process boundary as a
length-prefixed frame written straight into the ring as a memoryview
slice — no re-pickle, no intermediate copy.  Only a small *manifest*
(the transfer/record/note skeletons with every ``bytes`` payload
replaced by a frame reference) still travels pickled over the pipe,
which stays the control channel.

Framing discipline
------------------

Frames reuse the journal's framing exactly
(:mod:`repro.journal.backends`): ``<u32 length><u32 crc32><payload>``.
The CRC is what keeps a dead worker honest — a frame torn mid-write by
a SIGKILL fails its checksum at decode and surfaces as
:class:`TornFrame` (which the coordinator converts into the existing
:class:`~repro.errors.WorkerDied`), never as silently corrupt state.

The ring is a byte ring with a persistent write cursor: batches wrap
around the end via a wrap sentinel (length ``0xFFFFFFFF``).  Reader
and writer stay in sync without shared cursors because the pipe
request/reply protocol strictly alternates batches — a batch is fully
consumed before the next one is written.  One batch is budgeted to at
most the ring capacity; a frame that cannot fit **spills to the pipe**
(it stays in-band in the manifest), so an undersized ring degrades to
pipe behaviour instead of failing.

Accounting
----------

Every encode updates :data:`repro.storage.serialization.STATS`:

* ``ipc_bytes_framed``  — payload bytes shipped zero-copy via a ring;
* ``ipc_bytes_copied``  — payload bytes that had to cross in-band
  (ring-capacity spills; in pipe mode, the whole pickled exchange);
* ``ipc_bytes_control`` — pipe-side pickle bytes of the epoch control
  message + manifest in shm mode (protocol overhead, not payload);
* ``frame_reused``      — frames whose bytes were reused byte-for-byte
  from an already-cached blob (every ring frame is);
* ``ring_spills``       — frames that exceeded the ring budget.

Platform caveats
----------------

POSIX ``shm_open`` segments outlive their creator until unlinked; the
coordinator owns unlinking (on ``close()`` and on ``WorkerDied``), the
worker unlinks only on the orphan-defense path, and the shared
:mod:`multiprocessing` resource tracker is the backstop for a
SIGKILLed coordinator.  On macOS shm names are length-limited (the
default names fit) and on Windows segments vanish with their last
handle, making unlink a no-op — both are fine for this usage.  The
driver auto-falls back to pipe mode when segment creation fails.
"""

from __future__ import annotations

import struct
import warnings
import zlib
from dataclasses import replace
from multiprocessing import shared_memory
from typing import Any, Callable, Optional

from repro.storage import serialization

_HEADER = struct.Struct("<II")  # <u32 length><u32 crc32>
#: Sentinel length marking "batch wraps to offset 0 here".  A real
#: frame can never claim it: batch budgeting caps frame lengths at the
#: ring capacity, far below 2**32 - 1.
_WRAP = 0xFFFFFFFF

#: Default per-direction ring capacity (bytes).
DEFAULT_RING_SIZE = 1 << 22


class TornFrame(Exception):
    """A ring frame failed its CRC or length check (torn write)."""


class ShmRing:
    """One single-writer, single-reader byte ring over shared memory.

    The pipe protocol provides the happens-before edge between writer
    and reader (a batch descriptor only arrives after the frames are in
    place), so the ring needs no shared cursors: both sides walk the
    same deterministic frame sequence from offset 0.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self.shm: Optional[shared_memory.SharedMemory] = shm
        self.owner = owner
        self.capacity = shm.size
        self._wpos = 0
        self._rpos = 0
        self._budget = self.capacity

    @classmethod
    def create(cls, size: int = DEFAULT_RING_SIZE) -> "ShmRing":
        return cls(shared_memory.SharedMemory(create=True, size=size), True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        return cls(shared_memory.SharedMemory(name=name), False)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- write side --------------------------------------------------------------

    def begin_batch(self) -> None:
        """Open one batch: it may use at most ``capacity`` bytes."""
        self._budget = self.capacity

    def try_write(self, payload: bytes) -> bool:
        """Append one frame; False when it exceeds the batch budget."""
        size = len(payload)
        need = _HEADER.size + size
        tail = self.capacity - self._wpos
        waste = tail if need > tail else 0
        if need + waste > self._budget:
            return False
        buf = self.shm.buf
        if waste:
            if tail >= _HEADER.size:
                _HEADER.pack_into(buf, self._wpos, _WRAP, 0)
            self._wpos = 0
            self._budget -= waste
        _HEADER.pack_into(buf, self._wpos, size, zlib.crc32(payload))
        start = self._wpos + _HEADER.size
        buf[start:start + size] = payload
        self._wpos += need
        self._budget -= need
        return True

    # -- read side ---------------------------------------------------------------

    def read_frame(self) -> bytes:
        """Read the next frame (CRC-verified); raises :class:`TornFrame`."""
        buf = self.shm.buf
        if self.capacity - self._rpos < _HEADER.size:
            self._rpos = 0  # writer could not even fit a wrap sentinel
        size, crc = _HEADER.unpack_from(buf, self._rpos)
        if size == _WRAP:
            self._rpos = 0
            size, crc = _HEADER.unpack_from(buf, 0)
        start = self._rpos + _HEADER.size
        end = start + size
        if size == _WRAP or end > self.capacity:
            raise TornFrame(
                f"ring {self.name}: frame header at {self._rpos} claims "
                f"{size} bytes — torn or corrupt")
        payload = bytes(buf[start:end])
        if zlib.crc32(payload) != crc:
            raise TornFrame(
                f"ring {self.name}: frame at {self._rpos} failed its CRC "
                f"check (torn write)")
        self._rpos = end
        return payload

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self.shm is not None:
            name = self.shm.name
            try:
                self.shm.close()
            except (OSError, BufferError) as exc:  # pragma: no cover
                # Exported memoryviews can pin the mapping (BufferError)
                # and the munmap itself can fail (OSError).  Closing must
                # stay best-effort, but not silent: a pinned mapping is
                # exactly the kind of leak that needs a diagnosis trail.
                serialization.STATS["teardown.suppressed"] += 1
                warnings.warn(
                    f"suppressed shm close failure for ring {name}: "
                    f"{type(exc).__name__}: {exc}",
                    ResourceWarning, stacklevel=2)
            self.shm = None

    def unlink(self) -> None:
        """Destroy the segment (idempotent; attachments stay mapped)."""
        shm = self.shm
        self.close()
        if shm is not None:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked by the other side / the tracker
            except OSError as exc:  # pragma: no cover - platform teardown
                serialization.STATS["teardown.suppressed"] += 1
                warnings.warn(
                    f"suppressed shm unlink failure for ring {shm.name}: "
                    f"{type(exc).__name__}: {exc} — segment may be leaked",
                    ResourceWarning, stacklevel=2)

    def __del__(self):  # pragma: no cover - GC teardown
        # ``attach`` can fail before ``__init__`` ran (bad name raises
        # inside SharedMemory), leaving a partially-constructed object
        # without ``self.shm``; an unconditional close() would then turn
        # the real error into a masking AttributeError at GC time.
        if getattr(self, "shm", None) is not None:
            self.close()


# ---------------------------------------------------------------------------
# Wire codec: bulk bytes -> ring frames, skeletons -> pipe manifest
# ---------------------------------------------------------------------------


class _Ref:
    """Manifest placeholder for the i-th ring frame of a batch."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __reduce__(self):
        return (_Ref, (self.index,))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Ref({self.index})"


class RingEncoder:
    """Accumulates one batch: blobs into frames, overflow stays in-band."""

    def __init__(self, ring: ShmRing):
        self.ring = ring
        self.frames = 0
        ring.begin_batch()

    def add(self, blob: Any) -> Any:
        if not isinstance(blob, bytes):
            return blob  # non-bytes note values etc. stay in the manifest
        stats = serialization.STATS
        if self.ring.try_write(blob):
            stats["ipc_bytes_framed"] += len(blob)
            stats["frame_reused"] += 1
            ref = _Ref(self.frames)
            self.frames += 1
            return ref
        # Ring budget exceeded: the blob rides the pipe pickled in-band.
        stats["ring_spills"] += 1
        stats["ipc_bytes_copied"] += len(blob)
        return blob


class RingDecoder:
    """Reads one batch's frames up front and resolves manifest refs."""

    def __init__(self, ring: ShmRing, count: int):
        self.frames = [ring.read_frame() for _ in range(count)]

    @classmethod
    def from_frames(cls, frames: "list[bytes]") -> "RingDecoder":
        """A decoder over already-materialized frames (no ring read).

        Used by the optimistic-lockstep redo path: the worker retains
        each epoch's frames at receive time, and a rollback replays the
        pristine payload against the retained bytes instead of the ring
        (whose cursor has long moved on).
        """
        dec = cls.__new__(cls)
        dec.frames = list(frames)
        return dec

    def resolve(self, token: Any) -> Any:
        if isinstance(token, _Ref):
            return self.frames[token.index]
        return token


def _map_package(package: Any, fn: Callable[[Any], Any]) -> Any:
    return replace(package, blob=fn(package.blob),
                   log_blobs=tuple(fn(b) for b in package.log_blobs))


def map_transfer(transfer: Any, fn: Callable[[Any], Any]) -> Any:
    """A copy of ``transfer`` with every bulk blob passed through ``fn``.

    ``fn`` is :meth:`RingEncoder.add` on the way out (bytes -> frame
    ref) and :meth:`RingDecoder.resolve` on the way in (frame ref ->
    bytes); the walk touches exactly the fields the incremental
    serialization layer caches: the agent blob and per-entry log frames
    of the package (or the shadow envelope's package) and the piggy-
    backed record blob.  The original object is never mutated — the
    coordinator re-ships adopted transfers, so live objects must stay
    intact.
    """
    changes: dict[str, Any] = {}
    if transfer.package is not None:
        changes["package"] = _map_package(transfer.package, fn)
    message = transfer.message
    if message is not None and hasattr(message.payload, "log_blobs"):
        changes["message"] = replace(
            message, payload=_map_package(message.payload, fn))
    if transfer.record_blob is not None:
        changes["record_blob"] = fn(transfer.record_blob)
    return replace(transfer, **changes) if changes else transfer


def map_note(data: dict[str, Any], fn: Callable[[Any], Any]
             ) -> dict[str, Any]:
    """Journal-note data with every bytes-like value mapped (savepoint
    notes carry cached entry frames; store notes may carry blob values)."""
    return {key: fn(value) if isinstance(value, (bytes, _Ref)) else value
            for key, value in data.items()}


def encode_epoch(payload: dict[str, Any], ring: ShmRing) -> dict[str, Any]:
    """Coordinator -> worker: frame the bulk halves of an epoch command."""
    enc = RingEncoder(ring)
    payload["items"] = [(action, map_transfer(t, enc.add))
                        for action, t in payload["items"]]
    payload["records"] = {aid: enc.add(blob)
                          for aid, blob in payload["records"].items()}
    payload["wire"] = enc.frames
    return payload


def read_frames(ring: ShmRing, count: int) -> "list[bytes]":
    """Materialize the next ``count`` frames of one batch off ``ring``."""
    return [ring.read_frame() for _ in range(count)]


def resolve_epoch(payload: dict[str, Any],
                  frames: "list[bytes]") -> dict[str, Any]:
    """Resolve an epoch manifest against already-materialized frames.

    The ``"wire"`` count must have been popped (its frames are
    ``frames``).  Split from :func:`decode_epoch` so the worker can
    keep the frame list for the optimistic-lockstep replay log.
    """
    dec = RingDecoder.from_frames(frames)
    payload["items"] = [(action, map_transfer(t, dec.resolve))
                        for action, t in payload["items"]]
    payload["records"] = {aid: dec.resolve(token)
                          for aid, token in payload["records"].items()}
    return payload


def decode_epoch(payload: dict[str, Any], ring: ShmRing) -> dict[str, Any]:
    return resolve_epoch(payload, read_frames(ring, payload.pop("wire")))


def encode_reply(reply: dict[str, Any], ring: ShmRing) -> dict[str, Any]:
    """Worker -> coordinator: frame the bulk halves of an epoch reply."""
    enc = RingEncoder(ring)
    reply["outbox"] = [map_transfer(t, enc.add) for t in reply["outbox"]]
    if "record_deltas" in reply:
        reply["record_deltas"] = {
            aid: enc.add(blob)
            for aid, blob in reply["record_deltas"].items()}
    if "journal" in reply:
        reply["journal"] = [(kind, map_note(data, enc.add))
                            for kind, data in reply["journal"]]
    reply["wire"] = enc.frames
    return reply


def decode_reply(reply: dict[str, Any], ring: ShmRing) -> dict[str, Any]:
    dec = RingDecoder(ring, reply.pop("wire"))
    reply["outbox"] = [map_transfer(t, dec.resolve)
                       for t in reply["outbox"]]
    if "record_deltas" in reply:
        reply["record_deltas"] = {
            aid: dec.resolve(token)
            for aid, token in reply["record_deltas"].items()}
    if "journal" in reply:
        reply["journal"] = [(kind, map_note(data, dec.resolve))
                            for kind, data in reply["journal"]]
    return reply
