"""The world: simulator + transport + nodes + protocol drivers.

This is the facade everything above builds on::

    world = World(seed=7)
    n1, n2 = world.add_node("n1"), world.add_node("n2")
    n1.add_resource(Bank("bank"))
    record = world.launch(agent, at="n1", method="first_step")
    world.run()
    assert record.status is AgentStatus.FINISHED

Architecture notes
------------------

All inter-node byte movement goes through the **Transport** interface
(:mod:`repro.net.transport`): the world instantiates the simulated
fabric (:class:`~repro.net.network.SimTransport`) and, when
``NetworkParams.batch_window`` is set, stacks the batching layer
(:class:`~repro.net.batching.BatchingTransport`) on top.  Protocol
drivers never import a concrete network class — they use
``world.transport`` for sends / cost queries and
:meth:`World.deliver_package` for the durable hand-off of an agent
package to its destination queue.  That seam is what lets
:class:`~repro.node.sharded.ShardedWorld` reroute cross-shard
deliveries through its bridge without touching any protocol code.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.agent.agent import MobileAgent
from repro.agent.packages import (
    AgentPackage,
    PackageKind,
    Protocol,
    RollbackMode,
)
from repro.compensation.registry import GLOBAL_REGISTRY, CompensationRegistry
from repro.errors import UsageError
from repro.log.modes import LoggingMode
from repro.log.rollback_log import RollbackLog
from repro.net.batching import BatchingTransport
from repro.net.network import SimTransport
from repro.net.transport import Transport
from repro.node.node import Node
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.timing import (
    DEFAULT_NETWORK,
    DEFAULT_TIMING,
    NetworkParams,
    TimingModel,
)
from repro.tx.coordinator import CommitCoordinator
from repro.tx.manager import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exactly_once.fault_tolerant import FTParams

LEDGER_NODE = "__ledger__"


class AgentStatus(enum.Enum):
    """Life cycle of a launched agent."""

    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class AgentRecord:
    """Per-agent bookkeeping the world maintains."""

    agent_id: str
    mode: RollbackMode
    protocol: Protocol
    status: AgentStatus = AgentStatus.RUNNING
    result: Any = None
    failure: Optional[str] = None
    finished_at: Optional[float] = None
    steps_committed: int = 0
    step_attempts: int = 0
    rollbacks_initiated: int = 0
    rollbacks_completed: int = 0
    compensation_txs: int = 0
    agent_transfers: int = 0
    transfer_bytes: int = 0
    final_agent: Optional[MobileAgent] = None


@dataclass
class RetryPolicy:
    """How persistently failed compensations are retried.

    ``max_attempts`` bounds retries of one compensation transaction
    after :class:`~repro.errors.CompensationFailed`; ``None`` retries
    forever (suitable when failures are known to be transient).
    """

    max_attempts: Optional[int] = 25
    backoff: float = 0.1


class World:
    """A complete simulated mobile-agent system."""

    def __init__(self, seed: int = 0,
                 timing: TimingModel = DEFAULT_TIMING,
                 net_params: NetworkParams = DEFAULT_NETWORK,
                 logging_mode: LoggingMode = LoggingMode.STATE,
                 registry: Optional[CompensationRegistry] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 ft_takeover_timeout: Optional[float] = None,
                 ft_params: Optional["FTParams"] = None):
        from repro.exactly_once.fault_tolerant import FTParams

        self.sim = Simulator(seed)
        self.metrics = Metrics()
        self.timing = timing
        self.net_params = net_params
        self.logging_mode = LoggingMode(logging_mode)
        self.registry = registry if registry is not None else GLOBAL_REGISTRY
        self.retry_policy = retry_policy or RetryPolicy()
        if ft_params is None:
            ft_params = FTParams()
        if ft_takeover_timeout is not None:
            # Legacy knob, kept for existing call sites; overrides the
            # corresponding FTParams field.
            ft_params = dataclasses.replace(
                ft_params, takeover_timeout=ft_takeover_timeout)
        self.ft_params = ft_params
        self.failures = FailureInjector(self.sim)
        # The transport stack: the simulated fabric, with the batching
        # layer stacked on top when the world opts into coalescing.
        transport: Transport = SimTransport(self.sim, self.failures,
                                            net_params, self.metrics)
        if net_params.batch_window > 0:
            transport = BatchingTransport(transport, self.sim, net_params,
                                          self.metrics)
        self.transport = transport
        #: Legacy alias of :attr:`transport` (pre-refactor name).
        self.network = transport
        self.coordinator = CommitCoordinator(
            timing, net_params, self.reachable, self.metrics)
        self.nodes: dict[str, Node] = {}
        self.agents: dict[str, AgentRecord] = {}
        # Protocol drivers are attached lazily to avoid import cycles.
        from repro.exactly_once.protocol import StepProtocol
        from repro.core.rollback import BasicRollback
        from repro.core.optimized import OptimizedRollback
        from repro.core.baseline import SagaRollback
        self.step_protocol = StepProtocol(self)
        self.ft = self._make_fault_tolerance()
        self._drivers = {
            RollbackMode.BASIC: BasicRollback(self),
            RollbackMode.OPTIMIZED: OptimizedRollback(self),
            RollbackMode.SAGA: SagaRollback(self),
        }

    def _make_fault_tolerance(self):
        """FT driver factory; the sharded world installs the bridged one."""
        from repro.exactly_once.fault_tolerant import FaultTolerance
        return FaultTolerance(self)

    @property
    def ft_takeover_timeout(self) -> float:
        """Legacy read alias — :attr:`ft_params` is the single source."""
        return self.ft_params.takeover_timeout

    # -- topology -------------------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create a node named ``name``."""
        if name in self.nodes or name == LEDGER_NODE:
            raise UsageError(f"node {name!r} already exists")
        node = Node(name, self)
        self.nodes[name] = node
        self.transport.register(name, lambda message: None)
        return node

    def add_nodes(self, *names: str) -> list[Node]:
        """Create several nodes at once."""
        return [self.add_node(n) for n in names]

    def node(self, name: str) -> Node:
        node = self.nodes.get(name)
        if node is None:
            raise UsageError(f"no node {name!r}")
        return node

    def reachable(self, a: str, b: str) -> bool:
        """Commit-time reachability; the step ledger is a quorum service.

        ``__ledger__`` stands for the replicated observer/witness set of
        the fault-tolerant protocols of ref [11] and is modelled as
        always reachable from any live node.
        """
        if b == LEDGER_NODE:
            return self.failures.node_up(a)
        return self.transport.reachable(a, b)

    def node_up(self, name: str) -> bool:
        """Liveness of ``name`` as seen by this world's failure model.

        The placement seam of the takeover watchdog: a plain world asks
        its own injector; :class:`~repro.node.sharded.ShardWorld`
        extends the answer to nodes hosted by other shards, so a shadow
        can watch a primary in another kernel.
        """
        return self.failures.node_up(name)

    def deliver_package(self, tx: Transaction, package: AgentPackage,
                        dest_name: str) -> None:
        """Stage the durable enqueue of ``package`` at ``dest_name``.

        The destination seam of the shipping path: a plain world
        resolves the node locally and enqueues (visible at commit).
        :class:`~repro.node.sharded.ShardedWorld` overrides this to
        route packages whose destination lives in another shard through
        the cross-shard bridge instead.
        """
        self.node(dest_name).queue.enqueue(package, tx=tx)

    def enlist_participant(self, tx: Transaction, node_name: str) -> None:
        """Make ``node_name`` a participant whose crash aborts ``tx``.

        The first enlistment of a remote participant charges the 2PC
        message rounds (prepare + commit RTTs overlap across
        participants only in their propagation, so we charge one RTT
        pair per new participant plus fixed processing).
        """
        if node_name != tx.home and node_name not in tx.participants:
            tx.charge(4 * self.net_params.latency + self.timing.two_pc_round)
        tx.add_participant(node_name)
        if node_name in self.nodes:
            tx.enlist(self.nodes[node_name].txm)

    # -- agent management -----------------------------------------------------------------

    def launch(self, agent: MobileAgent, at: str, method: str,
               mode: RollbackMode = RollbackMode.BASIC,
               protocol: Protocol = Protocol.BASIC,
               initial_savepoints: Optional[list] = None) -> AgentRecord:
        """Inject ``agent`` into ``at``'s input queue, starting at ``method``.

        ``initial_savepoints`` — (sp_id, virtual) pairs written into the
        fresh rollback log before the first step, so the agent can roll
        back to its very beginning (itinerary agents use this for the
        savepoint "before the execution of [the first sub-itinerary]
        starts").  Returns the live :class:`AgentRecord`.
        """
        from repro.log.entries import SavepointEntry
        from repro.storage.serialization import snapshot

        node = self.node(at)
        agent.set_control(at, method)
        log = RollbackLog(self.logging_mode)
        for sp_id, virtual in (initial_savepoints or []):
            payload = None if virtual else snapshot(agent.sro)
            log.append(SavepointEntry(sp_id=sp_id,
                                      mode=self.logging_mode.value,
                                      payload=payload, virtual=virtual))
            self.metrics.incr("savepoints.written")
        record = AgentRecord(agent_id=agent.agent_id,
                             mode=RollbackMode(mode),
                             protocol=Protocol(protocol))
        if agent.agent_id in self.agents:
            raise UsageError(f"agent {agent.agent_id!r} already launched")
        self.agents[agent.agent_id] = record
        package = AgentPackage.pack(PackageKind.STEP, agent, log,
                                    step_index=0, mode=record.mode,
                                    protocol=record.protocol, primary=at)
        node.queue.enqueue(package)
        return record

    def launch_itinerary(self, agent: MobileAgent,
                         mode: RollbackMode = RollbackMode.BASIC,
                         protocol: Protocol = Protocol.BASIC) -> AgentRecord:
        """Launch an :class:`~repro.itinerary.executor.ItineraryAgent`.

        The start node/method and the initial savepoints come from the
        agent's itinerary.
        """
        at, method = agent.launch_entry()
        return self.launch(agent, at=at, method=method, mode=mode,
                           protocol=protocol,
                           initial_savepoints=agent.initial_savepoints())

    def record_of(self, agent_id: str) -> AgentRecord:
        record = self.agents.get(agent_id)
        if record is None:
            raise UsageError(f"no agent {agent_id!r}")
        return record

    def record_or_none(self, agent_id: str) -> Optional[AgentRecord]:
        """Like :meth:`record_of` but tolerant of unknown agents.

        Dispatch paths use this: a package whose agent this world never
        launched (e.g. a promoted shadow of a foreign/expired agent) is
        stale garbage to be consumed, not a crash.
        """
        return self.agents.get(agent_id)

    def rollback_driver(self, mode: RollbackMode):
        return self._drivers[RollbackMode(mode)]

    # -- backend-neutral inspection / injection -----------------------------------------------
    #
    # The same three methods exist on ShardedWorld and ProcShardedWorld,
    # so a workload or equivalence check can drive any execution backend
    # (one kernel, N in-process kernels, N worker processes) through one
    # call surface.

    def resource_state(self, node: str, resource: str) -> Any:
        """The named resource hosted by ``node`` (live object here)."""
        return self.node(node).get_resource(resource)

    def outcomes(self) -> dict[str, dict[str, Any]]:
        """Canonical per-agent outcomes (same shape as ShardedWorld's)."""
        from repro.node.sharded import outcomes_of
        return outcomes_of(self.agents)

    def apply_crash_plans(self, plans) -> None:
        """Schedule node-level outages (facade twin of ``failures.apply_plan``)."""
        self.failures.apply_plan(plans)

    def serialization_stats(self) -> dict[str, int]:
        """This process's :data:`repro.storage.serialization.STATS` copy."""
        from repro.storage.serialization import stats
        return stats()

    def enable_trace_digest(self) -> None:
        """Turn on the kernel's event-stream digest."""
        self.sim.enable_trace_digest()

    def trace_digests(self) -> list:
        """The kernel event-stream digest, as a one-element list."""
        return [self.sim.trace_digest()]

    # -- execution ------------------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Run the simulation until idle (or ``until``)."""
        self.sim.run(until=until, max_events=max_events)

    def all_done(self) -> bool:
        """True when no agent is still running."""
        return all(r.status is not AgentStatus.RUNNING
                   for r in self.agents.values())

    # -- outcome hooks (called by drivers) ----------------------------------------------------------

    def agent_finished(self, agent: MobileAgent, result: Any) -> None:
        record = self.record_of(agent.agent_id)
        record.status = AgentStatus.FINISHED
        record.result = result
        record.final_agent = agent
        record.finished_at = self.sim.now
        self.metrics.incr("agents.finished")
        self.metrics.record(self.sim.now, "agent-finished",
                            agent=agent.agent_id)

    def agent_failed(self, agent_id: str, reason: str) -> None:
        record = self.record_of(agent_id)
        record.status = AgentStatus.FAILED
        record.failure = reason
        record.finished_at = self.sim.now
        self.metrics.incr("agents.failed")
        self.metrics.record(self.sim.now, "agent-failed",
                            agent=agent_id, reason=reason)
