"""The world: simulator + transport + nodes + protocol drivers.

This is the facade everything above builds on::

    world = World(seed=7)
    n1, n2 = world.add_node("n1"), world.add_node("n2")
    n1.add_resource(Bank("bank"))
    record = world.launch(agent, at="n1", method="first_step")
    world.run()
    assert record.status is AgentStatus.FINISHED

Architecture notes
------------------

All inter-node byte movement goes through the **Transport** interface
(:mod:`repro.net.transport`): the world instantiates the simulated
fabric (:class:`~repro.net.network.SimTransport`) and, when
``NetworkParams.batch_window`` is set, stacks the batching layer
(:class:`~repro.net.batching.BatchingTransport`) on top.  Protocol
drivers never import a concrete network class — they use
``world.transport`` for sends / cost queries and
:meth:`World.deliver_package` for the durable hand-off of an agent
package to its destination queue.  That seam is what lets
:class:`~repro.node.sharded.ShardedWorld` reroute cross-shard
deliveries through its bridge without touching any protocol code.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.agent.agent import MobileAgent
from repro.agent.packages import (
    AgentPackage,
    PackageKind,
    Protocol,
    RollbackMode,
)
from repro.compensation.registry import GLOBAL_REGISTRY, CompensationRegistry
from repro.errors import UsageError
from repro.log.modes import LoggingMode
from repro.log.rollback_log import RollbackLog
from repro.net.batching import BatchingTransport
from repro.net.network import SimTransport
from repro.net.transport import Transport
from repro.node.node import Node
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.timing import (
    DEFAULT_NETWORK,
    DEFAULT_TIMING,
    NetworkParams,
    TimingModel,
)
from repro.tx.coordinator import CommitCoordinator
from repro.tx.manager import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exactly_once.fault_tolerant import FTParams
    from repro.journal.journal import WorldJournal

LEDGER_NODE = "__ledger__"


class AgentStatus(enum.Enum):
    """Life cycle of a launched agent."""

    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class AgentRecord:
    """Per-agent bookkeeping the world maintains."""

    agent_id: str
    mode: RollbackMode
    protocol: Protocol
    status: AgentStatus = AgentStatus.RUNNING
    result: Any = None
    failure: Optional[str] = None
    finished_at: Optional[float] = None
    steps_committed: int = 0
    step_attempts: int = 0
    rollbacks_initiated: int = 0
    rollbacks_completed: int = 0
    compensation_txs: int = 0
    agent_transfers: int = 0
    transfer_bytes: int = 0
    final_agent: Optional[MobileAgent] = None


@dataclass
class RetryPolicy:
    """How persistently failed compensations are retried.

    ``max_attempts`` bounds retries of one compensation transaction
    after :class:`~repro.errors.CompensationFailed`; ``None`` retries
    forever (suitable when failures are known to be transient).
    """

    max_attempts: Optional[int] = 25
    backoff: float = 0.1


class World:
    """A complete simulated mobile-agent system (single kernel).

    One discrete-event kernel hosting every node: agents migrate, take
    savepoints, roll back partially, compensate and survive injected
    crashes exactly as in the paper's model.  For multi-kernel
    execution of the same workloads see
    :class:`~repro.node.sharded.ShardedWorld` (in-process shards) and
    :class:`~repro.node.procshard.ProcShardedWorld` (one worker
    process per shard) — all three run seeded workloads bit-identically.

    Args:
        seed: Root of every RNG stream; equal seeds give bit-identical
            runs (event order, timing jitter, crash draws).
        timing: :class:`~repro.sim.timing.TimingModel` cost model for
            step execution / savepoint / rollback work.
        net_params: :class:`~repro.sim.timing.NetworkParams` — latency,
            bandwidth, jitter, retry and batching behaviour of the
            simulated network.
        logging_mode: How savepoint entries encode SRO restore data
            (:class:`~repro.log.LoggingMode`).
        registry: Compensation registry; defaults to the process-global
            one populated by ``@resource_compensation`` et al.
        retry_policy: Give-up/backoff policy for agent transfers.
        ft_takeover_timeout: Legacy shorthand for
            ``ft_params.takeover_timeout`` (overrides it when given).
        ft_params: :class:`~repro.exactly_once.fault_tolerant.FTParams`
            knobs of the fault-tolerant step protocol.
        journal: Attach a :class:`~repro.journal.WorldJournal` making
            this world a journaling coordinator (config + ops + epoch
            group commits; see :func:`~repro.journal.resume_world`).
        journal_epoch: Virtual-time length of one journal commit epoch
            (defaults to ``net_params.latency``).
        journal_capture: Capture-only mode for shard kernels whose
            coordinator owns the journal (internal seam).

    Raises:
        UsageError: On invalid knob combinations (negative epochs,
            unknown nodes at launch time, running a closed world...) —
            raised by the respective methods, not the constructor.
    """

    def __init__(self, seed: int = 0,
                 timing: TimingModel = DEFAULT_TIMING,
                 net_params: NetworkParams = DEFAULT_NETWORK,
                 logging_mode: LoggingMode = LoggingMode.STATE,
                 registry: Optional[CompensationRegistry] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 ft_takeover_timeout: Optional[float] = None,
                 ft_params: Optional["FTParams"] = None,
                 journal: Optional["WorldJournal"] = None,
                 journal_epoch: Optional[float] = None,
                 journal_capture: bool = False):
        from repro.exactly_once.fault_tolerant import FTParams

        # Journal seams first: the FT factory and node creation below
        # consult them when wiring capture hooks.  ``journal`` makes
        # this world a journaling coordinator (ops + config + epoch
        # commits); ``journal_capture`` alone puts the world in capture
        # mode for a coordinator living elsewhere (shard worlds buffer
        # payload notes that the owning driver commits).
        self.journal = journal
        self.journal_epoch = journal_epoch if journal_epoch is not None \
            else net_params.latency
        self.journal_shard: Optional[int] = None
        self._journal_capture = journal is not None or journal_capture
        self._journal_notes: list[tuple[str, dict]] = []
        self._owns_ops = journal is not None
        self._kill_plan: Optional[tuple[float, str]] = None
        self.sim = Simulator(seed)
        self.metrics = Metrics()
        self.timing = timing
        self.net_params = net_params
        self.logging_mode = LoggingMode(logging_mode)
        self.registry = registry if registry is not None else GLOBAL_REGISTRY
        self.retry_policy = retry_policy or RetryPolicy()
        if ft_params is None:
            ft_params = FTParams()
        if ft_takeover_timeout is not None:
            # Legacy knob, kept for existing call sites; overrides the
            # corresponding FTParams field.
            ft_params = dataclasses.replace(
                ft_params, takeover_timeout=ft_takeover_timeout)
        self.ft_params = ft_params
        self.failures = FailureInjector(self.sim)
        # The transport stack: the simulated fabric, with the batching
        # layer stacked on top when the world opts into coalescing.
        transport: Transport = SimTransport(self.sim, self.failures,
                                            net_params, self.metrics)
        if net_params.batch_window > 0:
            transport = BatchingTransport(transport, self.sim, net_params,
                                          self.metrics)
        self.transport = transport
        #: Legacy alias of :attr:`transport` (pre-refactor name).
        self.network = transport
        self.coordinator = CommitCoordinator(
            timing, net_params, self.reachable, self.metrics)
        self.nodes: dict[str, Node] = {}
        self.agents: dict[str, AgentRecord] = {}
        # Protocol drivers are attached lazily to avoid import cycles.
        from repro.exactly_once.protocol import StepProtocol
        from repro.core.rollback import BasicRollback
        from repro.core.optimized import OptimizedRollback
        from repro.core.baseline import SagaRollback
        self.step_protocol = StepProtocol(self)
        self.ft = self._make_fault_tolerance()
        self._drivers = {
            RollbackMode.BASIC: BasicRollback(self),
            RollbackMode.OPTIMIZED: OptimizedRollback(self),
            RollbackMode.SAGA: SagaRollback(self),
        }
        if self._journal_capture:
            self._wire_ledger_hook()
        if journal is not None and journal.armed \
                and not journal.config_written:
            from repro.storage.serialization import capture
            journal.record_config(
                backend="world", seed=seed,
                journal_epoch=self.journal_epoch,
                world_kwargs=capture({
                    "timing": timing, "net_params": net_params,
                    "logging_mode": self.logging_mode,
                    "retry_policy": self.retry_policy,
                    "ft_params": self.ft_params,
                    "registry": None if self.registry is GLOBAL_REGISTRY
                    else self.registry}))

    def _make_fault_tolerance(self):
        """FT driver factory; the sharded world installs the bridged one."""
        from repro.exactly_once.fault_tolerant import FaultTolerance
        return FaultTolerance(self)

    @property
    def ft_takeover_timeout(self) -> float:
        """Legacy read alias — :attr:`ft_params` is the single source."""
        return self.ft_params.takeover_timeout

    # -- world-journal seams ----------------------------------------------------------
    #
    # Three channels (see :mod:`repro.journal.journal`): ops are
    # journaled once, at the user-facing coordinator facade
    # (``_owns_ops``); setup ops that only ever run once per node
    # (resource installation) may journal from any owner
    # (:meth:`_journal_setup`); payload notes are buffered per epoch —
    # directly into the coordinator's journal when this world has one,
    # into a local list shipped at the epoch reply when this world is a
    # worker-process shard in capture mode.

    def journal_note(self, kind: str, **data: Any) -> None:
        """Stage one payload-channel record for the open epoch."""
        if not self._journal_capture:
            return
        if self.journal_shard is not None:
            data.setdefault("shard", self.journal_shard)
        journal = self.journal
        if journal is not None:
            if journal.armed:
                journal.buffer(kind, **data)
        else:
            self._journal_notes.append((kind, data))

    def drain_journal_notes(self) -> list[tuple[str, dict]]:
        """Worker mode: hand the buffered notes to the epoch reply."""
        notes, self._journal_notes = self._journal_notes, []
        return notes

    def _journal_op(self, op: str, **data: Any) -> None:
        """Journal a facade-level op (no-op unless this world owns ops)."""
        if self._owns_ops and self.journal is not None \
                and self.journal.armed:
            self.journal.record_op(op, **data)

    def _journal_setup(self, op: str, **data: Any) -> None:
        """Journal a once-per-target setup op from any owner."""
        if self.journal is not None and self.journal.armed:
            self.journal.record_op(op, **data)

    def _journal_digest(self) -> tuple:
        """Cheap execution digest committed with each epoch marker."""
        return (self.sim.events_processed,)

    def _journal_commit(self, barrier: float, torn: bool = False) -> None:
        journal = self.journal
        if journal is None or not journal.armed:
            return
        digest = self._journal_digest()
        if torn:
            journal.commit_torn(barrier, digest)
        else:
            journal.commit_epoch(barrier, digest)

    def _journal_final_commit(self) -> None:
        journal = self.journal
        if journal is not None and journal.armed and journal.buffered():
            journal.commit_epoch(self.sim.now, self._journal_digest())

    def _kill_due(self, barrier: float) -> Optional[str]:
        plan = self._kill_plan
        if plan is not None and barrier >= plan[0]:
            return plan[1]
        return None

    def kill_world(self, at: float, phase: str = "commit") -> None:
        """Hard-stop the coordinator at the first epoch barrier >= ``at``.

        Fault injection for crash-resume testing — the simulated
        analogue of SIGKILLing the driving process.  ``phase="commit"``
        kills right after the barrier's journal commit; ``"barrier"``
        kills *mid-barrier* — the epoch has executed (and, in a sharded
        world, its traffic collected) but the commit marker is torn and
        the bridge never scatters, so recovery must fall back to the
        previous barrier.  The kill itself is deliberately never
        journaled: it is the crash being recovered from.  The run
        raises :class:`~repro.errors.WorldKilled`.
        """
        if phase not in ("commit", "barrier"):
            raise UsageError(f"unknown kill phase {phase!r} "
                             f"(use 'commit' or 'barrier')")
        if at < self.sim.now:
            raise UsageError(f"cannot kill the world in the past "
                             f"(at={at}, now={self.sim.now})")
        self._kill_plan = (float(at), phase)

    def _wire_journal_hooks(self, node: Node) -> None:
        """Point a node's durable structures at the journal seams."""
        name = node.name
        store_name = node.stable.name

        def _store_note(op, key, value):
            self.journal_note("store", store=store_name, op=op,
                              key=key, value=value)

        def _queue_note(op, item):
            self.journal_note("queue", node=name, op=op,
                              item=item.item_id, bytes=item.size_bytes)

        node.stable.on_mutate = _store_note
        node.queue.on_journal = _queue_note

    def _wire_ledger_hook(self) -> None:
        """Route step-ledger mutations into the payload channel."""
        ledger = self.ft.ledger

        def _ledger_note(op, key, value):
            self.journal_note("store", store=ledger.name, op=op,
                              key=key, value=value)

        ledger.on_mutate = _ledger_note

    def attach_journal(self, journal: "WorldJournal",
                       journal_epoch: Optional[float] = None) -> None:
        """Start journaling a *live* world from this moment on.

        The constructor knob makes a world a journaling coordinator for
        its whole lifetime; this seam arms one mid-flight — the service
        gateway uses it to give every hosted world a telemetry journal
        without rebuilding it.  Capture hooks are wired onto every
        existing node (and the step ledger), the config record carries a
        ``live_attach`` marker with the attach position, and subsequent
        ops, payload notes and epoch barriers commit exactly as if the
        journal had been passed to the constructor.

        A live-attached journal is an *audit/telemetry* journal: it does
        not contain the pre-attach prefix of the run, so
        :func:`~repro.journal.resume_world` refuses it (a pristine
        world — nothing launched, no event processed — attaches with a
        normal resumable config instead).

        Raises:
            UsageError: A journal is already attached.
        """
        if self.journal is not None:
            raise UsageError("world already has a journal attached")
        if journal_epoch is not None:
            if journal_epoch <= 0:
                raise UsageError(
                    f"journal_epoch must be positive, got {journal_epoch}")
            self.journal_epoch = journal_epoch
        pristine = (self.sim.events_processed == 0 and not self.nodes
                    and not self.agents)
        self.journal = journal
        self._journal_capture = True
        self._owns_ops = True
        for node in self.nodes.values():
            self._wire_journal_hooks(node)
        self._wire_ledger_hook()
        if journal.armed and not journal.config_written:
            from repro.storage.serialization import capture
            config: dict[str, Any] = dict(
                backend="world", seed=self.sim._seed,
                journal_epoch=self.journal_epoch,
                world_kwargs=capture({
                    "timing": self.timing, "net_params": self.net_params,
                    "logging_mode": self.logging_mode,
                    "retry_policy": self.retry_policy,
                    "ft_params": self.ft_params,
                    "registry": None if self.registry is GLOBAL_REGISTRY
                    else self.registry}))
            if not pristine:
                config["live_attach"] = {
                    "events_processed": self.sim.events_processed,
                    "at": self.sim.now}
            journal.record_config(**config)

    def detach_journal(self) -> "WorldJournal":
        """Stop journaling: final group commit, unhook, hand back.

        The inverse of :meth:`attach_journal` (and of the constructor
        knob): buffered payload notes are committed under one last
        barrier, every capture hook is unwired, and the journal is
        returned to the caller — the world keeps running unjournaled.

        Raises:
            UsageError: No journal is attached.
        """
        if self.journal is None:
            raise UsageError("world has no journal attached")
        self._journal_final_commit()
        journal, self.journal = self.journal, None
        self._journal_capture = False
        self._owns_ops = False
        self._journal_notes.clear()
        for node in self.nodes.values():
            node.stable.on_mutate = None
            node.queue.on_journal = None
        self.ft.ledger.on_mutate = None
        return journal

    # -- topology -------------------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create a node named ``name``."""
        if name in self.nodes or name == LEDGER_NODE:
            raise UsageError(f"node {name!r} already exists")
        self._journal_op("add_node", name=name)
        node = Node(name, self)
        self.nodes[name] = node
        self.transport.register(name, lambda message: None)
        if self._journal_capture:
            self._wire_journal_hooks(node)
        return node

    def add_nodes(self, *names: str) -> list[Node]:
        """Create several nodes at once."""
        return [self.add_node(n) for n in names]

    def node(self, name: str) -> Node:
        node = self.nodes.get(name)
        if node is None:
            raise UsageError(f"no node {name!r}")
        return node

    def reachable(self, a: str, b: str) -> bool:
        """Commit-time reachability; the step ledger is a quorum service.

        ``__ledger__`` stands for the replicated observer/witness set of
        the fault-tolerant protocols of ref [11] and is modelled as
        always reachable from any live node.
        """
        if b == LEDGER_NODE:
            return self.failures.node_up(a)
        return self.transport.reachable(a, b)

    def node_up(self, name: str) -> bool:
        """Liveness of ``name`` as seen by this world's failure model.

        The placement seam of the takeover watchdog: a plain world asks
        its own injector; :class:`~repro.node.sharded.ShardWorld`
        extends the answer to nodes hosted by other shards, so a shadow
        can watch a primary in another kernel.
        """
        return self.failures.node_up(name)

    def deliver_package(self, tx: Transaction, package: AgentPackage,
                        dest_name: str) -> None:
        """Stage the durable enqueue of ``package`` at ``dest_name``.

        The destination seam of the shipping path: a plain world
        resolves the node locally and enqueues (visible at commit).
        :class:`~repro.node.sharded.ShardedWorld` overrides this to
        route packages whose destination lives in another shard through
        the cross-shard bridge instead.
        """
        self.node(dest_name).queue.enqueue(package, tx=tx)

    def enlist_participant(self, tx: Transaction, node_name: str) -> None:
        """Make ``node_name`` a participant whose crash aborts ``tx``.

        The first enlistment of a remote participant charges the 2PC
        message rounds (prepare + commit RTTs overlap across
        participants only in their propagation, so we charge one RTT
        pair per new participant plus fixed processing).
        """
        if node_name != tx.home and node_name not in tx.participants:
            tx.charge(4 * self.net_params.latency + self.timing.two_pc_round)
        tx.add_participant(node_name)
        if node_name in self.nodes:
            tx.enlist(self.nodes[node_name].txm)

    # -- agent management -----------------------------------------------------------------

    def launch(self, agent: MobileAgent, at: str, method: str,
               mode: RollbackMode = RollbackMode.BASIC,
               protocol: Protocol = Protocol.BASIC,
               initial_savepoints: Optional[list] = None) -> AgentRecord:
        """Inject ``agent`` into ``at``'s input queue, starting at ``method``.

        ``initial_savepoints`` — (sp_id, virtual) pairs written into the
        fresh rollback log before the first step, so the agent can roll
        back to its very beginning (itinerary agents use this for the
        savepoint "before the execution of [the first sub-itinerary]
        starts").  Returns the live :class:`AgentRecord`.
        """
        from repro.log.entries import SavepointEntry
        from repro.log.modes import sro_image_hashed
        from repro.storage.serialization import capture, snapshot

        node = self.node(at)
        if self._owns_ops and self.journal is not None \
                and self.journal.armed:
            # One bundle pickle before launch mutates the agent's
            # control state, mirroring the worker-process contract.
            self.journal.record_op("launch", bundle=capture(
                (agent, at, method,
                 {"mode": mode, "protocol": protocol,
                  "initial_savepoints": initial_savepoints})))
        agent.set_control(at, method)
        log = RollbackLog(self.logging_mode)
        transition = self.logging_mode is LoggingMode.TRANSITION
        for sp_id, virtual in (initial_savepoints or []):
            payload = sro_hashes = None
            if not virtual:
                if transition:
                    # Root of the transition chain: record the per-key
                    # content hashes so the first step's savepoint can
                    # hash-diff against this image.
                    payload, sro_hashes = sro_image_hashed(agent.sro)
                else:
                    payload = snapshot(agent.sro)
            entry = SavepointEntry(sp_id=sp_id,
                                   mode=self.logging_mode.value,
                                   payload=payload, virtual=virtual,
                                   sro_hashes=sro_hashes)
            log.append(entry)
            self.metrics.incr("savepoints.written")
            if self._journal_capture:
                self.journal_note(
                    "savepoint", agent=agent.agent_id, sp=sp_id,
                    virtual=virtual,
                    frame=None if virtual else entry.blob())
        record = AgentRecord(agent_id=agent.agent_id,
                             mode=RollbackMode(mode),
                             protocol=Protocol(protocol))
        if agent.agent_id in self.agents:
            raise UsageError(f"agent {agent.agent_id!r} already launched")
        self.agents[agent.agent_id] = record
        package = AgentPackage.pack(PackageKind.STEP, agent, log,
                                    step_index=0, mode=record.mode,
                                    protocol=record.protocol, primary=at)
        node.queue.enqueue(package)
        return record

    def launch_itinerary(self, agent: MobileAgent,
                         mode: RollbackMode = RollbackMode.BASIC,
                         protocol: Protocol = Protocol.BASIC) -> AgentRecord:
        """Launch an :class:`~repro.itinerary.executor.ItineraryAgent`.

        The start node/method and the initial savepoints come from the
        agent's itinerary.
        """
        at, method = agent.launch_entry()
        return self.launch(agent, at=at, method=method, mode=mode,
                           protocol=protocol,
                           initial_savepoints=agent.initial_savepoints())

    def record_of(self, agent_id: str) -> AgentRecord:
        record = self.agents.get(agent_id)
        if record is None:
            raise UsageError(f"no agent {agent_id!r}")
        return record

    def record_or_none(self, agent_id: str) -> Optional[AgentRecord]:
        """Like :meth:`record_of` but tolerant of unknown agents.

        Dispatch paths use this: a package whose agent this world never
        launched (e.g. a promoted shadow of a foreign/expired agent) is
        stale garbage to be consumed, not a crash.
        """
        return self.agents.get(agent_id)

    def rollback_driver(self, mode: RollbackMode):
        return self._drivers[RollbackMode(mode)]

    # -- backend-neutral inspection / injection -----------------------------------------------
    #
    # The same three methods exist on ShardedWorld and ProcShardedWorld,
    # so a workload or equivalence check can drive any execution backend
    # (one kernel, N in-process kernels, N worker processes) through one
    # call surface.

    def resource_state(self, node: str, resource: str) -> Any:
        """The named resource hosted by ``node`` (live object here)."""
        return self.node(node).get_resource(resource)

    def outcomes(self) -> dict[str, dict[str, Any]]:
        """Canonical per-agent outcomes (same shape as ShardedWorld's)."""
        from repro.node.sharded import outcomes_of
        return outcomes_of(self.agents)

    def apply_crash_plans(self, plans) -> None:
        """Schedule node-level outages (facade twin of ``failures.apply_plan``)."""
        if self._owns_ops and self.journal is not None \
                and self.journal.armed:
            from repro.storage.serialization import capture
            self.journal.record_op("crash_plans", blob=capture(list(plans)))
        self.failures.apply_plan(plans)

    def serialization_stats(self) -> dict[str, int]:
        """This process's :data:`repro.storage.serialization.STATS` copy."""
        from repro.storage.serialization import stats
        return stats()

    def enable_trace_digest(self) -> None:
        """Turn on the kernel's event-stream digest."""
        self.sim.enable_trace_digest()

    def trace_digests(self) -> list:
        """The kernel event-stream digest, as a one-element list."""
        return [self.sim.trace_digest()]

    # -- execution ------------------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000,
            _replay: Optional[list] = None) -> None:
        """Run the simulation until idle (or ``until``).

        With a journal attached the run is epoch-ized: events execute
        in ``journal_epoch`` intervals on the same deterministic grid
        the sharded drivers use, with a group commit — payload flush,
        marker, fsync — at each barrier, and the ``kill_world`` check
        between them.  ``_replay`` is the resume driver's input: the
        journaled barrier sequence is re-executed verbatim (commits
        stay suppressed because the journal is disarmed), reproducing
        the original walk even where ``until``-capping or same-instant
        barriers made it diverge from the pure grid.
        """
        if _replay is not None:
            for barrier in _replay:
                self.sim.run_epoch(barrier, max_events=max_events)
            return
        if self.journal is None:
            self.sim.run(until=until, max_events=max_events)
            return
        while self._step(until, max_events):
            pass
        if until is not None:
            # Idle advance to ``until``, matching the plain path.
            self.sim.run(until=until, max_events=max_events)

    def _step(self, until: Optional[float], max_events: int) -> bool:
        """One barrier of the epoch-ized run loop; False when drained."""
        from repro.node.sharded import next_epoch_barrier
        soonest = self.sim.peek_time()
        if soonest is None or (until is not None and soonest > until):
            self._journal_final_commit()
            return False
        barrier = next_epoch_barrier(soonest, self.journal_epoch,
                                     self.sim.now)
        if until is not None and barrier > until:
            barrier = until
        self.sim.run_epoch(barrier, max_events=max_events)
        kill = self._kill_due(barrier)
        self._journal_commit(barrier, torn=(kill == "barrier"))
        if kill is not None:
            from repro.errors import WorldKilled
            raise WorldKilled(barrier, kill)
        return True

    def step_epoch(self, max_events: int = 10_000_000) -> bool:
        """Advance exactly one epoch barrier; False once the world is idle.

        The reentrant twin of :meth:`run`: each call executes the next
        barrier of the *same* deterministic epoch grid the journaled run
        loop walks (``journal_epoch`` spacing, shared
        :func:`~repro.node.sharded.next_epoch_barrier` arithmetic), with
        the same group commit and ``kill_world`` check per barrier —
        ``run()`` is exactly ``while world.step_epoch(): pass``, so a
        stepped run and a straight run of the same seed produce
        identical event order, outcomes and trace digests.  Long-lived
        hosts (the service gateway) interleave launches and telemetry
        reads between calls.  Idle calls (False) are safe and repeated:
        new work scheduled later — another :meth:`launch` — simply makes
        the next call return True again.
        """
        return self._step(None, max_events)

    def all_done(self) -> bool:
        """True when no agent is still running."""
        return all(r.status is not AgentStatus.RUNNING
                   for r in self.agents.values())

    # -- outcome hooks (called by drivers) ----------------------------------------------------------

    def agent_finished(self, agent: MobileAgent, result: Any) -> None:
        record = self.record_of(agent.agent_id)
        record.status = AgentStatus.FINISHED
        record.result = result
        record.final_agent = agent
        record.finished_at = self.sim.now
        self.metrics.incr("agents.finished")
        self.metrics.record(self.sim.now, "agent-finished",
                            agent=agent.agent_id)

    def agent_failed(self, agent_id: str, reason: str) -> None:
        record = self.record_of(agent_id)
        record.status = AgentStatus.FAILED
        record.failure = reason
        record.finished_at = self.sim.now
        self.metrics.incr("agents.failed")
        self.metrics.record(self.sim.now, "agent-failed",
                            agent=agent_id, reason=reason)
