"""True multiprocess shard workers: one kernel per worker process.

:class:`~repro.node.sharded.ShardedWorld` partitions a world across N
kernels but runs them all in one Python process — N-way logical
concurrency, one core.  :class:`ProcShardedWorld` (also reachable as
``ShardedWorld(workers="process")``) keeps the exact same lockstep
epoch protocol and moves each shard kernel into a
:mod:`multiprocessing` worker process, so epochs of independent shards
execute on real cores in parallel.

Architecture
------------

The coordinator owns no kernel.  It drives the same barrier loop as
the in-process driver (:func:`~repro.node.sharded.next_epoch_barrier`
is shared), but each "advance shard i to the barrier" becomes a
command over that worker's pipe and each barrier flush becomes an
explicit exchange:

* **collect** — every worker's epoch reply carries its bridge outbox
  (agent packages, shadow copies, ledger mirrors — the same
  :class:`~repro.node.sharded._Transfer` objects, pickle-framed and
  closure-free) plus its agent-record deltas;
* **route** — the coordinator's own
  :class:`~repro.node.sharded.CrossShardBridge` re-registers the
  outboxes in shard order (reproducing the in-process global sequence
  numbers) and routes them deterministically, retaining shadow retries
  and banking ledger mirrors for suspended shards exactly as the
  in-process flush does;
* **scatter** — each shard's ordered inbox ships with its next epoch
  command; the worker applies it through the *same*
  :func:`~repro.node.sharded.apply_transfer` /
  :func:`~repro.node.sharded.apply_give_up` functions the in-process
  flush uses, with its clock at the same instant, so the scheduled
  event sequence is identical.

The shared agent-record table becomes an explicit merge point: each
worker ships per-epoch record deltas, the coordinator merges them (in
shard order, updating record objects in place so references returned
by :meth:`launch` stay live) and re-broadcasts changed records to the
other workers with their next command.

Entangled workloads and the serial turn schedule
------------------------------------------------

Fault-tolerant runs read *live* foreign state mid-epoch: quorum claim
locks and reads against every shard's ledger replica, and foreign-node
liveness for the takeover watchdog and step diversion.  Running such
epochs in parallel would make those reads race — and with them the
promotion-vs-primary claim arbitration, which must be deterministic
(the winner decides *where* effects land).  The driver therefore picks
a schedule per run:

* **parallel epochs** — when the workload is *independent* (no
  fault-tolerant agents, no failure injection, no shard outages): no
  mid-epoch foreign reads exist, every worker advances concurrently,
  and the run is byte-identical to the in-process one.
* **serial turns** — when the workload is *entangled*: within each
  epoch the workers take turns in shard order, exactly like the
  in-process driver.  Each turn ships barrier-fresh views of every
  foreign replica's claims and open claim locks, every foreign shard's
  down-node set and the suspension table (served locally by
  :class:`RemoteShardContext`), and returns the worker's own dumps.
  Because only one kernel executes at a time and views refresh between
  turns, every foreign read returns exactly what the in-process live
  read would — the two backends walk the same event sequence.

``lockstep="auto"`` (default) selects per run; ``"serial"`` /
``"parallel"`` force a schedule (forcing ``"parallel"`` on an
entangled workload trades the equivalence guarantee for speed and is
for experiments only).

Optimistic entangled epochs (``lockstep="optimistic"``)
-------------------------------------------------------

Serial turns keep entangled runs deterministic by giving up all
multi-core overlap.  ``"optimistic"`` recovers the overlap with the
paper's own discipline — speculate, detect, roll back:

* **speculate** — the epoch is dispatched to *every* worker at once,
  each against the barrier-stale views (exactly what the first serial
  turn would have seen).  Each worker's epoch is its own savepoint:
  the worker retains the pristine bytes of every state-bearing command
  it has ever received (the pipe blob plus the epoch's ring frames),
  so any epoch can be re-derived from scratch.  While speculating, the
  worker records a **read log** — every foreign claim read, claim-lock
  view consult, foreign-liveness and suspension check its kernel
  performed (the only schedule-sensitive inputs an entangled epoch
  has; see :class:`RemoteShardContext`).
* **detect** — at the barrier the coordinator validates the read logs
  *in shard order*, the order serial turns would have used: for each
  shard it reconstructs the views a serial turn would have served at
  that point (folding in the dumps of the shards already validated
  before it) and replays the read log against them.  Every entry equal
  ⇒ the speculative execution consumed exactly the inputs its serial
  twin would have — with deterministic kernels, it *is* the serial
  execution, and its outbox/dumps/record deltas are accepted as-is.
* **roll back** — any mismatched shard is rolled back to its epoch
  savepoint and re-executed: the worker rebuilds a fresh kernel,
  replays its pristine command log (resetting its id namespaces, so
  the rebuild is bit-identical to the original history) and then runs
  the conflicted epoch with the authoritative serial-turn views.
  Validation continues in shard order, so later shards validate
  against the *post-redo* state — a conflict cascades exactly to the
  shards whose reads it invalidated, never the whole world.

Speculative state never leaks ahead of its verdict: a shard's journal
notes, record deltas and outbox are held back until its read log
validates (or its redo returns), and the journal group commit sits
after the whole detect/rollback pass — a speculative epoch cannot
commit until it has survived conflict detection.

Agent-record staleness is deliberately *not* validated: records
broadcast at barriers, so a speculating shard may see a record copy
one turn staler than its serial twin would.  No execution path
branches on foreign record contents (the FT drivers arbitrate through
the ledger, never through records), records merge under a monotonic
progress guard, and the only divergence a stale base can produce is
in auxiliary attempt counters — outside the compared surface
(outcomes, metrics counters, trace digests), which the differential
harness pins bit-identical to ``"serial"``.

Process-picklability contract
-----------------------------

Everything that crosses the pipe must pickle under the ``spawn`` start
method: agents and resources by importable class reference, bridge
traffic as data (no closures — give-up context travels as declarative
tags), compensations registered at *import time* of an importable
module (the registry is rebuilt per process from imports).  Violations
surface at ship time through
:func:`~repro.storage.serialization.assert_picklable`, which names the
offending attribute instead of burying it in a worker traceback.

A worker process that dies outright (crash, OOM kill, SIGKILL) is
surfaced as :class:`~repro.errors.WorkerDied` — an explicit permanent
shard outage — rather than a hang on a pipe that will never answer.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import warnings
from typing import Any, Optional

from repro.errors import LockConflict, UsageError, WorkerDied, WorkerError
from repro.node.shmring import (
    DEFAULT_RING_SIZE,
    ShmRing,
    TornFrame,
    decode_reply,
    encode_epoch,
    encode_reply,
    read_frames,
    resolve_epoch,
)
from repro.node.sharded import (
    CrossShardBridge,
    ShardWorld,
    _ShardOutage,
    aggregate_counters,
    apply_give_up,
    apply_transfer,
    next_epoch_barrier,
    outcomes_of,
)
from repro.storage import serialization
from repro.storage.serialization import assert_picklable, capture, restore
from repro.tx.locks import LockManager


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _teardown_step(what: str, fn, *exc_types: type) -> bool:
    """Run one best-effort teardown action, surfacing (not hiding) failure.

    Teardown must keep going — a failed pipe close must not leave shm
    segments behind — but it must not *hide* failures either: a leaked
    ``psm_*`` segment is undiagnosable if the unlink error vanished into
    ``except Exception: pass``.  Each suppressed failure therefore bumps
    ``serialization.STATS["teardown.suppressed"]`` and emits a
    :class:`ResourceWarning` naming the step.  Only the expected
    ``exc_types`` are caught; anything else propagates.

    Returns ``True`` when ``fn`` completed without raising.
    """
    try:
        fn()
    except exc_types as exc:
        serialization.STATS["teardown.suppressed"] += 1
        warnings.warn(
            f"suppressed teardown failure in {what}: "
            f"{type(exc).__name__}: {exc}",
            ResourceWarning, stacklevel=2)
        return False
    return True

#: Fields of an AgentRecord that change while an agent runs; a cheap
#: fingerprint over them decides whether a record delta must ship
#: (result/final_agent only ever change together with status).
_RECORD_FIELDS = ("status", "steps_committed", "step_attempts",
                  "rollbacks_initiated", "rollbacks_completed",
                  "compensation_txs", "agent_transfers", "transfer_bytes",
                  "finished_at", "failure")


def _record_fingerprint(record: Any) -> tuple:
    return tuple(getattr(record, f) for f in _RECORD_FIELDS)


def _record_progress(record: Any) -> tuple:
    """Monotonic progress key for merging divergent record copies.

    Every mutation of an agent record increments a counter or flips the
    status once, so the *true* latest copy dominates any stale copy
    (left behind on a worker the agent migrated away from) in every
    component; comparing lexicographically — outcome fields first —
    therefore always keeps the real state and deterministically breaks
    the only remaining ties (aux-counter writes by stale FT dispatches,
    which in-process interleave on the shared record object).
    """
    from repro.node.runtime import AgentStatus
    return (record.status is not AgentStatus.RUNNING,
            record.steps_committed, record.rollbacks_completed,
            record.compensation_txs, record.rollbacks_initiated,
            record.step_attempts, record.agent_transfers,
            record.transfer_bytes)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class RemoteShardContext:
    """A worker process's stand-in for the :class:`ShardedWorld` owner.

    Implements the narrow cross-shard surface a
    :class:`~repro.node.sharded.ShardWorld` and its
    :class:`~repro.exactly_once.fault_tolerant.BridgedFaultTolerance`
    read from other shards — placement, foreign liveness, suspension,
    replica claim locks/reads, the bridge, the last flush time — from
    coordinator-supplied views instead of live sibling worlds.  Under
    the serial turn schedule the views are refreshed between turns, so
    each answer equals the live read the in-process driver would have
    performed at the same point of the epoch.
    """

    def __init__(self, shard_index: int, n_shards: int):
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.world: Optional[ShardWorld] = None
        self._node_shard: dict[str, int] = {}
        self.ft_alternates: dict[str, tuple[str, ...]] = {}
        #: Outbox-only bridge: accumulates this shard's forwards for the
        #: coordinator to collect; never routes anything itself.
        self.bridge = CrossShardBridge(n_shards)
        self.last_flush_at = float("-inf")
        self._suspended_view = [False] * n_shards
        self._down_view: dict[int, frozenset] = {}
        self._claims_view: dict[int, dict] = {}
        self._locks_view: dict[int, dict] = {}
        #: Speculation read log (optimistic lockstep): while an epoch
        #: runs speculatively this is a list collecting one entry per
        #: foreign-view consult — ``(kind, shard, key, seen)`` — the
        #: complete schedule-sensitive input set of the epoch.  None
        #: outside speculative epochs (no logging overhead).
        self.read_log: Optional[list] = None
        #: Local mirrors of the foreign replicas' lock managers: they
        #: hold only *this* worker's open claim locks (published to the
        #: other workers via the turn dumps); foreign holds arrive
        #: through ``_locks_view``.
        self._lock_mirrors = {
            shard: LockManager(f"ledger-mirror:{shard}")
            for shard in range(n_shards) if shard != shard_index}

    # -- topology ---------------------------------------------------------------

    def placement_of(self, name: str) -> Optional[int]:
        return self._node_shard.get(name)

    def shard_of(self, name: str) -> int:
        shard = self._node_shard.get(name)
        if shard is None:
            raise UsageError(f"no node {name!r}")
        return shard

    # -- foreign state views ------------------------------------------------------

    def update_views(self, views: dict[str, Any]) -> None:
        self._suspended_view = views["suspended"]
        self._down_view = views["down"]
        self._claims_view = views["claims"]
        self._locks_view = views["locks"]

    def foreign_node_up(self, shard: int, name: str) -> bool:
        up = name not in self._down_view.get(shard, ())
        if self.read_log is not None:
            self.read_log.append(("up", shard, name, up))
        return up

    def shard_suspended(self, shard: int) -> bool:
        if shard == self.shard_index:
            return self.world.sim.suspended
        seen = self._suspended_view[shard]
        if self.read_log is not None:
            self.read_log.append(("susp", shard, None, seen))
        return seen

    def live_shard_indices(self) -> list[int]:
        return [shard for shard in range(self.n_shards)
                if not self.shard_suspended(shard)]

    # -- replica quorum surface ----------------------------------------------------

    def claim_lock(self, tx, shard: int, work_id: int) -> None:
        key = ("claim", work_id)
        foreign = self._locks_view.get(shard, {}).get(work_id)
        if self.read_log is not None:
            self.read_log.append(("lock", shard, work_id, foreign))
        if foreign is not None:
            # Held by another worker's open transaction: collide exactly
            # like the in-process cross-replica acquisition would.
            raise LockConflict(key, foreign[1])
        if shard == self.shard_index:
            self.world.ft.ledger_locks.acquire(key, tx)
        else:
            self._lock_mirrors[shard].acquire(key, tx)

    def read_claim(self, shard: int, work_id: int) -> Optional[str]:
        if shard == self.shard_index:
            return self.world.ft.ledger.get(("claim", work_id))
        seen = self._claims_view.get(shard, {}).get(work_id)
        if self.read_log is not None:
            self.read_log.append(("claim", shard, work_id, seen))
        return seen

    # -- turn dumps (published to the coordinator) ----------------------------------

    def lock_contributions(self) -> dict[int, dict[int, int]]:
        """This worker's open claim locks, per replica: {wid: txid}."""
        out: dict[int, dict[int, int]] = {}
        own = {item[1]: tx.txid
               for item, tx in self.world.ft.ledger_locks.held_items()}
        out[self.shard_index] = own
        for shard, mirror in self._lock_mirrors.items():
            out[shard] = {item[1]: tx.txid
                          for item, tx in mirror.held_items()}
        return out

    def claims_dump(self) -> dict[int, str]:
        """This shard's replica contents (staged writes included, like
        a live :meth:`~repro.storage.stable.StableStore.get`)."""
        ledger = self.world.ft.ledger
        return {key[1]: ledger.get(key) for key in ledger.keys()
                if isinstance(key, tuple) and key and key[0] == "claim"}


def views_satisfy(views: dict[str, Any], read_log) -> bool:
    """The optimistic-lockstep conflict detector (pure function).

    ``views`` is what :meth:`ProcShardedWorld._views_for` would have
    served this shard at its serial turn; ``read_log`` is the list of
    ``(kind, shard, key, seen)`` entries the shard's speculative epoch
    recorded against the barrier-stale views.  Returns True iff every
    logged read would have returned the same value under the serial
    schedule — in which case the speculative execution, being
    deterministic in its inputs, *is* the serial execution.  Any
    mismatch means the speculation consumed an invalidated read (e.g.
    two shards racing for the same step claim) and the shard must roll
    back to its epoch savepoint.
    """
    claims = views["claims"]
    locks = views["locks"]
    down = views["down"]
    suspended = views["suspended"]
    for kind, shard, key, seen in read_log:
        if kind == "claim":
            now = claims.get(shard, {}).get(key)
        elif kind == "lock":
            now = locks.get(shard, {}).get(key)
        elif kind == "up":
            now = key not in down.get(shard, ())
        elif kind == "susp":
            now = bool(suspended[shard])
        else:  # pragma: no cover - the log writer is the gate
            return False
        if now != seen:
            return False
    return True


#: Worker commands that mutate worker state and therefore belong in
#: the optimistic-lockstep replay log (the epoch savepoint's history).
#: ``fetch`` is a pure read, ``shutdown`` ends the process and
#: ``redo`` is the rollback protocol itself.
_LOGGED_OPS = frozenset((
    "epoch", "add_node", "add_resource", "share_resource",
    "set_alternates", "launch", "crash_plans", "kill", "enable_digest"))


def _build_shard(config: dict[str, Any]
                 ) -> "tuple[RemoteShardContext, ShardWorld]":
    """Build (or rebuild) one worker's context + kernel from its config.

    Also (re)sets the process's id namespaces: the module counters are
    deterministic functions of the shard index, so calling this again
    before an optimistic-rollback replay restores the exact id
    sequences the original history consumed.
    """
    from repro.agent import packages
    from repro.log import entries
    from repro.storage import queues

    shard = config["shard_index"]
    # Disjoint id namespaces: work ids arbitrate exactly-once globally,
    # auto savepoint names must stay unique within a migrating agent's
    # log, and offset item ids keep debug output unambiguous.
    packages.set_work_id_namespace(shard)
    queues.set_item_id_namespace(shard)
    entries.set_savepoint_id_namespace(shard)

    ctx = RemoteShardContext(shard, config["n_shards"])
    world = ShardWorld(shard_index=shard, sharded=ctx,
                       seed=config["seed"] + 100_003 * shard,
                       journal_capture=config.get("journal_capture", False),
                       **config["world_kwargs"])
    world.journal_shard = shard  # notes self-tag with their origin
    ctx.world = world
    return ctx, world


class _WorkerServer:
    """The command loop of one shard worker process."""

    def __init__(self, conn, ctx: RemoteShardContext, world: ShardWorld,
                 config: Optional[dict[str, Any]] = None,
                 ring_in: Optional[ShmRing] = None,
                 ring_out: Optional[ShmRing] = None):
        self.conn = conn
        self.ctx = ctx
        self.world = world
        self._config = config or {}
        #: Shared-memory rings of the zero-copy barrier exchange:
        #: ``ring_in`` carries the coordinator's bulk epoch payloads,
        #: ``ring_out`` this worker's bulk reply payloads.  None in
        #: pipe mode.
        self.ring_in = ring_in
        self.ring_out = ring_out
        self._record_prints: dict[str, tuple] = {}
        #: Optimistic lockstep only: the pristine history of every
        #: state-bearing command — ``("raw", pipe_blob, ring_frames)``
        #: entries exactly as received — which is what makes every
        #: epoch a savepoint (rollback = rebuild the kernel and replay
        #: the log).  None under the other schedules: no retention.
        self._spec_log: Optional[list] = \
            [] if self._config.get("lockstep") == "optimistic" else None

    # -- record delta tracking ------------------------------------------------------

    def _merge_records(self, records: dict[str, bytes]) -> None:
        for agent_id, blob in records.items():
            incoming = restore(blob)
            existing = self.world.agents.get(agent_id)
            if existing is None:
                self.world.agents[agent_id] = incoming
            elif _record_progress(incoming) >= _record_progress(existing):
                if incoming.final_agent is None:
                    # Broadcast copies travel with final_agent stripped
                    # (see ProcShardedWorld._merge_record_blob); a copy
                    # already captured locally must survive the merge.
                    incoming.final_agent = existing.final_agent
                # In place: protocol closures hold the record object.
                existing.__dict__.update(incoming.__dict__)
            else:
                continue  # stale copy: keep the fresher local state
            self._record_prints[agent_id] = _record_fingerprint(
                self.world.agents[agent_id])

    def _record_deltas(self) -> dict[str, bytes]:
        deltas: dict[str, bytes] = {}
        for agent_id, record in self.world.agents.items():
            print_ = _record_fingerprint(record)
            if self._record_prints.get(agent_id) != print_:
                self._record_prints[agent_id] = print_
                deltas[agent_id] = capture(record)
        return deltas

    # -- command handlers -----------------------------------------------------------

    def _state(self) -> dict[str, Any]:
        return {
            "peek": self.world.sim.peek_time(),
            "now": self.world.sim.now,
            "suspended": self.world.sim.suspended,
            "events": self.world.sim.events_processed,
        }

    def handle(self, op: str, payload: dict[str, Any]) -> dict[str, Any]:
        world, ctx = self.world, self.ctx
        if op == "epoch":
            return self._handle_epoch(payload)
        if op == "redo":
            return self._redo(payload)
        if op == "add_node":
            ctx._node_shard[payload["name"]] = payload["shard"]
            if payload["shard"] == ctx.shard_index:
                world.add_node(payload["name"])
            return {}
        if op == "add_resource":
            world.node(payload["node"]).add_resource(payload["resource"])
            return {}
        if op == "share_resource":
            resource = world.node(payload["from_node"]).get_resource(
                payload["resource"])
            world.node(payload["node"]).share_resource(resource)
            return {}
        if op == "set_alternates":
            ctx.ft_alternates[payload["node"]] = tuple(payload["alternates"])
            return {}
        if op == "launch":
            # One bundle pickle: preserves object sharing between the
            # agent's own state and the launch arguments (e.g. the
            # start-node string also being plan[0]), so the package the
            # worker packs is byte-identical to an in-process launch.
            agent, at, method, kwargs = restore(payload["bundle"])
            record = world.launch(agent, at=at, method=method, **kwargs)
            self._record_prints[record.agent_id] = \
                _record_fingerprint(record)
            return {"record": capture(record)}
        if op == "crash_plans":
            world.failures.apply_plan(payload["plans"])
            return {}
        if op == "kill":
            world.schedule_kill(payload["at"])
            return {}
        if op == "enable_digest":
            world.sim.enable_trace_digest()
            return {}
        if op == "fetch":
            return {"value": self._fetch(payload)}
        if op == "shutdown":
            return {}
        raise UsageError(f"unknown worker command {op!r}")

    def _handle_epoch(self, payload: dict[str, Any]) -> dict[str, Any]:
        world, ctx = self.world, self.ctx
        # Speculative epoch: log every foreign-view consult so the
        # coordinator can validate the execution against the views a
        # serial turn would have served.
        ctx.read_log = [] if payload.get("spec") else None
        self._merge_records(payload["records"])
        if payload["views"] is not None:
            ctx.update_views(payload["views"])
        ctx.last_flush_at = payload["last_flush_at"]
        # Inbox first, revival second: the in-process driver flushes the
        # bridge (scheduling deliveries, even into a frozen kernel) at
        # the end of one loop iteration and revives at the start of the
        # next, so the event sequence numbers must follow that order.
        for action, transfer in payload["items"]:
            if action == "give-up":
                apply_give_up(world, transfer)
                continue
            if transfer.record_blob is not None:
                # The agent's record travelled with it; merge before
                # delivery so the dispatch sees current state exactly
                # like the in-process shared record table would.
                agent_id = (transfer.package.agent_id
                            if transfer.package is not None
                            else transfer.message.payload.agent_id)
                self._merge_records({agent_id: transfer.record_blob})
            apply_transfer(world, transfer)
        if payload["revive"] is not None:
            restart_at, backlog = payload["revive"]
            world.schedule_revival(restart_at, backlog)
        if payload["run"] and not world.sim.suspended:
            world.sim.run_epoch(payload["barrier"],
                                max_events=payload["max_events"])
        outbox = ctx.bridge.drain_pending()
        reply: dict[str, Any] = {"outbox": outbox}
        if payload["ship_records"]:
            # Serial (entangled) turns mirror the in-process shared
            # record table exactly: every touched record ships each
            # turn.
            reply["record_deltas"] = self._record_deltas()
        else:
            # Independent epochs: records only matter where their agent
            # goes, so they ride the transfers instead of a broadcast.
            for transfer in outbox:
                carried = transfer.package if transfer.package is not None \
                    else (transfer.message.payload
                          if transfer.message is not None else None)
                if carried is None:
                    continue
                record = world.agents.get(carried.agent_id)
                if record is not None:
                    transfer.record_blob = capture(record)
        if payload["want_dump"]:
            reply["dump"] = {
                "claims": ctx.claims_dump(),
                "locks": ctx.lock_contributions(),
                "down": world.failures.down_nodes(),
            }
        if ctx.read_log is not None:
            reply["read_log"] = ctx.read_log
            ctx.read_log = None
        return reply

    def _redo(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Roll back to the epoch savepoint and re-execute the epoch.

        The conflicted epoch is the last entry of the replay log.  Its
        pristine payload is re-loaded, its stale views replaced by the
        coordinator-supplied authoritative (serial-turn) ones, and the
        log entry rewritten to the corrected command — so a *later*
        rollback's replay reproduces this redone history, not the
        mis-speculated one.  Then the savepoint restore: a fresh kernel
        (fresh metrics, RNG, id namespaces) replays the whole log —
        deterministically bit-identical to the original history, since
        every replayed command carries inputs the coordinator validated
        (or corrected) against the serial schedule — and finally the
        corrected epoch executes with fresh views.
        """
        entry = self._spec_log.pop()
        op, epoch_payload = self._load_entry(entry)
        epoch_payload["views"] = payload["views"]
        epoch_payload["spec"] = False
        corrected = ("obj", _dumps((op, epoch_payload)), None)
        self._spec_log.append(corrected)
        self.ctx, self.world = _build_shard(self._config)
        self._record_prints = {}
        for past in self._spec_log[:-1]:
            past_op, past_payload = self._load_entry(past)
            self.handle(past_op, past_payload)
            if self.world._journal_capture:
                # The replayed prefix was journaled the first time it
                # executed; its re-derived notes must not ship again.
                self.world.drain_journal_notes()
        return self._handle_epoch(epoch_payload)

    def _load_entry(self, entry) -> tuple[str, dict[str, Any]]:
        """Fresh (op, payload) objects from one pristine log entry."""
        _kind, blob, frames = entry
        op, payload = pickle.loads(blob)
        if "wire" in payload:
            payload.pop("wire")
            payload = resolve_epoch(payload, frames or [])
        return op, payload

    def _fetch(self, payload: dict[str, Any]) -> Any:
        world = self.world
        what = payload["what"]
        if what == "metrics":
            return world.metrics
        if what == "summary":
            return world.metrics.summary()
        if what == "ledger":
            return self.ctx.claims_dump()
        if what == "resource":
            return world.node(payload["node"]).get_resource(
                payload["resource"])
        if what == "queue_length":
            return len(world.node(payload["node"]).queue)
        if what == "ser_stats":
            from repro.storage.serialization import stats
            return stats()
        if what == "record_deltas":
            return self._record_deltas()
        if what == "trace_digest":
            return world.sim.trace_digest()
        raise UsageError(f"unknown fetch {what!r}")

    # -- loop -----------------------------------------------------------------------

    def serve(self) -> str:
        """Run the command loop; returns why it ended (for cleanup)."""
        while True:
            while not self.conn.poll(0.5):
                # Orphan defense: a SIGKILLed coordinator can't run the
                # daemon-reaping atexit hook, and under ``fork`` sibling
                # workers keep the pipe open so no EOF ever arrives.
                # Poll the parent's liveness instead and exit on our own.
                parent = multiprocessing.parent_process()
                if parent is None or not parent.is_alive():
                    return "orphan"
            raw = self.conn.recv_bytes()
            op, payload = pickle.loads(raw)
            frames: Optional[list] = None
            try:
                if op == "epoch" and "wire" in payload:
                    frames = read_frames(self.ring_in, payload.pop("wire"))
                    payload = resolve_epoch(payload, frames)
            except Exception as exc:  # noqa: BLE001 - shipped to coordinator
                # A torn/corrupt wire batch desyncs the ring cursor: the
                # worker cannot be rolled back out of this, so flag the
                # error fatal (the coordinator will not attempt a redo).
                reply = {"ok": False, "fatal": True,
                         "error": f"{type(exc).__name__}: {exc}",
                         "traceback": traceback.format_exc()}
                self.conn.send_bytes(_dumps(reply))
                continue
            if self._spec_log is not None and op in _LOGGED_OPS:
                # Retain the pristine command (raw pipe blob + any ring
                # frames it referenced) BEFORE executing it: this is the
                # epoch savepoint a conflict-triggered redo rebuilds from.
                self._spec_log.append(("raw", raw, frames))
            try:
                reply = self.handle(op, payload)
                reply["ok"] = True
                reply["state"] = self._state()
                if self.world._journal_capture:
                    notes = self.world.drain_journal_notes()
                    if notes:
                        reply["journal"] = notes
                if op in ("epoch", "redo") and self.ring_out is not None:
                    reply = encode_reply(reply, self.ring_out)
            except Exception as exc:  # noqa: BLE001 - shipped to coordinator
                reply = {"ok": False,
                         "error": f"{type(exc).__name__}: {exc}",
                         "traceback": traceback.format_exc()}
            blob = _dumps(reply)
            if op in ("epoch", "redo"):
                key = ("ipc_bytes_control" if self.ring_out is not None
                       else "ipc_bytes_copied")
                serialization.STATS[key] += len(blob)
            self.conn.send_bytes(blob)
            if op == "shutdown":
                return "shutdown"


def _worker_entry(conn, config: dict[str, Any]) -> None:
    """Entry point of one shard worker process."""
    ctx, world = _build_shard(config)
    rings = config.get("rings")
    ring_in = ring_out = None
    if rings is not None:
        # Attach to the coordinator-created segments.  All processes
        # share the coordinator's resource tracker (spawn passes its
        # fd), so the duplicate attach registration collapses and the
        # coordinator's unlink clears it for everyone.
        ring_in = ShmRing.attach(rings[0])
        ring_out = ShmRing.attach(rings[1])
    reason = "error"
    try:
        reason = _WorkerServer(conn, ctx, world, config=config,
                               ring_in=ring_in, ring_out=ring_out).serve()
    except (EOFError, KeyboardInterrupt):  # coordinator went away
        pass
    finally:
        for ring in (ring_in, ring_out):
            if ring is None:
                continue
            if reason == "shutdown":
                # The coordinator unlinks on close().
                _teardown_step(f"worker ring close ({ring.name})",
                               ring.close, OSError, BufferError)
            else:
                # Orphaned (coordinator SIGKILLed) or torn down without
                # a shutdown: nobody else is left to unlink — destroy
                # the segments so they cannot leak (the shared resource
                # tracker would catch them too; unlink is idempotent).
                _teardown_step(f"worker ring unlink ({ring.name})",
                               ring.unlink, OSError, BufferError)


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Coordinator-side pipe + process wrapper for one shard worker."""

    def __init__(self, shard: int, process, conn,
                 ring_out: Optional[ShmRing] = None,
                 ring_in: Optional[ShmRing] = None):
        self.shard = shard
        self.process = process
        self.conn = conn
        #: Shared-memory rings (shm mode): ``ring_out`` carries epoch
        #: bulk payloads to the worker, ``ring_in`` its bulk replies.
        self.ring_out = ring_out
        self.ring_in = ring_in
        self.peek: Optional[float] = None
        self.now: float = 0.0
        self.suspended = False
        self.events = 0
        #: Journal payload notes shipped with replies, awaiting the
        #: coordinator's ingest (drained at each epoch collect).
        self.journal_notes: list[tuple[str, dict]] = []

    def unlink_rings(self) -> None:
        """Destroy this worker's shm segments (idempotent)."""
        for ring in (self.ring_out, self.ring_in):
            if ring is not None:
                ring.unlink()
        self.ring_out = self.ring_in = None

    def _died(self) -> WorkerDied:
        # A dead worker cannot answer for its rings any more: unlink
        # them here so a SIGKILLed worker (possibly mid-frame) never
        # leaks a segment, then surface the existing error.
        self.unlink_rings()
        return WorkerDied(self.shard, self.process.exitcode)

    def send(self, op: str, payload: dict[str, Any]) -> None:
        if op == "epoch" and self.ring_out is not None:
            payload = encode_epoch(payload, self.ring_out)
        blob = _dumps((op, payload))
        if op == "epoch":
            key = ("ipc_bytes_control" if self.ring_out is not None
                   else "ipc_bytes_copied")
            serialization.STATS[key] += len(blob)
        try:
            self.conn.send_bytes(blob)
        except (BrokenPipeError, OSError):
            raise self._died() from None

    def recv(self) -> dict[str, Any]:
        while not self.conn.poll(0.1):
            if not self.process.is_alive():
                raise self._died()
        try:
            reply = pickle.loads(self.conn.recv_bytes())
        except (EOFError, OSError):
            raise self._died() from None
        if not reply.get("ok"):
            err = WorkerError(self.shard, reply.get("error", "unknown"),
                              reply.get("traceback", ""))
            # ``fatal`` marks worker-side state the epoch savepoint cannot
            # recover (e.g. a desynced shm ring cursor); optimistic
            # lockstep refuses to redo through it.
            err.fatal = bool(reply.get("fatal"))
            raise err
        if "wire" in reply:
            try:
                reply = decode_reply(reply, self.ring_in)
            except TornFrame:
                # A frame torn mid-write by a dying worker: treat it as
                # the worker death it is instead of wedging the barrier.
                raise self._died() from None
        state = reply["state"]
        self.peek = state["peek"]
        self.now = state["now"]
        self.suspended = state["suspended"]
        self.events = state["events"]
        notes = reply.get("journal")
        if notes:
            self.journal_notes.extend(notes)
        return reply

    def request(self, op: str, payload: Optional[dict[str, Any]] = None
                ) -> dict[str, Any]:
        self.send(op, payload or {})
        return self.recv()


class NodeProxy:
    """Coordinator-side handle for a node living in a worker process.

    Mirrors the slice of the :class:`~repro.node.node.Node` surface a
    workload needs before the run (resource installation) and after it
    (state inspection).  Reads return pickled *snapshots* fetched from
    the owning worker — mutating them does not reach the worker.
    """

    def __init__(self, world: "ProcShardedWorld", name: str, shard: int):
        self._world = world
        self.name = name
        self.shard = shard

    def add_resource(self, resource) -> None:
        assert_picklable(resource,
                         f"resource {resource.name!r} for node {self.name!r}")
        journal = self._world.journal
        if journal is not None and journal.armed:
            journal.record_op("add_resource", node=self.name,
                              blob=capture(resource))
        self._world._handles[self.shard].request(
            "add_resource", {"node": self.name, "resource": resource})

    def share_resource_from(self, from_node: str, resource: str) -> None:
        """Replicate ``from_node``'s resource onto this node.

        Both nodes must live in the same shard: a resource object
        cannot be shared across process boundaries (in-process sharded
        worlds allow cross-shard sharing as a modelling convenience;
        worker mode makes the cost of that convenience explicit).
        """
        if self._world.shard_of(from_node) != self.shard:
            raise UsageError(
                f"cannot share a resource across worker processes "
                f"({from_node!r} is not in shard {self.shard})")
        journal = self._world.journal
        if journal is not None and journal.armed:
            journal.record_op("share_resource", node=self.name,
                              from_node=from_node, name=resource)
        self._world._handles[self.shard].request(
            "share_resource", {"node": self.name, "from_node": from_node,
                               "resource": resource})

    def get_resource(self, name: str):
        """A pickled snapshot of the resource's current worker-side state."""
        return self._world.resource_state(self.name, name)

    def queue_length(self) -> int:
        return self._world._handles[self.shard].request(
            "fetch", {"what": "queue_length", "node": self.name})["value"]


class ProcShardedWorld:
    """A sharded world whose kernels run in worker processes.

    The facade mirrors :class:`~repro.node.sharded.ShardedWorld` where
    workloads and equivalence checks need it (``add_node`` / ``launch``
    / ``run`` / ``kill_shard`` / ``outcomes`` / ``counters`` /
    ``ledger_claims`` / ``resource_state`` ...), so the same seeded
    workload can be replayed on either backend and compared.

    Always close it (context manager, or :meth:`close`) — worker
    processes are daemonic but prompt teardown keeps test runs tidy.

    Args:
        n_shards: Number of shard kernels (= worker processes).
        seed: Root seed; worker ``i`` runs at ``seed + 100_003 * i``.
        epoch: Virtual-time length of one lockstep epoch (defaults to
            the network latency).
        start_method: :mod:`multiprocessing` start method
            (``"spawn"`` default — everything crossing the pipe must
            pickle; see the module docstring's contract).
        lockstep: Epoch schedule: ``"auto"`` (serial turns for
            entangled workloads, parallel epochs otherwise),
            ``"serial"``, ``"parallel"``, or ``"optimistic"`` —
            entangled epochs speculate on all workers concurrently
            against barrier-stale views, a shard-order conflict
            detector validates each worker's read log at the barrier,
            and invalidated shards roll back to their epoch savepoint
            and re-execute (bit-identical outcomes to ``"serial"``;
            see the module docstring).  Speculation accounting lands
            in :meth:`serialization_stats` under
            ``spec.epochs_speculated`` / ``spec.epochs_rolled_back``
            / ``spec.shards_rolled_back`` / ``spec.conflict_rate``.
        journal: Attach a :class:`~repro.journal.WorldJournal` for
            crash-resumable execution (workers buffer payload notes,
            the coordinator group-commits per barrier).
        ipc: Bulk-payload wire: ``"shm"`` zero-copy shared-memory
            rings (auto-falls back to pipe where shm is unavailable)
            or ``"pipe"``.
        ring_size: Byte capacity of each shm ring (>= 64; oversize
            payloads spill in-band).
        **world_kwargs: Forwarded to every worker's kernel
            (``net_params``, ``ft_params``, ``timing``, ...) — must
            pickle.

    Raises:
        UsageError: ``n_shards < 1``, bad ``epoch`` / ``lockstep`` /
            ``ipc`` / ``ring_size`` values, or unpicklable
            ``world_kwargs``.
        WorkerDied: Later, from any call whose worker process died.
        WorkerError: Later, when a worker raises remotely (carries
            the remote traceback).
    """

    def __init__(self, n_shards: int = 2, seed: int = 0,
                 epoch: Optional[float] = None,
                 start_method: str = "spawn",
                 lockstep: str = "auto",
                 journal: Optional[Any] = None,
                 ipc: str = "shm",
                 ring_size: int = DEFAULT_RING_SIZE,
                 **world_kwargs: Any):
        if n_shards < 1:
            raise UsageError(f"need at least 1 shard, got {n_shards}")
        if lockstep not in ("auto", "serial", "parallel", "optimistic"):
            raise UsageError(f"unknown lockstep mode {lockstep!r}")
        if ipc not in ("shm", "pipe"):
            raise UsageError(f"unknown ipc mode {ipc!r} "
                             f"(use 'shm' or 'pipe')")
        if ring_size < 64:
            raise UsageError(f"ring_size must be >= 64 bytes, "
                             f"got {ring_size}")
        net_params = world_kwargs.get("net_params")
        if epoch is None:
            epoch = net_params.latency if net_params is not None else 0.005
        if epoch <= 0:
            raise UsageError(f"epoch must be positive, got {epoch}")
        assert_picklable(world_kwargs, "world configuration")
        self.n_shards = n_shards
        self.seed = seed
        self.epoch = epoch
        self.lockstep = lockstep
        self.journal = journal
        self.ring_size = ring_size
        self.ipc = ipc if ipc == "pipe" else self._probe_shm()
        self._kill_plan: Optional[tuple[float, str]] = None
        if journal is not None and journal.armed \
                and not journal.config_written:
            journal.record_config(backend="proc", seed=seed,
                                  n_shards=n_shards, epoch=epoch,
                                  start_method=start_method,
                                  lockstep=lockstep, ipc=ipc,
                                  ring_size=ring_size,
                                  world_kwargs=capture(world_kwargs))
        self.bridge = CrossShardBridge(n_shards)
        self.last_flush_at = float("-inf")
        self.epochs_run = 0
        # Optimistic-lockstep accounting (folded into
        # ``serialization_stats()`` under ``spec.*`` keys).
        self.spec_epochs_speculated = 0
        self.spec_epochs_rolled_back = 0
        self.spec_shards_rolled_back = 0
        self.agents: dict[str, Any] = {}
        self.ft_alternates: dict[str, tuple[str, ...]] = {}
        self._node_shard: dict[str, int] = {}
        self._outages: list[_ShardOutage] = []
        self._entangled = False
        self._closed = False
        # Barrier-merged global state (see the module docstring).
        self._suspended = [False] * n_shards
        self._claims: list[dict] = [{} for _ in range(n_shards)]
        self._locks: list[dict[int, dict]] = [{} for _ in range(n_shards)]
        self._down: list[frozenset] = [frozenset()] * n_shards
        self._pending_records: list[dict[str, bytes]] = \
            [{} for _ in range(n_shards)]
        self._staged_items: list[list] = [[] for _ in range(n_shards)]

        # One ring pair per worker, created before any process spawns so
        # a creation failure (no /dev/shm, exhausted segments) can fall
        # back to pipe mode for the *whole* world — mixing wire formats
        # across workers would make the accounting unreadable.
        ring_pairs: list[Optional[tuple[ShmRing, ShmRing]]] = \
            [None] * n_shards
        if self.ipc == "shm":
            try:
                for index in range(n_shards):
                    ring_out = ShmRing.create(ring_size)
                    try:
                        ring_in = ShmRing.create(ring_size)
                    except OSError:
                        ring_out.unlink()
                        raise
                    ring_pairs[index] = (ring_out, ring_in)
            except OSError:
                for pair in ring_pairs:
                    if pair is not None:
                        pair[0].unlink()
                        pair[1].unlink()
                ring_pairs = [None] * n_shards
                self.ipc = "pipe"

        mp = multiprocessing.get_context(start_method)
        self._handles: list[_WorkerHandle] = []
        try:
            for index in range(n_shards):
                pair = ring_pairs[index]
                parent_conn, child_conn = mp.Pipe()
                config = {"shard_index": index, "n_shards": n_shards,
                          "seed": seed, "world_kwargs": world_kwargs,
                          "journal_capture": journal is not None,
                          "lockstep": lockstep,
                          "rings": (None if pair is None
                                    else (pair[0].name, pair[1].name))}
                process = mp.Process(target=_worker_entry,
                                     args=(child_conn, config),
                                     name=f"repro-shard-{index}",
                                     daemon=True)
                process.start()
                child_conn.close()
                self._handles.append(_WorkerHandle(
                    index, process, parent_conn,
                    ring_out=None if pair is None else pair[0],
                    ring_in=None if pair is None else pair[1]))
        except BaseException:
            # A failed spawn must not leak the segments of workers that
            # never started (their handles would never unlink them).
            for index in range(len(self._handles), n_shards):
                pair = ring_pairs[index]
                if pair is not None:
                    pair[0].unlink()
                    pair[1].unlink()
            raise

    @staticmethod
    def _probe_shm() -> str:
        """Pick the wire format: shm when segments work here, else pipe."""
        try:
            probe = ShmRing.create(64)
        except (OSError, ImportError):  # pragma: no cover - platform
            return "pipe"
        probe.unlink()
        return "shm"

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent).

        Teardown is best-effort — one dead worker must not stop the
        others from being shut down or their segments from being
        unlinked — but every suppressed failure is counted in
        ``serialization.STATS["teardown.suppressed"]`` and surfaced as
        a :class:`ResourceWarning` (see :func:`_teardown_step`), so a
        leaked ``psm_*`` segment or stuck pipe leaves a trail.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            # A WorkerDied here already unlinked the rings (_died);
            # it is the one expected failure of a shutdown send.
            _teardown_step(f"shutdown send to shard {handle.shard}",
                           lambda h=handle: h.send("shutdown", {}),
                           WorkerDied)
        for handle in self._handles:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                _teardown_step(f"terminate of shard {handle.shard}",
                               handle.process.terminate, OSError)
            _teardown_step(f"pipe close of shard {handle.shard}",
                           handle.conn.close, OSError)
            # The coordinator owns segment destruction: by now the
            # worker has closed (or been terminated off) its mappings.
            _teardown_step(f"ring unlink of shard {handle.shard}",
                           handle.unlink_rings, OSError, BufferError)

    def __enter__(self) -> "ProcShardedWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort teardown
        # GC can collect a half-constructed facade (failed spawn) before
        # ``_closed`` exists; anything beyond that is close()'s job and
        # close() already narrows + surfaces its own failures.
        if getattr(self, "_closed", None) is False:
            _teardown_step("ProcShardedWorld.__del__ close", self.close,
                           OSError, RuntimeError)

    # -- topology -----------------------------------------------------------------

    def add_node(self, name: str, shard: Optional[int] = None) -> NodeProxy:
        """Create node ``name`` in ``shard`` (round-robin by default)."""
        if name in self._node_shard:
            raise UsageError(f"node {name!r} already exists")
        if shard is None:
            shard = len(self._node_shard) % self.n_shards
        if not 0 <= shard < self.n_shards:
            raise UsageError(f"no shard {shard} (have {self.n_shards})")
        self._journal_op("add_node", name=name, shard=shard)
        for handle in self._handles:
            handle.request("add_node", {"name": name, "shard": shard})
        self._node_shard[name] = shard
        return NodeProxy(self, name, shard)

    def add_nodes(self, *names: str) -> list[NodeProxy]:
        return [self.add_node(n) for n in names]

    def shard_of(self, name: str) -> int:
        shard = self._node_shard.get(name)
        if shard is None:
            raise UsageError(f"no node {name!r}")
        return shard

    def node(self, name: str) -> NodeProxy:
        return NodeProxy(self, name, self.shard_of(name))

    def set_alternates(self, node: str, *alternates: str) -> None:
        """Declare step alternates for ``node``, visible to all workers."""
        self._journal_op("set_alternates", node=node,
                         alternates=tuple(alternates))
        self._entangled = True
        self.ft_alternates[node] = tuple(alternates)
        for handle in self._handles:
            handle.request("set_alternates",
                           {"node": node, "alternates": alternates})

    # -- failure injection -----------------------------------------------------------

    def apply_crash_plans(self, plans) -> None:
        """Schedule node-level outages, routed to the owning workers."""
        plans = list(plans)
        if self.journal is not None and self.journal.armed:
            self.journal.record_op("crash_plans", blob=capture(plans))
        self._entangled = True
        by_shard: dict[int, list] = {}
        for plan in plans:
            by_shard.setdefault(self.shard_of(plan.node), []).append(plan)
        for shard, shard_plans in by_shard.items():
            self._handles[shard].request("crash_plans",
                                         {"plans": shard_plans})

    def kill_shard(self, shard: int, at: float,
                   restart_at: Optional[float] = None) -> None:
        """Schedule a whole-kernel outage of ``shard`` at time ``at``.

        Same contract as :meth:`~repro.node.sharded.ShardedWorld.
        kill_shard` — the kill event runs inside the worker's kernel.
        """
        self._entangled = True
        if not 0 <= shard < self.n_shards:
            raise UsageError(f"no shard {shard} (have {self.n_shards})")
        handle = self._handles[shard]
        if at < handle.now:
            raise UsageError(f"cannot kill shard {shard} in the past "
                             f"(at={at}, now={handle.now})")
        if restart_at is not None and restart_at <= at:
            raise UsageError(f"restart_at ({restart_at}) must be after "
                             f"the kill time ({at})")
        self._journal_op("kill_shard", shard=shard, at=at,
                         restart_at=restart_at)
        self._outages.append(_ShardOutage(shard=shard, at=at,
                                          restart_at=restart_at))
        handle.request("kill", {"at": at})

    def shard_alive(self, shard: int) -> bool:
        return not self._suspended[shard]

    # -- agent management --------------------------------------------------------------

    def launch(self, agent, at: str, method: str, **launch_kwargs: Any):
        """Launch ``agent`` at node ``at`` (in whichever worker hosts it).

        Returns the coordinator's live :class:`~repro.node.runtime.
        AgentRecord` copy — merged in place at every barrier, so the
        reference stays current across :meth:`run` calls.
        """
        from repro.agent.packages import Protocol
        protocol = launch_kwargs.get("protocol", Protocol.BASIC)
        if Protocol(protocol) is Protocol.FAULT_TOLERANT:
            self._entangled = True
        assert_picklable(agent, f"agent {agent.agent_id!r}")
        owner = self.shard_of(at)
        bundle = capture((agent, at, method, launch_kwargs))
        if self.journal is not None and self.journal.armed:
            # The journal reuses the ship bundle verbatim, so replay
            # re-launches byte-identical launch state.
            self.journal.record_op("launch", bundle=bundle)
        reply = self._handles[owner].request(
            "launch", {"bundle": bundle})
        self._merge_record_blob(reply["record"], origin=owner)
        return self.agents[agent.agent_id]

    def record_of(self, agent_id: str):
        record = self.agents.get(agent_id)
        if record is None:
            raise UsageError(f"no agent {agent_id!r}")
        return record

    def all_done(self) -> bool:
        from repro.node.runtime import AgentStatus
        return all(r.status is not AgentStatus.RUNNING
                   for r in self.agents.values())

    def _merge_record_blob(self, blob: bytes, origin: int) -> None:
        record = restore(blob)
        existing = self.agents.get(record.agent_id)
        if existing is None:
            self.agents[record.agent_id] = record
        elif _record_progress(record) >= _record_progress(existing):
            if record.final_agent is None:
                # A delta that bounced through a worker holding only
                # the final_agent-stripped broadcast copy must not
                # erase the captured agent the coordinator already has.
                record.final_agent = existing.final_agent
            # In place: callers hold the object launch() returned.
            existing.__dict__.update(record.__dict__)
        else:
            return  # stale copy from a worker the agent migrated off
        if self.journal is not None and self.journal.armed:
            self.journal.buffer("record-merge", agent=record.agent_id,
                                origin=origin)
        if record.final_agent is not None:
            # The re-broadcast copy drops the captured final agent: no
            # worker reads a foreign record's final_agent (it is pure
            # inspection surface, served by the coordinator's full
            # copy), and for ballast-heavy agents it dwarfs the record.
            import dataclasses
            blob = capture(dataclasses.replace(record, final_agent=None))
        for shard in range(self.n_shards):
            if shard != origin:
                self._pending_records[shard][record.agent_id] = blob

    # -- execution ----------------------------------------------------------------------

    @property
    def now(self) -> float:
        """The lockstep virtual clock (all shards agree at barriers)."""
        return max(handle.now for handle in self._handles)

    def _due_restarts(self) -> list[_ShardOutage]:
        return [o for o in self._outages
                if o.restart_at is not None and not o.revived
                and self._suspended[o.shard]]

    def _schedule(self) -> str:
        """The epoch schedule this cycle runs under.

        ``"auto"`` picks serial turns once the workload is entangled
        (FT alternates or failure injection), ``"optimistic"`` picks
        speculative parallel turns for the same entangled workloads —
        independent workloads always run as plain parallel epochs.
        """
        if self.lockstep == "auto":
            return "serial" if self._entangled else "parallel"
        if self.lockstep == "optimistic":
            return "optimistic" if self._entangled else "parallel"
        return self.lockstep

    # -- world-journal seams (see repro.journal) ------------------------------------

    def _journal_op(self, op: str, **data: Any) -> None:
        if self.journal is not None and self.journal.armed:
            self.journal.record_op(op, **data)

    def _journal_digest(self) -> tuple:
        """Per-shard event counts at the barrier — the commit digest."""
        return tuple(handle.events for handle in self._handles)

    def _journal_commit(self, barrier: float, torn: bool = False) -> None:
        journal = self.journal
        if journal is None or not journal.armed:
            return
        digest = self._journal_digest()
        if torn:
            journal.commit_torn(barrier, digest)
        else:
            journal.commit_epoch(barrier, digest)

    def _journal_final_commit(self) -> None:
        journal = self.journal
        if journal is not None and journal.armed and journal.buffered():
            journal.commit_epoch(self.now, self._journal_digest())

    def _ingest_journal(self, handle: _WorkerHandle) -> None:
        """Buffer a worker's shipped payload notes into the journal."""
        notes = handle.journal_notes
        if not notes:
            return
        handle.journal_notes = []
        journal = self.journal
        if journal is None or not journal.armed:
            return  # replaying: the notes were journaled the first time
        for kind, data in notes:
            data.setdefault("shard", handle.shard)
            journal.buffer(kind, **data)

    def _kill_due(self, barrier: float) -> Optional[str]:
        plan = self._kill_plan
        if plan is not None and barrier >= plan[0]:
            return plan[1]
        return None

    def kill_world(self, at: float, phase: str = "commit") -> None:
        """Hard-stop the coordinator at the first epoch barrier >= ``at``.

        Same contract as :meth:`~repro.node.sharded.ShardedWorld.
        kill_world`: ``phase="commit"`` stops right after the barrier's
        journal commit; ``"barrier"`` stops between the barrier collect
        and the scatter — the workers executed the epoch and their
        outboxes were adopted, but the marker is torn and the routed
        inboxes never ship.  Never journaled: it is the crash being
        recovered from.
        """
        if phase not in ("commit", "barrier"):
            raise UsageError(f"unknown kill phase {phase!r} "
                             f"(use 'commit' or 'barrier')")
        if at < self.now:
            raise UsageError(f"cannot kill the world in the past "
                             f"(at={at}, now={self.now})")
        self._kill_plan = (float(at), phase)

    def run(self, until: Optional[float] = None,
            max_epochs: int = 1_000_000,
            max_events_per_epoch: int = 10_000_000,
            _replay: Optional[list] = None) -> None:
        """Run all workers in lockstep epochs until drained (or ``until``).

        The same barrier walk as :meth:`~repro.node.sharded.
        ShardedWorld.run`, with each epoch executed as a
        collect/route/scatter cycle over the worker pipes — in parallel
        for independent workloads, as serial shard-order turns for
        entangled ones (see the module docstring).

        With a journal attached each routed barrier gets a group
        commit, with the ``kill_world`` check around it (the
        mid-barrier phase falls between the collect and the scatter).
        ``_replay`` (resume driver only) walks the journaled barrier
        sequence verbatim instead of re-deriving it, and returns once
        exhausted.
        """
        if self._closed:
            raise UsageError("world is closed")
        schedule = self._schedule()
        replay = iter(_replay) if _replay is not None else None
        for _ in range(max_epochs):
            if not self._step(until, max_events_per_epoch, schedule,
                              replay):
                return
        raise UsageError(
            f"sharded run exceeded {max_epochs} epochs; likely livelock")

    def _step(self, until: Optional[float], max_events_per_epoch: int,
              schedule: str, replay) -> bool:
        """One iteration of the lockstep loop; False when nothing is left."""
        running = [h for h in self._handles if not h.suspended]
        next_times = [t for t in (h.peek for h in running)
                      if t is not None]
        next_times += [o.restart_at for o in self._due_restarts()]
        # Routed-but-unshipped inbox items will schedule kernel
        # events the moment they are applied; the in-process driver
        # sees those through the destination's peek right after its
        # flush, so barrier selection must account for them here or
        # the two drivers walk different barrier sequences.
        for shard, items in enumerate(self._staged_items):
            if self._suspended[shard]:
                continue  # frozen kernel: events wait for a revival
            now = self._handles[shard].now
            next_times += [max(transfer.at, now)
                           for action, transfer in items
                           if action == "deliver"
                           and transfer.kind in ("package", "shadow")]
        if not next_times:
            if any(self._staged_items):
                # Ship the routed inboxes; applying them may wake
                # kernels (durable deliveries, retained retries).
                self._cycle(barrier=None, schedule=schedule, run=False,
                            max_events=max_events_per_epoch, revives={})
                return True
            if self.bridge.pending():
                # Retained shadow retries and forwards committed on
                # the last epoch's final event must still resolve.
                self._route(self.now)
                return True
            self._sync_records()
            self._journal_final_commit()
            return False
        soonest = min(next_times)
        if until is not None and soonest > until:
            # Cap every running kernel's clock at `until`; no flush
            # (mirrors the in-process driver), but staged inboxes
            # from the last flush still ship with the command.
            self._cycle(barrier=until, schedule=schedule, run=True,
                        max_events=max_events_per_epoch, revives={},
                        cap_to_now=True)
            self._sync_records()
            return False
        if replay is not None:
            barrier = next(replay, None)
            if barrier is None:
                return False  # replayed prefix complete
        else:
            floor_now = max((h.now for h in running), default=self.now)
            barrier = next_epoch_barrier(soonest, self.epoch,
                                         floor_now)
            if until is not None and barrier > until:
                barrier = until
        revives: dict[int, tuple] = {}
        for outage in self._due_restarts():
            if outage.restart_at <= barrier:
                outage.revived = True
                self._suspended[outage.shard] = False
                revives[outage.shard] = (
                    outage.restart_at,
                    self.bridge.take_backlog(outage.shard))
        self._cycle(barrier=barrier, schedule=schedule, run=True,
                    max_events=max_events_per_epoch, revives=revives)
        kill = self._kill_due(barrier)
        if kill == "barrier":
            # Mid-barrier crash: the workers executed the epoch and
            # their outboxes were collected, but the marker is torn
            # and the routed inboxes never ship — recovery falls
            # back one barrier.
            self._journal_commit(barrier, torn=True)
            from repro.errors import WorldKilled
            raise WorldKilled(barrier, "barrier")
        self._route(barrier)
        self.epochs_run += 1
        self._journal_commit(barrier)
        if kill == "commit":
            from repro.errors import WorldKilled
            raise WorldKilled(barrier, "commit")
        return True

    def step_epoch(self, max_events_per_epoch: int = 10_000_000) -> bool:
        """Advance one lockstep iteration; False once every worker is idle.

        The reentrant twin of :meth:`run` (same contract as
        :meth:`~repro.node.sharded.ShardedWorld.step_epoch`): each call
        walks one iteration of the identical deterministic barrier
        sequence — advancing the workers, routing the bridge, group-
        committing the journal — or resolves a pending staged-inbox
        ship/bridge flush without advancing the clock (still True).
        False means drained: records synced, journal final-committed.
        Idle calls are repeatable; a later :meth:`launch` makes the
        next call True again.
        """
        if self._closed:
            raise UsageError("world is closed")
        return self._step(None, max_events_per_epoch, self._schedule(),
                          None)

    def attach_journal(self, journal: "WorldJournal") -> None:
        """Not supported on the process-backed facade — constructor only.

        Worker processes bake ``journal_capture`` into their spawn
        config, so capture hooks cannot be wired after the fact without
        restarting every worker.  Pass ``journal=`` to the
        :class:`ProcShardedWorld` constructor instead (the service
        gateway does exactly that).
        """
        raise UsageError(
            "ProcShardedWorld cannot attach a journal to live workers "
            "(capture mode is baked into the spawn config); pass "
            "journal= to the constructor instead")

    def _sync_records(self) -> None:
        """Pull every worker's pending record deltas into the merged
        table (end of a run: the independent-epoch schedule ships
        records with migrating agents, not per epoch, so the
        coordinator's inspection copies catch up here)."""
        for handle in self._handles:
            try:
                deltas = handle.request(
                    "fetch", {"what": "record_deltas"})["value"]
            except WorkerDied:
                continue  # a dead shard's last state is already merged
            for _agent_id, blob in deltas.items():
                self._merge_record_blob(blob, origin=handle.shard)

    def _route(self, barrier: float) -> None:
        routed = 0
        for shard, action, transfer in self.bridge.route(
                list(self._suspended)):
            self._staged_items[shard].append((action, transfer))
            routed += 1
        self.last_flush_at = barrier
        if routed and self.journal is not None and self.journal.armed:
            self.journal.buffer("bridge", moved=routed, barrier=barrier)

    def _views_for(self, shard: int) -> dict[str, Any]:
        locks: dict[int, dict] = {}
        for replica in range(self.n_shards):
            merged: dict[int, tuple] = {}
            for owner, contribution in self._locks[replica].items():
                if owner == shard:
                    continue  # its own holds live in its mirrors
                for work_id, txid in contribution.items():
                    merged[work_id] = (owner, txid)
            locks[replica] = merged
        return {
            "suspended": list(self._suspended),
            "down": {j: self._down[j] for j in range(self.n_shards)
                     if j != shard},
            "claims": {j: self._claims[j] for j in range(self.n_shards)
                       if j != shard},
            "locks": locks,
        }

    def _epoch_payload(self, shard: int, barrier: Optional[float],
                       run: bool, max_events: int, revives: dict,
                       cap_to_now: bool, schedule: str) -> dict[str, Any]:
        handle = self._handles[shard]
        shard_barrier = barrier
        if cap_to_now and barrier is not None:
            shard_barrier = max(barrier, handle.now)
        return {
            "barrier": shard_barrier,
            "run": run and (not handle.suspended or shard in revives),
            "max_events": max_events,
            "items": self._staged_items[shard],
            "records": self._pending_records[shard],
            "revive": revives.get(shard),
            "views": self._views_for(shard) if self._entangled else None,
            "last_flush_at": self.last_flush_at,
            "want_dump": self._entangled,
            "ship_records": schedule in ("serial", "optimistic"),
            "spec": schedule == "optimistic",
        }

    def _cycle(self, barrier: Optional[float], schedule: str, run: bool,
               max_events: int, revives: dict,
               cap_to_now: bool = False) -> None:
        """One coordinated cycle: scatter commands, collect, merge.

        Targets every shard that must act this cycle (running kernels,
        kernels with staged inbox items, kernels being revived).  In
        serial mode each worker's turn completes — and its dumps merge
        into the canonical views — before the next worker starts, which
        is what keeps entangled runs identical to the in-process
        schedule.  Optimistic mode runs all turns concurrently and
        repairs mis-speculation afterwards (see ``_cycle_optimistic``).
        """
        targets = [
            shard for shard in range(self.n_shards)
            if (run and not self._handles[shard].suspended)
            or self._staged_items[shard] or shard in revives
            or self._pending_records[shard]]
        if schedule == "serial":
            for shard in targets:
                self._dispatch(shard, barrier, run, max_events, revives,
                               cap_to_now, schedule)
                self._collect(shard)
            return
        if schedule == "optimistic":
            self._cycle_optimistic(targets, barrier, run, max_events,
                                   revives, cap_to_now)
            return
        dispatched: list[int] = []
        first_death: Optional[WorkerDied] = None
        try:
            for shard in targets:
                self._dispatch(shard, barrier, run, max_events, revives,
                               cap_to_now, schedule)
                dispatched.append(shard)
        except WorkerDied as died:
            first_death = died
        for shard in dispatched:
            # Drain every in-flight reply even when a sibling died, so
            # the surviving pipes stay request/reply-aligned and the
            # facade remains inspectable after the error surfaces.
            try:
                self._collect(shard)
            except WorkerDied as died:
                if first_death is None:
                    first_death = died
        if first_death is not None:
            raise first_death

    def _cycle_optimistic(self, targets: list[int],
                          barrier: Optional[float], run: bool,
                          max_events: int, revives: dict,
                          cap_to_now: bool) -> None:
        """One speculative entangled cycle: all turns at once, then repair.

        Every target executes its turn concurrently against the
        barrier-stale views it was dispatched with, recording a log of
        each foreign claim/lock/liveness read.  The coordinator then
        validates the logs in ascending shard index — the order serial
        turns would have used — re-deriving each shard's authoritative
        views from the canonical state (which folds in every
        already-validated shard's dump).  A shard whose log still
        matches provably executed the serial turn and is accepted
        as-is; a mismatch (or a speculation-induced worker error)
        triggers a ``redo``: the worker rolls back to its epoch
        savepoint and re-executes the turn with the authoritative
        views.  Journal notes from an invalidated speculation are
        discarded before the redo's notes are ingested, so only the
        surviving execution reaches the group commit.
        """
        marks: dict[int, int] = {}
        replies: dict[int, dict] = {}
        errors: dict[int, WorkerError] = {}
        dispatched: list[int] = []
        first_death: Optional[WorkerDied] = None
        try:
            for shard in targets:
                self._dispatch(shard, barrier, run, max_events, revives,
                               cap_to_now, "optimistic")
                dispatched.append(shard)
        except WorkerDied as died:
            first_death = died
        for shard in dispatched:
            handle = self._handles[shard]
            marks[shard] = len(handle.journal_notes)
            try:
                replies[shard] = handle.recv()
            except WorkerDied as died:
                if first_death is None:
                    first_death = died
            except WorkerError as err:
                if getattr(err, "fatal", False):
                    raise  # unrecoverable worker state: no redo possible
                errors[shard] = err
        if first_death is not None:
            raise first_death
        if run and dispatched:
            self.spec_epochs_speculated += 1
        conflicts = 0
        for shard in dispatched:
            handle = self._handles[shard]
            views = self._views_for(shard)
            reply = replies.get(shard)
            if reply is not None and views_satisfy(
                    views, reply.get("read_log", ())):
                self._ingest_journal(handle)
                self._absorb(shard, reply)
                continue
            # Invalidated speculation (or an error only the speculative
            # views can explain): discard its journal notes, roll the
            # worker back to the epoch savepoint, re-execute with the
            # authoritative views.
            conflicts += 1
            self.spec_shards_rolled_back += 1
            del handle.journal_notes[marks[shard]:]
            reply = handle.request("redo", {"views": views})
            self._ingest_journal(handle)
            self._absorb(shard, reply)
        if conflicts and run:
            self.spec_epochs_rolled_back += 1

    def _dispatch(self, shard: int, barrier: Optional[float], run: bool,
                  max_events: int, revives: dict, cap_to_now: bool,
                  schedule: str) -> None:
        payload = self._epoch_payload(shard, barrier, run, max_events,
                                      revives, cap_to_now, schedule)
        self._staged_items[shard] = []
        self._pending_records[shard] = {}
        self._handles[shard].send("epoch", payload)

    def _collect(self, shard: int) -> None:
        handle = self._handles[shard]
        reply = handle.recv()
        self._ingest_journal(handle)
        self._absorb(shard, reply)

    def _absorb(self, shard: int, reply: dict[str, Any]) -> None:
        """Fold one worker's epoch reply into the canonical state."""
        handle = self._handles[shard]
        self._suspended[shard] = handle.suspended
        for agent_id, blob in reply.get("record_deltas", {}).items():
            self._merge_record_blob(blob, origin=shard)
        for transfer in reply["outbox"]:
            self.bridge.adopt(transfer)
        dump = reply.get("dump")
        if dump is not None:
            self._claims[shard] = dump["claims"]
            self._down[shard] = dump["down"]
            for replica, contribution in dump["locks"].items():
                self._locks[replica][shard] = contribution

    # -- results ------------------------------------------------------------------------

    def outcomes(self) -> dict[str, dict[str, Any]]:
        """Canonical per-agent outcomes (same shape as ShardedWorld's)."""
        return outcomes_of(self.agents)

    def counters(self, exclude_prefixes: tuple[str, ...] = ()
                 ) -> dict[str, int]:
        """Aggregate counters/byte totals fetched from every worker."""
        return aggregate_counters(
            [h.request("fetch", {"what": "summary"})["value"]
             for h in self._handles],
            exclude_prefixes)

    def events_processed(self) -> int:
        return sum(handle.events for handle in self._handles)

    def shard_metrics(self, shard: int):
        """A snapshot of one worker's :class:`~repro.sim.metrics.Metrics`."""
        return self._handles[shard].request(
            "fetch", {"what": "metrics"})["value"]

    def resource_state(self, node: str, resource: str) -> Any:
        """Pickled snapshot of a worker-hosted resource's current state."""
        return self._handles[self.shard_of(node)].request(
            "fetch", {"what": "resource", "node": node,
                      "resource": resource})["value"]

    def serialization_stats(self) -> dict[str, Any]:
        """Summed per-worker serialization STATS counters.

        The coordinator process's own IPC accounting (it encodes the
        scatter half of every barrier) is folded in on top of the
        worker sums, so both directions of the exchange are visible.
        Optimistic-lockstep speculation accounting rides along under
        ``spec.*`` keys: ``spec.epochs_speculated`` /
        ``spec.epochs_rolled_back`` / ``spec.shards_rolled_back``
        counters plus the derived ``spec.conflict_rate`` (rolled-back
        over speculated epochs; 0.0 when nothing speculated).
        """
        merged = dict(aggregate_counters(
            [h.request("fetch", {"what": "ser_stats"})["value"]
             for h in self._handles]))
        own = serialization.stats()
        for key in serialization.IPC_STAT_KEYS:
            merged[key] = merged.get(key, 0) + own.get(key, 0)
        merged["spec.epochs_speculated"] = self.spec_epochs_speculated
        merged["spec.epochs_rolled_back"] = self.spec_epochs_rolled_back
        merged["spec.shards_rolled_back"] = self.spec_shards_rolled_back
        merged["spec.conflict_rate"] = (
            self.spec_epochs_rolled_back / self.spec_epochs_speculated
            if self.spec_epochs_speculated else 0.0)
        return dict(sorted(merged.items()))

    def shard_serialization_stats(self, shard: int) -> dict[str, int]:
        """One worker process's own serialization STATS counters."""
        return self._handles[shard].request(
            "fetch", {"what": "ser_stats"})["value"]

    def enable_trace_digest(self) -> None:
        """Turn on every worker kernel's event-stream digest."""
        for handle in self._handles:
            handle.request("enable_digest")

    def trace_digests(self) -> list[Optional[int]]:
        """Per-shard kernel event-stream digests (see Simulator)."""
        return [h.request("fetch", {"what": "trace_digest"})["value"]
                for h in self._handles]

    # -- ledger inspection (tests / benches) ----------------------------------------------

    def ledger_claims(self) -> dict[int, dict[int, str]]:
        """Every replica's view of every claim: work_id -> shard -> holder."""
        claims: dict[int, dict[int, str]] = {}
        for handle in self._handles:
            dump = handle.request("fetch", {"what": "ledger"})["value"]
            for work_id, holder in dump.items():
                claims.setdefault(work_id, {})[handle.shard] = holder
        return claims

    def ledger_quorum_agrees(self) -> bool:
        """Do the live replicas agree on every claim, with a majority?"""
        alive = {shard for shard in range(self.n_shards)
                 if not self._suspended[shard]}
        if not alive:
            return True
        need = len(alive) // 2 + 1
        for replicas in self.ledger_claims().values():
            holders = [holder for shard, holder in replicas.items()
                       if shard in alive]
            if not holders:
                continue  # only dead replicas hold it — unresolvable now
            if len(set(holders)) != 1 or len(holders) < need:
                return False
        return True
