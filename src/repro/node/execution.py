"""Shared transaction-driving helpers for protocol drivers.

Every step / compensation / rollback-start transaction follows the same
skeleton: begin at the dispatch event, run the body synchronously while
charging virtual time into ``tx.cost``, then schedule the commit event
``tx.cost`` later.  :func:`finalize` implements the tail: at the commit
event the transaction may already have been aborted by a crash handler
(the commit silently fails and the durable queues, restored by undo,
drive the retry), otherwise the commit coordinator decides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node
    from repro.tx.manager import Transaction


def finalize(node: "Node", tx: "Transaction",
             on_committed: Optional[Callable[[], None]] = None,
             on_failed: Optional[Callable[[], None]] = None,
             label: str = "commit") -> None:
    """Schedule the commit decision for ``tx`` at ``now + tx.cost``."""
    world = node.world
    tx.charge(world.timing.tx_commit_local)

    def _decide() -> None:
        if not tx.is_active():
            # Crash handler aborted us mid-window; queue undo already
            # re-triggered dispatch (or recovery rescan will).
            node.txm.note_abort()
            world.metrics.incr(f"tx.aborted.{tx.kind}")
            if on_failed is not None:
                on_failed()
            return
        if world.coordinator.try_commit(tx):
            node.txm.note_commit()
            world.metrics.incr(f"tx.committed.{tx.kind}")
            if on_committed is not None:
                on_committed()
        else:
            node.txm.note_abort()
            world.metrics.incr(f"tx.aborted.{tx.kind}")
            if on_failed is not None:
                on_failed()

    node.sim.schedule(tx.cost, _decide, label=f"{label}:{tx.txid}")


def abort_and_count(node: "Node", tx: "Transaction", reason: str) -> None:
    """Abort ``tx`` now and record why (body-time failures)."""
    tx.abort()
    node.txm.note_abort()
    node.world.metrics.incr(f"tx.aborted.{tx.kind}")
    node.world.metrics.incr(f"abort.{reason}")
